//! The paper's §3.1 story end-to-end: a fixed batch of tasks, processors
//! arriving one at a time (spot-market machines, say), hire-or-pass decisions
//! that are irrevocable. The team utility is Chapter 2's matching rank —
//! "how many tasks could the hired machines actually run?" — which is
//! monotone submodular (Lemma 2.2.2), so Algorithm 1 applies with the
//! Theorem 3.2.5 guarantee. After hiring, Chapter 2's schedule-all computes
//! the energy-minimal schedule on the hired machines.
//!
//! Run with: `cargo run --example processor_marketplace`

use power_scheduling::prelude::*;
use power_scheduling::secretary::{offline_greedy, random_stream, submodular_secretary};
use power_scheduling::workloads::ProcessorRankFn;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let num_processors = 40u32;
    let horizon = 6u32;
    let k = 6; // hiring budget

    // 50 tasks, each runnable only on a few specific (machine, slot) pairs —
    // machines hold different datasets/accelerators at different times.
    let jobs: Vec<Job> = (0..50)
        .map(|_| {
            let options = rng.gen_range(1..=3);
            let allowed = (0..options)
                .map(|_| SlotRef::new(rng.gen_range(0..num_processors), rng.gen_range(0..horizon)))
                .collect();
            Job::unit(allowed)
        })
        .collect();
    let inst = Instance::new(num_processors, horizon, jobs);
    let utility = ProcessorRankFn::new(&inst);

    let (offline_team, offline_val) = offline_greedy(&utility, k);
    println!(
        "offline (full knowledge) team {:?} runs {} of {} tasks",
        offline_team,
        offline_val,
        inst.num_jobs()
    );

    // One online run, narrated.
    let arrival = random_stream(num_processors as usize, &mut rng);
    let hired = submodular_secretary(&utility, &arrival, k);
    let online_val = utility.value_of(&hired);
    println!("online hiring over arrival order: team {hired:?} runs {online_val} tasks");

    // Monte-Carlo estimate of the competitive ratio.
    let trials = 1000;
    let total: f64 = (0..trials)
        .map(|_| {
            let s = random_stream(num_processors as usize, &mut rng);
            utility.value_of(&submodular_secretary(&utility, &s, k))
        })
        .sum();
    let ratio = total / trials as f64 / offline_val;
    println!("average competitive ratio over {trials} orders: {ratio:.3}");
    let bound = (1.0 - 1.0 / std::f64::consts::E) / (7.0 * std::f64::consts::E);
    assert!(ratio >= bound);

    // Phase 2: schedule the tasks on the hired machines, energy-minimally.
    // Restrict each job to slots on hired machines; drop jobs with no slots
    // (prize lost to the online setting).
    let hired_set: std::collections::HashSet<u32> = hired.iter().copied().collect();
    let reachable: Vec<Job> = inst
        .jobs
        .iter()
        .filter_map(|j| {
            let allowed: Vec<SlotRef> = j
                .allowed
                .iter()
                .copied()
                .filter(|s| hired_set.contains(&s.proc))
                .collect();
            (!allowed.is_empty()).then_some(Job {
                value: j.value,
                allowed,
                work: None,
            })
        })
        .collect();
    let sub = Instance::new(num_processors, horizon, reachable);
    let cost = AffineCost::new(4.0, 1.0);
    // Reachable jobs can still contend for the same slot, so ask for exactly
    // the matching-rank value the hiring utility promised (prize-collecting,
    // Thm 2.3.3) rather than all reachable jobs.
    let schedule = Solver::new(&sub, &cost)
        .prize_collecting_exact(online_val)
        .expect("the hiring utility certified this value is schedulable");
    println!(
        "\nphase 2 (Thm 2.3.3): scheduled {} tasks (value {}) at energy cost {:.1} using {} awake intervals",
        schedule.scheduled_count,
        schedule.scheduled_value,
        schedule.total_cost,
        schedule.awake.len()
    );
    assert!(schedule.scheduled_value >= online_val - 1e-9);
}
