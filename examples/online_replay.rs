//! Online replay: pit the three online policies against each other — and
//! against the offline optimum — on one generated arrival trace.
//!
//! Run with: `cargo run --example online_replay`

use power_scheduling::prelude::*;
use power_scheduling::workloads::{generate_trace, ArrivalConfig, TraceKind};
use rand::SeedableRng;

fn main() {
    // A diurnal trace: arrivals follow a day/night sinusoid, every job
    // planted a feasible home slot. Restart cost 5 vs rate 1 makes the
    // sleep-or-hold decision non-trivial.
    let cfg = ArrivalConfig {
        num_processors: 2,
        horizon: 24,
        target_jobs: 14,
        restart: 5.0,
        rate: 1.0,
        max_value: 1,
        slack: 4,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let trace = generate_trace(TraceKind::Diurnal, &cfg, &mut rng);
    println!(
        "trace {}: {} jobs over {} slots on {} processors (restart {}, rate {})",
        trace.name,
        trace.jobs.len(),
        trace.horizon,
        trace.num_processors,
        trace.restart,
        trace.rate
    );

    for kind in ["greedy", "hiring", "resolve:4"] {
        let kind: PolicyKind = kind.parse().unwrap();
        let mut policy = kind.build(None);
        let (report, outcome) =
            replay_with_report(&trace, policy.as_mut(), OfflineRef::Auto).expect("replay");
        println!(
            "\n{}: online {:.1} vs offline {:.1} ({}) -> ratio {:.3}, {} restarts, \
             {}/{} scheduled",
            report.policy,
            report.online_cost,
            report.offline_cost,
            report.offline_ref,
            report.ratio,
            report.restarts,
            report.scheduled,
            report.jobs,
        );
        // The PowerTrace Display narrates each processor's machine states
        // as run-length-encoded S/I/B (sleep, idle, busy) runs.
        print!("{}", outcome.power);
        assert!(
            report.ratio >= 1.0 - 1e-9,
            "online beat the offline reference"
        );
    }
}
