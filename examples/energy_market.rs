//! Energy-market scenario: per-slot electricity prices vary over a simulated
//! day (the paper's motivation #2 for arbitrary interval costs). The
//! scheduler shifts awake intervals into cheap-price valleys; we compare its
//! bill against the keep-everything-on baseline and EDF+gap-merge.
//!
//! Run with: `cargo run --example energy_market`

use power_scheduling::baselines::always_on_cost;
use power_scheduling::prelude::*;
use power_scheduling::workloads::market_prices;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(20100521);
    let horizon = 48u32; // half-hour slots over a day
    let procs = 2u32;

    // Day/night tariff with noise; peak around midday.
    let prices: Vec<Vec<f64>> = (0..procs)
        .map(|_| market_prices(horizon as usize, 1.0, 0.8, 48.0, 0.1, &mut rng))
        .collect();
    println!("price curve (processor 0), one char per slot (▁ cheap … █ expensive):");
    println!("  {}", sparkline(&prices[0]));
    let cost = TimeVaryingCost::new(2.0, prices);

    // Batch jobs with generous windows: they can run almost any time, so the
    // scheduler is free to chase cheap slots.
    let mut jobs = Vec::new();
    for i in 0..16u32 {
        let proc = i % procs;
        let lo = (i * 2) % (horizon - 12);
        jobs.push(Job::window(1.0, proc, lo, horizon));
    }
    let inst = Instance::new(procs, horizon, jobs);

    let schedule = Solver::new(&inst, &cost)
        .schedule_all()
        .expect("feasible: windows are wide");

    println!("\nchosen awake intervals:");
    for iv in &schedule.awake {
        println!(
            "  proc {} awake [{:>2}, {:>2})  cost {:>6.2}",
            iv.proc, iv.start, iv.end, iv.cost
        );
    }

    let naive = always_on_cost(&inst, &cost).expect("finite");
    println!("\n               greedy bill: {:>8.2}", schedule.total_cost);
    println!("  always-on baseline bill: {naive:>8.2}");
    println!(
        "                   savings: {:>7.1}%",
        100.0 * (1.0 - schedule.total_cost / naive)
    );
    assert!(
        schedule.total_cost < naive,
        "price-aware schedule must beat always-on"
    );
}

fn sparkline(xs: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    xs.iter()
        .map(|&x| {
            let t = if hi > lo { (x - lo) / (hi - lo) } else { 0.0 };
            BARS[((t * 7.0).round() as usize).min(7)]
        })
        .collect()
}
