//! Prize-collecting scenario: an overloaded cluster that cannot run every
//! job. Jobs carry values (priorities); we sweep the value target `Z` and
//! watch the cost/value trade-off of Theorems 2.3.1 and 2.3.3.
//!
//! Run with: `cargo run --example prize_collecting_cluster`

use power_scheduling::prelude::*;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let horizon = 10u32;
    let procs = 2u32;

    // 30 jobs contend for 20 slots — not everything fits. Values follow a
    // priority ladder: a few critical jobs, many cheap ones.
    let mut jobs = Vec::new();
    for i in 0..30 {
        let value = match i % 10 {
            0 => 50.0,
            1..=3 => 10.0,
            _ => 1.0,
        };
        let proc = rng.gen_range(0..procs);
        let lo = rng.gen_range(0..horizon - 2);
        let hi = rng.gen_range(lo + 1..=horizon);
        jobs.push(Job::window(value, proc, lo, hi));
    }
    let inst = Instance::new(procs, horizon, jobs);
    let total = inst.total_value();
    println!(
        "cluster: {} jobs, total value {total}, {} slots available",
        inst.num_jobs(),
        inst.num_slots()
    );

    let cost = AffineCost::new(3.0, 1.0);
    // One Solver for the whole sweep: the candidate family is enumerated and
    // priced once, then every target Z below reuses it.
    let solver = Solver::new(&inst, &cost);

    println!("\n  target Z | scheduled value | energy cost | jobs run");
    println!("  ---------+-----------------+-------------+---------");
    for frac in [0.25, 0.5, 0.75, 0.9] {
        let z = total * frac;
        match solver.prize_collecting_exact(z) {
            Ok(s) => println!(
                "  {z:>8.1} | {:>15.1} | {:>11.2} | {:>8}",
                s.scheduled_value, s.total_cost, s.scheduled_count
            ),
            Err(e) => println!("  {z:>8.1} | infeasible: {e}"),
        }
    }

    // The bicriteria variant trades a little value for guaranteed cost:
    let z = total * 0.9;
    let eps = 0.1;
    let s = solver
        .prize_collecting(z, eps)
        .expect("relaxed target reachable");
    println!(
        "\nbicriteria (Thm 2.3.1) at Z={z:.1}, ε={eps}: value {:.1} (≥ {:.1}), cost {:.2}",
        s.scheduled_value,
        (1.0 - eps) * z,
        s.total_cost
    );
    assert!(s.scheduled_value >= (1.0 - eps) * z - 1e-9);
}
