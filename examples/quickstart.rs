//! Quickstart: schedule a handful of jobs on two heterogeneous processors
//! and watch the algorithm trade restarts against idle-awake time.
//!
//! Run with: `cargo run --example quickstart`

use power_scheduling::prelude::*;

fn main() {
    // Two processors over a 12-slot horizon. Processor 0 is power-hungry but
    // cheap to wake; processor 1 sips power but has an expensive restart.
    let cost = PerProcessorAffine::new(vec![(1.0, 2.0), (6.0, 0.5)]);

    // Six unit jobs. Some are pinned to exact slots, some have flexible
    // windows, one may run on either processor (multi-interval, per-processor
    // slot lists — the generality the paper introduces).
    let jobs = vec![
        Job::unit(vec![SlotRef::new(0, 0)]),
        Job::window(1.0, 0, 2, 5),
        Job::window(1.0, 1, 0, 4),
        Job::window(1.0, 1, 6, 10),
        Job::unit(vec![SlotRef::new(0, 7), SlotRef::new(1, 7)]),
        Job::window(1.0, 1, 8, 12).add_window(0, 8, 12),
    ];
    let inst = Instance::new(2, 12, jobs);

    // One Solver owns the instance, the cost oracle, the candidate policy,
    // and the solve options; candidates are enumerated once and cached.
    let solver = Solver::new(&inst, &cost);
    println!(
        "instance: {} jobs, {} processors, horizon {}, {} candidate intervals",
        inst.num_jobs(),
        inst.num_processors,
        inst.horizon,
        solver.candidates().len()
    );

    let schedule = solver.schedule_all().expect("instance is feasible");

    println!("\nawake intervals (greedy picks, O(B log n) guarantee):");
    for iv in &schedule.awake {
        println!(
            "  processor {} awake [{:>2}, {:>2})  cost {:>6.2}",
            iv.proc, iv.start, iv.end, iv.cost
        );
    }
    println!("\njob assignments:");
    for (j, a) in schedule.assignments.iter().enumerate() {
        match a {
            Some(s) => println!("  job {j} -> processor {} @ t={}", s.proc, s.time),
            None => println!("  job {j} -> UNSCHEDULED"),
        }
    }
    println!("\ntotal energy cost: {:.2}", schedule.total_cost);

    // Replay the schedule slot by slot: the PowerTrace Display shows each
    // processor's machine states as run-length-encoded S/I/B (sleep, idle,
    // busy) runs with restart and utilization accounting.
    println!("\nmachine-state timeline:");
    print!(
        "{}",
        power_scheduling::scheduling::simulate::simulate(&inst, &schedule)
    );

    // Validation is available as a library call:
    let violations = power_scheduling::scheduling::model::validate_schedule(&inst, &schedule);
    assert!(violations.is_empty(), "schedule invalid: {violations:?}");
    println!("schedule validated: no collisions, all slots awake and allowed");
}
