//! Online hiring with a submodular team utility (the Chapter 3 secretary
//! setting): candidates arrive in random order, each decision is final, and
//! the team's worth is the *coverage* of skills — strongly diminishing
//! returns, so naive "take the k best individuals" overlaps badly.
//!
//! Run with: `cargo run --example online_hiring`

use power_scheduling::secretary::{offline_greedy, random_stream, submodular_secretary};
use power_scheduling::submodular::functions::CoverageFn;
use power_scheduling::submodular::{BitSet, SetFn};
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1960); // secretary problem vintage
    let n_candidates = 120;
    let n_skills = 50;
    let k = 8;

    // Each candidate knows a random subset of skills.
    let covers: Vec<Vec<u32>> = (0..n_candidates)
        .map(|_| {
            (0..n_skills as u32)
                .filter(|_| rng.gen_bool(0.08))
                .collect()
        })
        .collect();
    let f = CoverageFn::unweighted(n_skills, covers);

    // Offline reference: greedy with full knowledge (≥ (1−1/e)·OPT).
    let (_, offline) = offline_greedy(&f, k);
    println!("offline full-information greedy covers {offline} skills with k={k} hires");

    // Online: Algorithm 1 over many random arrival orders.
    let trials = 2000;
    let mut total = 0.0;
    let mut example_team: Vec<u32> = Vec::new();
    for t in 0..trials {
        let stream = random_stream(n_candidates, &mut rng);
        let hired = submodular_secretary(&f, &stream, k);
        let val = f.eval(&BitSet::from_iter(n_candidates, hired.iter().copied()));
        total += val;
        if t == 0 {
            example_team = hired;
        }
    }
    let avg = total / trials as f64;
    println!("online Algorithm 1 average coverage over {trials} random orders: {avg:.2}");
    println!(
        "empirical competitive ratio vs offline greedy: {:.3}",
        avg / offline
    );
    let bound = (1.0 - 1.0 / std::f64::consts::E) / (7.0 * std::f64::consts::E);
    println!("Theorem 3.2.5 guarantees at least {bound:.4} of f(R) in expectation");
    assert!(avg / offline >= bound, "ratio fell below the proven bound");

    println!("\nexample online team (first trial): {example_team:?}");
    let team_val = f.eval(&BitSet::from_iter(
        n_candidates,
        example_team.iter().copied(),
    ));
    println!("  covers {team_val} skills");
}
