//! Adversarial graph structures for the matching substrate: long alternating
//! chains (worst-case augmenting paths), complete bipartite blocks (maximum
//! rebinding pressure), and crown-like graphs where greedy matching without
//! augmentation loses half the jobs.

use bmatch::{hall_violator, hopcroft_karp, BipartiteGraph, GainScratch, MatchingOracle};

/// Chain graph: slot i ~ {job i, job i+1}; only a full cascade of rebindings
/// saturates everything when slots are added in the adversarial order.
fn chain(k: u32) -> BipartiteGraph {
    let mut e = Vec::new();
    for i in 0..k {
        e.push((i, i));
        if i + 1 < k {
            e.push((i, i + 1));
        }
    }
    BipartiteGraph::from_edges(k, k, &e)
}

#[test]
fn long_chain_reaches_perfect_matching_in_any_insertion_order() {
    let k = 200;
    let g = chain(k);
    // forward, backward, and interleaved insertion orders
    let orders: Vec<Vec<u32>> = vec![
        (0..k).collect(),
        (0..k).rev().collect(),
        (0..k).step_by(2).chain((1..k).step_by(2)).collect(),
    ];
    for order in orders {
        let mut o = MatchingOracle::new_cardinality(&g);
        for v in order {
            o.add_slot(v);
        }
        assert_eq!(o.total(), k as f64, "chain must end perfectly matched");
    }
}

#[test]
fn complete_bipartite_rebinding_pressure() {
    // K_{30,30}: every insertion augments; weighted values force specific
    // winners under contention.
    let n = 30u32;
    let mut e = Vec::new();
    for x in 0..n {
        for y in 0..n {
            e.push((x, y));
        }
    }
    let g = BipartiteGraph::from_edges(n, n, &e);
    let values: Vec<f64> = (0..n).map(|y| (y + 1) as f64).collect();
    let mut o = MatchingOracle::new(&g, values);
    // adding j slots must capture the j highest-value jobs
    for (added, x) in (0..n).enumerate() {
        o.add_slot(x);
        let expect: f64 = (0..=added as u32).map(|i| (n - i) as f64).sum();
        assert_eq!(o.total(), expect, "after {} slots", added + 1);
    }
}

#[test]
fn crown_graph_gain_evaluation_matches_hk() {
    // slots 0..k each adjacent to job 0 only; slot k..2k adjacent to all jobs:
    // gains of the flexible block must account for contention on job 0.
    let k = 8u32;
    let jobs = k;
    let mut e = Vec::new();
    for x in 0..k {
        e.push((x, 0));
    }
    for x in k..2 * k {
        for y in 0..jobs {
            e.push((x, y));
        }
    }
    let g = BipartiteGraph::from_edges(2 * k, jobs, &e);
    let mut o = MatchingOracle::new_cardinality(&g);
    // commit all the rigid slots: only one can be useful
    o.commit(&(0..k).collect::<Vec<_>>());
    assert_eq!(o.total(), 1.0);
    // probing the flexible block must report jobs-1 additional (job 0 taken)
    let mut scratch = GainScratch::new();
    let flexible: Vec<u32> = (k..2 * k).collect();
    assert_eq!(o.gain_of(&flexible, &mut scratch), (jobs - 1) as f64);
    o.commit(&flexible);
    let hk = hopcroft_karp(&g, |_| true);
    assert_eq!(o.total(), hk.size as f64);
}

#[test]
fn hall_violator_on_starved_crown() {
    // 3 rigid slots all adjacent to job 0 only; 4 jobs total, one flexible slot
    let e = vec![(0, 0), (1, 0), (2, 0), (3, 0), (3, 1)];
    let g = BipartiteGraph::from_edges(4, 4, &e);
    let mut o = MatchingOracle::new_cardinality(&g);
    o.commit(&[0, 1, 2, 3]);
    // jobs 2 and 3 isolated; violator from either names itself
    let v = hall_violator(&o).expect("unsaturated jobs exist");
    assert!(!v.is_empty());
    // every returned job really is part of a deficient set: the certificate's
    // neighborhood in S is smaller than the certificate
    let mut slots = std::collections::HashSet::new();
    for &y in &v {
        for &x in g.adj_y(y) {
            if o.is_allowed(x) {
                slots.insert(x);
            }
        }
    }
    assert!(slots.len() < v.len());
}

#[test]
fn alternating_path_length_stress() {
    // Deep chain with the adversarial insertion order; verify each increment
    // is still exactly 1 (single long augmenting path per insertion).
    let k = 500u32;
    let g = chain(k);
    let mut o = MatchingOracle::new_cardinality(&g);
    // insert in reverse: slot k-1 first. Each new slot i can only match job
    // i or i+1; matching job i+1 is taken by slot i+1 already, forcing
    // rebinding cascades toward the end of the chain.
    for v in (0..k).rev() {
        let gain = o.add_slot(v);
        assert_eq!(gain, 1.0, "insertion of slot {v} must gain exactly 1");
    }
    assert_eq!(o.total(), k as f64);
}
