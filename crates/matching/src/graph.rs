//! Compact bipartite graph representation.
//!
//! Vertices on the `X` side (slots) and `Y` side (jobs) are dense `u32`
//! indices. Adjacency is stored in CSR (compressed sparse row) form in both
//! directions so that alternating-path searches can traverse from either side
//! without hashing.

/// An immutable bipartite graph `G = (X ∪ Y, E)` in CSR form.
///
/// Construct with [`BipartiteGraphBuilder`] (streaming edge inserts) or
/// [`BipartiteGraph::from_edges`] (one-shot).
#[derive(Clone, Debug)]
pub struct BipartiteGraph {
    nx: u32,
    ny: u32,
    x_off: Vec<u32>,
    x_adj: Vec<u32>,
    y_off: Vec<u32>,
    y_adj: Vec<u32>,
}

impl BipartiteGraph {
    /// Builds a graph from an edge list of `(x, y)` pairs.
    ///
    /// Duplicate edges are tolerated (they only waste space; all algorithms
    /// in this crate are correct on multigraphs).
    ///
    /// # Panics
    /// Panics if any endpoint is out of range.
    pub fn from_edges(nx: u32, ny: u32, edges: &[(u32, u32)]) -> Self {
        let mut b = BipartiteGraphBuilder::new(nx, ny);
        for &(x, y) in edges {
            b.add_edge(x, y);
        }
        b.build()
    }

    /// Number of `X`-side (slot) vertices.
    #[inline]
    pub fn nx(&self) -> u32 {
        self.nx
    }

    /// Number of `Y`-side (job) vertices.
    #[inline]
    pub fn ny(&self) -> u32 {
        self.ny
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.x_adj.len()
    }

    /// Neighbors (jobs) of slot `x`.
    #[inline]
    pub fn adj_x(&self, x: u32) -> &[u32] {
        let lo = self.x_off[x as usize] as usize;
        let hi = self.x_off[x as usize + 1] as usize;
        &self.x_adj[lo..hi]
    }

    /// Neighbors (slots) of job `y`.
    #[inline]
    pub fn adj_y(&self, y: u32) -> &[u32] {
        let lo = self.y_off[y as usize] as usize;
        let hi = self.y_off[y as usize + 1] as usize;
        &self.y_adj[lo..hi]
    }

    /// Degree of slot `x`.
    #[inline]
    pub fn deg_x(&self, x: u32) -> usize {
        self.adj_x(x).len()
    }

    /// Degree of job `y`.
    #[inline]
    pub fn deg_y(&self, y: u32) -> usize {
        self.adj_y(y).len()
    }

    /// Iterates over all edges as `(x, y)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.nx).flat_map(move |x| self.adj_x(x).iter().map(move |&y| (x, y)))
    }
}

/// Streaming builder for [`BipartiteGraph`].
#[derive(Clone, Debug)]
pub struct BipartiteGraphBuilder {
    nx: u32,
    ny: u32,
    edges: Vec<(u32, u32)>,
}

impl BipartiteGraphBuilder {
    /// Creates a builder for a graph with `nx` slots and `ny` jobs.
    pub fn new(nx: u32, ny: u32) -> Self {
        Self {
            nx,
            ny,
            edges: Vec::new(),
        }
    }

    /// Adds the edge `(x, y)`.
    ///
    /// # Panics
    /// Panics if `x >= nx` or `y >= ny`.
    pub fn add_edge(&mut self, x: u32, y: u32) {
        assert!(x < self.nx, "slot index {x} out of range ({})", self.nx);
        assert!(y < self.ny, "job index {y} out of range ({})", self.ny);
        self.edges.push((x, y));
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into CSR form. O(V + E), no sorting.
    pub fn build(self) -> BipartiteGraph {
        let nx = self.nx as usize;
        let ny = self.ny as usize;
        let m = self.edges.len();

        let mut x_off = vec![0u32; nx + 1];
        let mut y_off = vec![0u32; ny + 1];
        for &(x, y) in &self.edges {
            x_off[x as usize + 1] += 1;
            y_off[y as usize + 1] += 1;
        }
        for i in 0..nx {
            x_off[i + 1] += x_off[i];
        }
        for i in 0..ny {
            y_off[i + 1] += y_off[i];
        }

        let mut x_adj = vec![0u32; m];
        let mut y_adj = vec![0u32; m];
        let mut x_cur = x_off.clone();
        let mut y_cur = y_off.clone();
        for &(x, y) in &self.edges {
            x_adj[x_cur[x as usize] as usize] = y;
            x_cur[x as usize] += 1;
            y_adj[y_cur[y as usize] as usize] = x;
            y_cur[y as usize] += 1;
        }

        BipartiteGraph {
            nx: self.nx,
            ny: self.ny,
            x_off,
            x_adj,
            y_off,
            y_adj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::from_edges(0, 0, &[]);
        assert_eq!(g.nx(), 0);
        assert_eq!(g.ny(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn no_edges_nonempty_sides() {
        let g = BipartiteGraph::from_edges(3, 2, &[]);
        assert_eq!(g.deg_x(0), 0);
        assert_eq!(g.deg_y(1), 0);
    }

    #[test]
    fn csr_roundtrip() {
        let edges = vec![(0, 1), (0, 0), (2, 1), (1, 0)];
        let g = BipartiteGraph::from_edges(3, 2, &edges);
        assert_eq!(g.num_edges(), 4);
        let mut got: Vec<(u32, u32)> = g.edges().collect();
        got.sort_unstable();
        let mut want = edges.clone();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn adjacency_symmetry() {
        let edges = vec![(0, 0), (0, 1), (1, 1), (2, 0), (2, 1)];
        let g = BipartiteGraph::from_edges(3, 2, &edges);
        // every x in adj_y(y) must have y in adj_x(x)
        for y in 0..g.ny() {
            for &x in g.adj_y(y) {
                assert!(g.adj_x(x).contains(&y), "asymmetric edge ({x},{y})");
            }
        }
        for x in 0..g.nx() {
            for &y in g.adj_x(x) {
                assert!(g.adj_y(y).contains(&x));
            }
        }
    }

    #[test]
    fn duplicate_edges_kept() {
        let g = BipartiteGraph::from_edges(1, 1, &[(0, 0), (0, 0)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.deg_x(0), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = BipartiteGraphBuilder::new(2, 2);
        b.add_edge(2, 0);
    }

    #[test]
    fn degrees() {
        let g = BipartiteGraph::from_edges(2, 3, &[(0, 0), (0, 1), (0, 2), (1, 2)]);
        assert_eq!(g.deg_x(0), 3);
        assert_eq!(g.deg_x(1), 1);
        assert_eq!(g.deg_y(2), 2);
        assert_eq!(g.deg_y(0), 1);
    }
}
