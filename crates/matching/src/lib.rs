//! Bipartite matching substrate for submodular power scheduling.
//!
//! The scheduling algorithms of Zadimoghaddam (2010) reduce power-minimizing
//! scheduling to maximizing a *matching rank function* over a bipartite graph
//! `G = (X ∪ Y, E)`, where `X` holds time-slot/processor pairs and `Y` holds
//! jobs. For a subset `S ⊆ X`:
//!
//! * the **cardinality rank** `F(S)` is the maximum number of jobs matchable
//!   using only slots in `S` (Lemma 2.2.2 of the paper shows `F` is monotone
//!   submodular);
//! * the **weighted rank** `F(S)` is the maximum total value of jobs matchable
//!   using only slots in `S`, where each job carries a positive value
//!   (Lemma 2.3.2 shows this is also monotone submodular).
//!
//! This crate provides:
//!
//! * [`BipartiteGraph`] — a compact CSR representation with both-direction
//!   adjacency;
//! * [`hopcroft_karp()`] — an O(E·√V) maximum-cardinality matching used as
//!   an independent test oracle and for one-shot computations;
//! * [`MatchingOracle`] — the workhorse *incremental* oracle that maintains a
//!   maximum-weight matching under slot insertions, supports exact marginal
//!   gain queries `F(S ∪ T) − F(S)` without mutation (via an epoch-versioned
//!   scratch overlay, so gains parallelize with one scratch per thread), and
//!   transactional commit;
//! * [`hall`] — Hall-violator extraction, an infeasibility certificate naming
//!   a set of jobs that provably cannot all be scheduled.
//!
//! The key structural fact exploited throughout (it is exactly what the
//! paper's submodularity proofs expose): adding a single slot `v` to `S`
//! changes `F` by either zero or the value of a single job, realized by the
//! best alternating path starting at `v` and ending at an unsaturated job.

pub mod graph;
pub mod hall;
pub mod hopcroft_karp;
pub mod oracle;

pub use graph::{BipartiteGraph, BipartiteGraphBuilder};
pub use hall::hall_violator;
pub use hopcroft_karp::hopcroft_karp;
pub use oracle::{GainScratch, MatchingOracle, NONE};
