//! Infeasibility certificates via Hall's theorem.
//!
//! If the schedule-all greedy stalls, some jobs cannot be matched into the
//! currently allowed slots. By Hall's theorem there is then a *deficient* job
//! set `J` with `|N(J) ∩ S| < |J|`. This module extracts such a certificate
//! from the oracle's maximum matching: take any unsaturated job, explore
//! alternating paths (job → slot via any edge into `S`, slot → job via the
//! matching edge); the set of jobs reached is deficient.

use crate::graph::BipartiteGraph;
use crate::oracle::{MatchingOracle, NONE};

/// Returns a Hall violator for the oracle's current slot set `S`: a set of
/// jobs `J` such that the slots of `S` adjacent to `J` number fewer than
/// `|J|`, proving not all jobs in `J` can be simultaneously scheduled.
///
/// Returns `None` when every job is saturated (no violator exists).
pub fn hall_violator(oracle: &MatchingOracle<'_>) -> Option<Vec<u32>> {
    let g: &BipartiteGraph = oracle.graph();
    let start = (0..g.ny()).find(|&y| oracle.matched_slot(y).is_none())?;

    let mut in_j = vec![false; g.ny() as usize];
    let mut slot_seen = vec![false; g.nx() as usize];
    let mut queue = vec![start];
    in_j[start as usize] = true;
    let mut head = 0;
    while head < queue.len() {
        let y = queue[head];
        head += 1;
        for &x in g.adj_y(y) {
            if !oracle.is_allowed(x) || slot_seen[x as usize] {
                continue;
            }
            slot_seen[x as usize] = true;
            let my = oracle
                .matched_job(x)
                .expect("alternating reachability from an unsaturated job visits only matched slots in a maximum matching");
            debug_assert_ne!(my, NONE);
            if !in_j[my as usize] {
                in_j[my as usize] = true;
                queue.push(my);
            }
        }
    }
    Some(queue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BipartiteGraph;
    use crate::oracle::MatchingOracle;

    /// |N(J) ∩ S| computed directly.
    fn neighborhood_size(g: &BipartiteGraph, o: &MatchingOracle<'_>, jobs: &[u32]) -> usize {
        let mut seen = vec![false; g.nx() as usize];
        let mut count = 0;
        for &y in jobs {
            for &x in g.adj_y(y) {
                if o.is_allowed(x) && !seen[x as usize] {
                    seen[x as usize] = true;
                    count += 1;
                }
            }
        }
        count
    }

    #[test]
    fn no_violator_when_all_matched() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 1)]);
        let mut o = MatchingOracle::new_cardinality(&g);
        o.commit(&[0, 1]);
        assert!(hall_violator(&o).is_none());
    }

    #[test]
    fn two_jobs_one_slot() {
        let g = BipartiteGraph::from_edges(1, 2, &[(0, 0), (0, 1)]);
        let mut o = MatchingOracle::new_cardinality(&g);
        o.add_slot(0);
        let j = hall_violator(&o).expect("one job must be unsaturated");
        assert_eq!(j.len(), 2, "violator must contain both jobs");
        assert!(neighborhood_size(&g, &o, &j) < j.len());
    }

    #[test]
    fn isolated_job_is_its_own_violator() {
        // job 1 has no edges at all
        let g = BipartiteGraph::from_edges(1, 2, &[(0, 0)]);
        let mut o = MatchingOracle::new_cardinality(&g);
        o.add_slot(0);
        let j = hall_violator(&o).unwrap();
        assert_eq!(j, vec![1]);
        assert_eq!(neighborhood_size(&g, &o, &j), 0);
    }

    #[test]
    fn violator_is_deficient_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let mut found_any = false;
        for _ in 0..100 {
            let nx = rng.gen_range(1..=6u32);
            let ny = rng.gen_range(1..=8u32);
            let mut e = Vec::new();
            for x in 0..nx {
                for y in 0..ny {
                    if rng.gen_bool(0.3) {
                        e.push((x, y));
                    }
                }
            }
            let g = BipartiteGraph::from_edges(nx, ny, &e);
            let mut o = MatchingOracle::new_cardinality(&g);
            let slots: Vec<u32> = (0..nx).filter(|_| rng.gen_bool(0.6)).collect();
            o.commit(&slots);
            if let Some(j) = hall_violator(&o) {
                found_any = true;
                assert!(
                    neighborhood_size(&g, &o, &j) < j.len(),
                    "certificate is not deficient"
                );
            } else {
                assert_eq!(o.matched_count(), ny as usize);
            }
        }
        assert!(found_any, "test never exercised the violator path");
    }
}
