//! Incremental (vertex-weighted) matching-rank oracle.
//!
//! [`MatchingOracle`] maintains, for a growing slot set `S ⊆ X`, a
//! maximum-weight matching that saturates only slots in `S`, where job `y`
//! contributes `values[y] > 0` when saturated. With all values equal to 1 the
//! oracle computes the cardinality rank of Lemma 2.2.2; with job values it
//! computes the weighted rank of Lemma 2.3.2. Both are monotone submodular.
//!
//! # Exact single-slot increments
//!
//! The structural fact proved in the paper (and re-verified by this crate's
//! property tests): if `M` is a maximum-weight matching for `S`, then a
//! maximum-weight matching for `S ∪ {v}` is obtained from `M` by flipping one
//! `M`-alternating path that starts at `v` and ends at the highest-value
//! unsaturated job reachable from `v`; the increase `F(S∪{v}) − F(S)` equals
//! that job's value (or 0 if no unsaturated job is reachable). A single BFS
//! over the alternating structure therefore performs an exact increment in
//! `O(E)`.
//!
//! # Marginal gains without mutation
//!
//! Greedy algorithms need `F(S ∪ T) − F(S)` for many candidate slot sets `T`
//! before committing one. [`MatchingOracle::gain_of`] evaluates this exactly
//! on an epoch-versioned overlay ([`GainScratch`]) without touching the
//! committed state, so candidate evaluation takes `&self` and parallelizes
//! with one scratch per thread.

use crate::graph::BipartiteGraph;

/// Sentinel index meaning "unmatched" / "absent".
pub const NONE: u32 = u32::MAX;

/// Shared BFS workspace for alternating-path searches.
#[derive(Clone, Debug, Default)]
struct BfsScratch {
    epoch: u32,
    /// Per-job visitation tag (`== epoch` means visited in current search).
    job_seen: Vec<u32>,
    /// Per-job: the slot from which BFS first reached it.
    prev_slot: Vec<u32>,
    /// Slot frontier.
    queue: Vec<u32>,
}

impl BfsScratch {
    fn ensure(&mut self, nx: usize, ny: usize) {
        if self.job_seen.len() != ny {
            self.job_seen = vec![0; ny];
            self.prev_slot = vec![NONE; ny];
            self.epoch = 0;
        }
        self.queue.reserve(nx.saturating_sub(self.queue.capacity()));
    }

    fn next_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.job_seen.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

/// Read/write access to a matching state; lets the committed path and the
/// overlay path share one augmentation routine.
trait MatchView {
    fn mx(&self, x: u32) -> u32;
    fn my(&self, y: u32) -> u32;
    fn set_mx(&mut self, x: u32, y: u32);
    fn set_my(&mut self, y: u32, x: u32);
}

struct DirectView<'a> {
    match_x: &'a mut [u32],
    match_y: &'a mut [u32],
}

impl MatchView for DirectView<'_> {
    #[inline]
    fn mx(&self, x: u32) -> u32 {
        self.match_x[x as usize]
    }
    #[inline]
    fn my(&self, y: u32) -> u32 {
        self.match_y[y as usize]
    }
    #[inline]
    fn set_mx(&mut self, x: u32, y: u32) {
        self.match_x[x as usize] = y;
    }
    #[inline]
    fn set_my(&mut self, y: u32, x: u32) {
        self.match_y[y as usize] = x;
    }
}

/// Epoch-versioned copy-on-write overlay over the committed matching.
///
/// Reads fall through to the committed arrays unless the entry was written in
/// the current evaluation epoch; writes never touch the committed arrays.
/// Reusing one `GainScratch` across evaluations costs O(touched entries) per
/// evaluation instead of O(V). Duplicate slots within one evaluation are
/// detected with the same epoch trick (`added_ver`), so an evaluation costs
/// O(|T|) bookkeeping instead of the O(|T|²) of a linear `contains` scan.
#[derive(Clone, Debug, Default)]
pub struct GainScratch {
    ep: u32,
    mx_ov: Vec<u32>,
    mx_ver: Vec<u32>,
    my_ov: Vec<u32>,
    my_ver: Vec<u32>,
    bfs: BfsScratch,
    /// Per-slot tag: `== ep` when the slot was already added in this epoch.
    added_ver: Vec<u32>,
}

impl GainScratch {
    /// Creates an empty scratch; it sizes itself lazily to the oracle it is
    /// first used with.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, nx: usize, ny: usize) {
        if self.mx_ver.len() != nx {
            self.mx_ov = vec![NONE; nx];
            self.mx_ver = vec![0; nx];
            self.added_ver = vec![0; nx];
            self.ep = 0;
        }
        if self.my_ver.len() != ny {
            self.my_ov = vec![NONE; ny];
            self.my_ver = vec![0; ny];
            self.ep = 0;
        }
        self.bfs.ensure(nx, ny);
    }

    fn next_epoch(&mut self) -> u32 {
        if self.ep == u32::MAX {
            self.mx_ver.fill(0);
            self.my_ver.fill(0);
            self.added_ver.fill(0);
            self.ep = 0;
        }
        self.ep += 1;
        self.ep
    }
}

struct OverlayView<'a> {
    base_x: &'a [u32],
    base_y: &'a [u32],
    ep: u32,
    mx_ov: &'a mut [u32],
    mx_ver: &'a mut [u32],
    my_ov: &'a mut [u32],
    my_ver: &'a mut [u32],
}

impl MatchView for OverlayView<'_> {
    #[inline]
    fn mx(&self, x: u32) -> u32 {
        if self.mx_ver[x as usize] == self.ep {
            self.mx_ov[x as usize]
        } else {
            self.base_x[x as usize]
        }
    }
    #[inline]
    fn my(&self, y: u32) -> u32 {
        if self.my_ver[y as usize] == self.ep {
            self.my_ov[y as usize]
        } else {
            self.base_y[y as usize]
        }
    }
    #[inline]
    fn set_mx(&mut self, x: u32, y: u32) {
        self.mx_ov[x as usize] = y;
        self.mx_ver[x as usize] = self.ep;
    }
    #[inline]
    fn set_my(&mut self, y: u32, x: u32) {
        self.my_ov[y as usize] = x;
        self.my_ver[y as usize] = self.ep;
    }
}

/// Incremental maximum-weight matching-rank oracle over a fixed bipartite
/// graph; see the module docs for the invariants it maintains.
#[derive(Clone, Debug)]
pub struct MatchingOracle<'g> {
    g: &'g BipartiteGraph,
    values: Vec<f64>,
    allowed: Vec<bool>,
    /// Jobs removed by [`MatchingOracle::retract`]; they no longer
    /// participate in augmentations or gain evaluations.
    retired: Vec<bool>,
    match_x: Vec<u32>,
    match_y: Vec<u32>,
    total: f64,
    n_allowed: usize,
    revision: u64,
    // Committed-operation tallies for telemetry: plain fields (no atomics,
    // no dependency on any metrics crate) that callers read out once per
    // solve via [`MatchingOracle::op_counts`].
    augment_ops: u64,
    retract_ops: u64,
    bfs: BfsScratch,
}

impl<'g> MatchingOracle<'g> {
    /// Creates an oracle computing the *weighted* matching rank with the given
    /// positive per-job values. `S` starts empty (so `F(∅) = 0`).
    ///
    /// # Panics
    /// Panics if `values.len() != g.ny()` or any value is not strictly
    /// positive and finite.
    pub fn new(g: &'g BipartiteGraph, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), g.ny() as usize, "one value per job required");
        for (y, &v) in values.iter().enumerate() {
            assert!(
                v > 0.0 && v.is_finite(),
                "job {y} has non-positive or non-finite value {v}"
            );
        }
        let mut bfs = BfsScratch::default();
        bfs.ensure(g.nx() as usize, g.ny() as usize);
        Self {
            g,
            values,
            allowed: vec![false; g.nx() as usize],
            retired: vec![false; g.ny() as usize],
            match_x: vec![NONE; g.nx() as usize],
            match_y: vec![NONE; g.ny() as usize],
            total: 0.0,
            n_allowed: 0,
            revision: 0,
            augment_ops: 0,
            retract_ops: 0,
            bfs,
        }
    }

    /// Creates an oracle computing the *cardinality* matching rank (all job
    /// values 1).
    pub fn new_cardinality(g: &'g BipartiteGraph) -> Self {
        Self::new(g, vec![1.0; g.ny() as usize])
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &'g BipartiteGraph {
        self.g
    }

    /// Current value `F(S)`.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Counter bumped every time the committed matching actually mutates
    /// (an [`MatchingOracle::add_slot`] that flips an alternating path, or a
    /// [`MatchingOracle::reset`]).
    ///
    /// Zero-gain slot additions leave it unchanged **and leave every exact
    /// marginal gain unchanged**: for `S' = S ∪ {v}` with `F(S') = F(S)`,
    /// monotonicity gives `F(S'∪T) ≥ F(S∪T)` while submodularity gives
    /// `F(S'∪T) − F(S') ≤ F(S∪T) − F(S)`; together they squeeze
    /// `F(S'∪T) − F(S') = F(S∪T) − F(S)` exactly. Callers can therefore
    /// memoize [`MatchingOracle::gain_of`] results keyed on this revision.
    #[inline]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Per-job values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Is slot `x` currently in `S`?
    #[inline]
    pub fn is_allowed(&self, x: u32) -> bool {
        self.allowed[x as usize]
    }

    /// `|S|`.
    #[inline]
    pub fn num_allowed(&self) -> usize {
        self.n_allowed
    }

    /// The job matched to slot `x`, if any.
    #[inline]
    pub fn matched_job(&self, x: u32) -> Option<u32> {
        let y = self.match_x[x as usize];
        (y != NONE).then_some(y)
    }

    /// The slot matched to job `y`, if any.
    #[inline]
    pub fn matched_slot(&self, y: u32) -> Option<u32> {
        let x = self.match_y[y as usize];
        (x != NONE).then_some(x)
    }

    /// Number of saturated jobs.
    pub fn matched_count(&self) -> usize {
        self.match_y.iter().filter(|&&x| x != NONE).count()
    }

    /// Iterates over the current matching as `(slot, job)` pairs.
    pub fn matching(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.match_x
            .iter()
            .enumerate()
            .filter(|(_, &y)| y != NONE)
            .map(|(x, &y)| (x as u32, y))
    }

    /// Adds slot `v` to `S` and returns the exact increase `F(S∪{v}) − F(S)`.
    /// Adding an already-allowed slot is a no-op returning 0.
    pub fn add_slot(&mut self, v: u32) -> f64 {
        if self.allowed[v as usize] {
            return 0.0;
        }
        self.allowed[v as usize] = true;
        self.n_allowed += 1;
        self.augment_ops += 1;
        let mut view = DirectView {
            match_x: &mut self.match_x,
            match_y: &mut self.match_y,
        };
        let gain = best_augment(
            self.g,
            v,
            &mut view,
            &mut self.bfs,
            &self.values,
            &self.retired,
        );
        if gain > 0.0 {
            self.revision += 1;
        }
        self.total += gain;
        gain
    }

    /// Adds every slot in `slots` to `S`; returns the total exact increase.
    pub fn commit(&mut self, slots: &[u32]) -> f64 {
        let mut gain = 0.0;
        for &v in slots {
            gain += self.add_slot(v);
        }
        gain
    }

    /// Retires job `y` — the delta operation for a job leaving the instance.
    ///
    /// The job is removed from the committed matching (if saturated) and
    /// excluded from every future augmentation and gain evaluation. The slot
    /// it occupied is re-augmented locally: a single alternating-path search
    /// from the freed slot restores a maximum-weight matching over the
    /// surviving jobs, because the only new source of augmenting paths after
    /// deleting one matched pair is that freed slot (every other free slot
    /// already had no augmenting path, and the retired job cannot terminate
    /// one). Returns the exact change `F_after − F_before` (always ≤ 0).
    ///
    /// Retiring an already-retired job is a no-op returning 0. Any retract of
    /// a live job bumps [`MatchingOracle::revision`] — even when the job was
    /// unsaturated, since its departure can still lower future marginal
    /// gains.
    pub fn retract(&mut self, y: u32) -> f64 {
        if self.retired[y as usize] {
            return 0.0;
        }
        self.retired[y as usize] = true;
        self.revision += 1;
        self.retract_ops += 1;
        let x = self.match_y[y as usize];
        if x == NONE {
            return 0.0;
        }
        self.match_y[y as usize] = NONE;
        self.match_x[x as usize] = NONE;
        let lost = self.values[y as usize];
        self.total -= lost;
        let mut view = DirectView {
            match_x: &mut self.match_x,
            match_y: &mut self.match_y,
        };
        let regained = best_augment(
            self.g,
            x,
            &mut view,
            &mut self.bfs,
            &self.values,
            &self.retired,
        );
        self.total += regained;
        regained - lost
    }

    /// Lifetime `(augment, retract)` committed-operation counts: augmenting
    /// searches run by [`MatchingOracle::add_slot`] and live-job retracts
    /// run by [`MatchingOracle::retract`]. Speculative gain evaluations are
    /// not counted. Telemetry layers read this once per solve.
    #[inline]
    pub fn op_counts(&self) -> (u64, u64) {
        (self.augment_ops, self.retract_ops)
    }

    /// Has job `y` been retired by [`MatchingOracle::retract`]?
    #[inline]
    pub fn is_retired(&self, y: u32) -> bool {
        self.retired[y as usize]
    }

    /// Evaluates `F(S ∪ T) − F(S)` exactly for `T = slots`, *without*
    /// modifying the committed state. Duplicate and already-allowed slots in
    /// `T` are ignored. Takes `&self`: safe to call concurrently with one
    /// [`GainScratch`] per thread.
    pub fn gain_of(&self, slots: &[u32], scratch: &mut GainScratch) -> f64 {
        self.overlay_scan(slots, scratch, |_, _| {})
    }

    /// Evaluates `F(S ∪ Pₖ) − F(S)` for **every prefix** `Pₖ` of `slots` in
    /// one overlay pass, pushing the cumulative gain after each position into
    /// `out` (so `out[k]` is the exact gain of the first `k + 1` slots).
    ///
    /// This is the batch form of [`MatchingOracle::gain_of`] for nested
    /// candidate families (awake intervals sharing a start): evaluating all
    /// `L` prefixes individually costs `O(L²)` slot augmentations, one scan
    /// costs `O(L)`. Every emitted value is bit-identical to the
    /// corresponding `gain_of` call, because the overlay after `k` slots is
    /// exactly the state `gain_of(&slots[..=k])` would have reached.
    pub fn gain_prefixes(&self, slots: &[u32], scratch: &mut GainScratch, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(slots.len());
        self.overlay_scan(slots, scratch, |_, cum| out.push(cum));
    }

    /// Shared overlay walk: adds `slots` one by one to a copy-on-write view,
    /// calling `emit(position, cumulative_gain)` after each position.
    /// Returns the final cumulative gain.
    fn overlay_scan(
        &self,
        slots: &[u32],
        scratch: &mut GainScratch,
        mut emit: impl FnMut(usize, f64),
    ) -> f64 {
        let nx = self.g.nx() as usize;
        let ny = self.g.ny() as usize;
        scratch.ensure(nx, ny);
        let ep = scratch.next_epoch();
        let mut gain = 0.0;
        for (k, &v) in slots.iter().enumerate() {
            if !self.allowed[v as usize] && scratch.added_ver[v as usize] != ep {
                scratch.added_ver[v as usize] = ep;
                let mut view = OverlayView {
                    base_x: &self.match_x,
                    base_y: &self.match_y,
                    ep,
                    mx_ov: &mut scratch.mx_ov,
                    mx_ver: &mut scratch.mx_ver,
                    my_ov: &mut scratch.my_ov,
                    my_ver: &mut scratch.my_ver,
                };
                gain += best_augment(
                    self.g,
                    v,
                    &mut view,
                    &mut scratch.bfs,
                    &self.values,
                    &self.retired,
                );
            }
            emit(k, gain);
        }
        gain
    }

    /// Clears `S` back to the empty set and un-retires every job.
    pub fn reset(&mut self) {
        self.allowed.fill(false);
        self.retired.fill(false);
        self.match_x.fill(NONE);
        self.match_y.fill(NONE);
        self.total = 0.0;
        self.n_allowed = 0;
        self.revision += 1;
    }
}

/// Finds the maximum-value unsaturated job reachable from the newly-allowed,
/// unmatched slot `v` by an alternating path, flips that path, and returns the
/// gained value (0 if none reachable). Ties broken toward the smallest job
/// index for determinism. Retired jobs are invisible: never matched (they are
/// unmatched by construction) and never chosen as the augmenting endpoint.
fn best_augment(
    g: &BipartiteGraph,
    v: u32,
    view: &mut impl MatchView,
    bfs: &mut BfsScratch,
    values: &[f64],
    retired: &[bool],
) -> f64 {
    debug_assert_eq!(view.mx(v), NONE, "newly added slot must be unmatched");
    let ep = bfs.next_epoch();
    bfs.queue.clear();
    bfs.queue.push(v);
    let mut best_y = NONE;
    let mut best_val = 0.0f64;

    let mut head = 0;
    while head < bfs.queue.len() {
        let x = bfs.queue[head];
        head += 1;
        for &y in g.adj_x(x) {
            if retired[y as usize] || bfs.job_seen[y as usize] == ep {
                continue;
            }
            bfs.job_seen[y as usize] = ep;
            bfs.prev_slot[y as usize] = x;
            let m = view.my(y);
            if m == NONE {
                let val = values[y as usize];
                if val > best_val || (val == best_val && best_y != NONE && y < best_y) {
                    best_val = val;
                    best_y = y;
                }
            } else {
                // The matched partner slot is explored next; it is enqueued at
                // most once because each slot has a unique matched job.
                bfs.queue.push(m);
            }
        }
    }

    if best_y == NONE {
        return 0.0;
    }

    // Flip the alternating path from best_y back to v via parent pointers.
    let mut y = best_y;
    loop {
        let s = bfs.prev_slot[y as usize];
        let prev_job = view.mx(s);
        view.set_my(y, s);
        view.set_mx(s, y);
        if prev_job == NONE {
            debug_assert_eq!(s, v);
            break;
        }
        y = prev_job;
    }
    best_val
}

/// Reference implementation of the weighted matching rank: greedy over jobs
/// in decreasing value order with Kuhn-style augmentation, restricted to
/// `allowed` slots. Correct because job sets matchable into `S` form a
/// transversal matroid and greedy maximizes weight over matroids.
///
/// Exponential in nothing, but O(ny · E); intended for tests and validation.
pub fn weighted_rank_reference(
    g: &BipartiteGraph,
    values: &[f64],
    allowed: impl Fn(u32) -> bool,
) -> f64 {
    let mut order: Vec<u32> = (0..g.ny()).collect();
    order.sort_by(|&a, &b| {
        values[b as usize]
            .partial_cmp(&values[a as usize])
            .unwrap()
            .then(a.cmp(&b))
    });
    let mut match_x = vec![NONE; g.nx() as usize];
    let mut match_y = vec![NONE; g.ny() as usize];
    let mut total = 0.0;
    let mut seen = vec![false; g.nx() as usize];

    fn try_augment(
        g: &BipartiteGraph,
        y: u32,
        allowed: &impl Fn(u32) -> bool,
        match_x: &mut [u32],
        match_y: &mut [u32],
        seen: &mut [bool],
    ) -> bool {
        for &x in g.adj_y(y) {
            if !allowed(x) || seen[x as usize] {
                continue;
            }
            seen[x as usize] = true;
            let occupant = match_x[x as usize];
            if occupant == NONE || try_augment(g, occupant, allowed, match_x, match_y, seen) {
                match_x[x as usize] = y;
                match_y[y as usize] = x;
                return true;
            }
        }
        false
    }

    for y in order {
        seen.fill(false);
        if try_augment(g, y, &allowed, &mut match_x, &mut match_y, &mut seen) {
            total += values[y as usize];
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopcroft_karp::hopcroft_karp;
    use rand::{Rng, SeedableRng};

    fn random_graph(rng: &mut impl Rng, nx: u32, ny: u32, p: f64) -> BipartiteGraph {
        let mut e = Vec::new();
        for x in 0..nx {
            for y in 0..ny {
                if rng.gen_bool(p) {
                    e.push((x, y));
                }
            }
        }
        BipartiteGraph::from_edges(nx, ny, &e)
    }

    #[test]
    fn empty_set_has_zero_rank() {
        let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (1, 1)]);
        let o = MatchingOracle::new_cardinality(&g);
        assert_eq!(o.total(), 0.0);
        assert_eq!(o.num_allowed(), 0);
    }

    #[test]
    fn single_slot_single_job() {
        let g = BipartiteGraph::from_edges(1, 1, &[(0, 0)]);
        let mut o = MatchingOracle::new_cardinality(&g);
        assert_eq!(o.add_slot(0), 1.0);
        assert_eq!(o.total(), 1.0);
        assert_eq!(o.matched_job(0), Some(0));
        assert_eq!(o.matched_slot(0), Some(0));
        // idempotent
        assert_eq!(o.add_slot(0), 0.0);
        assert_eq!(o.total(), 1.0);
    }

    #[test]
    fn rebinding_through_alternating_path() {
        // slots {0,1}, jobs {0,1}; edges: (0,0),(0,1),(1,0).
        // Add slot 0: matches some job. Add slot 1: must reach total 2 via
        // possible rebinding.
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]);
        let mut o = MatchingOracle::new_cardinality(&g);
        assert_eq!(o.add_slot(0), 1.0);
        assert_eq!(o.add_slot(1), 1.0);
        assert_eq!(o.total(), 2.0);
    }

    #[test]
    fn weighted_prefers_high_value_job() {
        // one slot, two jobs with values 1 and 10
        let g = BipartiteGraph::from_edges(1, 2, &[(0, 0), (0, 1)]);
        let mut o = MatchingOracle::new(&g, vec![1.0, 10.0]);
        assert_eq!(o.add_slot(0), 10.0);
        assert_eq!(o.matched_job(0), Some(1));
    }

    #[test]
    fn weighted_rebind_releases_low_value() {
        // slot 0 adj {job0(v=5), job1(v=3)}; slot 1 adj {job0}.
        // add slot 0 -> picks job0 (5). add slot 1 -> rebind job0 to slot 1,
        // slot 0 takes job1: gain 3.
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]);
        let mut o = MatchingOracle::new(&g, vec![5.0, 3.0]);
        assert_eq!(o.add_slot(0), 5.0);
        assert_eq!(o.add_slot(1), 3.0);
        assert_eq!(o.total(), 8.0);
    }

    #[test]
    fn cardinality_matches_hopcroft_karp_incrementally() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let nx = rng.gen_range(1..=12u32);
            let ny = rng.gen_range(1..=10u32);
            let g = random_graph(&mut rng, nx, ny, 0.3);
            let mut o = MatchingOracle::new_cardinality(&g);
            let mut order: Vec<u32> = (0..nx).collect();
            // random insertion order
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut inserted = vec![false; nx as usize];
            for &v in &order {
                o.add_slot(v);
                inserted[v as usize] = true;
                let hk = hopcroft_karp(&g, |x| inserted[x as usize]);
                assert_eq!(
                    o.total(),
                    hk.size as f64,
                    "oracle vs HK mismatch after inserting {v}"
                );
            }
        }
    }

    #[test]
    fn weighted_matches_reference_incrementally() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for _ in 0..50 {
            let nx = rng.gen_range(1..=10u32);
            let ny = rng.gen_range(1..=8u32);
            let g = random_graph(&mut rng, nx, ny, 0.35);
            let values: Vec<f64> = (0..ny).map(|_| rng.gen_range(1..=20) as f64).collect();
            let mut o = MatchingOracle::new(&g, values.clone());
            let mut inserted = vec![false; nx as usize];
            for v in 0..nx {
                o.add_slot(v);
                inserted[v as usize] = true;
                let want = weighted_rank_reference(&g, &values, |x| inserted[x as usize]);
                assert_eq!(o.total(), want, "weighted oracle mismatch at slot {v}");
            }
        }
    }

    #[test]
    fn gain_of_is_pure_and_matches_commit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..40 {
            let nx = rng.gen_range(2..=12u32);
            let ny = rng.gen_range(1..=8u32);
            let g = random_graph(&mut rng, nx, ny, 0.3);
            let values: Vec<f64> = (0..ny).map(|_| rng.gen_range(1..=9) as f64).collect();
            let mut o = MatchingOracle::new(&g, values);
            let mut scratch = GainScratch::new();
            // commit a random prefix
            for v in 0..nx / 2 {
                o.add_slot(v);
            }
            let before = o.total();
            // candidate: random slot subset
            let cand: Vec<u32> = (0..nx).filter(|_| rng.gen_bool(0.4)).collect();
            let g1 = o.gain_of(&cand, &mut scratch);
            let g2 = o.gain_of(&cand, &mut scratch);
            assert_eq!(g1, g2, "gain_of must be deterministic and pure");
            assert_eq!(o.total(), before, "gain_of must not mutate the oracle");
            let committed = o.commit(&cand);
            assert_eq!(g1, committed, "gain_of must equal the committed gain");
        }
    }

    #[test]
    fn gain_prefixes_matches_individual_gain_of() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for _ in 0..40 {
            let nx = rng.gen_range(2..=14u32);
            let ny = rng.gen_range(1..=10u32);
            let g = random_graph(&mut rng, nx, ny, 0.3);
            let values: Vec<f64> = (0..ny).map(|_| rng.gen_range(1..=9) as f64).collect();
            let mut o = MatchingOracle::new(&g, values);
            for v in 0..nx / 3 {
                o.add_slot(v);
            }
            // slot list with duplicates and already-allowed entries mixed in
            let slots: Vec<u32> = (0..nx + 4).map(|_| rng.gen_range(0..nx)).collect();
            let mut scratch = GainScratch::new();
            let mut cum = Vec::new();
            o.gain_prefixes(&slots, &mut scratch, &mut cum);
            assert_eq!(cum.len(), slots.len());
            for k in 0..slots.len() {
                let want = o.gain_of(&slots[..=k], &mut scratch);
                assert_eq!(cum[k], want, "prefix {k} of {slots:?}");
            }
        }
    }

    #[test]
    fn revision_tracks_matching_mutations_only() {
        // slot 0 has a job; slot 1 is isolated (degree 0, zero gain).
        let g = BipartiteGraph::from_edges(2, 1, &[(0, 0)]);
        let mut o = MatchingOracle::new_cardinality(&g);
        let r0 = o.revision();
        assert_eq!(o.add_slot(1), 0.0);
        assert_eq!(o.revision(), r0, "zero-gain add must not bump revision");
        assert_eq!(o.add_slot(0), 1.0);
        assert_eq!(o.revision(), r0 + 1);
        let mut s = GainScratch::new();
        o.gain_of(&[0, 1], &mut s);
        assert_eq!(o.revision(), r0 + 1, "gain_of must not bump revision");
        o.reset();
        assert!(
            o.revision() > r0 + 1,
            "reset must invalidate memoized gains"
        );
    }

    #[test]
    fn gain_of_ignores_duplicates_and_existing() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 1)]);
        let mut o = MatchingOracle::new_cardinality(&g);
        o.add_slot(0);
        let mut s = GainScratch::new();
        assert_eq!(o.gain_of(&[0, 1, 1, 0], &mut s), 1.0);
    }

    #[test]
    fn monotone_and_submodular_randomized() {
        // randomized check of monotonicity and the diminishing-returns
        // inequality F(A∪{v})-F(A) >= F(B∪{v})-F(B) for A ⊆ B.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..60 {
            let nx = rng.gen_range(2..=10u32);
            let ny = rng.gen_range(1..=8u32);
            let g = random_graph(&mut rng, nx, ny, 0.35);
            let values: Vec<f64> = (0..ny).map(|_| rng.gen_range(1..=10) as f64).collect();

            let eval = |slots: &[u32]| -> f64 {
                let mut o = MatchingOracle::new(&g, values.clone());
                o.commit(slots);
                o.total()
            };

            let a: Vec<u32> = (0..nx).filter(|_| rng.gen_bool(0.3)).collect();
            let mut b = a.clone();
            for x in 0..nx {
                if !b.contains(&x) && rng.gen_bool(0.3) {
                    b.push(x);
                }
            }
            let v = rng.gen_range(0..nx);
            let fa = eval(&a);
            let fb = eval(&b);
            assert!(fb >= fa, "monotonicity violated");
            let mut av = a.clone();
            av.push(v);
            let mut bv = b.clone();
            bv.push(v);
            let ga = eval(&av) - fa;
            let gb = eval(&bv) - fb;
            assert!(
                ga >= gb - 1e-9,
                "submodularity violated: gain(A,{v})={ga} < gain(B,{v})={gb}"
            );
        }
    }

    #[test]
    fn reset_clears_state() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 1)]);
        let mut o = MatchingOracle::new_cardinality(&g);
        o.commit(&[0, 1]);
        assert_eq!(o.total(), 2.0);
        o.reset();
        assert_eq!(o.total(), 0.0);
        assert_eq!(o.num_allowed(), 0);
        assert_eq!(o.matched_count(), 0);
        // can re-add
        assert_eq!(o.add_slot(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn zero_value_rejected() {
        let g = BipartiteGraph::from_edges(1, 1, &[(0, 0)]);
        let _ = MatchingOracle::new(&g, vec![0.0]);
    }

    #[test]
    fn retract_reaugments_locally() {
        // slots {0,1}, jobs {0,1}; slot 0 adj both jobs, slot 1 adj job 0.
        // Commit both slots: total 2. Retract job 0 (wherever it sits): the
        // freed slot must re-augment so the surviving job stays matched.
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]);
        let mut o = MatchingOracle::new_cardinality(&g);
        o.commit(&[0, 1]);
        assert_eq!(o.total(), 2.0);
        let r = o.revision();
        assert_eq!(o.retract(0), -1.0);
        assert_eq!(o.total(), 1.0);
        assert!(o.is_retired(0));
        assert_eq!(o.matched_job(0), Some(1), "slot 0 must rebind to job 1");
        assert!(o.revision() > r);
        // idempotent
        assert_eq!(o.retract(0), 0.0);
        assert_eq!(o.total(), 1.0);
    }

    #[test]
    fn retract_excludes_job_from_future_gains() {
        let g = BipartiteGraph::from_edges(2, 1, &[(0, 0), (1, 0)]);
        let mut o = MatchingOracle::new_cardinality(&g);
        let r = o.revision();
        // job 0 unsaturated; retiring it must still bump revision because
        // memoized gains (which could have matched it) are now stale.
        assert_eq!(o.retract(0), 0.0);
        assert!(o.revision() > r);
        let mut s = GainScratch::new();
        assert_eq!(o.gain_of(&[0, 1], &mut s), 0.0);
        assert_eq!(o.add_slot(0), 0.0, "retired job must not be matched");
        assert_eq!(o.matched_job(0), None);
    }

    #[test]
    fn retract_matches_reference_randomized() {
        // Interleave slot additions and job retractions; after each step the
        // oracle total must equal the reference rank over surviving jobs.
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..40 {
            let nx = rng.gen_range(2..=10u32);
            let ny = rng.gen_range(2..=8u32);
            let g = random_graph(&mut rng, nx, ny, 0.35);
            let values: Vec<f64> = (0..ny).map(|_| rng.gen_range(1..=9) as f64).collect();
            let mut o = MatchingOracle::new(&g, values.clone());
            let mut inserted = vec![false; nx as usize];
            let mut gone = vec![false; ny as usize];
            for _ in 0..(nx + ny) {
                if rng.gen_bool(0.6) {
                    let v = rng.gen_range(0..nx);
                    o.add_slot(v);
                    inserted[v as usize] = true;
                } else {
                    let y = rng.gen_range(0..ny);
                    o.retract(y);
                    gone[y as usize] = true;
                }
                // reference: same graph minus the retired jobs' edges
                let live: Vec<(u32, u32)> = g.edges().filter(|&(_, y)| !gone[y as usize]).collect();
                let gl = BipartiteGraph::from_edges(nx, ny, &live);
                let want = weighted_rank_reference(&gl, &values, |x| inserted[x as usize]);
                assert_eq!(o.total(), want, "rank mismatch after delta sequence");
            }
        }
    }

    #[test]
    fn reset_clears_retirement() {
        let g = BipartiteGraph::from_edges(1, 1, &[(0, 0)]);
        let mut o = MatchingOracle::new_cardinality(&g);
        o.add_slot(0);
        o.retract(0);
        assert_eq!(o.total(), 0.0);
        o.reset();
        assert!(!o.is_retired(0));
        assert_eq!(o.add_slot(0), 1.0);
    }

    #[test]
    fn matching_iterator_consistent() {
        let g = BipartiteGraph::from_edges(3, 3, &[(0, 0), (1, 1), (2, 2)]);
        let mut o = MatchingOracle::new_cardinality(&g);
        o.commit(&[0, 1, 2]);
        let pairs: Vec<(u32, u32)> = o.matching().collect();
        assert_eq!(pairs.len(), 3);
        for (x, y) in pairs {
            assert_eq!(o.matched_slot(y), Some(x));
        }
    }
}
