//! Hopcroft–Karp maximum-cardinality bipartite matching.
//!
//! Used as an independent test oracle for [`crate::MatchingOracle`] and for
//! one-shot feasibility checks. Runs in `O(E · √V)`.

use crate::graph::BipartiteGraph;
use crate::oracle::NONE;

/// Result of a maximum-cardinality matching computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    /// `match_x[x]` is the job matched to slot `x`, or [`NONE`].
    pub match_x: Vec<u32>,
    /// `match_y[y]` is the slot matched to job `y`, or [`NONE`].
    pub match_y: Vec<u32>,
    /// Cardinality of the matching.
    pub size: usize,
}

/// Computes a maximum-cardinality matching of the subgraph of `g` induced by
/// the slots `x` with `allowed(x) == true` (all jobs are always available).
///
/// Pass `|_| true` to match on the full graph.
pub fn hopcroft_karp(g: &BipartiteGraph, allowed: impl Fn(u32) -> bool) -> Matching {
    let nx = g.nx() as usize;
    let ny = g.ny() as usize;
    let mut match_x = vec![NONE; nx];
    let mut match_y = vec![NONE; ny];
    let mut size = 0usize;

    const INF: u32 = u32::MAX;
    // BFS layers over X-side vertices.
    let mut dist = vec![INF; nx];
    let mut queue: Vec<u32> = Vec::with_capacity(nx);

    loop {
        // BFS from all free allowed slots.
        queue.clear();
        for x in 0..nx as u32 {
            if allowed(x) && match_x[x as usize] == NONE {
                dist[x as usize] = 0;
                queue.push(x);
            } else {
                dist[x as usize] = INF;
            }
        }
        let mut found_free_job = false;
        let mut head = 0;
        while head < queue.len() {
            let x = queue[head];
            head += 1;
            for &y in g.adj_x(x) {
                let mx = match_y[y as usize];
                if mx == NONE {
                    found_free_job = true;
                } else if dist[mx as usize] == INF {
                    dist[mx as usize] = dist[x as usize] + 1;
                    queue.push(mx);
                }
            }
        }
        if !found_free_job {
            break;
        }

        // DFS phase: find a maximal set of vertex-disjoint shortest augmenting
        // paths. Iterative DFS with an explicit stack of (slot, adj cursor).
        for x0 in 0..nx as u32 {
            if allowed(x0)
                && match_x[x0 as usize] == NONE
                && dfs(g, x0, &mut match_x, &mut match_y, &mut dist)
            {
                size += 1;
            }
        }
    }

    Matching {
        match_x,
        match_y,
        size,
    }
}

/// Attempts to find one augmenting path from free slot `x` restricted to the
/// BFS layering in `dist`; flips it on success. Recursive depth is bounded by
/// the layering (≤ √V phases × path length), and paths are short in practice;
/// we use an explicit stack to stay safe on adversarial instances.
fn dfs(
    g: &BipartiteGraph,
    x0: u32,
    match_x: &mut [u32],
    match_y: &mut [u32],
    dist: &mut [u32],
) -> bool {
    const INF: u32 = u32::MAX;
    // stack entries: (slot, index into its adjacency list)
    let mut stack: Vec<(u32, usize)> = vec![(x0, 0)];
    // the alternating path of (slot, job) pairs committed so far
    let mut path: Vec<(u32, u32)> = Vec::new();

    while let Some(&mut (x, ref mut cursor)) = stack.last_mut() {
        let adj = g.adj_x(x);
        let mut advanced = false;
        while *cursor < adj.len() {
            let y = adj[*cursor];
            *cursor += 1;
            let mx = match_y[y as usize];
            if mx == NONE {
                // Found a free job: flip the whole path plus (x, y).
                path.push((x, y));
                for &(px, py) in path.iter().rev() {
                    match_x[px as usize] = py;
                    match_y[py as usize] = px;
                }
                return true;
            }
            if dist[mx as usize] == dist[x as usize] + 1 {
                path.push((x, y));
                stack.push((mx, 0));
                advanced = true;
                break;
            }
        }
        if !advanced {
            // Dead end: remove x from this phase's DFS forest.
            dist[x as usize] = INF;
            stack.pop();
            path.pop();
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(nx: u32, ny: u32, e: &[(u32, u32)]) -> BipartiteGraph {
        BipartiteGraph::from_edges(nx, ny, e)
    }

    fn check_valid(g: &BipartiteGraph, m: &Matching, allowed: impl Fn(u32) -> bool) {
        let mut count = 0;
        for x in 0..g.nx() {
            let y = m.match_x[x as usize];
            if y != NONE {
                assert!(allowed(x), "matched disallowed slot {x}");
                assert!(g.adj_x(x).contains(&y), "matched non-edge ({x},{y})");
                assert_eq!(m.match_y[y as usize], x, "inconsistent match arrays");
                count += 1;
            }
        }
        for y in 0..g.ny() {
            let x = m.match_y[y as usize];
            if x != NONE {
                assert_eq!(m.match_x[x as usize], y);
            }
        }
        assert_eq!(count, m.size);
    }

    #[test]
    fn empty() {
        let gr = g(0, 0, &[]);
        let m = hopcroft_karp(&gr, |_| true);
        assert_eq!(m.size, 0);
    }

    #[test]
    fn single_edge() {
        let gr = g(1, 1, &[(0, 0)]);
        let m = hopcroft_karp(&gr, |_| true);
        assert_eq!(m.size, 1);
        check_valid(&gr, &m, |_| true);
    }

    #[test]
    fn perfect_matching_cycle() {
        // C4-like: x0-y0, x0-y1, x1-y0, x1-y1 => perfect matching size 2
        let gr = g(2, 2, &[(0, 0), (0, 1), (1, 0), (1, 1)]);
        let m = hopcroft_karp(&gr, |_| true);
        assert_eq!(m.size, 2);
        check_valid(&gr, &m, |_| true);
    }

    #[test]
    fn star_limits_matching() {
        // one slot adjacent to 3 jobs: matching size 1
        let gr = g(1, 3, &[(0, 0), (0, 1), (0, 2)]);
        let m = hopcroft_karp(&gr, |_| true);
        assert_eq!(m.size, 1);
    }

    #[test]
    fn needs_augmentation() {
        // Classic case where greedy fails but augmentation succeeds:
        // x0: {y0, y1}, x1: {y0}. Max matching = 2.
        let gr = g(2, 2, &[(0, 0), (0, 1), (1, 0)]);
        let m = hopcroft_karp(&gr, |_| true);
        assert_eq!(m.size, 2);
        check_valid(&gr, &m, |_| true);
    }

    #[test]
    fn allowed_mask_restricts() {
        let gr = g(2, 2, &[(0, 0), (1, 1)]);
        let m = hopcroft_karp(&gr, |x| x == 0);
        assert_eq!(m.size, 1);
        assert_eq!(m.match_x[1], NONE);
        check_valid(&gr, &m, |x| x == 0);
    }

    #[test]
    fn long_augmenting_chain() {
        // Path graph forcing a long augmenting path:
        // x_i adjacent to y_i and y_{i+1}; x_{k-1} adjacent only to y_{k-1}.
        let k = 50u32;
        let mut e = Vec::new();
        for i in 0..k {
            e.push((i, i));
            if i + 1 < k {
                e.push((i, i + 1));
            }
        }
        let gr = g(k, k, &e);
        let m = hopcroft_karp(&gr, |_| true);
        assert_eq!(m.size, k as usize);
        check_valid(&gr, &m, |_| true);
    }

    #[test]
    fn brute_force_agreement_small_random() {
        // compare against brute force on tiny random graphs
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for trial in 0..200 {
            let nx = rng.gen_range(1..=5u32);
            let ny = rng.gen_range(1..=5u32);
            let mut e = Vec::new();
            for x in 0..nx {
                for y in 0..ny {
                    if rng.gen_bool(0.4) {
                        e.push((x, y));
                    }
                }
            }
            let gr = g(nx, ny, &e);
            let m = hopcroft_karp(&gr, |_| true);
            let bf = brute_force_max_matching(&gr);
            assert_eq!(m.size, bf, "trial {trial}: hk={} bf={}", m.size, bf);
            check_valid(&gr, &m, |_| true);
        }
    }

    /// Exponential brute force over job subsets for tiny graphs.
    fn brute_force_max_matching(g: &BipartiteGraph) -> usize {
        fn rec(g: &BipartiteGraph, y: u32, used_x: &mut Vec<bool>) -> usize {
            if y == g.ny() {
                return 0;
            }
            // skip job y
            let mut best = rec(g, y + 1, used_x);
            for &x in g.adj_y(y) {
                if !used_x[x as usize] {
                    used_x[x as usize] = true;
                    best = best.max(1 + rec(g, y + 1, used_x));
                    used_x[x as usize] = false;
                }
            }
            best
        }
        rec(g, 0, &mut vec![false; g.nx() as usize])
    }
}
