//! The sharded solving engine: a fixed pool of worker threads pulling
//! [`SolveRequest`]s off one bounded queue.
//!
//! # Design
//!
//! * **Sharding** — workers share a single `std::sync::mpsc` queue behind a
//!   mutex (work stealing by contention: whichever worker is idle takes the
//!   next request). The queue is bounded ([`EngineConfig::queue_depth`]), so
//!   a fast producer blocks in [`Engine::submit`] instead of buffering
//!   unboundedly — backpressure propagates all the way to a TCP client's
//!   socket.
//! * **Candidate reuse** — enumeration is the per-request cost that does not
//!   depend on the jobs, only on `(processors, horizon, cost, policy)`.
//!   Each worker keeps a small keyed cache of [`sched_core::WarmHandle`]s,
//!   so a stream of requests over the same grid skips enumeration entirely —
//!   [`SolveMetrics::cache_hit`] reports this per response. `schedule_all`
//!   requests additionally ride the handle's incremental warm path
//!   (reduction arrays and clean gains carried between consecutive requests
//!   on the same grid, keyed by job content; bit-identical to a cold solve
//!   by construction); other goals borrow the family via
//!   [`Solver::with_shared_candidates`] as before.
//! * **Ordering** — [`Engine::submit`] returns a [`Ticket`] per request;
//!   [`Engine::solve_batch`] / [`Engine::process_lines`] collect tickets in
//!   submission order, so batch output order always matches input order no
//!   matter which worker finished first.

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use sched_core::{
    content_keys, validate_profiles, AffineCost, CandidatePolicy, EnergyCost, ProfileCost,
    SolveOptions, Solver, WarmHandle,
};
use sched_obs::{Gauge, Registry, Snapshot};

use crate::protocol::{
    line_correlation, parse_line, version_supported, ErrorKind, SolveMetrics, SolveMode,
    SolveRequest, SolveResponse, WireError, WireRequest, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};

/// Sizing knobs for [`Engine::new`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads. `0` means "one per available core".
    pub workers: usize,
    /// Bounded request-queue depth. `0` means `2 × workers`.
    pub queue_depth: usize,
    /// Per-worker candidate-cache capacity (distinct
    /// grid/cost/policy keys); the cache is cleared when full.
    pub cache_capacity: usize,
    /// Flight recorder: when set, the engine owns a small bounded
    /// [`Tracer`](sched_obs::trace::Tracer) ring (last
    /// [`sched_obs::trace::FLIGHT_CAPACITY`] events per thread), every
    /// worker records its spans and decision events into it, and the last
    /// events are dumped to stderr on request failure, accept-loop error
    /// bursts, and graceful shutdown.
    pub flight_recorder: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_depth: 0,
            cache_capacity: 64,
            flight_recorder: false,
        }
    }
}

impl EngineConfig {
    /// Config with an explicit worker count (other knobs defaulted).
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers,
            ..Self::default()
        }
    }

    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Claim on one submitted request's response.
pub struct Ticket {
    rx: mpsc::Receiver<SolveResponse>,
    id: u64,
}

impl Ticket {
    /// Blocks until the engine answers. Never panics: a dead worker yields a
    /// structured [`ErrorKind::Internal`] response.
    pub fn wait(self) -> SolveResponse {
        self.rx.recv().unwrap_or_else(|_| {
            SolveResponse::failure(
                self.id,
                WireError::new(ErrorKind::Internal, "engine worker dropped the request"),
            )
        })
    }
}

struct Job {
    req: Box<SolveRequest>,
    reply: mpsc::SyncSender<SolveResponse>,
}

/// The worker pool. Dropping the engine (or calling [`Engine::shutdown`])
/// closes the queue and joins every worker after it drains in-flight work.
///
/// # Telemetry
///
/// The engine owns a *global* [`Registry`] (queue depth gauge, request
/// latency histogram, request counters) plus one registry per worker.
/// Each worker installs its registry as the thread-ambient one, so every
/// metric the solver stack records (`core.*`, `submodular.*`,
/// `matching.*`, `engine.cache.*`) lands per-worker.
/// [`Engine::metrics_snapshot`] folds everything into one `obs/v1`
/// [`Snapshot`], worker rows prefixed `workerN.`.
pub struct Engine {
    tx: Option<mpsc::SyncSender<Job>>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    registry: Arc<Registry>,
    worker_registries: Vec<Arc<Registry>>,
    queue_depth: Arc<Gauge>,
    tracer: Option<Arc<sched_obs::trace::Tracer>>,
}

impl Engine {
    /// Spawns the worker pool.
    pub fn new(config: EngineConfig) -> Self {
        let workers = config.resolved_workers();
        let depth = if config.queue_depth > 0 {
            config.queue_depth
        } else {
            workers * 2
        };
        let registry = Arc::new(Registry::new());
        let queue_depth = registry.gauge("engine.queue.depth");
        let worker_registries: Vec<Arc<Registry>> =
            (0..workers).map(|_| Arc::new(Registry::new())).collect();
        let tracer = config
            .flight_recorder
            .then(|| Arc::new(sched_obs::trace::Tracer::flight_recorder()));
        let (tx, rx) = mpsc::sync_channel::<Job>(depth);
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|worker_id| {
                let rx = Arc::clone(&rx);
                let cache_capacity = config.cache_capacity.max(1);
                let global = Arc::clone(&registry);
                let local = Arc::clone(&worker_registries[worker_id]);
                let tracer = tracer.clone();
                std::thread::Builder::new()
                    .name(format!("sched-engine-worker-{worker_id}"))
                    .spawn(move || {
                        worker_loop(worker_id as u32, cache_capacity, &rx, global, local, tracer)
                    })
                    .expect("spawn engine worker")
            })
            .collect();
        Self {
            tx: Some(tx),
            handles,
            workers,
            registry,
            worker_registries,
            queue_depth,
            tracer,
        }
    }

    /// The engine's flight-recorder tracer, when
    /// [`EngineConfig::flight_recorder`] was set. The serve loop records
    /// accept errors into it and dumps it on fatal accept bursts and
    /// graceful shutdown.
    pub fn tracer(&self) -> Option<&Arc<sched_obs::trace::Tracer>> {
        self.tracer.as_ref()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The engine-global registry (queue depth, request latency, accept
    /// errors). Per-worker solver metrics live in the worker registries;
    /// use [`Engine::metrics_snapshot`] for the merged view.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// One merged `obs/v1` snapshot: the global registry's rows plus every
    /// worker registry's rows under a `workerN.` prefix.
    pub fn metrics_snapshot(&self) -> Snapshot {
        let mut snap = self.registry.snapshot();
        for (i, w) in self.worker_registries.iter().enumerate() {
            snap.merge_prefixed(&w.snapshot(), &format!("worker{i}."));
        }
        snap
    }

    /// Enqueues one request, blocking while the bounded queue is full
    /// (backpressure). The returned [`Ticket`] resolves to the response.
    pub fn submit(&self, req: SolveRequest) -> Ticket {
        let id = req.id;
        let (reply, rx) = mpsc::sync_channel(1);
        let job = Job {
            req: Box::new(req),
            reply,
        };
        self.queue_depth.add(1);
        self.tx
            .as_ref()
            .expect("engine queue open until drop")
            .send(job)
            .expect("engine workers alive until drop");
        Ticket { rx, id }
    }

    /// Solves a batch concurrently; the output order matches the input
    /// order.
    pub fn solve_batch(
        &self,
        requests: impl IntoIterator<Item = SolveRequest>,
    ) -> Vec<SolveResponse> {
        // Submission interleaves with solving: the bounded queue blocks this
        // thread whenever the pool is saturated.
        let tickets: Vec<Ticket> = requests.into_iter().map(|r| self.submit(r)).collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// Processes raw JSONL lines: solve lines are dispatched to the pool,
    /// malformed lines become structured [`ErrorKind::Parse`] failures, and
    /// control lines are rejected (they only make sense on a server
    /// connection). Blank lines are skipped. One response per non-blank
    /// line, in input order.
    pub fn process_lines<'l>(
        &self,
        lines: impl IntoIterator<Item = &'l str>,
    ) -> Vec<SolveResponse> {
        enum Pending {
            Ready(Box<SolveResponse>),
            InFlight(Ticket),
        }
        let pending: Vec<Pending> = lines
            .into_iter()
            .enumerate()
            .filter(|(_, line)| !line.trim().is_empty())
            .map(|(lineno, line)| match parse_line(line) {
                Ok(WireRequest::Solve(req)) => Pending::InFlight(self.submit(*req)),
                Ok(WireRequest::Control(ctl)) => Pending::Ready(Box::new(SolveResponse::failure(
                    0,
                    WireError::new(
                        ErrorKind::BadRequest,
                        format!(
                            "control request '{}' is only valid on a serve connection",
                            ctl.control
                        ),
                    ),
                ))),
                Err(mut e) => {
                    e.message = format!("line {}: {}", lineno + 1, e.message);
                    // best-effort correlation: a line that is valid JSON but
                    // not a valid request still gets its id/trace_id echoed
                    let (id, trace_id) = line_correlation(line);
                    let resp = SolveResponse::failure(id, e);
                    Pending::Ready(Box::new(match trace_id {
                        Some(t) => resp.with_trace_id(t),
                        None => resp,
                    }))
                }
            })
            .collect();
        pending
            .into_iter()
            .map(|p| match p {
                Pending::Ready(r) => *r,
                Pending::InFlight(t) => t.wait(),
            })
            .collect()
    }

    /// Closes the queue and joins every worker (also performed on drop).
    pub fn shutdown(self) {}
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.tx.take(); // close the queue: workers exit once drained
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Candidate-cache key: everything enumeration depends on. Note the job set
/// is *not* part of the key — enumeration walks the processor × horizon
/// grid only. Heterogeneous requests key on the exact per-processor
/// `(wake, busy)` parameter bits (full equality, not a hash fingerprint, so
/// a collision can never serve another fleet's prices).
#[derive(Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    processors: u32,
    horizon: u32,
    restart_bits: u64,
    rate_bits: u64,
    /// Per-processor `(wake_cost, busy_rate)` bits for profiled requests
    /// (sleep ladders never affect interval pricing, so they stay out of
    /// the key); `None` for the affine default.
    profile_bits: Option<Vec<(u64, u64)>>,
    policy: PolicyKey,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum PolicyKey {
    All,
    Single,
    MaxLen(u32),
}

impl From<CandidatePolicy> for PolicyKey {
    fn from(p: CandidatePolicy) -> Self {
        match p {
            CandidatePolicy::All => PolicyKey::All,
            CandidatePolicy::SingleSlots => PolicyKey::Single,
            CandidatePolicy::MaxLength(k) => PolicyKey::MaxLen(k),
        }
    }
}

type CandidateCache = HashMap<CacheKey, WarmHandle>;

fn worker_loop(
    worker_id: u32,
    cache_capacity: usize,
    rx: &Mutex<mpsc::Receiver<Job>>,
    global: Arc<Registry>,
    local: Arc<Registry>,
    tracer: Option<Arc<sched_obs::trace::Tracer>>,
) {
    // Everything the solver stack records ambiently on this thread lands in
    // the worker's own registry; cross-worker aggregates (queue depth,
    // request latency) go through handles on the global registry. The
    // shared flight recorder (if any) receives every span and decision
    // event this worker's solves emit.
    sched_obs::set_thread(Some(local));
    sched_obs::trace::set_thread(tracer);
    let queue_depth = global.gauge("engine.queue.depth");
    let requests = global.counter("engine.requests");
    let latency = global.histogram("engine.request.latency_ns");
    let mut cache = CandidateCache::new();
    loop {
        // Hold the lock only while dequeuing; solving runs unlocked so the
        // pool processes requests concurrently.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => break, // a sibling worker panicked while dequeuing
        };
        match job {
            Ok(job) => {
                queue_depth.add(-1);
                requests.inc();
                let t0 = Instant::now();
                let response = serve_request(worker_id, cache_capacity, &mut cache, &job.req);
                latency.record(t0.elapsed().as_nanos() as u64);
                let _ = job.reply.send(response); // receiver may have hung up
            }
            Err(_) => break, // queue closed: engine is shutting down
        }
    }
}

/// What a validated request asks the solver to do.
struct Plan {
    policy: CandidatePolicy,
    lazy: bool,
    parallel: bool,
    goal: Goal,
}

enum Goal {
    All,
    Prize { target: f64, epsilon: f64 },
    PrizeExact { target: f64 },
}

fn plan(req: &SolveRequest) -> Result<Plan, WireError> {
    if !version_supported(req.version) {
        return Err(WireError::new(
            ErrorKind::UnsupportedVersion,
            format!(
                "protocol version {} not supported \
                 (expected {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})",
                req.version
            ),
        ));
    }
    req.instance
        .validate()
        .map_err(|e| WireError::new(ErrorKind::InvalidInstance, e.to_string()))?;
    // The cost constructors assert their parameters; reject over the wire
    // instead of letting a bad request panic (and kill) a worker thread.
    match &req.profiles {
        Some(profiles) => {
            validate_profiles(profiles, req.instance.num_processors)
                .map_err(|e| WireError::new(ErrorKind::BadRequest, e.to_string()))?;
        }
        None => {
            if !(req.restart.is_finite()
                && req.rate.is_finite()
                && req.restart >= 0.0
                && req.rate >= 0.0)
            {
                return Err(WireError::new(
                    ErrorKind::BadRequest,
                    format!(
                        "restart/rate must be finite and non-negative (got {}, {})",
                        req.restart, req.rate
                    ),
                ));
            }
            if req.restart + req.rate <= 0.0 {
                return Err(WireError::new(
                    ErrorKind::BadRequest,
                    "restart and rate cannot both be zero: awake intervals must cost something",
                ));
            }
        }
    }
    let policy = match &req.policy {
        None => CandidatePolicy::All,
        Some(s) => s
            .parse()
            .map_err(|e| WireError::new(ErrorKind::BadRequest, e))?,
    };
    let need_target = || {
        req.target
            .filter(|t| t.is_finite() && *t > 0.0)
            .ok_or_else(|| {
                WireError::new(
                    ErrorKind::BadRequest,
                    "prize-collecting modes require a finite positive `target`",
                )
            })
    };
    let goal = match req.mode {
        SolveMode::ScheduleAll => Goal::All,
        SolveMode::PrizeCollecting => {
            let epsilon = req.epsilon.unwrap_or(0.1);
            if !(epsilon > 0.0 && epsilon < 1.0) {
                return Err(WireError::new(
                    ErrorKind::BadRequest,
                    format!("epsilon {epsilon} outside (0, 1)"),
                ));
            }
            Goal::Prize {
                target: need_target()?,
                epsilon,
            }
        }
        SolveMode::PrizeCollectingExact => Goal::PrizeExact {
            target: need_target()?,
        },
    };
    Ok(Plan {
        policy,
        lazy: req.lazy.unwrap_or(true),
        parallel: req.parallel.unwrap_or(false),
        goal,
    })
}

fn serve_request(
    worker_id: u32,
    cache_capacity: usize,
    cache: &mut CandidateCache,
    req: &SolveRequest,
) -> SolveResponse {
    // Resolve the request's trace id (stamping a deterministic `req-<id>`
    // when the caller sent none) and make it this thread's ambient id for
    // the duration of the request, so every span and decision event the
    // solve emits — and the response, success or failure — carries it.
    let trace_id = req
        .trace_id
        .clone()
        .unwrap_or_else(|| format!("req-{}", req.id));
    sched_obs::trace::set_trace_id(Some(&trace_id));
    let response = {
        let _span = sched_obs::span!("engine.request_ns");
        serve_request_planned(worker_id, cache_capacity, cache, req)
    };
    if !response.ok {
        if let Some(t) = sched_obs::trace::active_tracer() {
            t.dump_to_stderr(&format!("request {} failed, trace_id={trace_id}", req.id));
        }
    }
    sched_obs::trace::set_trace_id(None);
    response.with_trace_id(trace_id)
}

fn serve_request_planned(
    worker_id: u32,
    cache_capacity: usize,
    cache: &mut CandidateCache,
    req: &SolveRequest,
) -> SolveResponse {
    let plan = match plan(req) {
        Ok(p) => p,
        Err(e) => return SolveResponse::failure(req.id, e),
    };

    // Profiled pricing ignores restart/rate entirely, so their bits are
    // normalized out of the key — otherwise two clients sending the same
    // fleet with different (ignored) affine fields would re-enumerate and
    // double-occupy the bounded cache for one identical family.
    let key = CacheKey {
        processors: req.instance.num_processors,
        horizon: req.instance.horizon,
        restart_bits: if req.profiles.is_some() {
            0
        } else {
            req.restart.to_bits()
        },
        rate_bits: if req.profiles.is_some() {
            0
        } else {
            req.rate.to_bits()
        },
        profile_bits: req.profiles.as_ref().map(|ps| {
            ps.iter()
                .map(|p| (p.wake_cost.to_bits(), p.busy_rate.to_bits()))
                .collect()
        }),
        policy: plan.policy.into(),
    };
    // plan() has vetted the parameters, so neither constructor can assert
    let cost: Box<dyn EnergyCost> = match &req.profiles {
        Some(profiles) => Box::new(ProfileCost::new(profiles)),
        None => Box::new(AffineCost::new(req.restart, req.rate)),
    };
    let options = SolveOptions {
        lazy: plan.lazy,
        parallel: plan.parallel,
    };
    let cache_hit = cache.contains_key(&key);
    sched_obs::counter_add(
        if cache_hit {
            "engine.cache.hits"
        } else {
            "engine.cache.misses"
        },
        1,
    );
    if !cache_hit {
        if cache.len() >= cache_capacity {
            cache.clear(); // simplest bound; capacity is generous
        }
        cache.insert(key.clone(), WarmHandle::with_options(plan.policy, options));
    }
    let handle = cache.get_mut(&key).expect("just inserted");
    handle.set_options(options);
    // Identical cost bits are part of the key, so on a hit the handle's
    // checksum always matches and this returns the cached family without
    // re-enumerating.
    let family = handle.family(&req.instance, cost.as_ref());

    let t0 = Instant::now();
    let outcome = match plan.goal {
        // The warm path: consecutive schedule_all requests on one grid reuse
        // the reduction and every gain whose window content did not change.
        // Job content hashes are the pairing keys (wire requests carry no
        // stable job identity).
        Goal::All => handle.solve(&req.instance, &content_keys(&req.instance), cost.as_ref()),
        Goal::Prize { target, epsilon } => {
            Solver::with_shared_candidates(&req.instance, Arc::clone(&family))
                .lazy(plan.lazy)
                .parallel(plan.parallel)
                .prize_collecting(target, epsilon)
        }
        Goal::PrizeExact { target } => {
            Solver::with_shared_candidates(&req.instance, Arc::clone(&family))
                .lazy(plan.lazy)
                .parallel(plan.parallel)
                .prize_collecting_exact(target)
        }
    };
    let solve_micros = t0.elapsed().as_micros() as u64;

    match outcome {
        Ok(schedule) => SolveResponse::success(
            req.id,
            schedule,
            SolveMetrics {
                solve_micros,
                candidates: family.len() as u64,
                worker: worker_id,
                cache_hit,
            },
        ),
        Err(e) => {
            SolveResponse::failure(req.id, WireError::new(ErrorKind::Infeasible, e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::{Instance, Job, SlotRef};

    fn inst(t: u32) -> Instance {
        Instance::new(
            1,
            t,
            vec![
                Job::unit(vec![SlotRef::new(0, 0)]),
                Job::unit(vec![SlotRef::new(0, t - 1)]),
            ],
        )
    }

    #[test]
    fn batch_preserves_input_order_and_matches_direct_solves() {
        let engine = Engine::new(EngineConfig::with_workers(4));
        let requests: Vec<SolveRequest> = (0..24)
            .map(|i| SolveRequest::schedule_all(1000 + i, inst(4 + (i % 5) as u32), 10.0, 1.0))
            .collect();
        let responses = engine.solve_batch(requests.clone());
        assert_eq!(responses.len(), 24);
        for (req, resp) in requests.iter().zip(&responses) {
            assert_eq!(resp.id, req.id, "order not preserved");
            assert!(resp.ok, "unexpected failure: {:?}", resp.error);
            let cost = AffineCost::new(req.restart, req.rate);
            let direct = Solver::new(&req.instance, &cost).schedule_all().unwrap();
            let got = resp.schedule.as_ref().unwrap();
            assert_eq!(got.total_cost, direct.total_cost, "cost mismatch");
        }
    }

    #[test]
    fn candidate_cache_hits_across_requests_on_same_grid() {
        let engine = Engine::new(EngineConfig::with_workers(1));
        let reqs: Vec<SolveRequest> = (0..6)
            .map(|i| SolveRequest::schedule_all(i, inst(6), 3.0, 1.0))
            .collect();
        let responses = engine.solve_batch(reqs);
        let hits: Vec<bool> = responses
            .iter()
            .map(|r| r.metrics.unwrap().cache_hit)
            .collect();
        assert!(!hits[0], "first request must enumerate");
        assert!(
            hits[1..].iter().all(|&h| h),
            "single worker must reuse the family: {hits:?}"
        );
    }

    #[test]
    fn structured_errors_for_bad_requests() {
        let engine = Engine::new(EngineConfig::with_workers(2));

        let mut wrong_version = SolveRequest::schedule_all(1, inst(4), 3.0, 1.0);
        wrong_version.version = 99;
        let mut missing_target = SolveRequest::schedule_all(2, inst(4), 3.0, 1.0);
        missing_target.mode = SolveMode::PrizeCollecting;
        let mut bad_policy = SolveRequest::schedule_all(3, inst(4), 3.0, 1.0);
        bad_policy.policy = Some("bogus".into());
        let mut bad_instance = SolveRequest::schedule_all(4, inst(4), 3.0, 1.0);
        bad_instance.instance.jobs[0].allowed[0].time = 99;
        let infeasible = SolveRequest::prize_collecting_exact(5, inst(4), 3.0, 1.0, 50.0);

        let responses = engine.solve_batch(vec![
            wrong_version,
            missing_target,
            bad_policy,
            bad_instance,
            infeasible,
        ]);
        let kinds: Vec<ErrorKind> = responses
            .iter()
            .map(|r| r.error.as_ref().expect("all must fail").kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                ErrorKind::UnsupportedVersion,
                ErrorKind::BadRequest,
                ErrorKind::BadRequest,
                ErrorKind::InvalidInstance,
                ErrorKind::Infeasible,
            ]
        );
        assert!(responses.iter().all(|r| !r.ok));
    }

    #[test]
    fn degenerate_cost_parameters_cannot_kill_workers() {
        // Regression: restart=rate=0 (or NaN) used to trip AffineCost::new's
        // assert inside a worker thread, killing it permanently.
        let engine = Engine::new(EngineConfig::with_workers(1));
        let mut zero = SolveRequest::schedule_all(1, inst(4), 0.0, 0.0);
        zero.rate = 0.0;
        let mut nan = SolveRequest::schedule_all(2, inst(4), f64::NAN, 1.0);
        nan.restart = f64::NAN;
        let mut negative = SolveRequest::schedule_all(3, inst(4), -1.0, 1.0);
        negative.restart = -1.0;
        let fine = SolveRequest::schedule_all(4, inst(4), 3.0, 1.0);

        let responses = engine.solve_batch(vec![zero, nan, negative, fine]);
        for r in &responses[..3] {
            assert_eq!(r.error.as_ref().unwrap().kind, ErrorKind::BadRequest);
        }
        // the single worker survived the bad requests and still solves
        assert!(responses[3].ok, "{:?}", responses[3].error);
    }

    #[test]
    fn profiled_requests_solve_heterogeneously_and_cache_by_fleet() {
        use sched_core::PowerProfile;
        let engine = Engine::new(EngineConfig::with_workers(1));
        // one job runnable on either processor; proc 1 is much cheaper
        let instance = Instance::new(
            2,
            3,
            vec![Job::unit(vec![SlotRef::new(0, 1), SlotRef::new(1, 1)])],
        );
        let cheap_p1 = vec![
            PowerProfile::affine(9.0, 2.0),
            PowerProfile::affine(1.0, 0.5),
        ];
        let cheap_p0 = vec![
            PowerProfile::affine(1.0, 0.5),
            PowerProfile::affine(9.0, 2.0),
        ];
        let responses = engine.solve_batch(vec![
            SolveRequest::schedule_all_profiled(1, instance.clone(), cheap_p1.clone()),
            SolveRequest::schedule_all_profiled(2, instance.clone(), cheap_p1.clone()),
            SolveRequest::schedule_all_profiled(3, instance.clone(), cheap_p0),
            SolveRequest::schedule_all(4, instance.clone(), 3.0, 1.0),
        ]);
        assert!(responses.iter().all(|r| r.ok), "{responses:?}");
        let placed = |r: &SolveResponse| {
            r.schedule.as_ref().unwrap().assignments[0]
                .as_ref()
                .unwrap()
                .proc
        };
        assert_eq!(placed(&responses[0]), 1, "cheap processor must win");
        assert_eq!(placed(&responses[2]), 0, "flipped fleet flips the pick");
        assert_eq!(responses[0].schedule.as_ref().unwrap().total_cost, 1.5);
        // identical fleets hit the cache; a different fleet must not
        let hits: Vec<bool> = responses
            .iter()
            .map(|r| r.metrics.unwrap().cache_hit)
            .collect();
        assert_eq!(hits, vec![false, true, false, false]);
        // matches a direct profiled solve
        let cost = ProfileCost::new(&cheap_p1);
        let direct = Solver::new(&instance, &cost).schedule_all().unwrap();
        assert_eq!(
            responses[0].schedule.as_ref().unwrap().total_cost,
            direct.total_cost
        );
    }

    #[test]
    fn invalid_profiles_are_rejected_not_fatal() {
        use sched_core::{PowerProfile, SleepState};
        let engine = Engine::new(EngineConfig::with_workers(1));
        // wrong count
        let short = SolveRequest::schedule_all_profiled(
            1,
            Instance::new(2, 3, vec![Job::unit(vec![SlotRef::new(0, 0)])]),
            vec![PowerProfile::affine(1.0, 1.0)],
        );
        // non-monotone ladder, built field-by-field as a hostile client would
        let mut bad_ladder =
            SolveRequest::schedule_all_profiled(2, inst(3), vec![PowerProfile::affine(4.0, 1.0)]);
        bad_ladder.profiles.as_mut().unwrap()[0].sleep_states = vec![
            SleepState {
                idle_rate: 0.2,
                wake_cost: 2.0,
            },
            SleepState {
                idle_rate: 0.5,
                wake_cost: 3.0,
            },
        ];
        let fine = SolveRequest::schedule_all(3, inst(4), 3.0, 1.0);
        let responses = engine.solve_batch(vec![short, bad_ladder, fine]);
        assert_eq!(
            responses[0].error.as_ref().unwrap().kind,
            ErrorKind::BadRequest
        );
        assert!(responses[0]
            .error
            .as_ref()
            .unwrap()
            .message
            .contains("mismatch"));
        assert_eq!(
            responses[1].error.as_ref().unwrap().kind,
            ErrorKind::BadRequest
        );
        // the single worker survived both and still solves
        assert!(responses[2].ok, "{:?}", responses[2].error);
    }

    #[test]
    fn v1_requests_still_served() {
        let engine = Engine::new(EngineConfig::with_workers(1));
        let mut v1 = SolveRequest::schedule_all(7, inst(4), 3.0, 1.0);
        v1.version = 1;
        let responses = engine.solve_batch(vec![v1]);
        assert!(responses[0].ok, "{:?}", responses[0].error);
        assert_eq!(responses[0].version, PROTOCOL_VERSION);
    }

    #[test]
    fn process_lines_interleaves_parse_errors_in_order() {
        let engine = Engine::new(EngineConfig::with_workers(2));
        let good =
            serde_json::to_string(&SolveRequest::schedule_all(7, inst(4), 3.0, 1.0)).unwrap();
        let lines = [
            good.as_str(),
            "{\"truncated\":",
            "",
            good.as_str(),
            "{\"version\":1,\"control\":\"shutdown\"}",
        ];
        let responses = engine.process_lines(lines);
        assert_eq!(responses.len(), 4); // blank line skipped
        assert!(responses[0].ok);
        assert_eq!(responses[1].error.as_ref().unwrap().kind, ErrorKind::Parse);
        assert!(responses[1]
            .error
            .as_ref()
            .unwrap()
            .message
            .contains("line 2"));
        assert!(responses[2].ok);
        assert_eq!(
            responses[3].error.as_ref().unwrap().kind,
            ErrorKind::BadRequest
        );
    }

    #[test]
    fn all_three_modes_solve_through_the_pool() {
        let engine = Engine::new(EngineConfig::with_workers(3));
        let instance = Instance::new(
            1,
            4,
            vec![Job::window(2.0, 0, 0, 2), Job::window(3.0, 0, 2, 4)],
        );
        let responses = engine.solve_batch(vec![
            SolveRequest::schedule_all(1, instance.clone(), 1.0, 1.0),
            SolveRequest::prize_collecting(2, instance.clone(), 1.0, 1.0, 3.0, Some(0.25)),
            SolveRequest::prize_collecting_exact(3, instance.clone(), 1.0, 1.0, 5.0),
        ]);
        assert!(responses.iter().all(|r| r.ok), "{responses:?}");
        assert!(responses[1].schedule.as_ref().unwrap().scheduled_value >= 0.75 * 3.0 - 1e-9);
        assert!(responses[2].schedule.as_ref().unwrap().scheduled_value >= 5.0 - 1e-9);
    }

    #[test]
    fn tiny_queue_applies_backpressure_without_deadlock() {
        let engine = Engine::new(EngineConfig {
            workers: 2,
            queue_depth: 1,
            cache_capacity: 4,
            ..Default::default()
        });
        let responses = engine.solve_batch(
            (0..40).map(|i| SolveRequest::schedule_all(i, inst(3 + (i % 4) as u32), 2.0, 1.0)),
        );
        assert_eq!(responses.len(), 40);
        assert!(responses.iter().all(|r| r.ok));
        let ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        assert_eq!(ids, (0..40).collect::<Vec<_>>());
    }
}
