//! The sharded solving engine: a fixed pool of worker threads pulling
//! [`SolveRequest`]s off one bounded queue.
//!
//! # Design
//!
//! * **Sharding** — workers share a single bounded deque behind a mutex
//!   (work stealing by contention: whichever worker is idle takes the next
//!   request). A fast producer either blocks in [`Engine::submit`]
//!   (backpressure — the batch path) or goes through [`Engine::admit`],
//!   which never blocks: when the queue is full it *sheds* per a
//!   [`ShedPolicy`] — reject the newcomer, or answer the oldest queued
//!   request with a structured [`ErrorKind::Overloaded`] response and
//!   admit the newcomer in its place. Either way memory stays bounded and
//!   every request gets an answer; nothing is silently dropped.
//! * **Retry hints** — shed responses carry `retry_after_ms`, estimated
//!   from an EWMA of recent request latency times the current backlog per
//!   worker — roughly "when will a queue slot exist again".
//! * **Candidate reuse** — enumeration is the per-request cost that does not
//!   depend on the jobs, only on `(processors, horizon, cost, policy)`.
//!   Each worker keeps a small keyed cache of [`sched_core::WarmHandle`]s,
//!   so a stream of requests over the same grid skips enumeration entirely —
//!   [`SolveMetrics::cache_hit`] reports this per response. `schedule_all`
//!   requests additionally ride the handle's incremental warm path
//!   (reduction arrays and clean gains carried between consecutive requests
//!   on the same grid, keyed by job content; bit-identical to a cold solve
//!   by construction); other goals borrow the family via
//!   [`Solver::with_shared_candidates`] as before.
//! * **Ordering** — [`Engine::submit`] returns a [`Ticket`] per request;
//!   [`Engine::solve_batch`] / [`Engine::process_lines`] collect tickets in
//!   submission order, so batch output order always matches input order no
//!   matter which worker finished first.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use sched_core::{
    content_keys, validate_profiles, AffineCost, CandidatePolicy, DvfsCost, DvfsInstance,
    EnergyCost, ProfileCost, SolveOptions, Solver, WarmHandle,
};
use sched_obs::{Gauge, Registry, Snapshot};

use crate::protocol::{
    line_correlation, parse_line, version_supported, ErrorKind, SolveMetrics, SolveMode,
    SolveRequest, SolveResponse, WireError, WireRequest, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};

/// Sizing knobs for [`Engine::new`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads. `0` means "one per available core".
    pub workers: usize,
    /// Bounded request-queue depth. `0` means `2 × workers`.
    pub queue_depth: usize,
    /// Per-worker candidate-cache capacity (distinct
    /// grid/cost/policy keys); the cache is cleared when full.
    pub cache_capacity: usize,
    /// Flight recorder: when set, the engine owns a small bounded
    /// [`Tracer`](sched_obs::trace::Tracer) ring (last
    /// [`sched_obs::trace::FLIGHT_CAPACITY`] events per thread), every
    /// worker records its spans and decision events into it, and the last
    /// events are dumped to stderr on request failure, accept-loop error
    /// bursts, and graceful shutdown. Shed events are recorded into it too.
    pub flight_recorder: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_depth: 0,
            cache_capacity: 64,
            flight_recorder: false,
        }
    }
}

impl EngineConfig {
    /// Config with an explicit worker count (other knobs defaulted).
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers,
            ..Self::default()
        }
    }

    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// What [`Engine::admit`] does when the bounded queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Shed the *newcomer*: the admitted request is answered immediately
    /// with [`ErrorKind::Overloaded`]; the queue is untouched. Favors
    /// requests already accepted (FIFO fairness).
    Reject,
    /// Shed the *oldest* queued request (answering its ticket with
    /// [`ErrorKind::Overloaded`]) and admit the newcomer in its place.
    /// Favors fresh work — the oldest request has waited longest and is
    /// the most likely to have been abandoned by its client.
    Oldest,
}

impl std::str::FromStr for ShedPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reject" => Ok(ShedPolicy::Reject),
            "oldest" => Ok(ShedPolicy::Oldest),
            other => Err(format!(
                "unknown shed policy '{other}' (expected reject or oldest)"
            )),
        }
    }
}

impl std::fmt::Display for ShedPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ShedPolicy::Reject => "reject",
            ShedPolicy::Oldest => "oldest",
        })
    }
}

/// Outcome of a non-blocking [`Engine::admit`].
pub enum AdmitResult {
    /// The request is queued; the ticket resolves to its response (which
    /// may still be `Overloaded` if a later `Oldest`-policy admission
    /// sheds it while it waits).
    Admitted(Ticket),
    /// The request was shed at the door ([`ShedPolicy::Reject`] with a
    /// full queue): here is its `Overloaded` response, ready to send.
    Shed(Box<SolveResponse>),
}

/// Claim on one submitted request's response.
pub struct Ticket {
    rx: mpsc::Receiver<SolveResponse>,
    id: u64,
}

impl Ticket {
    /// Blocks until the engine answers. Never panics: a dead worker yields a
    /// structured [`ErrorKind::Internal`] response.
    pub fn wait(self) -> SolveResponse {
        self.rx.recv().unwrap_or_else(|_| {
            SolveResponse::failure(
                self.id,
                WireError::new(ErrorKind::Internal, "engine worker dropped the request"),
            )
        })
    }
}

struct Job {
    req: Box<SolveRequest>,
    reply: mpsc::SyncSender<SolveResponse>,
}

/// The engine's bounded request queue. Hand-rolled (deque + condvars)
/// rather than `mpsc::sync_channel` because admission control needs two
/// things a channel cannot do: inspect fullness *atomically with* the
/// enqueue decision, and evict the oldest queued entry to answer it with
/// an `Overloaded` response ([`ShedPolicy::Oldest`]).
struct SharedQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

enum Admission {
    /// Queued; with [`ShedPolicy::Oldest`] on a full queue, the evicted
    /// front entry rides along for the caller to answer.
    Admitted { victim: Option<Job> },
    /// Full queue under [`ShedPolicy::Reject`]: the job comes back.
    Rejected(Job),
}

impl SharedQueue {
    fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        // A worker that panicked mid-solve never holds this lock, and the
        // deque itself cannot be left inconsistent by any panic in here,
        // so a poisoned mutex is safe to keep using.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocking enqueue: waits for a slot (backpressure). After close the
    /// job is dropped, which resolves its ticket to a structured
    /// `Internal` failure.
    fn push_blocking(&self, job: Job) {
        let mut st = self.lock();
        while st.jobs.len() >= self.capacity && !st.closed {
            st = self
                .not_full
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if st.closed {
            return;
        }
        st.jobs.push_back(job);
        drop(st);
        self.not_empty.notify_one();
    }

    /// Non-blocking admission applying `policy` when full.
    fn try_admit(&self, job: Job, policy: ShedPolicy) -> Admission {
        let mut st = self.lock();
        if st.closed {
            return Admission::Admitted { victim: None }; // dropped job → Internal
        }
        if st.jobs.len() < self.capacity {
            st.jobs.push_back(job);
            drop(st);
            self.not_empty.notify_one();
            return Admission::Admitted { victim: None };
        }
        match policy {
            ShedPolicy::Reject => Admission::Rejected(job),
            ShedPolicy::Oldest => {
                let victim = st.jobs.pop_front().expect("full queue has a front");
                st.jobs.push_back(job);
                Admission::Admitted {
                    victim: Some(victim),
                }
            }
        }
    }

    /// Blocking dequeue; `None` once the queue is closed *and* drained.
    fn pop_blocking(&self) -> Option<Job> {
        let mut st = self.lock();
        loop {
            if let Some(job) = st.jobs.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self
                .not_empty
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn len(&self) -> usize {
        self.lock().jobs.len()
    }
}

/// The worker pool. Dropping the engine (or calling [`Engine::shutdown`])
/// closes the queue and joins every worker after it drains in-flight work.
///
/// # Telemetry
///
/// The engine owns a *global* [`Registry`] (queue depth gauge, request
/// latency histogram, request counters, shed counters) plus one registry
/// per worker. Each worker installs its registry as the thread-ambient
/// one, so every metric the solver stack records (`core.*`,
/// `submodular.*`, `matching.*`, `engine.cache.*`) lands per-worker.
/// [`Engine::metrics_snapshot`] folds everything into one `obs/v1`
/// [`Snapshot`], worker rows prefixed `workerN.`.
pub struct Engine {
    queue: Arc<SharedQueue>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    registry: Arc<Registry>,
    worker_registries: Vec<Arc<Registry>>,
    queue_depth: Arc<Gauge>,
    /// EWMA of request service latency (ns), updated by workers; feeds the
    /// `retry_after_ms` hint. Racy updates are fine — it is a hint.
    latency_ewma_ns: Arc<AtomicU64>,
    tracer: Option<Arc<sched_obs::trace::Tracer>>,
}

impl Engine {
    /// Spawns the worker pool.
    pub fn new(config: EngineConfig) -> Self {
        let workers = config.resolved_workers();
        let depth = if config.queue_depth > 0 {
            config.queue_depth
        } else {
            workers * 2
        };
        let registry = Arc::new(Registry::new());
        let queue_depth = registry.gauge("engine.queue.depth");
        let worker_registries: Vec<Arc<Registry>> =
            (0..workers).map(|_| Arc::new(Registry::new())).collect();
        let tracer = config
            .flight_recorder
            .then(|| Arc::new(sched_obs::trace::Tracer::flight_recorder()));
        let queue = Arc::new(SharedQueue::new(depth));
        let latency_ewma_ns = Arc::new(AtomicU64::new(0));
        let handles = (0..workers)
            .map(|worker_id| {
                let queue = Arc::clone(&queue);
                let cache_capacity = config.cache_capacity.max(1);
                let global = Arc::clone(&registry);
                let local = Arc::clone(&worker_registries[worker_id]);
                let tracer = tracer.clone();
                let ewma = Arc::clone(&latency_ewma_ns);
                std::thread::Builder::new()
                    .name(format!("sched-engine-worker-{worker_id}"))
                    .spawn(move || {
                        worker_loop(
                            worker_id as u32,
                            cache_capacity,
                            &queue,
                            global,
                            local,
                            tracer,
                            &ewma,
                        )
                    })
                    .expect("spawn engine worker")
            })
            .collect();
        Self {
            queue,
            handles,
            workers,
            registry,
            worker_registries,
            queue_depth,
            latency_ewma_ns,
            tracer,
        }
    }

    /// The engine's flight-recorder tracer, when
    /// [`EngineConfig::flight_recorder`] was set. The serve loop records
    /// accept errors into it and dumps it on fatal accept bursts and
    /// graceful shutdown.
    pub fn tracer(&self) -> Option<&Arc<sched_obs::trace::Tracer>> {
        self.tracer.as_ref()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Requests currently queued (excludes in-flight solves).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The engine-global registry (queue depth, request latency, accept
    /// errors, shed counters). Per-worker solver metrics live in the worker
    /// registries; use [`Engine::metrics_snapshot`] for the merged view.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// One merged `obs/v1` snapshot: the global registry's rows plus every
    /// worker registry's rows under a `workerN.` prefix.
    pub fn metrics_snapshot(&self) -> Snapshot {
        let mut snap = self.registry.snapshot();
        for (i, w) in self.worker_registries.iter().enumerate() {
            snap.merge_prefixed(&w.snapshot(), &format!("worker{i}."));
        }
        snap
    }

    /// Enqueues one request, blocking while the bounded queue is full
    /// (backpressure — the batch path). The returned [`Ticket`] resolves
    /// to the response. Serve connections use [`Engine::admit`] instead,
    /// which sheds rather than blocking the reader.
    pub fn submit(&self, req: SolveRequest) -> Ticket {
        let id = req.id;
        let (reply, rx) = mpsc::sync_channel(1);
        let job = Job {
            req: Box::new(req),
            reply,
        };
        self.queue_depth.add(1);
        self.queue.push_blocking(job);
        Ticket { rx, id }
    }

    /// Non-blocking admission with load shedding: when the queue is full,
    /// `policy` decides who gets the [`ErrorKind::Overloaded`] answer —
    /// the newcomer ([`ShedPolicy::Reject`], returned as
    /// [`AdmitResult::Shed`]) or the oldest queued request
    /// ([`ShedPolicy::Oldest`], whose *ticket* resolves to `Overloaded`
    /// while the newcomer is admitted). Shed responses carry a
    /// `retry_after_ms` hint; every shed increments
    /// `engine.shed.{reject|oldest}` and is recorded by the flight
    /// recorder.
    pub fn admit(&self, req: SolveRequest, policy: ShedPolicy) -> AdmitResult {
        let id = req.id;
        let trace_id = req.trace_id.clone();
        let (reply, rx) = mpsc::sync_channel(1);
        let job = Job {
            req: Box::new(req),
            reply,
        };
        match self.queue.try_admit(job, policy) {
            Admission::Admitted { victim: None } => {
                self.queue_depth.add(1);
                AdmitResult::Admitted(Ticket { rx, id })
            }
            Admission::Admitted {
                victim: Some(victim),
            } => {
                // net queue length unchanged: one in, one out
                let resp = self.shed_response(victim.req.id, victim.req.trace_id.clone(), policy);
                let _ = victim.reply.send(resp); // victim's ticket resolves now
                AdmitResult::Admitted(Ticket { rx, id })
            }
            Admission::Rejected(job) => {
                drop(job); // our own reply channel; the response goes back directly
                AdmitResult::Shed(Box::new(self.shed_response(id, trace_id, policy)))
            }
        }
    }

    /// Builds one `Overloaded` response and books the shed (counters +
    /// flight recorder).
    fn shed_response(
        &self,
        id: u64,
        trace_id: Option<String>,
        policy: ShedPolicy,
    ) -> SolveResponse {
        self.registry.counter("engine.shed").inc();
        self.registry
            .counter(&format!("engine.shed.{policy}"))
            .inc();
        if let Some(t) = &self.tracer {
            t.record_instant(
                "engine.shed",
                trace_id.as_deref(),
                vec![
                    ("id", id.into()),
                    ("policy", policy.to_string().into()),
                    ("queue_len", self.queue.len().into()),
                ],
            );
        }
        let resp = SolveResponse::overloaded(id, self.retry_after_hint_ms());
        match trace_id {
            Some(t) => resp.with_trace_id(t),
            None => resp,
        }
    }

    /// Estimated milliseconds until a queue slot frees up: current backlog
    /// per worker times the recent-latency EWMA. Floors at 1ms; before any
    /// request has completed the EWMA seed is 1ms per backlog entry.
    fn retry_after_hint_ms(&self) -> u64 {
        let ewma_ns = match self.latency_ewma_ns.load(Ordering::Relaxed) {
            0 => 1_000_000, // no completions yet: assume 1ms requests
            n => n,
        };
        let backlog = self.queue.len() as u64 + 1;
        let ns = ewma_ns.saturating_mul(backlog) / self.workers.max(1) as u64;
        (ns / 1_000_000).max(1)
    }

    /// Solves a batch concurrently; the output order matches the input
    /// order.
    pub fn solve_batch(
        &self,
        requests: impl IntoIterator<Item = SolveRequest>,
    ) -> Vec<SolveResponse> {
        // Submission interleaves with solving: the bounded queue blocks this
        // thread whenever the pool is saturated.
        let tickets: Vec<Ticket> = requests.into_iter().map(|r| self.submit(r)).collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// Processes raw JSONL lines: solve lines are dispatched to the pool,
    /// malformed lines become structured [`ErrorKind::Parse`] failures, and
    /// control lines are rejected (they only make sense on a server
    /// connection). Blank lines are skipped. One response per non-blank
    /// line, in input order.
    pub fn process_lines<'l>(
        &self,
        lines: impl IntoIterator<Item = &'l str>,
    ) -> Vec<SolveResponse> {
        enum Pending {
            Ready(Box<SolveResponse>),
            InFlight(Ticket),
        }
        let pending: Vec<Pending> = lines
            .into_iter()
            .enumerate()
            .filter(|(_, line)| !line.trim().is_empty())
            .map(|(lineno, line)| match parse_line(line) {
                Ok(WireRequest::Solve(req)) => Pending::InFlight(self.submit(*req)),
                Ok(WireRequest::Control(ctl)) => Pending::Ready(Box::new(SolveResponse::failure(
                    0,
                    WireError::new(
                        ErrorKind::BadRequest,
                        format!(
                            "control request '{}' is only valid on a serve connection",
                            ctl.control
                        ),
                    ),
                ))),
                Err(mut e) => {
                    e.message = format!("line {}: {}", lineno + 1, e.message);
                    // best-effort correlation: a line that is valid JSON but
                    // not a valid request still gets its id/trace_id echoed
                    let (id, trace_id) = line_correlation(line);
                    let resp = SolveResponse::failure(id, e);
                    Pending::Ready(Box::new(match trace_id {
                        Some(t) => resp.with_trace_id(t),
                        None => resp,
                    }))
                }
            })
            .collect();
        pending
            .into_iter()
            .map(|p| match p {
                Pending::Ready(r) => *r,
                Pending::InFlight(t) => t.wait(),
            })
            .collect()
    }

    /// Closes the queue and joins every worker (also performed on drop).
    pub fn shutdown(self) {}
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.queue.close(); // workers exit once drained
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Candidate-cache key: everything enumeration depends on. Note the job set
/// is *not* part of the key — enumeration walks the processor × horizon
/// grid only. Heterogeneous requests key on the exact per-processor
/// `(wake, busy)` parameter bits (full equality, not a hash fingerprint, so
/// a collision can never serve another fleet's prices).
#[derive(Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    processors: u32,
    horizon: u32,
    restart_bits: u64,
    rate_bits: u64,
    /// Per-processor `(wake_cost, busy_rate)` bits for profiled requests
    /// (sleep ladders never affect interval pricing, so they stay out of
    /// the key); `None` for the affine default.
    profile_bits: Option<Vec<(u64, u64)>>,
    /// `(alpha, beta, gamma)` bits plus the frequency rungs for DVFS
    /// requests — every parameter the compiled candidate family's prices
    /// depend on. `None` for ladder-free requests, so a DVFS family can
    /// never be served where fixed-shape pricing was asked (or vice
    /// versa), even on an identical physical grid.
    ladder_bits: Option<(u64, u64, u64, Vec<u32>)>,
    policy: PolicyKey,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum PolicyKey {
    All,
    Single,
    MaxLen(u32),
}

impl From<CandidatePolicy> for PolicyKey {
    fn from(p: CandidatePolicy) -> Self {
        match p {
            CandidatePolicy::All => PolicyKey::All,
            CandidatePolicy::SingleSlots => PolicyKey::Single,
            CandidatePolicy::MaxLength(k) => PolicyKey::MaxLen(k),
        }
    }
}

type CandidateCache = HashMap<CacheKey, WarmHandle>;

fn worker_loop(
    worker_id: u32,
    cache_capacity: usize,
    queue: &SharedQueue,
    global: Arc<Registry>,
    local: Arc<Registry>,
    tracer: Option<Arc<sched_obs::trace::Tracer>>,
    ewma_ns: &AtomicU64,
) {
    // Everything the solver stack records ambiently on this thread lands in
    // the worker's own registry; cross-worker aggregates (queue depth,
    // request latency) go through handles on the global registry. The
    // shared flight recorder (if any) receives every span and decision
    // event this worker's solves emit.
    sched_obs::set_thread(Some(local));
    sched_obs::trace::set_thread(tracer);
    let queue_depth = global.gauge("engine.queue.depth");
    let requests = global.counter("engine.requests");
    let latency = global.histogram("engine.request.latency_ns");
    let mut cache = CandidateCache::new();
    while let Some(job) = queue.pop_blocking() {
        queue_depth.add(-1);
        requests.inc();
        let t0 = Instant::now();
        let response = serve_request(worker_id, cache_capacity, &mut cache, &job.req);
        let elapsed_ns = t0.elapsed().as_nanos() as u64;
        latency.record(elapsed_ns);
        // racy read-modify-write is fine: this feeds a hint, not a metric
        let prev = ewma_ns.load(Ordering::Relaxed);
        let next = if prev == 0 {
            elapsed_ns
        } else {
            prev - prev / 8 + elapsed_ns / 8
        };
        ewma_ns.store(next, Ordering::Relaxed);
        let _ = job.reply.send(response); // receiver may have hung up
    }
}

/// What a validated request asks the solver to do.
struct Plan {
    policy: CandidatePolicy,
    lazy: bool,
    parallel: bool,
    goal: Goal,
}

enum Goal {
    All,
    Prize { target: f64, epsilon: f64 },
    PrizeExact { target: f64 },
}

fn plan(req: &SolveRequest) -> Result<Plan, WireError> {
    if !version_supported(req.version) {
        return Err(WireError::new(
            ErrorKind::UnsupportedVersion,
            format!(
                "protocol version {} not supported \
                 (expected {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})",
                req.version
            ),
        ));
    }
    req.instance
        .validate()
        .map_err(|e| WireError::new(ErrorKind::InvalidInstance, e.to_string()))?;
    // The cost constructors assert their parameters; reject over the wire
    // instead of letting a bad request panic (and kill) a worker thread.
    if let Some(ladder) = &req.freq_ladder {
        if req.profiles.is_some() {
            return Err(WireError::new(
                ErrorKind::BadRequest,
                "freq_ladder and profiles are mutually exclusive",
            ));
        }
        if req.policy.is_some() {
            return Err(WireError::new(
                ErrorKind::BadRequest,
                "freq_ladder requests use the compiled DVFS candidate family; \
                 `policy` is not applicable",
            ));
        }
        if req.mode != SolveMode::ScheduleAll {
            return Err(WireError::new(
                ErrorKind::BadRequest,
                "freq_ladder requests support ScheduleAll only",
            ));
        }
        ladder.validate().map_err(|e| {
            WireError::new(ErrorKind::BadRequest, format!("invalid freq_ladder: {e}"))
        })?;
        if !(req.restart.is_finite() && req.restart >= 0.0) {
            return Err(WireError::new(
                ErrorKind::BadRequest,
                format!(
                    "wake cost (restart) must be finite and non-negative (got {})",
                    req.restart
                ),
            ));
        }
        return Ok(Plan {
            policy: CandidatePolicy::All,
            lazy: req.lazy.unwrap_or(true),
            parallel: req.parallel.unwrap_or(false),
            goal: Goal::All,
        });
    }
    if let Some(job) = req.instance.jobs.iter().position(|j| j.work_units() > 1) {
        return Err(WireError::new(
            ErrorKind::BadRequest,
            format!("job {job} declares a work requirement but the request has no freq_ladder"),
        ));
    }
    match &req.profiles {
        Some(profiles) => {
            validate_profiles(profiles, req.instance.num_processors)
                .map_err(|e| WireError::new(ErrorKind::BadRequest, e.to_string()))?;
        }
        None => {
            if !(req.restart.is_finite()
                && req.rate.is_finite()
                && req.restart >= 0.0
                && req.rate >= 0.0)
            {
                return Err(WireError::new(
                    ErrorKind::BadRequest,
                    format!(
                        "restart/rate must be finite and non-negative (got {}, {})",
                        req.restart, req.rate
                    ),
                ));
            }
            if req.restart + req.rate <= 0.0 {
                return Err(WireError::new(
                    ErrorKind::BadRequest,
                    "restart and rate cannot both be zero: awake intervals must cost something",
                ));
            }
        }
    }
    let policy = match &req.policy {
        None => CandidatePolicy::All,
        Some(s) => s
            .parse()
            .map_err(|e| WireError::new(ErrorKind::BadRequest, e))?,
    };
    let need_target = || {
        req.target
            .filter(|t| t.is_finite() && *t > 0.0)
            .ok_or_else(|| {
                WireError::new(
                    ErrorKind::BadRequest,
                    "prize-collecting modes require a finite positive `target`",
                )
            })
    };
    let goal = match req.mode {
        SolveMode::ScheduleAll => Goal::All,
        SolveMode::PrizeCollecting => {
            let epsilon = req.epsilon.unwrap_or(0.1);
            if !(epsilon > 0.0 && epsilon < 1.0) {
                return Err(WireError::new(
                    ErrorKind::BadRequest,
                    format!("epsilon {epsilon} outside (0, 1)"),
                ));
            }
            Goal::Prize {
                target: need_target()?,
                epsilon,
            }
        }
        SolveMode::PrizeCollectingExact => Goal::PrizeExact {
            target: need_target()?,
        },
    };
    Ok(Plan {
        policy,
        lazy: req.lazy.unwrap_or(true),
        parallel: req.parallel.unwrap_or(false),
        goal,
    })
}

fn serve_request(
    worker_id: u32,
    cache_capacity: usize,
    cache: &mut CandidateCache,
    req: &SolveRequest,
) -> SolveResponse {
    // Resolve the request's trace id (stamping a deterministic `req-<id>`
    // when the caller sent none) and make it this thread's ambient id for
    // the duration of the request, so every span and decision event the
    // solve emits — and the response, success or failure — carries it.
    let trace_id = req
        .trace_id
        .clone()
        .unwrap_or_else(|| format!("req-{}", req.id));
    sched_obs::trace::set_trace_id(Some(&trace_id));
    let response = {
        let _span = sched_obs::span!("engine.request_ns");
        serve_request_planned(worker_id, cache_capacity, cache, req)
    };
    if !response.ok {
        if let Some(t) = sched_obs::trace::active_tracer() {
            t.dump_to_stderr(&format!("request {} failed, trace_id={trace_id}", req.id));
        }
    }
    sched_obs::trace::set_trace_id(None);
    response.with_trace_id(trace_id)
}

fn serve_request_planned(
    worker_id: u32,
    cache_capacity: usize,
    cache: &mut CandidateCache,
    req: &SolveRequest,
) -> SolveResponse {
    let plan = match plan(req) {
        Ok(p) => p,
        Err(e) => return SolveResponse::failure(req.id, e),
    };
    if req.freq_ladder.is_some() {
        return serve_dvfs_request(worker_id, cache_capacity, cache, req, &plan);
    }

    // Profiled pricing ignores restart/rate entirely, so their bits are
    // normalized out of the key — otherwise two clients sending the same
    // fleet with different (ignored) affine fields would re-enumerate and
    // double-occupy the bounded cache for one identical family.
    let key = CacheKey {
        processors: req.instance.num_processors,
        horizon: req.instance.horizon,
        restart_bits: if req.profiles.is_some() {
            0
        } else {
            req.restart.to_bits()
        },
        rate_bits: if req.profiles.is_some() {
            0
        } else {
            req.rate.to_bits()
        },
        profile_bits: req.profiles.as_ref().map(|ps| {
            ps.iter()
                .map(|p| (p.wake_cost.to_bits(), p.busy_rate.to_bits()))
                .collect()
        }),
        ladder_bits: None,
        policy: plan.policy.into(),
    };
    // plan() has vetted the parameters, so neither constructor can assert
    let cost: Box<dyn EnergyCost> = match &req.profiles {
        Some(profiles) => Box::new(ProfileCost::new(profiles)),
        None => Box::new(AffineCost::new(req.restart, req.rate)),
    };
    let options = SolveOptions {
        lazy: plan.lazy,
        parallel: plan.parallel,
    };
    let cache_hit = cache.contains_key(&key);
    sched_obs::counter_add(
        if cache_hit {
            "engine.cache.hits"
        } else {
            "engine.cache.misses"
        },
        1,
    );
    if !cache_hit {
        if cache.len() >= cache_capacity {
            cache.clear(); // simplest bound; capacity is generous
        }
        cache.insert(key.clone(), WarmHandle::with_options(plan.policy, options));
    }
    let handle = cache.get_mut(&key).expect("just inserted");
    handle.set_options(options);
    // Identical cost bits are part of the key, so on a hit the handle's
    // checksum always matches and this returns the cached family without
    // re-enumerating.
    let family = handle.family(&req.instance, cost.as_ref());

    let t0 = Instant::now();
    let outcome = match plan.goal {
        // The warm path: consecutive schedule_all requests on one grid reuse
        // the reduction and every gain whose window content did not change.
        // Job content hashes are the pairing keys (wire requests carry no
        // stable job identity).
        Goal::All => handle.solve(&req.instance, &content_keys(&req.instance), cost.as_ref()),
        Goal::Prize { target, epsilon } => {
            Solver::with_shared_candidates(&req.instance, Arc::clone(&family))
                .lazy(plan.lazy)
                .parallel(plan.parallel)
                .prize_collecting(target, epsilon)
        }
        Goal::PrizeExact { target } => {
            Solver::with_shared_candidates(&req.instance, Arc::clone(&family))
                .lazy(plan.lazy)
                .parallel(plan.parallel)
                .prize_collecting_exact(target)
        }
    };
    let solve_micros = t0.elapsed().as_micros() as u64;

    match outcome {
        Ok(schedule) => SolveResponse::success(
            req.id,
            schedule,
            SolveMetrics {
                solve_micros,
                candidates: family.len() as u64,
                worker: worker_id,
                cache_hit,
            },
        ),
        Err(e) => {
            SolveResponse::failure(req.id, WireError::new(ErrorKind::Infeasible, e.to_string()))
        }
    }
}

/// The DVFS solve path: compiles the request into the speed-scaling
/// virtual grid, solves it through the same warm-start candidate cache
/// (keyed by the ladder's parameter bits), and answers with the physical
/// schedule plus per-interval `freq_levels`.
fn serve_dvfs_request(
    worker_id: u32,
    cache_capacity: usize,
    cache: &mut CandidateCache,
    req: &SolveRequest,
    plan: &Plan,
) -> SolveResponse {
    let ladder = req.freq_ladder.as_ref().expect("caller checked");
    let dvfs = DvfsInstance {
        num_processors: req.instance.num_processors,
        horizon: req.instance.horizon,
        wake_cost: req.restart,
        ladder: ladder.clone(),
        jobs: req.instance.jobs.clone(),
    };
    let compiled = match dvfs.compile() {
        Ok(c) => c,
        Err(e) => {
            return SolveResponse::failure(
                req.id,
                WireError::new(ErrorKind::BadRequest, e.to_string()),
            )
        }
    };
    let key = CacheKey {
        processors: req.instance.num_processors,
        horizon: req.instance.horizon,
        restart_bits: req.restart.to_bits(),
        rate_bits: 0,
        profile_bits: None,
        ladder_bits: Some((
            ladder.alpha.to_bits(),
            ladder.beta.to_bits(),
            ladder.gamma.to_bits(),
            ladder.freqs.clone(),
        )),
        policy: PolicyKey::All,
    };
    let options = SolveOptions {
        lazy: plan.lazy,
        parallel: plan.parallel,
    };
    let cache_hit = cache.contains_key(&key);
    sched_obs::counter_add(
        if cache_hit {
            "engine.cache.hits"
        } else {
            "engine.cache.misses"
        },
        1,
    );
    if !cache_hit {
        if cache.len() >= cache_capacity {
            cache.clear();
        }
        cache.insert(
            key.clone(),
            WarmHandle::with_options(CandidatePolicy::All, options),
        );
    }
    let handle = cache.get_mut(&key).expect("just inserted");
    handle.set_options(options);
    // Enumerating the compiled grid with the DvfsCost oracle reproduces the
    // explicit candidate family bit for bit (proved in sched-core), so the
    // cached family is interchangeable with `compiled.candidates`.
    let cost = DvfsCost::new(&dvfs);
    let family = handle.family(&compiled.instance, &cost);

    let t0 = Instant::now();
    let outcome = handle.solve(&compiled.instance, &content_keys(&compiled.instance), &cost);
    let solve_micros = t0.elapsed().as_micros() as u64;

    match outcome {
        Ok(schedule) => {
            let (physical, freq_levels) =
                compiled.to_physical_schedule(&compiled.decompile(&schedule));
            let mut resp = SolveResponse::success(
                req.id,
                physical,
                SolveMetrics {
                    solve_micros,
                    candidates: family.len() as u64,
                    worker: worker_id,
                    cache_hit,
                },
            );
            resp.freq_levels = Some(freq_levels);
            resp
        }
        Err(e) => {
            SolveResponse::failure(req.id, WireError::new(ErrorKind::Infeasible, e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::{Instance, Job as CoreJob, SlotRef};

    fn inst(t: u32) -> Instance {
        Instance::new(
            1,
            t,
            vec![
                CoreJob::unit(vec![SlotRef::new(0, 0)]),
                CoreJob::unit(vec![SlotRef::new(0, t - 1)]),
            ],
        )
    }

    fn schedule_all(id: u64, instance: Instance, restart: f64, rate: f64) -> SolveRequest {
        SolveRequest::builder(id, instance)
            .affine(restart, rate)
            .build()
    }

    /// A request heavy enough (dense 2×300 grid, 600 jobs) to occupy a
    /// worker for tens of milliseconds — long enough for a test thread to
    /// observably fill the queue behind it.
    fn stall_request(id: u64) -> SolveRequest {
        let t = 300;
        let jobs = (0..600)
            .map(|j| CoreJob::unit(vec![SlotRef::new((j % 2) as u32, (j as u32 / 2) % t)]))
            .collect();
        SolveRequest::builder(id, Instance::new(2, t, jobs))
            .affine(5.0, 1.0)
            .build()
    }

    #[test]
    fn batch_preserves_input_order_and_matches_direct_solves() {
        let engine = Engine::new(EngineConfig::with_workers(4));
        let requests: Vec<SolveRequest> = (0..24)
            .map(|i| schedule_all(1000 + i, inst(4 + (i % 5) as u32), 10.0, 1.0))
            .collect();
        let responses = engine.solve_batch(requests.clone());
        assert_eq!(responses.len(), 24);
        for (req, resp) in requests.iter().zip(&responses) {
            assert_eq!(resp.id, req.id, "order not preserved");
            assert!(resp.ok, "unexpected failure: {:?}", resp.error);
            let cost = AffineCost::new(req.restart, req.rate);
            let direct = Solver::new(&req.instance, &cost).schedule_all().unwrap();
            let got = resp.schedule.as_ref().unwrap();
            assert_eq!(got.total_cost, direct.total_cost, "cost mismatch");
        }
    }

    #[test]
    fn candidate_cache_hits_across_requests_on_same_grid() {
        let engine = Engine::new(EngineConfig::with_workers(1));
        let reqs: Vec<SolveRequest> = (0..6).map(|i| schedule_all(i, inst(6), 3.0, 1.0)).collect();
        let responses = engine.solve_batch(reqs);
        let hits: Vec<bool> = responses
            .iter()
            .map(|r| r.metrics.unwrap().cache_hit)
            .collect();
        assert!(!hits[0], "first request must enumerate");
        assert!(
            hits[1..].iter().all(|&h| h),
            "single worker must reuse the family: {hits:?}"
        );
    }

    #[test]
    fn structured_errors_for_bad_requests() {
        let engine = Engine::new(EngineConfig::with_workers(2));

        let wrong_version = SolveRequest::builder(1, inst(4))
            .affine(3.0, 1.0)
            .version(99)
            .build();
        let mut missing_target = schedule_all(2, inst(4), 3.0, 1.0);
        missing_target.mode = SolveMode::PrizeCollecting;
        let bad_policy = SolveRequest::builder(3, inst(4))
            .affine(3.0, 1.0)
            .policy("bogus")
            .build();
        let mut bad_instance = schedule_all(4, inst(4), 3.0, 1.0);
        bad_instance.instance.jobs[0].allowed[0].time = 99;
        let infeasible = SolveRequest::builder(5, inst(4))
            .affine(3.0, 1.0)
            .prize_collecting_exact(50.0)
            .build();

        let responses = engine.solve_batch(vec![
            wrong_version,
            missing_target,
            bad_policy,
            bad_instance,
            infeasible,
        ]);
        let kinds: Vec<ErrorKind> = responses
            .iter()
            .map(|r| r.error.as_ref().expect("all must fail").kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                ErrorKind::UnsupportedVersion,
                ErrorKind::BadRequest,
                ErrorKind::BadRequest,
                ErrorKind::InvalidInstance,
                ErrorKind::Infeasible,
            ]
        );
        assert!(responses.iter().all(|r| !r.ok));
    }

    #[test]
    fn degenerate_cost_parameters_cannot_kill_workers() {
        // Regression: restart=rate=0 (or NaN) used to trip AffineCost::new's
        // assert inside a worker thread, killing it permanently.
        let engine = Engine::new(EngineConfig::with_workers(1));
        let zero = schedule_all(1, inst(4), 0.0, 0.0);
        let nan = schedule_all(2, inst(4), f64::NAN, 1.0);
        let negative = schedule_all(3, inst(4), -1.0, 1.0);
        let fine = schedule_all(4, inst(4), 3.0, 1.0);

        let responses = engine.solve_batch(vec![zero, nan, negative, fine]);
        for r in &responses[..3] {
            assert_eq!(r.error.as_ref().unwrap().kind, ErrorKind::BadRequest);
        }
        // the single worker survived the bad requests and still solves
        assert!(responses[3].ok, "{:?}", responses[3].error);
    }

    #[test]
    fn profiled_requests_solve_heterogeneously_and_cache_by_fleet() {
        use sched_core::PowerProfile;
        let engine = Engine::new(EngineConfig::with_workers(1));
        // one job runnable on either processor; proc 1 is much cheaper
        let instance = Instance::new(
            2,
            3,
            vec![CoreJob::unit(vec![SlotRef::new(0, 1), SlotRef::new(1, 1)])],
        );
        let cheap_p1 = vec![
            PowerProfile::affine(9.0, 2.0),
            PowerProfile::affine(1.0, 0.5),
        ];
        let cheap_p0 = vec![
            PowerProfile::affine(1.0, 0.5),
            PowerProfile::affine(9.0, 2.0),
        ];
        let profiled = |id: u64, profiles: Vec<PowerProfile>| {
            SolveRequest::builder(id, instance.clone())
                .profiles(profiles)
                .build()
        };
        let responses = engine.solve_batch(vec![
            profiled(1, cheap_p1.clone()),
            profiled(2, cheap_p1.clone()),
            profiled(3, cheap_p0),
            schedule_all(4, instance.clone(), 3.0, 1.0),
        ]);
        assert!(responses.iter().all(|r| r.ok), "{responses:?}");
        let placed = |r: &SolveResponse| {
            r.schedule.as_ref().unwrap().assignments[0]
                .as_ref()
                .unwrap()
                .proc
        };
        assert_eq!(placed(&responses[0]), 1, "cheap processor must win");
        assert_eq!(placed(&responses[2]), 0, "flipped fleet flips the pick");
        assert_eq!(responses[0].schedule.as_ref().unwrap().total_cost, 1.5);
        // identical fleets hit the cache; a different fleet must not
        let hits: Vec<bool> = responses
            .iter()
            .map(|r| r.metrics.unwrap().cache_hit)
            .collect();
        assert_eq!(hits, vec![false, true, false, false]);
        // matches a direct profiled solve
        let cost = ProfileCost::new(&cheap_p1);
        let direct = Solver::new(&instance, &cost).schedule_all().unwrap();
        assert_eq!(
            responses[0].schedule.as_ref().unwrap().total_cost,
            direct.total_cost
        );
    }

    #[test]
    fn invalid_profiles_are_rejected_not_fatal() {
        use sched_core::{PowerProfile, SleepState};
        let engine = Engine::new(EngineConfig::with_workers(1));
        // wrong count
        let short = SolveRequest::builder(
            1,
            Instance::new(2, 3, vec![CoreJob::unit(vec![SlotRef::new(0, 0)])]),
        )
        .profiles(vec![PowerProfile::affine(1.0, 1.0)])
        .build();
        // non-monotone ladder, built field-by-field as a hostile client would
        let mut bad_ladder = SolveRequest::builder(2, inst(3))
            .profiles(vec![PowerProfile::affine(4.0, 1.0)])
            .build();
        bad_ladder.profiles.as_mut().unwrap()[0].sleep_states = vec![
            SleepState {
                idle_rate: 0.2,
                wake_cost: 2.0,
            },
            SleepState {
                idle_rate: 0.5,
                wake_cost: 3.0,
            },
        ];
        let fine = schedule_all(3, inst(4), 3.0, 1.0);
        let responses = engine.solve_batch(vec![short, bad_ladder, fine]);
        assert_eq!(
            responses[0].error.as_ref().unwrap().kind,
            ErrorKind::BadRequest
        );
        assert!(responses[0]
            .error
            .as_ref()
            .unwrap()
            .message
            .contains("mismatch"));
        assert_eq!(
            responses[1].error.as_ref().unwrap().kind,
            ErrorKind::BadRequest
        );
        // the single worker survived both and still solves
        assert!(responses[2].ok, "{:?}", responses[2].error);
    }

    #[test]
    fn dvfs_requests_solve_and_return_freq_levels() {
        use sched_core::FreqLadder;
        let engine = Engine::new(EngineConfig::with_workers(1));
        // The documented greedy-vs-exact DVFS instance: P(1)=1, P(2)=4,
        // wake 1. Greedy stretches the bottom level first and lands at 9.
        let instance = Instance::new(
            1,
            3,
            vec![
                CoreJob::window(1.0, 0, 0, 1).with_work(2),
                CoreJob::window(1.0, 0, 1, 2),
                CoreJob::window(1.0, 0, 2, 3),
            ],
        );
        let ladder = FreqLadder::new(1.0, 0.0, 2.0, vec![1, 2]);
        let req = |id: u64| {
            SolveRequest::builder(id, instance.clone())
                .affine(1.0, 0.0)
                .freq_ladder(ladder.clone())
                .build()
        };
        let responses = engine.solve_batch(vec![req(1), req(2)]);
        for resp in &responses {
            assert!(resp.ok, "{:?}", resp.error);
            let schedule = resp.schedule.as_ref().unwrap();
            assert_eq!(schedule.total_cost, 9.0);
            assert_eq!(schedule.scheduled_count, 3);
            let levels = resp.freq_levels.as_ref().expect("DVFS response levels");
            assert_eq!(levels.len(), schedule.awake.len());
            assert!(levels.iter().all(|&l| l < 2));
        }
        // identical grid + ladder: the compiled family is cached
        let hits: Vec<bool> = responses
            .iter()
            .map(|r| r.metrics.unwrap().cache_hit)
            .collect();
        assert_eq!(hits, vec![false, true]);
        // direct solve agrees with the engine's decompiled answer
        let dvfs = DvfsInstance {
            num_processors: 1,
            horizon: 3,
            wake_cost: 1.0,
            ladder: ladder.clone(),
            jobs: instance.jobs.clone(),
        };
        let direct = sched_core::solve_dvfs(&dvfs).unwrap();
        assert_eq!(direct.total_cost, 9.0);
    }

    #[test]
    fn dvfs_misuse_is_rejected_not_fatal() {
        use sched_core::{FreqLadder, PowerProfile};
        let engine = Engine::new(EngineConfig::with_workers(1));
        let ladder = FreqLadder::new(1.0, 0.0, 2.0, vec![1, 2]);
        // ladder + profiles is ambiguous pricing
        let both = SolveRequest::builder(1, inst(4))
            .affine(1.0, 0.0)
            .freq_ladder(ladder.clone())
            .profiles(vec![PowerProfile::affine(3.0, 1.0)])
            .build();
        // a work requirement without a ladder has no frequency to run at
        let mut orphan_work = SolveRequest::builder(2, inst(4)).affine(3.0, 1.0).build();
        orphan_work.instance.jobs[0] = orphan_work.instance.jobs[0].clone().with_work(2);
        // prize-collecting over the compiled grid is not offered
        let mut prize = SolveRequest::builder(3, inst(4))
            .affine(1.0, 0.0)
            .prize_collecting(1.0)
            .build();
        prize.freq_ladder = Some(ladder);
        let fine = schedule_all(4, inst(4), 3.0, 1.0);
        let responses = engine.solve_batch(vec![both, orphan_work, prize, fine]);
        for r in &responses[..3] {
            assert_eq!(r.error.as_ref().unwrap().kind, ErrorKind::BadRequest);
        }
        assert!(responses[3].ok, "{:?}", responses[3].error);
    }

    #[test]
    fn v1_requests_still_served() {
        let engine = Engine::new(EngineConfig::with_workers(1));
        let v1 = SolveRequest::builder(7, inst(4))
            .affine(3.0, 1.0)
            .version(1)
            .build();
        let responses = engine.solve_batch(vec![v1]);
        assert!(responses[0].ok, "{:?}", responses[0].error);
        assert_eq!(responses[0].version, PROTOCOL_VERSION);
    }

    #[test]
    fn process_lines_interleaves_parse_errors_in_order() {
        let engine = Engine::new(EngineConfig::with_workers(2));
        let good = serde_json::to_string(&schedule_all(7, inst(4), 3.0, 1.0)).unwrap();
        let lines = [
            good.as_str(),
            "{\"truncated\":",
            "",
            good.as_str(),
            "{\"version\":1,\"control\":\"shutdown\"}",
        ];
        let responses = engine.process_lines(lines);
        assert_eq!(responses.len(), 4); // blank line skipped
        assert!(responses[0].ok);
        assert_eq!(responses[1].error.as_ref().unwrap().kind, ErrorKind::Parse);
        assert!(responses[1]
            .error
            .as_ref()
            .unwrap()
            .message
            .contains("line 2"));
        assert!(responses[2].ok);
        assert_eq!(
            responses[3].error.as_ref().unwrap().kind,
            ErrorKind::BadRequest
        );
    }

    #[test]
    fn all_three_modes_solve_through_the_pool() {
        let engine = Engine::new(EngineConfig::with_workers(3));
        let instance = Instance::new(
            1,
            4,
            vec![CoreJob::window(2.0, 0, 0, 2), CoreJob::window(3.0, 0, 2, 4)],
        );
        let responses = engine.solve_batch(vec![
            schedule_all(1, instance.clone(), 1.0, 1.0),
            SolveRequest::builder(2, instance.clone())
                .affine(1.0, 1.0)
                .prize_collecting(3.0)
                .epsilon(0.25)
                .build(),
            SolveRequest::builder(3, instance.clone())
                .affine(1.0, 1.0)
                .prize_collecting_exact(5.0)
                .build(),
        ]);
        assert!(responses.iter().all(|r| r.ok), "{responses:?}");
        assert!(responses[1].schedule.as_ref().unwrap().scheduled_value >= 0.75 * 3.0 - 1e-9);
        assert!(responses[2].schedule.as_ref().unwrap().scheduled_value >= 5.0 - 1e-9);
    }

    #[test]
    fn tiny_queue_applies_backpressure_without_deadlock() {
        let engine = Engine::new(EngineConfig {
            workers: 2,
            queue_depth: 1,
            cache_capacity: 4,
            ..Default::default()
        });
        let responses = engine
            .solve_batch((0..40).map(|i| schedule_all(i, inst(3 + (i % 4) as u32), 2.0, 1.0)));
        assert_eq!(responses.len(), 40);
        assert!(responses.iter().all(|r| r.ok));
        let ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        assert_eq!(ids, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn shared_queue_sheds_deterministically() {
        // the queue alone, no workers: admission decisions are exact
        let q = SharedQueue::new(2);
        let job = |id: u64| Job {
            req: Box::new(schedule_all(id, inst(4), 1.0, 1.0)),
            reply: mpsc::sync_channel(1).0,
        };
        assert!(matches!(
            q.try_admit(job(1), ShedPolicy::Reject),
            Admission::Admitted { victim: None }
        ));
        assert!(matches!(
            q.try_admit(job(2), ShedPolicy::Reject),
            Admission::Admitted { victim: None }
        ));
        // full: Reject bounces the newcomer, queue untouched
        match q.try_admit(job(3), ShedPolicy::Reject) {
            Admission::Rejected(j) => assert_eq!(j.req.id, 3),
            _ => panic!("expected rejection at capacity"),
        }
        assert_eq!(q.len(), 2);
        // full: Oldest evicts the front (id 1), admits the newcomer
        match q.try_admit(job(4), ShedPolicy::Oldest) {
            Admission::Admitted {
                victim: Some(victim),
            } => assert_eq!(victim.req.id, 1),
            _ => panic!("expected oldest-shed at capacity"),
        }
        assert_eq!(q.len(), 2);
        // FIFO order of the survivors, then clean close
        assert_eq!(q.pop_blocking().unwrap().req.id, 2);
        assert_eq!(q.pop_blocking().unwrap().req.id, 4);
        q.close();
        assert!(q.pop_blocking().is_none());
    }

    #[test]
    fn admit_sheds_structured_overloaded_under_reject() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            queue_depth: 1,
            cache_capacity: 4,
            ..Default::default()
        });
        // occupy the single worker for a while
        let stall = engine.submit(stall_request(0));
        // burst far past capacity without draining: depth 1 must shed most
        let mut admitted = Vec::new();
        let mut shed = 0u32;
        for i in 1..=50u64 {
            match engine.admit(schedule_all(i, inst(4), 2.0, 1.0), ShedPolicy::Reject) {
                AdmitResult::Admitted(t) => admitted.push(t),
                AdmitResult::Shed(resp) => {
                    assert!(!resp.ok);
                    assert_eq!(resp.id, i, "shed response echoes the newcomer's id");
                    assert_eq!(resp.error.as_ref().unwrap().kind, ErrorKind::Overloaded);
                    assert!(resp.retry_after_ms.unwrap() >= 1, "hint must be positive");
                    shed += 1;
                }
            }
        }
        assert!(shed > 0, "a burst of 50 into a depth-1 queue must shed");
        assert!(stall.wait().ok);
        // Reject never touches queued work: every admitted ticket solves
        for t in admitted {
            let r = t.wait();
            assert!(r.ok, "{:?}", r.error);
        }
        // sheds are counted
        let snap = engine.metrics_snapshot();
        let count = |name: &str| {
            snap.counters
                .iter()
                .find(|c| c.name == name)
                .map_or(0, |c| c.value)
        };
        assert_eq!(count("engine.shed"), u64::from(shed));
        assert_eq!(count("engine.shed.reject"), u64::from(shed));
    }

    #[test]
    fn admit_oldest_answers_the_victims_ticket_and_admits_the_newcomer() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            queue_depth: 1,
            cache_capacity: 4,
            ..Default::default()
        });
        let stall = engine.submit(stall_request(0));
        // wait until the worker has dequeued the stall, so the queue is
        // observably empty before the two admissions race nothing
        let t0 = Instant::now();
        while engine.queue_len() > 0 {
            assert!(t0.elapsed().as_secs() < 10, "worker never took the stall");
            std::thread::yield_now();
        }
        let first = match engine.admit(
            SolveRequest::builder(1, inst(4))
                .affine(2.0, 1.0)
                .trace_id("victim-1")
                .build(),
            ShedPolicy::Oldest,
        ) {
            AdmitResult::Admitted(t) => t,
            AdmitResult::Shed(r) => panic!("empty queue must admit: {r:?}"),
        };
        let second = match engine.admit(schedule_all(2, inst(4), 2.0, 1.0), ShedPolicy::Oldest) {
            AdmitResult::Admitted(t) => t,
            AdmitResult::Shed(r) => panic!("oldest policy never sheds the newcomer: {r:?}"),
        };
        // the first request was evicted: its ticket resolves to Overloaded
        // with its own correlation keys and a positive hint
        let victim = first.wait();
        assert!(!victim.ok);
        assert_eq!(victim.id, 1);
        assert_eq!(victim.error.as_ref().unwrap().kind, ErrorKind::Overloaded);
        assert_eq!(victim.trace_id.as_deref(), Some("victim-1"));
        assert!(victim.retry_after_ms.unwrap() >= 1);
        // the newcomer and the stall both solve
        assert!(stall.wait().ok);
        let r = second.wait();
        assert!(r.ok, "{:?}", r.error);
        let snap = engine.metrics_snapshot();
        let oldest = snap
            .counters
            .iter()
            .find(|c| c.name == "engine.shed.oldest")
            .map_or(0, |c| c.value);
        assert_eq!(oldest, 1);
    }
}
