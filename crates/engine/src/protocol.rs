//! The JSONL wire protocol: one JSON object per line, one response line per
//! request line, in request order.
//!
//! Two request shapes share a connection or batch file:
//!
//! * **solve requests** ([`SolveRequest`]) name a protocol `version`, a
//!   caller-chosen `id` (echoed back), a [`SolveMode`], the [`Instance`],
//!   and the affine cost parameters `restart`/`rate`. Optional fields —
//!   `policy` (`"all"` | `"single"` | `"maxlen:K"`), `target`/`epsilon` for
//!   the prize-collecting modes, `lazy`/`parallel` solver toggles — may be
//!   omitted entirely;
//! * **control requests** ([`ControlRequest`]) carry a `control` verb:
//!   `"ping"` (liveness probe), `"metrics"` (returns the engine's `obs/v1`
//!   telemetry snapshot in the ack's `obs` field), or `"shutdown"` (drain
//!   and stop a server).
//!
//! Every response is a [`SolveResponse`]: `ok` plus either a [`Schedule`]
//! and [`SolveMetrics`], or a structured [`WireError`] (`kind` + `message`).
//! Control requests are acknowledged with a schedule-less `ok` response
//! whose id echoes nothing (`0`).
//!
//! The protocol is versioned via [`PROTOCOL_VERSION`]; requests with an
//! unknown version are rejected with [`ErrorKind::UnsupportedVersion`]
//! rather than misinterpreted. Version 2 added the optional per-processor
//! `profiles` field (heterogeneous wake costs and sleep-state ladders);
//! version 1 requests remain valid — a missing `profiles` field means the
//! affine `(restart, rate)` default, so every v1 line parses and solves
//! exactly as before ([`MIN_PROTOCOL_VERSION`] tracks the oldest accepted
//! version). The `metrics` control verb and the response's optional `obs`
//! snapshot field are likewise additive: old clients never send the verb,
//! and parsers ignore fields they do not know, so the version window is
//! unchanged.

use sched_core::{Instance, PowerProfile, Schedule};
use sched_obs::Snapshot;
use serde::{Deserialize, Serialize};

/// Version stamped on every request and response. Bump on any incompatible
/// change to the wire structs.
pub const PROTOCOL_VERSION: u32 = 2;

/// Oldest protocol version still accepted. v1 (no `profiles` field) is a
/// strict subset of v2, so both are served.
pub const MIN_PROTOCOL_VERSION: u32 = 1;

/// Is `version` within the accepted window?
#[inline]
pub fn version_supported(version: u32) -> bool {
    (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version)
}

/// Which solver goal method a request invokes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveMode {
    /// Theorem 2.2.1: schedule every job.
    ScheduleAll,
    /// Theorem 2.3.1: schedule value `≥ (1−epsilon)·target`.
    PrizeCollecting,
    /// Theorem 2.3.3: schedule value `≥ target` exactly.
    PrizeCollectingExact,
}

/// One solve request line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SolveRequest {
    /// Protocol version; must equal [`PROTOCOL_VERSION`].
    pub version: u32,
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Solver goal method.
    pub mode: SolveMode,
    /// The scheduling instance (validated engine-side before solving).
    pub instance: Instance,
    /// Affine cost: fixed wake-up cost `α` (ignored when `profiles` is
    /// present).
    pub restart: f64,
    /// Affine cost: energy per awake slot (ignored when `profiles` is
    /// present).
    pub rate: f64,
    /// Per-processor power profiles (protocol v2). `None` = the affine
    /// `(restart, rate)` model on every processor — the v1 behavior.
    pub profiles: Option<Vec<PowerProfile>>,
    /// Candidate policy (`"all"` | `"single"` | `"maxlen:K"`); `None` = all.
    pub policy: Option<String>,
    /// Target value `Z` — required by the prize-collecting modes.
    pub target: Option<f64>,
    /// `ε ∈ (0, 1)` for [`SolveMode::PrizeCollecting`]; default `0.1`.
    pub epsilon: Option<f64>,
    /// Lazy-greedy toggle; `None` = solver default (on).
    pub lazy: Option<bool>,
    /// Parallel full-scan toggle; `None` = solver default (off).
    pub parallel: Option<bool>,
    /// Caller-chosen trace id for cross-process tracing. The engine stamps
    /// a deterministic one (`req-<id>`) when absent and echoes it on
    /// success *and* failure responses; worker-side spans and decision
    /// events are tagged with it. Optional and trailing like `profiles`
    /// and `obs`, so older peers interoperate unchanged.
    pub trace_id: Option<String>,
}

impl SolveRequest {
    /// A [`SolveMode::ScheduleAll`] request with every optional field unset.
    pub fn schedule_all(id: u64, instance: Instance, restart: f64, rate: f64) -> Self {
        Self {
            version: PROTOCOL_VERSION,
            id,
            mode: SolveMode::ScheduleAll,
            instance,
            restart,
            rate,
            profiles: None,
            policy: None,
            target: None,
            epsilon: None,
            lazy: None,
            parallel: None,
            trace_id: None,
        }
    }

    /// A [`SolveMode::ScheduleAll`] request priced by explicit per-processor
    /// profiles (the v2 heterogeneous form; `restart`/`rate` are stamped as
    /// zeros and ignored).
    pub fn schedule_all_profiled(id: u64, instance: Instance, profiles: Vec<PowerProfile>) -> Self {
        Self {
            profiles: Some(profiles),
            ..Self::schedule_all(id, instance, 0.0, 0.0)
        }
    }

    /// A [`SolveMode::PrizeCollecting`] request (`epsilon` defaults to 0.1
    /// engine-side when `None`).
    pub fn prize_collecting(
        id: u64,
        instance: Instance,
        restart: f64,
        rate: f64,
        target: f64,
        epsilon: Option<f64>,
    ) -> Self {
        Self {
            mode: SolveMode::PrizeCollecting,
            target: Some(target),
            epsilon,
            ..Self::schedule_all(id, instance, restart, rate)
        }
    }

    /// A [`SolveMode::PrizeCollectingExact`] request.
    pub fn prize_collecting_exact(
        id: u64,
        instance: Instance,
        restart: f64,
        rate: f64,
        target: f64,
    ) -> Self {
        Self {
            mode: SolveMode::PrizeCollectingExact,
            target: Some(target),
            ..Self::schedule_all(id, instance, restart, rate)
        }
    }
}

/// One control request line (server-level verbs).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ControlRequest {
    /// Protocol version; must equal [`PROTOCOL_VERSION`].
    pub version: u32,
    /// `"ping"`, `"metrics"`, or `"shutdown"`.
    pub control: String,
}

/// Machine-readable failure category of a [`WireError`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The line was not a well-formed request object.
    Parse,
    /// The request's protocol version is not supported.
    UnsupportedVersion,
    /// The request is well-formed but semantically invalid (bad policy,
    /// missing target, ε out of range, unknown control verb, …).
    BadRequest,
    /// The instance failed [`Instance::validate`].
    InvalidInstance,
    /// The solver proved the request infeasible (or the target exceeds the
    /// total instance value).
    Infeasible,
    /// The engine could not complete the request (worker failure).
    Internal,
}

/// Structured error carried by failed responses.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireError {
    /// Failure category.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Convenience constructor.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.message)
    }
}

/// Per-request engine measurements, reported on success.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SolveMetrics {
    /// Wall-clock time of the solve call itself, microseconds.
    pub solve_micros: u64,
    /// Candidate intervals the solver optimized over.
    pub candidates: u64,
    /// Worker index that served the request.
    pub worker: u32,
    /// Whether the candidate family came from the worker's cross-request
    /// cache (enumeration skipped).
    pub cache_hit: bool,
}

/// One response line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SolveResponse {
    /// Protocol version of the responder.
    pub version: u32,
    /// Echo of the request id (`0` for control acks and unparseable lines).
    pub id: u64,
    /// Whether the request was served.
    pub ok: bool,
    /// The computed schedule, on success.
    pub schedule: Option<Schedule>,
    /// The failure, when `ok` is false.
    pub error: Option<WireError>,
    /// Engine measurements, on success.
    pub metrics: Option<SolveMetrics>,
    /// `obs/v1` telemetry snapshot, set only on `metrics` control acks.
    /// Optional and trailing, so v1/v2 clients that never send the verb
    /// parse every response exactly as before.
    pub obs: Option<Snapshot>,
    /// Echo of the request's trace id (engine-stamped when the request
    /// carried none), present on success *and* failure so clients can
    /// correlate either outcome with their traces. Optional and trailing
    /// like `obs`.
    pub trace_id: Option<String>,
}

impl SolveResponse {
    /// Successful response.
    pub fn success(id: u64, schedule: Schedule, metrics: SolveMetrics) -> Self {
        Self {
            version: PROTOCOL_VERSION,
            id,
            ok: true,
            schedule: Some(schedule),
            error: None,
            metrics: Some(metrics),
            obs: None,
            trace_id: None,
        }
    }

    /// Failed response.
    pub fn failure(id: u64, error: WireError) -> Self {
        Self {
            version: PROTOCOL_VERSION,
            id,
            ok: false,
            schedule: None,
            error: Some(error),
            metrics: None,
            obs: None,
            trace_id: None,
        }
    }

    /// Acknowledgement of a control request.
    pub fn control_ack() -> Self {
        Self {
            version: PROTOCOL_VERSION,
            id: 0,
            ok: true,
            schedule: None,
            error: None,
            metrics: None,
            obs: None,
            trace_id: None,
        }
    }

    /// Same response with the trace id stamped (builder-style).
    pub fn with_trace_id(mut self, trace_id: impl Into<String>) -> Self {
        self.trace_id = Some(trace_id.into());
        self
    }

    /// Acknowledgement of a `metrics` control request, carrying the
    /// engine's telemetry snapshot.
    pub fn metrics_ack(snapshot: Snapshot) -> Self {
        Self {
            obs: Some(snapshot),
            ..Self::control_ack()
        }
    }
}

/// A parsed request line: solve work or a control verb.
#[derive(Clone, Debug)]
pub enum WireRequest {
    /// A solve request (boxed: the instance dominates the size).
    Solve(Box<SolveRequest>),
    /// A control request.
    Control(ControlRequest),
}

/// Parses one JSONL line into a [`WireRequest`].
///
/// Control objects are recognized first (they carry a `control` key a solve
/// request never has); anything else must parse as a [`SolveRequest`]. A
/// control request from an unknown protocol version is rejected here with
/// [`ErrorKind::UnsupportedVersion`] — its verb must never be acted on.
/// (Solve requests get the same version check engine-side, before solving.)
/// Otherwise the returned error is [`ErrorKind::Parse`] with the
/// solve-parse detail.
pub fn parse_line(line: &str) -> Result<WireRequest, WireError> {
    if let Ok(ctl) = serde_json::from_str::<ControlRequest>(line) {
        if !version_supported(ctl.version) {
            return Err(WireError::new(
                ErrorKind::UnsupportedVersion,
                format!(
                    "control protocol version {} not supported \
                     (expected {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})",
                    ctl.version
                ),
            ));
        }
        return Ok(WireRequest::Control(ctl));
    }
    match serde_json::from_str::<SolveRequest>(line) {
        Ok(req) => Ok(WireRequest::Solve(Box::new(req))),
        Err(e) => Err(WireError::new(
            ErrorKind::Parse,
            format!("malformed request line: {e}"),
        )),
    }
}

/// Lenient correlation envelope: just the `id` and `trace_id` of a request
/// line, with every other key ignored.
#[derive(Debug, Default, Deserialize)]
struct Correlation {
    id: Option<u64>,
    trace_id: Option<String>,
}

/// Best-effort extraction of `(id, trace_id)` from a request line that
/// failed full parsing, so even a `Parse`-kind failure response can carry
/// the caller's correlation keys. Lines that are not JSON objects at all
/// yield `(0, None)` — the same id control acks use for "no request".
pub fn line_correlation(line: &str) -> (u64, Option<String>) {
    match serde_json::from_str::<Correlation>(line) {
        Ok(c) => (c.id.unwrap_or(0), c.trace_id),
        Err(_) => (0, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::{Job, SlotRef};

    fn tiny() -> Instance {
        Instance::new(1, 4, vec![Job::unit(vec![SlotRef::new(0, 1)])])
    }

    #[test]
    fn request_round_trips_through_json() {
        let req = SolveRequest::prize_collecting(42, tiny(), 3.0, 1.0, 1.0, Some(0.25));
        let json = serde_json::to_string(&req).unwrap();
        let back: SolveRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, 42);
        assert_eq!(back.mode, SolveMode::PrizeCollecting);
        assert_eq!(back.target, Some(1.0));
        assert_eq!(back.epsilon, Some(0.25));
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn optional_fields_may_be_omitted() {
        let line = r#"{"version":1,"id":7,"mode":"ScheduleAll","instance":{"num_processors":1,"horizon":2,"jobs":[{"value":1,"allowed":[{"proc":0,"time":0}]}]},"restart":3,"rate":1}"#;
        let req = match parse_line(line).unwrap() {
            WireRequest::Solve(r) => r,
            other => panic!("expected solve, got {other:?}"),
        };
        assert_eq!(req.id, 7);
        assert!(req.policy.is_none() && req.target.is_none() && req.lazy.is_none());
    }

    #[test]
    fn v1_lines_without_profiles_still_parse() {
        // the exact shape every pre-profile client sends: version 1, no
        // `profiles` key — must keep parsing as the affine default
        let line = r#"{"version":1,"id":3,"mode":"ScheduleAll","instance":{"num_processors":1,"horizon":2,"jobs":[{"value":1,"allowed":[{"proc":0,"time":0}]}]},"restart":3,"rate":1}"#;
        let req = match parse_line(line).unwrap() {
            WireRequest::Solve(r) => r,
            other => panic!("expected solve, got {other:?}"),
        };
        assert_eq!(req.version, 1);
        assert!(req.profiles.is_none());
        assert!(version_supported(1) && version_supported(PROTOCOL_VERSION));
        assert!(!version_supported(0) && !version_supported(PROTOCOL_VERSION + 1));
    }

    #[test]
    fn profiled_request_round_trips() {
        use sched_core::{PowerProfile, SleepState};
        let profiles = vec![PowerProfile::with_ladder(
            8.0,
            1.0,
            vec![SleepState {
                idle_rate: 0.25,
                wake_cost: 2.0,
            }],
        )];
        let req = SolveRequest::schedule_all_profiled(11, tiny(), profiles.clone());
        assert_eq!(req.version, PROTOCOL_VERSION);
        let json = serde_json::to_string(&req).unwrap();
        let back: SolveRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.profiles, Some(profiles));
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn control_lines_are_recognized_first() {
        match parse_line(r#"{"version":1,"control":"shutdown"}"#).unwrap() {
            WireRequest::Control(c) => assert_eq!(c.control, "shutdown"),
            other => panic!("expected control, got {other:?}"),
        }
    }

    #[test]
    fn version_mismatched_control_is_rejected_not_acted_on() {
        let err = parse_line(r#"{"version":99,"control":"shutdown"}"#).unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnsupportedVersion);
    }

    #[test]
    fn malformed_lines_yield_parse_errors() {
        let err = parse_line("{\"version\":1,").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Parse);
        let err = parse_line("not json at all").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Parse);
    }

    #[test]
    fn response_round_trips() {
        let resp = SolveResponse::failure(9, WireError::new(ErrorKind::BadRequest, "nope"));
        let json = serde_json::to_string(&resp).unwrap();
        let back: SolveResponse = serde_json::from_str(&json).unwrap();
        assert!(!back.ok);
        assert_eq!(back.error.as_ref().unwrap().kind, ErrorKind::BadRequest);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }
}
