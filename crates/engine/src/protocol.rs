//! The engine wire protocol: request/response schema, versioning, and the
//! compatibility policy.
//!
//! # Transports
//!
//! Protocol v3 speaks two framings over the same request/response schema,
//! chosen per connection by its **first byte** (see [`crate::codec`]):
//!
//! * **v3 frames** (the default for `batch --connect` and
//!   [`crate::client::EngineClient`]): `magic | u32 len | u8 format-tag |
//!   payload`, where the payload is the request object in either compact
//!   binary (tag 2) or JSON text (tag 1). The magic byte `0xB3` is outside
//!   ASCII, so no JSONL line can be mistaken for a frame.
//! * **JSONL** (versions 1/2, kept byte-compatible for `nc`/debug use):
//!   one JSON object per line, one response line per request line, in
//!   request order.
//!
//! # Request/response schema
//!
//! Two request shapes share a connection or batch file:
//!
//! * **solve requests** ([`SolveRequest`]) name a protocol `version`, a
//!   caller-chosen `id` (echoed back), a [`SolveMode`], the [`Instance`],
//!   and the affine cost parameters `restart`/`rate`. Optional fields —
//!   `profiles`, `policy` (`"all"` | `"single"` | `"maxlen:K"`),
//!   `target`/`epsilon` for the prize-collecting modes, `lazy`/`parallel`
//!   solver toggles, `trace_id` — may be omitted entirely. Construct them
//!   with [`SolveRequest::builder`].
//! * **control requests** ([`ControlRequest`]) carry a `control` verb:
//!   `"ping"` (liveness probe), `"hello"` (capability negotiation — the ack
//!   carries [`HelloInfo`]), `"metrics"` (returns the engine's `obs/v1`
//!   telemetry snapshot in the ack's `obs` field), or `"shutdown"` (drain
//!   and stop a server).
//!
//! Every response is a [`SolveResponse`]: `ok` plus either a [`Schedule`]
//! and [`SolveMetrics`], or a structured [`WireError`] (`kind` + `message`).
//! Control requests are acknowledged with a schedule-less `ok` response
//! whose id echoes nothing (`0`).
//!
//! # Compatibility policy
//!
//! **What [`MIN_PROTOCOL_VERSION`] promises.** Any request stamped with a
//! version in `MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION` that uses only the
//! fields defined at that version is accepted and served with *unchanged
//! semantics*. A v1 JSONL line written against the first release still
//! parses, solves identically, and receives a response whose v1-era fields
//! mean what they always meant. Shrinking the window (raising
//! `MIN_PROTOCOL_VERSION`) is a breaking release decision, never a side
//! effect of a feature.
//!
//! **Additive fields vs. version bumps.** New capability ships as trailing
//! `Option` fields whenever possible: absent means the old behavior, both
//! sides ignore fields they do not know, and the version window does not
//! move. That is how v2's `profiles`, the `metrics` verb with the `obs`
//! response field, and `trace_id` landed. [`PROTOCOL_VERSION`] is bumped
//! only when a client may need to *assert* the new capability set — a new
//! transport, a new response the client must understand, or a changed
//! field meaning. The stamp is a capability floor, not a parse switch:
//! servers answer with their own version and old parsers keep working.
//!
//! **The v1 → v3 history.** v1: affine `(restart, rate)` costs over JSONL.
//! v2 (additive fields, window unchanged): per-processor `profiles`,
//! `metrics`/`obs` telemetry, `trace_id` propagation. v3 (this version):
//! length-prefixed binary framing with content negotiation, the `hello`
//! verb, and bounded-queue admission control — a v3 stamp tells the server
//! the client understands framed responses, [`ErrorKind::Overloaded`]
//! failures, and the `retry_after_ms` hint. The JSONL encoding of v1/v2 is
//! still accepted byte-for-byte.
//!
//! **v3 negotiation flow.**
//! 1. The client connects and sends either a frame (first byte `0xB3` →
//!    framed mode for the whole connection) or a JSON line (first byte
//!    `{` or anything else → legacy JSONL mode). Nothing is consumed
//!    speculatively; the server sniffs without committing.
//! 2. Optionally, the client's first request is the `hello` verb. The ack
//!    carries [`HelloInfo`] — the server's version window and supported
//!    payload formats — so a cautious client can downgrade before sending
//!    work. Clients that already know the server skip this round-trip.
//! 3. Every response is encoded in the format of the request frame it
//!    answers (JSONL requests get JSONL lines), so mixed-format
//!    connections and pipelining stay unambiguous.

use sched_core::{FreqLadder, Instance, PowerProfile, Schedule};
use sched_obs::Snapshot;
use serde::{Deserialize, Serialize, Value};

/// Version stamped on every request and response. Bump on any incompatible
/// change to the wire structs or transport (see the module-level
/// compatibility policy).
pub const PROTOCOL_VERSION: u32 = 3;

/// Oldest protocol version still accepted. v1 (affine costs, JSONL) is a
/// strict subset of v2 (profiles) which the v3 server still speaks
/// verbatim, so the whole window is served.
pub const MIN_PROTOCOL_VERSION: u32 = 1;

/// Is `version` within the accepted window?
#[inline]
pub fn version_supported(version: u32) -> bool {
    (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version)
}

/// Which solver goal method a request invokes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveMode {
    /// Theorem 2.2.1: schedule every job.
    ScheduleAll,
    /// Theorem 2.3.1: schedule value `≥ (1−epsilon)·target`.
    PrizeCollecting,
    /// Theorem 2.3.3: schedule value `≥ target` exactly.
    PrizeCollectingExact,
}

/// One solve request.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SolveRequest {
    /// Protocol version; must be within the accepted window.
    pub version: u32,
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Solver goal method.
    pub mode: SolveMode,
    /// The scheduling instance (validated engine-side before solving).
    pub instance: Instance,
    /// Affine cost: fixed wake-up cost `α` (ignored when `profiles` is
    /// present).
    pub restart: f64,
    /// Affine cost: energy per awake slot (ignored when `profiles` is
    /// present).
    pub rate: f64,
    /// Per-processor power profiles (protocol v2). `None` = the affine
    /// `(restart, rate)` model on every processor — the v1 behavior.
    pub profiles: Option<Vec<PowerProfile>>,
    /// Candidate policy (`"all"` | `"single"` | `"maxlen:K"`); `None` = all.
    pub policy: Option<String>,
    /// Target value `Z` — required by the prize-collecting modes.
    pub target: Option<f64>,
    /// `ε ∈ (0, 1)` for [`SolveMode::PrizeCollecting`]; default `0.1`.
    pub epsilon: Option<f64>,
    /// Lazy-greedy toggle; `None` = solver default (on).
    pub lazy: Option<bool>,
    /// Parallel full-scan toggle; `None` = solver default (off).
    pub parallel: Option<bool>,
    /// Caller-chosen trace id for cross-process tracing. The engine stamps
    /// a deterministic one (`req-<id>`) when absent and echoes it on
    /// success *and* failure responses; worker-side spans and decision
    /// events are tagged with it. Optional and trailing like `profiles`
    /// and `obs`, so older peers interoperate unchanged.
    pub trace_id: Option<String>,
    /// Discrete DVFS frequency ladder (additive v3 field). When present,
    /// jobs may carry `work` requirements and the engine solves the
    /// compiled speed-scaling problem, answering with the physical
    /// schedule plus per-interval `freq_levels`. Mutually exclusive with
    /// `profiles`. Absent = the fixed-shape behavior of v1/v2.
    pub freq_ladder: Option<FreqLadder>,
}

impl SolveRequest {
    /// Starts a request builder: [`SolveMode::ScheduleAll`] with zero affine
    /// costs and every optional field unset. Chain setters, then
    /// [`SolveRequestBuilder::build`]:
    ///
    /// ```
    /// use sched_engine::protocol::{SolveMode, SolveRequest};
    /// use sched_core::{Instance, Job, SlotRef};
    ///
    /// let inst = Instance::new(1, 4, vec![Job::unit(vec![SlotRef::new(0, 0)])]);
    /// let req = SolveRequest::builder(7, inst)
    ///     .affine(3.0, 1.0)
    ///     .trace_id("replay-7")
    ///     .build();
    /// assert_eq!(req.mode, SolveMode::ScheduleAll);
    /// assert_eq!(req.restart, 3.0);
    /// ```
    pub fn builder(id: u64, instance: Instance) -> SolveRequestBuilder {
        SolveRequestBuilder {
            req: SolveRequest {
                version: PROTOCOL_VERSION,
                id,
                mode: SolveMode::ScheduleAll,
                instance,
                restart: 0.0,
                rate: 0.0,
                profiles: None,
                policy: None,
                target: None,
                epsilon: None,
                lazy: None,
                parallel: None,
                trace_id: None,
                freq_ladder: None,
            },
        }
    }
}

/// Fluent constructor for [`SolveRequest`] — the one way to build requests
/// in-process (the wire shape itself stays a plain serde struct). Every
/// setter is optional; the starting state is a current-version
/// `ScheduleAll` over the given instance with zero affine costs.
#[derive(Clone, Debug)]
pub struct SolveRequestBuilder {
    req: SolveRequest,
}

impl SolveRequestBuilder {
    /// Overrides the stamped protocol version (compat tests; defaults to
    /// [`PROTOCOL_VERSION`]).
    pub fn version(mut self, version: u32) -> Self {
        self.req.version = version;
        self
    }

    /// Sets the solver goal method.
    pub fn mode(mut self, mode: SolveMode) -> Self {
        self.req.mode = mode;
        self
    }

    /// Sets the affine cost model: wake-up cost `α` and per-slot rate.
    pub fn affine(mut self, restart: f64, rate: f64) -> Self {
        self.req.restart = restart;
        self.req.rate = rate;
        self
    }

    /// Prices by explicit per-processor profiles (the v2 heterogeneous
    /// form; the affine `restart`/`rate` stamps are ignored engine-side).
    pub fn profiles(mut self, profiles: Vec<PowerProfile>) -> Self {
        self.req.profiles = Some(profiles);
        self
    }

    /// Sets the candidate policy (`"all"` | `"single"` | `"maxlen:K"`).
    pub fn policy(mut self, policy: impl Into<String>) -> Self {
        self.req.policy = Some(policy.into());
        self
    }

    /// Switches to [`SolveMode::PrizeCollecting`] with the given target
    /// (set [`epsilon`](Self::epsilon) separately; engine default `0.1`).
    pub fn prize_collecting(mut self, target: f64) -> Self {
        self.req.mode = SolveMode::PrizeCollecting;
        self.req.target = Some(target);
        self
    }

    /// Switches to [`SolveMode::PrizeCollectingExact`] with the given
    /// target.
    pub fn prize_collecting_exact(mut self, target: f64) -> Self {
        self.req.mode = SolveMode::PrizeCollectingExact;
        self.req.target = Some(target);
        self
    }

    /// Sets `ε` for [`SolveMode::PrizeCollecting`].
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.req.epsilon = Some(epsilon);
        self
    }

    /// Sets the lazy-greedy toggle.
    pub fn lazy(mut self, lazy: bool) -> Self {
        self.req.lazy = Some(lazy);
        self
    }

    /// Sets the parallel full-scan toggle.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.req.parallel = Some(parallel);
        self
    }

    /// Sets the caller's trace id.
    pub fn trace_id(mut self, trace_id: impl Into<String>) -> Self {
        self.req.trace_id = Some(trace_id.into());
        self
    }

    /// Prices by a discrete DVFS frequency ladder (additive v3 field; the
    /// affine `restart` stamp is the wake cost, `rate` is ignored).
    pub fn freq_ladder(mut self, ladder: FreqLadder) -> Self {
        self.req.freq_ladder = Some(ladder);
        self
    }

    /// Finishes the build.
    pub fn build(self) -> SolveRequest {
        self.req
    }
}

/// One control request (server-level verbs).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ControlRequest {
    /// Protocol version; must be within the accepted window.
    pub version: u32,
    /// `"ping"`, `"hello"`, `"metrics"`, or `"shutdown"`.
    pub control: String,
}

/// The server's capability card, carried on `hello` acks: the protocol
/// window it serves and the payload formats it decodes. Lets a client
/// negotiate down (or bail) before sending work.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HelloInfo {
    /// Newest protocol version the server speaks ([`PROTOCOL_VERSION`]).
    pub protocol: u32,
    /// Oldest version still accepted ([`MIN_PROTOCOL_VERSION`]).
    pub min_protocol: u32,
    /// Payload encodings the server accepts: frame formats plus `"jsonl"`
    /// for the legacy line transport.
    pub formats: Vec<String>,
}

impl HelloInfo {
    /// This build's capabilities.
    pub fn current() -> Self {
        Self {
            protocol: PROTOCOL_VERSION,
            min_protocol: MIN_PROTOCOL_VERSION,
            formats: vec!["binary".into(), "json".into(), "jsonl".into()],
        }
    }
}

/// Machine-readable failure category of a [`WireError`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The line or frame payload was not a well-formed request object.
    Parse,
    /// The request's protocol version is not supported.
    UnsupportedVersion,
    /// The request is well-formed but semantically invalid (bad policy,
    /// missing target, ε out of range, unknown control verb, …).
    BadRequest,
    /// The instance failed [`Instance::validate`].
    InvalidInstance,
    /// The solver proved the request infeasible (or the target exceeds the
    /// total instance value).
    Infeasible,
    /// The engine could not complete the request (worker failure).
    Internal,
    /// The request was shed by admission control: the bounded queue was
    /// full. The response's `retry_after_ms` carries the server's backoff
    /// hint. Retrying (after the hint) is always safe — the request was
    /// never solved.
    Overloaded,
}

/// Structured error carried by failed responses.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireError {
    /// Failure category.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Convenience constructor.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.message)
    }
}

/// Per-request engine measurements, reported on success.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SolveMetrics {
    /// Wall-clock time of the solve call itself, microseconds.
    pub solve_micros: u64,
    /// Candidate intervals the solver optimized over.
    pub candidates: u64,
    /// Worker index that served the request.
    pub worker: u32,
    /// Whether the candidate family came from the worker's cross-request
    /// cache (enumeration skipped).
    pub cache_hit: bool,
}

/// One response.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SolveResponse {
    /// Protocol version of the responder.
    pub version: u32,
    /// Echo of the request id (`0` for control acks and unparseable lines).
    pub id: u64,
    /// Whether the request was served.
    pub ok: bool,
    /// The computed schedule, on success.
    pub schedule: Option<Schedule>,
    /// The failure, when `ok` is false.
    pub error: Option<WireError>,
    /// Engine measurements, on success.
    pub metrics: Option<SolveMetrics>,
    /// `obs/v1` telemetry snapshot, set only on `metrics` control acks.
    /// Optional and trailing, so v1/v2 clients that never send the verb
    /// parse every response exactly as before.
    pub obs: Option<Snapshot>,
    /// Echo of the request's trace id (engine-stamped when the request
    /// carried none), present on success *and* failure so clients can
    /// correlate either outcome with their traces. Optional and trailing
    /// like `obs`.
    pub trace_id: Option<String>,
    /// Backoff hint in milliseconds, set only on
    /// [`ErrorKind::Overloaded`] failures: the server's estimate of when
    /// queue space will exist again. Additive v3 field.
    pub retry_after_ms: Option<u64>,
    /// The server's capability card, set only on `hello` control acks.
    /// Additive v3 field.
    pub hello: Option<HelloInfo>,
    /// Frequency ladder level of each interval in `schedule.awake`
    /// (parallel arrays), set only on successful DVFS solves — a request
    /// that carried `freq_ladder`. Additive v3 field: ladder-free
    /// responses omit it and parse unchanged by v1/v2 clients.
    pub freq_levels: Option<Vec<u32>>,
}

impl SolveResponse {
    /// Successful response.
    pub fn success(id: u64, schedule: Schedule, metrics: SolveMetrics) -> Self {
        Self {
            version: PROTOCOL_VERSION,
            id,
            ok: true,
            schedule: Some(schedule),
            error: None,
            metrics: Some(metrics),
            obs: None,
            trace_id: None,
            retry_after_ms: None,
            hello: None,
            freq_levels: None,
        }
    }

    /// Failed response.
    pub fn failure(id: u64, error: WireError) -> Self {
        Self {
            version: PROTOCOL_VERSION,
            id,
            ok: false,
            schedule: None,
            error: Some(error),
            metrics: None,
            obs: None,
            trace_id: None,
            retry_after_ms: None,
            hello: None,
            freq_levels: None,
        }
    }

    /// An [`ErrorKind::Overloaded`] shed response with the server's
    /// retry-after hint.
    pub fn overloaded(id: u64, retry_after_ms: u64) -> Self {
        let mut resp = Self::failure(
            id,
            WireError::new(
                ErrorKind::Overloaded,
                "request shed: admission queue is full",
            ),
        );
        resp.retry_after_ms = Some(retry_after_ms);
        resp
    }

    /// Acknowledgement of a control request.
    pub fn control_ack() -> Self {
        Self {
            version: PROTOCOL_VERSION,
            id: 0,
            ok: true,
            schedule: None,
            error: None,
            metrics: None,
            obs: None,
            trace_id: None,
            retry_after_ms: None,
            hello: None,
            freq_levels: None,
        }
    }

    /// Same response with the trace id stamped (builder-style).
    pub fn with_trace_id(mut self, trace_id: impl Into<String>) -> Self {
        self.trace_id = Some(trace_id.into());
        self
    }

    /// Acknowledgement of a `metrics` control request, carrying the
    /// engine's telemetry snapshot.
    pub fn metrics_ack(snapshot: Snapshot) -> Self {
        Self {
            obs: Some(snapshot),
            ..Self::control_ack()
        }
    }

    /// Acknowledgement of a `hello` control request, carrying this build's
    /// capability card.
    pub fn hello_ack() -> Self {
        Self {
            hello: Some(HelloInfo::current()),
            ..Self::control_ack()
        }
    }
}

/// A parsed request: solve work or a control verb.
#[derive(Clone, Debug)]
pub enum WireRequest {
    /// A solve request (boxed: the instance dominates the size).
    Solve(Box<SolveRequest>),
    /// A control request.
    Control(ControlRequest),
}

/// Parses an already-decoded request value (the payload of a v3 frame)
/// into a [`WireRequest`].
///
/// Control objects are recognized first (they carry a `control` key a solve
/// request never has); anything else must deserialize as a
/// [`SolveRequest`]. A control request from an unknown protocol version is
/// rejected here with [`ErrorKind::UnsupportedVersion`] — its verb must
/// never be acted on. (Solve requests get the same version check
/// engine-side, before solving.)
pub fn parse_value(v: &Value) -> Result<WireRequest, WireError> {
    let is_control = matches!(v, Value::Object(_)) && v.field("control").is_ok();
    if is_control {
        let ctl = ControlRequest::from_value(v).map_err(|e| {
            WireError::new(ErrorKind::Parse, format!("malformed control request: {e}"))
        })?;
        if !version_supported(ctl.version) {
            return Err(WireError::new(
                ErrorKind::UnsupportedVersion,
                format!(
                    "control protocol version {} not supported \
                     (expected {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})",
                    ctl.version
                ),
            ));
        }
        return Ok(WireRequest::Control(ctl));
    }
    match SolveRequest::from_value(v) {
        Ok(req) => Ok(WireRequest::Solve(Box::new(req))),
        Err(e) => Err(WireError::new(
            ErrorKind::Parse,
            format!("malformed request: {e}"),
        )),
    }
}

/// Parses one JSONL line into a [`WireRequest`] (the legacy v1/v2
/// transport; framed payloads go through [`parse_value`] directly).
pub fn parse_line(line: &str) -> Result<WireRequest, WireError> {
    let v: Value = serde_json::from_str(line)
        .map_err(|e| WireError::new(ErrorKind::Parse, format!("malformed request line: {e}")))?;
    parse_value(&v)
}

/// Best-effort extraction of `(id, trace_id)` from a request value that
/// failed full parsing, so even a `Parse`-kind failure response can carry
/// the caller's correlation keys. Values that are not objects (or carry
/// ill-typed keys) yield `(0, None)` — the same id control acks use for
/// "no request".
pub fn value_correlation(v: &Value) -> (u64, Option<String>) {
    let id = v
        .field("id")
        .ok()
        .and_then(|f| u64::from_value(f).ok())
        .unwrap_or(0);
    let trace_id = v
        .field("trace_id")
        .ok()
        .and_then(|f| Option::<String>::from_value(f).ok())
        .flatten();
    (id, trace_id)
}

/// [`value_correlation`] for a raw JSONL line (non-JSON lines yield
/// `(0, None)`).
pub fn line_correlation(line: &str) -> (u64, Option<String>) {
    match serde_json::from_str::<Value>(line) {
        Ok(v) => value_correlation(&v),
        Err(_) => (0, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::{Job, SlotRef};

    fn tiny() -> Instance {
        Instance::new(1, 4, vec![Job::unit(vec![SlotRef::new(0, 1)])])
    }

    #[test]
    fn request_round_trips_through_json() {
        let req = SolveRequest::builder(42, tiny())
            .affine(3.0, 1.0)
            .prize_collecting(1.0)
            .epsilon(0.25)
            .build();
        let json = serde_json::to_string(&req).unwrap();
        let back: SolveRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, 42);
        assert_eq!(back.mode, SolveMode::PrizeCollecting);
        assert_eq!(back.target, Some(1.0));
        assert_eq!(back.epsilon, Some(0.25));
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn builder_defaults_match_the_old_positional_shape() {
        // the builder with only affine costs set must produce exactly what
        // `schedule_all(id, inst, restart, rate)` used to: every optional
        // field unset, current version stamped
        let req = SolveRequest::builder(7, tiny()).affine(10.0, 1.0).build();
        assert_eq!(req.version, PROTOCOL_VERSION);
        assert_eq!(req.mode, SolveMode::ScheduleAll);
        assert_eq!((req.restart, req.rate), (10.0, 1.0));
        assert!(req.profiles.is_none() && req.policy.is_none());
        assert!(req.target.is_none() && req.epsilon.is_none());
        assert!(req.lazy.is_none() && req.parallel.is_none() && req.trace_id.is_none());
    }

    #[test]
    fn optional_fields_may_be_omitted() {
        let line = r#"{"version":1,"id":7,"mode":"ScheduleAll","instance":{"num_processors":1,"horizon":2,"jobs":[{"value":1,"allowed":[{"proc":0,"time":0}]}]},"restart":3,"rate":1}"#;
        let req = match parse_line(line).unwrap() {
            WireRequest::Solve(r) => r,
            other => panic!("expected solve, got {other:?}"),
        };
        assert_eq!(req.id, 7);
        assert!(req.policy.is_none() && req.target.is_none() && req.lazy.is_none());
    }

    #[test]
    fn v1_lines_without_profiles_still_parse() {
        // the exact shape every pre-profile client sends: version 1, no
        // `profiles` key — must keep parsing as the affine default
        let line = r#"{"version":1,"id":3,"mode":"ScheduleAll","instance":{"num_processors":1,"horizon":2,"jobs":[{"value":1,"allowed":[{"proc":0,"time":0}]}]},"restart":3,"rate":1}"#;
        let req = match parse_line(line).unwrap() {
            WireRequest::Solve(r) => r,
            other => panic!("expected solve, got {other:?}"),
        };
        assert_eq!(req.version, 1);
        assert!(req.profiles.is_none());
        assert!(version_supported(1) && version_supported(PROTOCOL_VERSION));
        assert!(!version_supported(0) && !version_supported(PROTOCOL_VERSION + 1));
    }

    #[test]
    fn profiled_request_round_trips() {
        use sched_core::{PowerProfile, SleepState};
        let profiles = vec![PowerProfile::with_ladder(
            8.0,
            1.0,
            vec![SleepState {
                idle_rate: 0.25,
                wake_cost: 2.0,
            }],
        )];
        let req = SolveRequest::builder(11, tiny())
            .profiles(profiles.clone())
            .build();
        assert_eq!(req.version, PROTOCOL_VERSION);
        let json = serde_json::to_string(&req).unwrap();
        let back: SolveRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.profiles, Some(profiles));
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn control_lines_are_recognized_first() {
        match parse_line(r#"{"version":1,"control":"shutdown"}"#).unwrap() {
            WireRequest::Control(c) => assert_eq!(c.control, "shutdown"),
            other => panic!("expected control, got {other:?}"),
        }
    }

    #[test]
    fn version_mismatched_control_is_rejected_not_acted_on() {
        let err = parse_line(r#"{"version":99,"control":"shutdown"}"#).unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnsupportedVersion);
    }

    #[test]
    fn malformed_lines_yield_parse_errors() {
        let err = parse_line("{\"version\":1,").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Parse);
        let err = parse_line("not json at all").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Parse);
    }

    #[test]
    fn response_round_trips() {
        let resp = SolveResponse::failure(9, WireError::new(ErrorKind::BadRequest, "nope"));
        let json = serde_json::to_string(&resp).unwrap();
        let back: SolveResponse = serde_json::from_str(&json).unwrap();
        assert!(!back.ok);
        assert_eq!(back.error.as_ref().unwrap().kind, ErrorKind::BadRequest);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn overloaded_response_carries_kind_and_hint() {
        let resp = SolveResponse::overloaded(5, 12);
        let json = serde_json::to_string(&resp).unwrap();
        let back: SolveResponse = serde_json::from_str(&json).unwrap();
        assert!(!back.ok);
        assert_eq!(back.id, 5);
        assert_eq!(back.error.as_ref().unwrap().kind, ErrorKind::Overloaded);
        assert_eq!(back.retry_after_ms, Some(12));
    }

    #[test]
    fn hello_ack_carries_the_capability_card() {
        let resp = SolveResponse::hello_ack();
        let json = serde_json::to_string(&resp).unwrap();
        let back: SolveResponse = serde_json::from_str(&json).unwrap();
        assert!(back.ok);
        let hello = back.hello.expect("hello info");
        assert_eq!(hello.protocol, PROTOCOL_VERSION);
        assert_eq!(hello.min_protocol, MIN_PROTOCOL_VERSION);
        assert!(hello.formats.iter().any(|f| f == "binary"));
        assert!(hello.formats.iter().any(|f| f == "jsonl"));
    }

    #[test]
    fn parse_value_classifies_solve_and_control() {
        let req = SolveRequest::builder(4, tiny()).affine(2.0, 1.0).build();
        match parse_value(&req.to_value()).unwrap() {
            WireRequest::Solve(r) => assert_eq!(r.id, 4),
            other => panic!("expected solve, got {other:?}"),
        }
        let ctl = ControlRequest {
            version: PROTOCOL_VERSION,
            control: "hello".into(),
        };
        match parse_value(&ctl.to_value()).unwrap() {
            WireRequest::Control(c) => assert_eq!(c.control, "hello"),
            other => panic!("expected control, got {other:?}"),
        }
        assert_eq!(
            parse_value(&Value::Str("nope".into())).unwrap_err().kind,
            ErrorKind::Parse
        );
    }

    #[test]
    fn correlation_survives_malformed_requests() {
        assert_eq!(
            line_correlation(r#"{"id":9,"trace_id":"t-9","mode":"Bogus"}"#),
            (9, Some("t-9".into()))
        );
        assert_eq!(line_correlation("not json"), (0, None));
        assert_eq!(value_correlation(&Value::Null), (0, None));
    }
}
