//! Protocol v3 binary framing and the compact field-tagged payload codec.
//!
//! # Frame layout
//!
//! Every v3 message — request or response, either direction — is one frame:
//!
//! ```text
//! ┌────────────┬──────────────┬───────────────┬──────────────┐
//! │ magic (2B) │ len (u32 LE) │ format tag 1B │ payload len B│
//! │ B3 50      │ payload len  │ 1=JSON 2=bin  │              │
//! └────────────┴──────────────┴───────────────┴──────────────┘
//! ```
//!
//! The first magic byte (`0xB3`) is deliberately outside ASCII: no JSONL
//! line can start with it, so the *first byte of a connection* decides the
//! framing — see [`crate::server`] for the negotiation sniff. The length
//! prefix is checked against [`MAX_FRAME_LEN`] **before** any allocation,
//! so a hostile 4 GiB declaration costs nothing; payloads are read through
//! `Read::take`, so even an accepted length only allocates as bytes
//! actually arrive.
//!
//! # Payload formats
//!
//! * [`WireFormat::Json`] (tag 1) — the payload is the UTF-8 JSON text of
//!   the same object a JSONL line would carry. Zero re-encoding cost for
//!   clients that already hold JSON; keeps `nc`-style debugging possible
//!   inside frames.
//! * [`WireFormat::Binary`] (tag 2) — the default: a compact field-tagged
//!   binary encoding of the serde value tree. Well-known protocol field
//!   names ([`FIELD_NAMES`]) are one byte on the wire; unknown keys fall
//!   back to inline strings, so *additive* protocol fields need no codec
//!   bump. Numbers are LEB128 varints when integral (the common case:
//!   ids, slot indices, versions) and raw `f64` bits otherwise.
//!
//! Responses are always encoded in the format of the request frame they
//! answer, so a mixed-format connection never surprises its client.
//!
//! The decoder is hardened against hostile bytes: every length and count
//! is bounds-checked against the remaining input before use, recursion is
//! depth-limited, and strings are UTF-8-validated — malformed payloads
//! yield structured errors, never panics or unbounded allocation
//! (fuzzed in `tests/frame_malformed.rs`).

use serde::{Deserialize, Serialize, Value};
use std::io::{self, Read, Write};

/// Frame preamble: `0xB3` (outside ASCII, so never the first byte of a
/// JSONL connection) + `0x50` (`P` for power-sched).
pub const MAGIC: [u8; 2] = [0xB3, 0x50];

/// Hard ceiling on a declared payload length (64 MiB). Checked before any
/// allocation; larger declarations are rejected as [`FrameError::Oversized`].
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// How a frame's payload bytes are encoded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireFormat {
    /// Tag 1: UTF-8 JSON text of the request/response object.
    Json,
    /// Tag 2: the compact field-tagged binary encoding (the v3 default).
    Binary,
}

impl WireFormat {
    /// The on-wire format tag byte.
    pub fn tag(self) -> u8 {
        match self {
            WireFormat::Json => 1,
            WireFormat::Binary => 2,
        }
    }

    /// Parses a format tag byte.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(WireFormat::Json),
            2 => Some(WireFormat::Binary),
            _ => None,
        }
    }

    /// The names accepted by `--format` and the `hello` negotiation.
    pub fn name(self) -> &'static str {
        match self {
            WireFormat::Json => "json",
            WireFormat::Binary => "binary",
        }
    }
}

impl std::str::FromStr for WireFormat {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "json" => Ok(WireFormat::Json),
            "binary" => Ok(WireFormat::Binary),
            other => Err(format!(
                "unknown wire format '{other}' (expected jsonl, json, or binary)"
            )),
        }
    }
}

impl std::fmt::Display for WireFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a frame could not be read. `Io` is transport trouble; every other
/// variant is a malformed frame (the connection cannot be resynchronized
/// afterwards, so servers answer once and close).
#[derive(Debug)]
pub enum FrameError {
    /// The transport failed mid-frame.
    Io(io::Error),
    /// The two preamble bytes were not [`MAGIC`].
    BadMagic([u8; 2]),
    /// The stream ended inside a header or before `declared` payload bytes
    /// arrived.
    Truncated {
        /// Bytes the header promised.
        declared: usize,
        /// Bytes actually read before EOF.
        got: usize,
    },
    /// The declared payload length exceeds [`MAX_FRAME_LEN`]; rejected
    /// before any allocation.
    Oversized {
        /// The hostile declared length.
        declared: u32,
    },
    /// The format tag byte is not a known [`WireFormat`].
    UnknownFormat(u8),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame transport error: {e}"),
            FrameError::BadMagic(bytes) => {
                write!(f, "bad frame magic {bytes:02x?} (expected {MAGIC:02x?})")
            }
            FrameError::Truncated { declared, got } => {
                write!(
                    f,
                    "truncated frame: header declared {declared} bytes, got {got}"
                )
            }
            FrameError::Oversized { declared } => write!(
                f,
                "frame declares {declared} payload bytes, over the {MAX_FRAME_LEN}-byte cap"
            ),
            FrameError::UnknownFormat(tag) => write!(f, "unknown frame format tag {tag}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame: magic, LE length, format tag, payload. The payload
/// must fit [`MAX_FRAME_LEN`] — engine responses always do; a caller
/// constructing something larger gets an `InvalidInput` error rather than
/// an unreadable frame.
pub fn write_frame(w: &mut impl Write, format: WireFormat, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("payload of {} bytes exceeds the frame cap", payload.len()),
            )
        })?;
    let mut header = [0u8; 7];
    header[..2].copy_from_slice(&MAGIC);
    header[2..6].copy_from_slice(&len.to_le_bytes());
    header[6] = format.tag();
    w.write_all(&header)?;
    w.write_all(payload)
}

/// Reads one frame. `Ok(None)` is a clean EOF *before any header byte* —
/// the peer closed between frames. EOF anywhere inside a frame is
/// [`FrameError::Truncated`]. The declared length is validated against
/// [`MAX_FRAME_LEN`] before anything is allocated, and the payload buffer
/// grows only as bytes actually arrive (`Read::take`), so a liar's header
/// cannot reserve memory it never sends.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(WireFormat, Vec<u8>)>, FrameError> {
    let mut header = [0u8; 7];
    let mut filled = 0usize;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Truncated {
                    declared: header.len(),
                    got: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    if header[..2] != MAGIC {
        return Err(FrameError::BadMagic([header[0], header[1]]));
    }
    let declared = u32::from_le_bytes([header[2], header[3], header[4], header[5]]);
    if declared > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { declared });
    }
    let format = WireFormat::from_tag(header[6]).ok_or(FrameError::UnknownFormat(header[6]))?;
    let mut payload = Vec::new();
    r.take(u64::from(declared)).read_to_end(&mut payload)?;
    if payload.len() < declared as usize {
        return Err(FrameError::Truncated {
            declared: declared as usize,
            got: payload.len(),
        });
    }
    Ok(Some((format, payload)))
}

/// Well-known field names, in on-wire id order. An object key on this list
/// encodes as its one-byte index; anything else is an inline string, so the
/// table is a compression dictionary, not a schema — **append-only**
/// (reordering or removing entries would change the meaning of committed
/// byte streams; additive protocol fields just get appended here, or
/// ride the inline fallback until they are).
pub const FIELD_NAMES: &[&str] = &[
    // request envelope
    "version",
    "id",
    "mode",
    "instance",
    "restart",
    "rate",
    "profiles",
    "policy",
    "target",
    "epsilon",
    "lazy",
    "parallel",
    "trace_id",
    "control",
    "format",
    // response envelope
    "ok",
    "schedule",
    "error",
    "metrics",
    "obs",
    "hello",
    "retry_after_ms",
    "kind",
    "message",
    "solve_micros",
    "candidates",
    "worker",
    "cache_hit",
    // instance / schedule model
    "num_processors",
    "horizon",
    "jobs",
    "value",
    "allowed",
    "proc",
    "time",
    "awake",
    "assignments",
    "total_cost",
    "scheduled_value",
    "scheduled_count",
    "start",
    "end",
    "cost",
    // power profiles
    "wake_cost",
    "busy_rate",
    "sleep_states",
    "idle_rate",
    // hello negotiation
    "protocol",
    "min_protocol",
    "formats",
    // obs/v1 snapshot (metrics control acks)
    "schema",
    "counters",
    "gauges",
    "histograms",
    "name",
    "count",
    "sum",
    "min",
    "max",
    "p50",
    "p99",
    "p999",
    // DVFS speed scaling (additive v3 fields — appended, never reordered)
    "work",
    "freq_ladder",
    "freq_levels",
    "alpha",
    "beta",
    "gamma",
    "freqs",
];

/// Key byte announcing an inline (varint length + UTF-8) key instead of a
/// [`FIELD_NAMES`] index.
const INLINE_KEY: u8 = 0xFF;

// Ids must stay one byte with 0xFF reserved for the inline escape.
const _: () = assert!(FIELD_NAMES.len() < INLINE_KEY as usize);

fn field_id(name: &str) -> Option<u8> {
    FIELD_NAMES.iter().position(|f| *f == name).map(|i| i as u8)
}

// Value type tags of the binary payload encoding.
const T_NULL: u8 = 0x00;
const T_FALSE: u8 = 0x01;
const T_TRUE: u8 = 0x02;
const T_F64: u8 = 0x03;
const T_UINT: u8 = 0x04;
const T_NEGINT: u8 = 0x05;
const T_STR: u8 = 0x06;
const T_ARR: u8 = 0x07;
const T_OBJ: u8 = 0x08;

/// Nesting ceiling for the decoder (instances are ~4 deep; 64 leaves
/// generous headroom while keeping hostile recursion bounded).
const MAX_DEPTH: u32 = 64;

/// Largest f64 whose integral values round-trip exactly through u64 (2⁵³).
const EXACT_INT: f64 = 9_007_199_254_740_992.0;

fn put_varint(mut n: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (n & 0x7F) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encodes a value tree into the compact binary payload form.
///
/// Object fields holding `Null` are *skipped* (the serde stub derives treat
/// a missing key and an explicit `null` identically for `Option` fields),
/// which keeps sparse requests — most optional fields unset — tiny. `Null`
/// inside arrays is preserved: `Schedule::assignments` is `Vec<Option<..>>`.
pub fn encode_value(v: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_into(v, &mut out);
    out
}

fn encode_into(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(T_NULL),
        Value::Bool(false) => out.push(T_FALSE),
        Value::Bool(true) => out.push(T_TRUE),
        Value::Num(n) => {
            if n.fract() == 0.0 && n.abs() <= EXACT_INT {
                if *n >= 0.0 {
                    out.push(T_UINT);
                    put_varint(*n as u64, out);
                } else {
                    out.push(T_NEGINT);
                    put_varint(-*n as u64, out);
                }
            } else {
                out.push(T_F64);
                out.extend_from_slice(&n.to_bits().to_le_bytes());
            }
        }
        Value::Str(s) => {
            out.push(T_STR);
            put_varint(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            out.push(T_ARR);
            put_varint(items.len() as u64, out);
            for item in items {
                encode_into(item, out);
            }
        }
        Value::Object(pairs) => {
            out.push(T_OBJ);
            let live = pairs.iter().filter(|(_, v)| *v != Value::Null);
            put_varint(live.clone().count() as u64, out);
            for (key, val) in live {
                match field_id(key) {
                    Some(id) => out.push(id),
                    None => {
                        out.push(INLINE_KEY);
                        put_varint(key.len() as u64, out);
                        out.extend_from_slice(key.as_bytes());
                    }
                }
                encode_into(val, out);
            }
        }
    }
}

struct Cursor<'b> {
    bytes: &'b [u8],
    pos: usize,
}

impl<'b> Cursor<'b> {
    fn err(&self, what: &str) -> serde::Error {
        serde::Error(format!("binary payload: {what} at offset {}", self.pos))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn byte(&mut self) -> Result<u8, serde::Error> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'b [u8], serde::Error> {
        if n > self.remaining() {
            return Err(self.err("length runs past end of input"));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn varint(&mut self) -> Result<u64, serde::Error> {
        let mut n = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.byte()?;
            n |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                // the final (10th) byte may only contribute one bit
                if shift == 63 && byte > 1 {
                    return Err(self.err("varint overflows u64"));
                }
                return Ok(n);
            }
        }
        Err(self.err("varint longer than 10 bytes"))
    }

    fn string(&mut self) -> Result<String, serde::Error> {
        let len = self.varint()?;
        if len > self.remaining() as u64 {
            return Err(self.err("string length runs past end of input"));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| serde::Error("binary payload: string is not UTF-8".into()))
    }

    fn value(&mut self, depth: u32) -> Result<Value, serde::Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than the decoder limit"));
        }
        match self.byte()? {
            T_NULL => Ok(Value::Null),
            T_FALSE => Ok(Value::Bool(false)),
            T_TRUE => Ok(Value::Bool(true)),
            T_F64 => {
                let bytes: [u8; 8] = self.take(8)?.try_into().expect("took 8");
                Ok(Value::Num(f64::from_bits(u64::from_le_bytes(bytes))))
            }
            T_UINT => Ok(Value::Num(self.varint()? as f64)),
            T_NEGINT => Ok(Value::Num(-(self.varint()? as f64))),
            T_STR => Ok(Value::Str(self.string()?)),
            T_ARR => {
                let count = self.varint()?;
                // every element costs >= 1 byte, so a count beyond the
                // remaining input is a lie — reject before reserving
                if count > self.remaining() as u64 {
                    return Err(self.err("array count exceeds remaining input"));
                }
                let mut items = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Value::Array(items))
            }
            T_OBJ => {
                let count = self.varint()?;
                // every pair costs >= 2 bytes (key byte + value tag)
                if count.saturating_mul(2) > self.remaining() as u64 {
                    return Err(self.err("object count exceeds remaining input"));
                }
                let mut pairs = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let key = match self.byte()? {
                        INLINE_KEY => self.string()?,
                        id => FIELD_NAMES
                            .get(id as usize)
                            .map(|s| (*s).to_string())
                            .ok_or_else(|| self.err("unknown well-known field id"))?,
                    };
                    pairs.push((key, self.value(depth + 1)?));
                }
                Ok(Value::Object(pairs))
            }
            _ => Err(self.err("unknown value tag")),
        }
    }
}

/// Decodes a binary payload back into a value tree. Rejects trailing
/// garbage, unknown tags, lying lengths/counts, non-UTF-8 strings, and
/// over-deep nesting with structured errors — never a panic.
pub fn decode_value(bytes: &[u8]) -> Result<Value, serde::Error> {
    let mut cur = Cursor { bytes, pos: 0 };
    let v = cur.value(0)?;
    if cur.pos != bytes.len() {
        return Err(cur.err("trailing bytes after value"));
    }
    Ok(v)
}

/// Serializes any wire struct as a binary payload.
pub fn to_binary<T: Serialize + ?Sized>(t: &T) -> Vec<u8> {
    encode_value(&t.to_value())
}

/// Deserializes a binary payload into a wire struct.
pub fn from_binary<T: Deserialize>(bytes: &[u8]) -> Result<T, serde::Error> {
    T::from_value(&decode_value(bytes)?)
}

/// Decodes a frame payload into a value tree per its format tag.
pub fn payload_to_value(format: WireFormat, payload: &[u8]) -> Result<Value, serde::Error> {
    match format {
        WireFormat::Json => {
            let text = std::str::from_utf8(payload)
                .map_err(|_| serde::Error("JSON payload is not UTF-8".into()))?;
            serde_json::from_str(text)
        }
        WireFormat::Binary => decode_value(payload),
    }
}

/// Encodes a wire struct as a frame payload in the requested format.
pub fn value_to_payload<T: Serialize + ?Sized>(
    format: WireFormat,
    t: &T,
) -> Result<Vec<u8>, serde::Error> {
    match format {
        WireFormat::Json => serde_json::to_string(t).map(String::into_bytes),
        WireFormat::Binary => Ok(to_binary(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, Value)]) -> Value {
        Value::Object(
            pairs
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Num(0.0),
            Value::Num(42.0),
            Value::Num(-17.0),
            Value::Num(1.5),
            Value::Num(-2.25e-3),
            Value::Num(9e15),
            Value::Str(String::new()),
            Value::Str("héllo wörld".into()),
        ] {
            assert_eq!(decode_value(&encode_value(&v)).unwrap(), v, "{v:?}");
        }
    }

    #[test]
    fn known_keys_are_one_byte_and_unknown_keys_fall_back_inline() {
        let known = obj(&[("version", Value::Num(3.0))]);
        let bytes = encode_value(&known);
        // T_OBJ + count + key id + T_UINT + varint(3)
        assert_eq!(bytes.len(), 5, "{bytes:02x?}");
        assert_eq!(decode_value(&bytes).unwrap(), known);

        let unknown = obj(&[("some_future_field", Value::Num(3.0))]);
        let bytes = encode_value(&unknown);
        assert!(bytes.len() > 5 + "some_future_field".len() - 1);
        assert_eq!(decode_value(&bytes).unwrap(), unknown);
    }

    #[test]
    fn null_object_fields_are_skipped_but_array_nulls_survive() {
        let v = obj(&[
            ("target", Value::Null),
            (
                "assignments",
                Value::Array(vec![Value::Null, Value::Num(1.0)]),
            ),
        ]);
        let back = decode_value(&encode_value(&v)).unwrap();
        // the null *field* vanishes (missing key == None for the derives)…
        assert!(back.field("target").is_err());
        // …the null *element* is data and survives
        assert_eq!(
            back.field("assignments").unwrap(),
            &Value::Array(vec![Value::Null, Value::Num(1.0)])
        );
    }

    #[test]
    fn nested_tree_round_trips() {
        let v = obj(&[
            ("version", Value::Num(3.0)),
            ("id", Value::Num(7.0)),
            ("mode", Value::Str("ScheduleAll".into())),
            (
                "instance",
                obj(&[
                    ("num_processors", Value::Num(2.0)),
                    ("horizon", Value::Num(16.0)),
                    (
                        "jobs",
                        Value::Array(vec![obj(&[
                            ("value", Value::Num(1.0)),
                            (
                                "allowed",
                                Value::Array(vec![obj(&[
                                    ("proc", Value::Num(0.0)),
                                    ("time", Value::Num(3.0)),
                                ])]),
                            ),
                        ])]),
                    ),
                ]),
            ),
            ("restart", Value::Num(3.5)),
        ]);
        assert_eq!(decode_value(&encode_value(&v)).unwrap(), v);
    }

    #[test]
    fn hostile_payloads_error_instead_of_panicking() {
        // truncated scalar
        assert!(decode_value(&[T_F64, 1, 2]).is_err());
        // lying string length
        assert!(decode_value(&[T_STR, 0xFF, 0xFF, 0x03]).is_err());
        // lying array count (u64::MAX) must be rejected before reserving
        let mut lie = vec![T_ARR];
        lie.extend_from_slice(&[0xFF; 9]);
        lie.push(0x01);
        assert!(decode_value(&lie).is_err());
        // unknown tag, unknown field id, trailing garbage
        assert!(decode_value(&[0x7E]).is_err());
        assert!(decode_value(&[T_OBJ, 1, 0xFE, T_NULL]).is_err());
        assert!(decode_value(&[T_NULL, T_NULL]).is_err());
        // non-UTF-8 string
        assert!(decode_value(&[T_STR, 2, 0xC0, 0x00]).is_err());
        // over-deep nesting
        let mut deep = vec![];
        for _ in 0..200 {
            deep.extend_from_slice(&[T_ARR, 1]);
        }
        deep.push(T_NULL);
        assert!(decode_value(&deep).is_err());
    }

    #[test]
    fn frames_round_trip_both_formats() {
        for format in [WireFormat::Json, WireFormat::Binary] {
            let payload = b"payload bytes".to_vec();
            let mut wire = Vec::new();
            write_frame(&mut wire, format, &payload).unwrap();
            let mut reader = wire.as_slice();
            let (got_format, got) = read_frame(&mut reader).unwrap().expect("one frame");
            assert_eq!(got_format, format);
            assert_eq!(got, payload);
            // clean EOF after the frame
            assert!(read_frame(&mut reader).unwrap().is_none());
        }
    }

    #[test]
    fn frame_header_errors_are_structured() {
        // clean EOF: no bytes at all
        assert!(read_frame(&mut [].as_slice()).unwrap().is_none());
        // truncated header
        let err = read_frame(&mut [MAGIC[0]].as_slice()).unwrap_err();
        assert!(matches!(err, FrameError::Truncated { .. }), "{err}");
        // wrong magic
        let err = read_frame(&mut [b'{', b'"', 0, 0, 0, 0, 1].as_slice()).unwrap_err();
        assert!(matches!(err, FrameError::BadMagic(_)), "{err}");
        // oversized declaration: rejected before allocating
        let mut hostile = Vec::from(MAGIC);
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        hostile.push(2);
        let err = read_frame(&mut hostile.as_slice()).unwrap_err();
        assert!(
            matches!(err, FrameError::Oversized { declared: u32::MAX }),
            "{err}"
        );
        // unknown format tag
        let mut unknown = Vec::from(MAGIC);
        unknown.extend_from_slice(&0u32.to_le_bytes());
        unknown.push(9);
        let err = read_frame(&mut unknown.as_slice()).unwrap_err();
        assert!(matches!(err, FrameError::UnknownFormat(9)), "{err}");
        // truncated payload: header promises 8, stream carries 3
        let mut short = Vec::from(MAGIC);
        short.extend_from_slice(&8u32.to_le_bytes());
        short.push(2);
        short.extend_from_slice(&[1, 2, 3]);
        let err = read_frame(&mut short.as_slice()).unwrap_err();
        assert!(
            matches!(
                err,
                FrameError::Truncated {
                    declared: 8,
                    got: 3
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn varint_boundaries_round_trip() {
        for n in [0u64, 1, 127, 128, 16_383, 16_384, (1 << 53) - 1] {
            let v = Value::Num(n as f64);
            assert_eq!(decode_value(&encode_value(&v)).unwrap(), v, "{n}");
        }
        // just past the exact-integer range: stored as f64 bits instead
        let big = Value::Num(2.0f64.powi(60));
        assert_eq!(decode_value(&encode_value(&big)).unwrap(), big);
    }
}
