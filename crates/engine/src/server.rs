//! A `std::net` TCP server speaking the v3 framed protocol *and* the
//! legacy JSONL transport, negotiated per connection.
//!
//! **Content negotiation** happens on the first byte of each connection,
//! peeked without consuming: `0xB3` (the frame magic, outside ASCII) means
//! the whole connection is framed — `magic | u32 len | u8 format-tag |
//! payload`, responses echoing each request's payload format — while
//! anything else falls back to JSONL lines exactly as protocol v1/v2
//! shipped them, so `nc` and old clients keep working byte-for-byte. A
//! `hello` control verb answers with the server's capability card
//! ([`crate::protocol::HelloInfo`]).
//!
//! One OS thread per connection pair: a **reader** parses requests and
//! hands them to the shared [`Engine`], while the connection's **writer**
//! resolves tickets *in request order* and streams responses back. That
//! keeps each connection pipelined — a client may write its whole batch
//! before reading anything — without ever reordering its responses.
//!
//! **Admission control**: with a [`ShedPolicy`] configured
//! ([`ServeOptions::shed_policy`], the CLI's `--shed-policy`), readers use
//! the engine's non-blocking [`Engine::admit`] — a full queue sheds per
//! policy with a structured `Overloaded` response (+`retry_after_ms`)
//! instead of queueing unboundedly or blocking the socket. Without a
//! policy, the v1/v2 behavior remains: the bounded queue blocks the
//! reader and backpressure reaches the client's send buffer.
//!
//! Control verbs: `{"version":1,"control":"ping"}` is acknowledged in-line;
//! `"hello"` returns the capability card; `"metrics"` is acknowledged with
//! the engine's merged `obs/v1` snapshot in the response's `obs` field;
//! `"shutdown"` acknowledges, then stops the accept loop and lets
//! in-flight connections drain before [`serve`] returns (graceful
//! shutdown, ending with a metrics flush: a text summary on stderr and,
//! if requested, the JSON snapshot to a file).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use crate::codec::{self, FrameError, WireFormat};
use crate::engine::{AdmitResult, Engine, EngineConfig, ShedPolicy, Ticket};
use crate::protocol::{
    line_correlation, parse_line, parse_value, value_correlation, ErrorKind, SolveResponse,
    WireError, WireRequest,
};

/// Serve-loop knobs beyond the engine sizing in [`EngineConfig`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeOptions<'a> {
    /// Write the final merged `obs/v1` metrics snapshot here after the
    /// graceful-shutdown drain (the text summary always goes to stderr).
    pub metrics_out: Option<&'a Path>,
    /// Admission control: `Some(policy)` makes connection readers shed on
    /// a full queue instead of blocking (see [`Engine::admit`]); `None`
    /// keeps blocking backpressure.
    pub shed_policy: Option<ShedPolicy>,
}

/// Runs the serve loop on an already-bound listener until a client sends a
/// `shutdown` control request. Returns once every accepted connection has
/// been drained and the engine's workers have been joined. Connections that
/// are idle at shutdown time have their read side cut (already-submitted
/// work still gets its responses), so one parked client cannot keep the
/// process alive.
pub fn serve(listener: TcpListener, config: EngineConfig) -> std::io::Result<()> {
    serve_with_options(listener, config, ServeOptions::default())
}

/// [`serve`], optionally writing the final merged `obs/v1` metrics
/// snapshot to `metrics_out` after the graceful shutdown drain.
pub fn serve_with_metrics(
    listener: TcpListener,
    config: EngineConfig,
    metrics_out: Option<&Path>,
) -> std::io::Result<()> {
    serve_with_options(
        listener,
        config,
        ServeOptions {
            metrics_out,
            shed_policy: None,
        },
    )
}

/// [`serve`] with the full option set ([`ServeOptions`]).
pub fn serve_with_options(
    listener: TcpListener,
    config: EngineConfig,
    options: ServeOptions<'_>,
) -> std::io::Result<()> {
    let metrics_out = options.metrics_out;
    let local = listener.local_addr()?;
    let engine = Arc::new(Engine::new(config));
    let shutdown = Arc::new(AtomicBool::new(false));
    // Read-halves of *live* connections keyed by id, for unblocking parked
    // readers at shutdown. Each handler removes its own entry when it ends,
    // so a long-lived server does not leak one duplicated fd per served
    // connection.
    let streams: Arc<Mutex<Vec<(u64, TcpStream)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut connections = Vec::new();
    let mut next_conn_id = 0u64;
    let mut consecutive_accept_errors = 0u32;

    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break; // the wake-up connection (or a late client) ends accept
        }
        let stream = match stream {
            Ok(s) => {
                consecutive_accept_errors = 0;
                // Request/response traffic: Nagle + delayed ACK would add
                // ~40ms stalls per unbuffered exchange.
                let _ = s.set_nodelay(true);
                s
            }
            Err(e) => {
                // Transient accept failures (EMFILE, aborted handshakes)
                // must not kill the server; back off briefly and retry. A
                // persistently failing listener is fatal after ~2 s. Each
                // failure is counted, logged, and recorded as a structured
                // flight-recorder event — these used to vanish silently,
                // hiding fd exhaustion until clients timed out.
                engine.registry().counter("engine.accept.errors").inc();
                eprintln!("accept error (attempt {consecutive_accept_errors}): {e}");
                if let Some(tracer) = engine.tracer() {
                    tracer.record_instant(
                        "engine.accept.error",
                        None,
                        vec![
                            ("attempt", u64::from(consecutive_accept_errors).into()),
                            ("error", e.to_string().into()),
                        ],
                    );
                }
                consecutive_accept_errors += 1;
                if consecutive_accept_errors > 100 {
                    // Error burst turned fatal: dump the flight recorder and
                    // flush the metrics snapshot before bailing, so the
                    // failure leaves the same artifacts a clean shutdown
                    // would.
                    if let Some(tracer) = engine.tracer() {
                        tracer.dump_to_stderr("accept-loop error burst");
                    }
                    let snapshot = engine.metrics_snapshot();
                    eprint!("metrics summary:\n{}", snapshot.render_text());
                    if let Some(path) = metrics_out {
                        let _ = std::fs::write(path, snapshot.to_json() + "\n");
                    }
                    return Err(e);
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
                continue;
            }
        };
        let conn_id = next_conn_id;
        next_conn_id += 1;
        if let (Ok(clone), Ok(mut registry)) = (stream.try_clone(), streams.lock()) {
            registry.push((conn_id, clone));
        } // a clone failure only costs shutdown-unparking for this conn
        let engine = Arc::clone(&engine);
        let shutdown = Arc::clone(&shutdown);
        let streams = Arc::clone(&streams);
        let shed_policy = options.shed_policy;
        connections.push(std::thread::spawn(move || {
            // Connection errors (resets, half-closed sockets) only end that
            // connection; the server keeps serving others.
            let _ = handle_connection(stream, &engine, &shutdown, local, shed_policy);
            if let Ok(mut registry) = streams.lock() {
                registry.retain(|(id, _)| *id != conn_id);
            }
        }));
    }

    // Unpark readers blocked on idle sockets; their writers then drain any
    // in-flight responses and the connection threads end.
    if let Ok(registry) = streams.lock() {
        for (_, s) in registry.iter() {
            let _ = s.shutdown(Shutdown::Read);
        }
    }
    for conn in connections {
        let _ = conn.join();
    }

    // Graceful-shutdown flush: everything is drained, so this is the
    // complete picture of the server's lifetime — the metrics snapshot
    // plus, with the flight recorder on, the last trace events per thread.
    if let Some(tracer) = engine.tracer() {
        tracer.dump_to_stderr("graceful shutdown");
    }
    let snapshot = engine.metrics_snapshot();
    eprint!("metrics summary:\n{}", snapshot.render_text());
    if let Some(path) = metrics_out {
        std::fs::write(path, snapshot.to_json() + "\n")?;
    }
    Ok(())
}

/// Outcome of parsing one request on a connection, in arrival order.
enum Pending {
    /// Response already known (parse error, control ack, shed).
    Ready(Box<SolveResponse>),
    /// Solve dispatched to the engine.
    InFlight(Ticket),
}

/// How a pending response must be written back: the transport/format of
/// the request it answers.
#[derive(Clone, Copy)]
enum Encoding {
    /// Legacy transport: one JSON line.
    Jsonl,
    /// v3 frame in the given payload format.
    Frame(WireFormat),
}

struct Dispatch {
    pending: Pending,
    /// A `shutdown` verb was handled: stop reading after answering it.
    stop: bool,
}

/// Turns one parsed request (or its parse failure + best-effort
/// correlation keys) into a pending response, shared by both transports.
fn dispatch_request(
    parsed: Result<WireRequest, WireError>,
    correlation: (u64, Option<String>),
    engine: &Engine,
    shutdown: &AtomicBool,
    local: SocketAddr,
    shed_policy: Option<ShedPolicy>,
) -> Dispatch {
    let mut stop = false;
    let pending = match parsed {
        Ok(WireRequest::Solve(req)) => match shed_policy {
            // no admission control: block on the bounded queue
            // (backpressure through the socket, the v1/v2 behavior)
            None => Pending::InFlight(engine.submit(*req)),
            Some(policy) => match engine.admit(*req, policy) {
                AdmitResult::Admitted(ticket) => Pending::InFlight(ticket),
                AdmitResult::Shed(resp) => Pending::Ready(resp),
            },
        },
        Ok(WireRequest::Control(ctl)) => match ctl.control.as_str() {
            "ping" => Pending::Ready(Box::new(SolveResponse::control_ack())),
            "hello" => Pending::Ready(Box::new(SolveResponse::hello_ack())),
            "metrics" => Pending::Ready(Box::new(SolveResponse::metrics_ack(
                engine.metrics_snapshot(),
            ))),
            "shutdown" => {
                shutdown.store(true, Ordering::SeqCst);
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(local);
                stop = true;
                Pending::Ready(Box::new(SolveResponse::control_ack()))
            }
            other => Pending::Ready(Box::new(SolveResponse::failure(
                0,
                WireError::new(
                    ErrorKind::BadRequest,
                    format!("unknown control verb '{other}'"),
                ),
            ))),
        },
        Err(e) => {
            // carry whatever correlation keys the bad request had, so the
            // client can match the failure to its request
            let (id, trace_id) = correlation;
            let resp = SolveResponse::failure(id, e);
            Pending::Ready(Box::new(match trace_id {
                Some(t) => resp.with_trace_id(t),
                None => resp,
            }))
        }
    };
    Dispatch { pending, stop }
}

fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    shutdown: &AtomicBool,
    local: SocketAddr,
    shed_policy: Option<ShedPolicy>,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    // Content negotiation: peek (without consuming) the connection's first
    // byte. The frame magic 0xB3 is outside ASCII, so it can never begin a
    // JSONL line — one byte decides the transport for the whole connection.
    let framed = match reader.fill_buf() {
        Ok([]) => return Ok(()), // clean EOF before any request
        Ok(buf) => buf[0] == codec::MAGIC[0],
        Err(e) => return Err(e),
    };

    // Bounded: when a pipelining client stops reading responses, the writer
    // stalls on the socket, this queue fills, the reader blocks here and
    // stops consuming requests — backpressure reaches the client's send
    // buffer instead of responses piling up in server memory.
    let (tx, rx) = mpsc::sync_channel::<(Pending, Encoding)>(64);

    std::thread::scope(|scope| {
        scope.spawn(move || {
            if framed {
                read_frames(reader, engine, shutdown, local, shed_policy, &tx);
            } else {
                read_lines(reader, engine, shutdown, local, shed_policy, &tx);
            }
            // tx drops here: the writer drains what remains, then ends.
        });

        for (pending, encoding) in rx {
            let response = match pending {
                Pending::Ready(r) => *r,
                Pending::InFlight(ticket) => ticket.wait(),
            };
            match encoding {
                Encoding::Jsonl => {
                    let line = serde_json::to_string(&response)
                        .unwrap_or_else(|e| format!("{{\"version\":1,\"id\":0,\"ok\":false,\"error\":{{\"kind\":\"Internal\",\"message\":\"serialize: {e}\"}}}}"));
                    writeln!(writer, "{line}")?;
                }
                Encoding::Frame(format) => {
                    let payload = codec::value_to_payload(format, &response).unwrap_or_else(|e| {
                        let fallback = SolveResponse::failure(
                            response.id,
                            WireError::new(ErrorKind::Internal, format!("serialize: {e}")),
                        );
                        codec::value_to_payload(format, &fallback).unwrap_or_default()
                    });
                    codec::write_frame(&mut writer, format, &payload)?;
                }
            }
            writer.flush()?;
        }
        Ok(())
    })
}

/// Reader half of a legacy JSONL connection (protocol v1/v2, unchanged).
fn read_lines(
    reader: BufReader<TcpStream>,
    engine: &Engine,
    shutdown: &AtomicBool,
    local: SocketAddr,
    shed_policy: Option<ShedPolicy>,
    tx: &mpsc::SyncSender<(Pending, Encoding)>,
) {
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let dispatch = dispatch_request(
            parse_line(&line),
            line_correlation(&line),
            engine,
            shutdown,
            local,
            shed_policy,
        );
        if tx.send((dispatch.pending, Encoding::Jsonl)).is_err() {
            break; // writer gone (client stopped reading)
        }
        if dispatch.stop {
            break; // no requests are read after a shutdown verb
        }
    }
}

/// Reader half of a v3 framed connection. A malformed frame (bad magic,
/// oversized declaration, unknown tag, truncation) is answered with one
/// structured `Parse` failure and then the connection is closed — a byte
/// stream cannot be resynchronized after a framing error. This loop must
/// never panic, whatever bytes arrive (fuzzed in `tests/frame_malformed`).
fn read_frames(
    mut reader: BufReader<TcpStream>,
    engine: &Engine,
    shutdown: &AtomicBool,
    local: SocketAddr,
    shed_policy: Option<ShedPolicy>,
    tx: &mpsc::SyncSender<(Pending, Encoding)>,
) {
    // format of the most recent well-formed frame: the best guess for
    // encoding a framing-error response the client will understand
    let mut last_format = WireFormat::Binary;
    loop {
        match codec::read_frame(&mut reader) {
            Ok(None) => break, // clean EOF between frames
            Ok(Some((format, payload))) => {
                last_format = format;
                let (parsed, correlation) = match codec::payload_to_value(format, &payload) {
                    Ok(value) => (parse_value(&value), value_correlation(&value)),
                    Err(e) => (
                        Err(WireError::new(
                            ErrorKind::Parse,
                            format!("undecodable frame payload: {e}"),
                        )),
                        (0, None),
                    ),
                };
                let dispatch =
                    dispatch_request(parsed, correlation, engine, shutdown, local, shed_policy);
                if tx
                    .send((dispatch.pending, Encoding::Frame(format)))
                    .is_err()
                {
                    break;
                }
                if dispatch.stop {
                    break;
                }
            }
            Err(FrameError::Io(_)) => break, // transport died: nothing to answer
            Err(e) => {
                let resp =
                    SolveResponse::failure(0, WireError::new(ErrorKind::Parse, e.to_string()));
                let _ = tx.send((Pending::Ready(Box::new(resp)), Encoding::Frame(last_format)));
                break;
            }
        }
    }
}
