//! A `std::net` TCP server speaking the JSONL wire protocol.
//!
//! One OS thread per connection pair: a **reader** parses request lines and
//! submits them to the shared [`Engine`] (the bounded queue makes a
//! saturated pool push back on the socket), while the connection's **writer**
//! resolves tickets *in request order* and streams response lines back. That
//! keeps each connection pipelined — a client may write its whole batch
//! before reading anything — without ever reordering its responses.
//!
//! Control verbs: `{"version":1,"control":"ping"}` is acknowledged in-line;
//! `"metrics"` is acknowledged with the engine's merged `obs/v1` snapshot
//! in the response's `obs` field; `"shutdown"` acknowledges, then stops the
//! accept loop and lets in-flight connections drain before [`serve`]
//! returns (graceful shutdown, ending with a metrics flush: a text summary
//! on stderr and, if requested, the JSON snapshot to a file).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};

use crate::engine::{Engine, EngineConfig, Ticket};
use crate::protocol::{
    line_correlation, parse_line, ErrorKind, SolveResponse, WireError, WireRequest,
};

/// Runs the serve loop on an already-bound listener until a client sends a
/// `shutdown` control request. Returns once every accepted connection has
/// been drained and the engine's workers have been joined. Connections that
/// are idle at shutdown time have their read side cut (already-submitted
/// work still gets its responses), so one parked client cannot keep the
/// process alive.
pub fn serve(listener: TcpListener, config: EngineConfig) -> std::io::Result<()> {
    serve_with_metrics(listener, config, None)
}

/// [`serve`], optionally writing the final merged `obs/v1` metrics
/// snapshot to `metrics_out` after the graceful shutdown drain. The text
/// summary always goes to stderr on shutdown.
pub fn serve_with_metrics(
    listener: TcpListener,
    config: EngineConfig,
    metrics_out: Option<&Path>,
) -> std::io::Result<()> {
    let local = listener.local_addr()?;
    let engine = Arc::new(Engine::new(config));
    let shutdown = Arc::new(AtomicBool::new(false));
    // Read-halves of *live* connections keyed by id, for unblocking parked
    // readers at shutdown. Each handler removes its own entry when it ends,
    // so a long-lived server does not leak one duplicated fd per served
    // connection.
    let streams: Arc<Mutex<Vec<(u64, TcpStream)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut connections = Vec::new();
    let mut next_conn_id = 0u64;
    let mut consecutive_accept_errors = 0u32;

    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break; // the wake-up connection (or a late client) ends accept
        }
        let stream = match stream {
            Ok(s) => {
                consecutive_accept_errors = 0;
                s
            }
            Err(e) => {
                // Transient accept failures (EMFILE, aborted handshakes)
                // must not kill the server; back off briefly and retry. A
                // persistently failing listener is fatal after ~2 s. Each
                // failure is counted, logged, and recorded as a structured
                // flight-recorder event — these used to vanish silently,
                // hiding fd exhaustion until clients timed out.
                engine.registry().counter("engine.accept.errors").inc();
                eprintln!("accept error (attempt {consecutive_accept_errors}): {e}");
                if let Some(tracer) = engine.tracer() {
                    tracer.record_instant(
                        "engine.accept.error",
                        None,
                        vec![
                            ("attempt", u64::from(consecutive_accept_errors).into()),
                            ("error", e.to_string().into()),
                        ],
                    );
                }
                consecutive_accept_errors += 1;
                if consecutive_accept_errors > 100 {
                    // Error burst turned fatal: dump the flight recorder and
                    // flush the metrics snapshot before bailing, so the
                    // failure leaves the same artifacts a clean shutdown
                    // would.
                    if let Some(tracer) = engine.tracer() {
                        tracer.dump_to_stderr("accept-loop error burst");
                    }
                    let snapshot = engine.metrics_snapshot();
                    eprint!("metrics summary:\n{}", snapshot.render_text());
                    if let Some(path) = metrics_out {
                        let _ = std::fs::write(path, snapshot.to_json() + "\n");
                    }
                    return Err(e);
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
                continue;
            }
        };
        let conn_id = next_conn_id;
        next_conn_id += 1;
        if let (Ok(clone), Ok(mut registry)) = (stream.try_clone(), streams.lock()) {
            registry.push((conn_id, clone));
        } // a clone failure only costs shutdown-unparking for this conn
        let engine = Arc::clone(&engine);
        let shutdown = Arc::clone(&shutdown);
        let streams = Arc::clone(&streams);
        connections.push(std::thread::spawn(move || {
            // Connection errors (resets, half-closed sockets) only end that
            // connection; the server keeps serving others.
            let _ = handle_connection(stream, &engine, &shutdown, local);
            if let Ok(mut registry) = streams.lock() {
                registry.retain(|(id, _)| *id != conn_id);
            }
        }));
    }

    // Unpark readers blocked on idle sockets; their writers then drain any
    // in-flight responses and the connection threads end.
    if let Ok(registry) = streams.lock() {
        for (_, s) in registry.iter() {
            let _ = s.shutdown(Shutdown::Read);
        }
    }
    for conn in connections {
        let _ = conn.join();
    }

    // Graceful-shutdown flush: everything is drained, so this is the
    // complete picture of the server's lifetime — the metrics snapshot
    // plus, with the flight recorder on, the last trace events per thread.
    if let Some(tracer) = engine.tracer() {
        tracer.dump_to_stderr("graceful shutdown");
    }
    let snapshot = engine.metrics_snapshot();
    eprint!("metrics summary:\n{}", snapshot.render_text());
    if let Some(path) = metrics_out {
        std::fs::write(path, snapshot.to_json() + "\n")?;
    }
    Ok(())
}

/// Outcome of parsing one line on a connection, in arrival order.
enum Pending {
    /// Response already known (parse error, control ack).
    Ready(Box<SolveResponse>),
    /// Solve dispatched to the engine.
    InFlight(Ticket),
}

fn handle_connection(
    stream: TcpStream,
    engine: &Engine,
    shutdown: &AtomicBool,
    local: SocketAddr,
) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    // Bounded: when a pipelining client stops reading responses, the writer
    // stalls on the socket, this queue fills, the reader blocks here and
    // stops consuming requests — backpressure reaches the client's send
    // buffer instead of responses piling up in server memory.
    let (tx, rx) = mpsc::sync_channel::<Pending>(64);

    std::thread::scope(|scope| {
        scope.spawn(move || {
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let mut stop = false;
                let pending = match parse_line(&line) {
                    Ok(WireRequest::Solve(req)) => Pending::InFlight(engine.submit(*req)),
                    Ok(WireRequest::Control(ctl)) => match ctl.control.as_str() {
                        "ping" => Pending::Ready(Box::new(SolveResponse::control_ack())),
                        "metrics" => Pending::Ready(Box::new(SolveResponse::metrics_ack(
                            engine.metrics_snapshot(),
                        ))),
                        "shutdown" => {
                            shutdown.store(true, Ordering::SeqCst);
                            // Wake the accept loop so it observes the flag.
                            let _ = TcpStream::connect(local);
                            stop = true;
                            Pending::Ready(Box::new(SolveResponse::control_ack()))
                        }
                        other => Pending::Ready(Box::new(SolveResponse::failure(
                            0,
                            WireError::new(
                                ErrorKind::BadRequest,
                                format!("unknown control verb '{other}'"),
                            ),
                        ))),
                    },
                    Err(e) => {
                        // carry whatever correlation keys the bad line had,
                        // so the client can match the failure to its request
                        let (id, trace_id) = line_correlation(&line);
                        let resp = SolveResponse::failure(id, e);
                        Pending::Ready(Box::new(match trace_id {
                            Some(t) => resp.with_trace_id(t),
                            None => resp,
                        }))
                    }
                };
                if tx.send(pending).is_err() {
                    break; // writer gone (client stopped reading)
                }
                if stop {
                    break; // no requests are read after a shutdown verb
                }
            }
            // tx drops here: the writer drains what remains, then ends.
        });

        for pending in rx {
            let response = match pending {
                Pending::Ready(r) => *r,
                Pending::InFlight(ticket) => ticket.wait(),
            };
            let line = serde_json::to_string(&response)
                .unwrap_or_else(|e| format!("{{\"version\":1,\"id\":0,\"ok\":false,\"error\":{{\"kind\":\"Internal\",\"message\":\"serialize: {e}\"}}}}"));
            writeln!(writer, "{line}")?;
            writer.flush()?;
        }
        Ok(())
    })
}
