//! # sched-engine — a sharded, multi-threaded batch-solving engine
//!
//! `sched-core` solves one instance per call. This crate turns that library
//! into a *service*: a long-lived [`Engine`] that accepts a stream of
//! [`SolveRequest`]s, shards them across a fixed pool of worker threads,
//! reuses enumerated candidate families across requests, and reports
//! per-request [`SolveMetrics`]. It backs the `power-sched batch` and
//! `power-sched serve` CLI modes.
//!
//! ```text
//!                     ┌──────────────────────────────────────────────┐
//!   v3 frames or ──►  │                 Engine                       │
//!   JSONL lines       │  bounded queue ──┬── worker 0 ── Solver +    │
//!   (file, stdin,     │  (backpressure   ├── worker 1    candidate   │
//!    TCP socket)      │   or shedding)   └── worker N    cache (Arc) │
//!                     └──────────────┬───────────────────────────────┘
//!   responses ◄── tickets, resolved in submission order
//! ```
//!
//! ## Wire protocol v3 (framed binary, negotiated)
//!
//! Since protocol v3 the default transport is a length-prefixed binary
//! frame:
//!
//! ```text
//! ┌──────────┬────────────┬──────────┬───────────────┐
//! │ magic    │ len: u32   │ tag: u8  │ payload       │
//! │ B3 50    │ LE, payload│ 1=json   │ (len bytes)   │
//! │          │ bytes      │ 2=binary │               │
//! └──────────┴────────────┴──────────┴───────────────┘
//! ```
//!
//! The payload is one request/response object, encoded either as JSON text
//! (tag 1) or with the compact field-tagged binary codec in [`codec`]
//! (tag 2). The server *negotiates per connection by sniffing the first
//! byte* — `0xB3` never begins a JSONL line, so framed and line clients
//! share one port — and each response echoes the format of the frame that
//! carried its request. The `hello` control verb returns a capability card
//! ([`HelloInfo`]) for clients that want explicit negotiation. Legacy JSONL
//! (v1/v2) remains fully supported: one JSON object per line, one response
//! line per request line, in request order — handy with `nc` for debugging.
//! See [`protocol`] for the schema, versioning, and the compatibility
//! policy, and [`client::EngineClient`] for the canonical client.
//!
//! A minimal JSONL request (still accepted verbatim):
//!
//! ```json
//! {"version":1,"id":1,"mode":"ScheduleAll",
//!  "instance":{"num_processors":1,"horizon":4,
//!              "jobs":[{"value":1,"allowed":[{"proc":0,"time":0}]}]},
//!  "restart":3,"rate":1}
//! ```
//!
//! ## In-process use
//!
//! ```
//! use sched_core::{Instance, Job, SlotRef};
//! use sched_engine::{Engine, EngineConfig, SolveRequest};
//!
//! let engine = Engine::new(EngineConfig::with_workers(2));
//! let inst = Instance::new(1, 4, vec![Job::unit(vec![SlotRef::new(0, 0)])]);
//! let responses = engine.solve_batch(vec![
//!     SolveRequest::builder(1, inst).affine(10.0, 1.0).build(),
//! ]);
//! assert!(responses[0].ok);
//! assert_eq!(responses[0].schedule.as_ref().unwrap().scheduled_count, 1);
//! ```
//!
//! ## Guarantees
//!
//! * **Determinism** — worker scheduling never affects results: each request
//!   is solved by one worker with the same deterministic greedy the library
//!   exposes, so batch output is bit-identical to sequential [`Solver`]
//!   calls (asserted by integration tests).
//! * **Order** — [`Engine::solve_batch`] and the server's per-connection
//!   writer resolve tickets in submission order.
//! * **Backpressure or shedding** — the request queue is bounded. By
//!   default producers block instead of buffering unboundedly; a server
//!   started with a shed policy instead answers excess load with structured
//!   `Overloaded` responses carrying a `retry_after_ms` hint (see
//!   [`ShedPolicy`] and [`ServeOptions`]).
//!
//! [`Solver`]: sched_core::Solver

pub mod client;
pub mod codec;
pub mod engine;
pub mod protocol;
pub mod server;

pub use client::{EngineClient, Transport};
pub use codec::{read_frame, write_frame, FrameError, WireFormat, MAGIC, MAX_FRAME_LEN};
pub use engine::{AdmitResult, Engine, EngineConfig, ShedPolicy, Ticket};
pub use protocol::{
    parse_line, parse_value, ControlRequest, ErrorKind, HelloInfo, SolveMetrics, SolveMode,
    SolveRequest, SolveRequestBuilder, SolveResponse, WireError, WireRequest, PROTOCOL_VERSION,
};
pub use server::{serve, serve_with_metrics, serve_with_options, ServeOptions};
