//! # sched-engine — a sharded, multi-threaded batch-solving engine
//!
//! `sched-core` solves one instance per call. This crate turns that library
//! into a *service*: a long-lived [`Engine`] that accepts a stream of
//! [`SolveRequest`]s, shards them across a fixed pool of worker threads,
//! reuses enumerated candidate families across requests, and reports
//! per-request [`SolveMetrics`]. It backs the `power-sched batch` and
//! `power-sched serve` CLI modes.
//!
//! ```text
//!                     ┌──────────────────────────────────────────────┐
//!   JSONL lines ──►   │                 Engine                       │
//!   (file, stdin,     │  bounded queue ──┬── worker 0 ── Solver +    │
//!    TCP socket)      │  (backpressure)  ├── worker 1    candidate   │
//!                     │                  └── worker N    cache (Arc) │
//!                     └──────────────┬───────────────────────────────┘
//!   JSONL responses ◄── tickets, resolved in submission order
//! ```
//!
//! ## Wire protocol (JSONL, versioned)
//!
//! One JSON object per line; one response line per request line, in request
//! order — see [`protocol`] for the schema and [`PROTOCOL_VERSION`] for
//! versioning. A minimal request:
//!
//! ```json
//! {"version":1,"id":1,"mode":"ScheduleAll",
//!  "instance":{"num_processors":1,"horizon":4,
//!              "jobs":[{"value":1,"allowed":[{"proc":0,"time":0}]}]},
//!  "restart":3,"rate":1}
//! ```
//!
//! ## In-process use
//!
//! ```
//! use sched_core::{Instance, Job, SlotRef};
//! use sched_engine::{Engine, EngineConfig, SolveRequest};
//!
//! let engine = Engine::new(EngineConfig::with_workers(2));
//! let inst = Instance::new(1, 4, vec![Job::unit(vec![SlotRef::new(0, 0)])]);
//! let responses = engine.solve_batch(vec![
//!     SolveRequest::schedule_all(1, inst, 10.0, 1.0),
//! ]);
//! assert!(responses[0].ok);
//! assert_eq!(responses[0].schedule.as_ref().unwrap().scheduled_count, 1);
//! ```
//!
//! ## Guarantees
//!
//! * **Determinism** — worker scheduling never affects results: each request
//!   is solved by one worker with the same deterministic greedy the library
//!   exposes, so batch output is bit-identical to sequential [`Solver`]
//!   calls (asserted by integration tests).
//! * **Order** — [`Engine::solve_batch`] and the server's per-connection
//!   writer resolve tickets in submission order.
//! * **Backpressure** — the request queue is bounded; producers block
//!   instead of buffering unboundedly.
//!
//! [`Solver`]: sched_core::Solver

pub mod engine;
pub mod protocol;
pub mod server;

pub use engine::{Engine, EngineConfig, Ticket};
pub use protocol::{
    parse_line, ControlRequest, ErrorKind, SolveMetrics, SolveMode, SolveRequest, SolveResponse,
    WireError, WireRequest, PROTOCOL_VERSION,
};
pub use server::{serve, serve_with_metrics};
