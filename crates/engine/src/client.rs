//! `EngineClient` — the one TCP client for the engine wire protocol,
//! shared by `power-sched batch --connect`, the e2e test suites, and the
//! load generator (`bench::loadgen`).
//!
//! A client picks a [`Transport`] up front: v3 frames carrying binary or
//! JSON payloads (the default is binary — see [`Transport::default`]), or
//! the legacy JSONL line protocol for talking to old servers and for
//! debug parity with `nc`. The server negotiates by sniffing the first
//! byte, so no handshake round-trip is required; callers that want an
//! explicit negotiation use [`EngineClient::hello`] to fetch the server's
//! capability card before sending work.
//!
//! Two usage shapes:
//!
//! * **request/response** — [`send`](EngineClient::send) /
//!   [`recv`](EngineClient::recv) (or
//!   [`send_control`](EngineClient::send_control)) for interactive use;
//! * **pipelined batch** — [`pipeline_lines`](EngineClient::pipeline_lines)
//!   writes a whole batch from a scoped writer thread while the calling
//!   thread drains responses, so a server applying socket backpressure can
//!   never deadlock the client (writing everything before reading anything
//!   would, once both directions' socket buffers fill).

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use serde::{Deserialize, Serialize, Value};

use crate::codec::{self, FrameError, WireFormat};
use crate::protocol::{ControlRequest, HelloInfo, SolveRequest, SolveResponse, PROTOCOL_VERSION};

/// Which wire transport the client speaks for the whole connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// Legacy JSONL lines (protocol v1/v2 compatible).
    Jsonl,
    /// v3 length-prefixed frames with the given payload format.
    Framed(WireFormat),
}

impl Default for Transport {
    /// Binary frames — the v3 default.
    fn default() -> Self {
        Transport::Framed(WireFormat::Binary)
    }
}

impl std::str::FromStr for Transport {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "jsonl" => Ok(Transport::Jsonl),
            "json" => Ok(Transport::Framed(WireFormat::Json)),
            "binary" => Ok(Transport::Framed(WireFormat::Binary)),
            other => Err(format!(
                "unknown format '{other}' (expected binary, json, or jsonl)"
            )),
        }
    }
}

impl std::fmt::Display for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Transport::Jsonl => "jsonl",
            Transport::Framed(WireFormat::Json) => "json",
            Transport::Framed(WireFormat::Binary) => "binary",
        })
    }
}

fn invalid(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// A connected engine client: buffered reader + writer over one TCP
/// stream, speaking one [`Transport`].
pub struct EngineClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    transport: Transport,
}

impl EngineClient {
    /// Connects and prepares buffered halves. No bytes are sent yet — the
    /// server learns the transport from the first byte of the first
    /// request.
    pub fn connect(addr: impl ToSocketAddrs, transport: Transport) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream, transport)
    }

    /// Wraps an already-connected stream (tests, custom dialing).
    pub fn from_stream(stream: TcpStream, transport: Transport) -> io::Result<Self> {
        // Request/response traffic: Nagle + delayed ACK would add ~40ms
        // stalls per unbuffered exchange.
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
            transport,
        })
    }

    /// The transport this client speaks.
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// Explicit negotiation: sends the `hello` verb and returns the
    /// server's capability card ([`HelloInfo`]). Errors if the server
    /// predates v3 (its ack carries no card).
    pub fn hello(&mut self) -> io::Result<HelloInfo> {
        self.send_control("hello")?;
        self.flush()?;
        let resp = self.recv()?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed on hello")
        })?;
        resp.hello
            .ok_or_else(|| invalid("hello ack carried no capability card (pre-v3 server?)"))
    }

    /// Queues one solve request (buffered; call [`flush`](Self::flush) or
    /// a recv-side method to push it out).
    pub fn send(&mut self, req: &SolveRequest) -> io::Result<()> {
        write_serialized(&mut self.writer, self.transport, req)
    }

    /// Queues one control request (`"ping"`, `"hello"`, `"metrics"`,
    /// `"shutdown"`).
    pub fn send_control(&mut self, verb: &str) -> io::Result<()> {
        let ctl = ControlRequest {
            version: PROTOCOL_VERSION,
            control: verb.to_string(),
        };
        write_serialized(&mut self.writer, self.transport, &ctl)
    }

    /// Queues one raw JSONL request line, whatever transport is in use.
    /// On a framed transport the line is re-encoded into a frame; a line
    /// that is not valid JSON is forwarded as a JSON-format frame verbatim,
    /// so the *server* still produces its structured `Parse` failure —
    /// byte-stream and framed batches fail identically.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        match self.transport {
            Transport::Jsonl => writeln!(self.writer, "{line}"),
            Transport::Framed(format) => match serde_json::from_str::<Value>(line) {
                Ok(v) => {
                    let payload = codec::value_to_payload(format, &v).map_err(invalid)?;
                    codec::write_frame(&mut self.writer, format, &payload)
                }
                Err(_) => codec::write_frame(&mut self.writer, WireFormat::Json, line.as_bytes()),
            },
        }
    }

    /// Flushes buffered requests to the socket.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Reads one response as a raw value tree (`None` on clean EOF).
    /// Useful when the caller re-serializes responses (e.g. `batch`
    /// writing an output file) and wants the server's field order kept.
    pub fn recv_value(&mut self) -> io::Result<Option<Value>> {
        recv_value_from(&mut self.reader, self.transport)
    }

    /// Reads one typed response (`None` on clean EOF).
    pub fn recv(&mut self) -> io::Result<Option<SolveResponse>> {
        match self.recv_value()? {
            None => Ok(None),
            Some(v) => SolveResponse::from_value(&v).map(Some).map_err(invalid),
        }
    }

    /// Pipelined batch: writes every non-blank line (then, optionally, a
    /// `shutdown` verb) from a scoped writer thread while this thread
    /// drains exactly one response value per sent request, in order.
    /// Blank lines are skipped to match server-side JSONL semantics.
    pub fn pipeline_lines(&mut self, lines: &[String], shutdown: bool) -> io::Result<Vec<Value>> {
        let Self {
            reader,
            writer,
            transport,
        } = self;
        let transport = *transport;
        let sent: Vec<&String> = lines.iter().filter(|l| !l.trim().is_empty()).collect();
        let expected = sent.len() + usize::from(shutdown);
        std::thread::scope(|scope| {
            let sender = scope.spawn(move || -> io::Result<()> {
                for line in sent {
                    match transport {
                        Transport::Jsonl => writeln!(writer, "{line}")?,
                        Transport::Framed(format) => match serde_json::from_str::<Value>(line) {
                            Ok(v) => {
                                let payload =
                                    codec::value_to_payload(format, &v).map_err(invalid)?;
                                codec::write_frame(writer, format, &payload)?;
                            }
                            Err(_) => {
                                codec::write_frame(writer, WireFormat::Json, line.as_bytes())?
                            }
                        },
                    }
                }
                if shutdown {
                    let ctl = ControlRequest {
                        version: PROTOCOL_VERSION,
                        control: "shutdown".to_string(),
                    };
                    write_serialized(writer, transport, &ctl)?;
                }
                writer.flush()
            });
            let mut responses = Vec::with_capacity(expected);
            for _ in 0..expected {
                match recv_value_from(reader, transport)? {
                    Some(v) => responses.push(v),
                    None => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            format!(
                                "server closed after {} of {expected} responses",
                                responses.len()
                            ),
                        ))
                    }
                }
            }
            sender.join().expect("client writer thread panicked")?;
            Ok(responses)
        })
    }
}

/// Serializes one wire struct in the transport's encoding (buffered).
fn write_serialized<T: Serialize>(
    writer: &mut BufWriter<TcpStream>,
    transport: Transport,
    t: &T,
) -> io::Result<()> {
    match transport {
        Transport::Jsonl => {
            let line = serde_json::to_string(t).map_err(invalid)?;
            writeln!(writer, "{line}")
        }
        Transport::Framed(format) => {
            let payload = codec::value_to_payload(format, t).map_err(invalid)?;
            codec::write_frame(writer, format, &payload)
        }
    }
}

/// Reads one response value in the transport's encoding (`None` on clean
/// EOF before any byte of the next response).
fn recv_value_from<R: Read>(
    reader: &mut BufReader<R>,
    transport: Transport,
) -> io::Result<Option<Value>> {
    match transport {
        Transport::Jsonl => {
            let mut line = String::new();
            loop {
                line.clear();
                if reader.read_line(&mut line)? == 0 {
                    return Ok(None);
                }
                if !line.trim().is_empty() {
                    break;
                }
            }
            serde_json::from_str(line.trim()).map(Some).map_err(invalid)
        }
        Transport::Framed(_) => match codec::read_frame(reader) {
            Ok(None) => Ok(None),
            Ok(Some((format, payload))) => codec::payload_to_value(format, &payload)
                .map(Some)
                .map_err(invalid),
            Err(FrameError::Io(e)) => Err(e),
            Err(e) => Err(invalid(e)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::protocol::{ErrorKind, PROTOCOL_VERSION};
    use crate::server::serve;
    use sched_core::{Instance, Job, SlotRef};
    use std::net::TcpListener;

    fn tiny_req(id: u64) -> SolveRequest {
        let inst = Instance::new(1, 4, vec![Job::unit(vec![SlotRef::new(0, 1)])]);
        SolveRequest::builder(id, inst).affine(3.0, 1.0).build()
    }

    fn with_server(f: impl FnOnce(std::net::SocketAddr)) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || serve(listener, EngineConfig::with_workers(1)));
        f(addr);
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn all_three_transports_negotiate_hello_and_solve() {
        for transport in [
            Transport::Jsonl,
            Transport::Framed(WireFormat::Json),
            Transport::Framed(WireFormat::Binary),
        ] {
            with_server(|addr| {
                let mut client = EngineClient::connect(addr, transport).unwrap();
                let hello = client.hello().unwrap();
                assert_eq!(hello.protocol, PROTOCOL_VERSION);
                assert!(hello.formats.iter().any(|f| f == "binary"));

                client.send(&tiny_req(42)).unwrap();
                client.flush().unwrap();
                let resp = client.recv().unwrap().expect("one response");
                assert!(resp.ok, "{transport}: {:?}", resp.error);
                assert_eq!(resp.id, 42);
                assert_eq!(resp.schedule.unwrap().scheduled_count, 1);

                client.send_control("shutdown").unwrap();
                client.flush().unwrap();
                assert!(client.recv().unwrap().expect("shutdown ack").ok);
            });
        }
    }

    #[test]
    fn pipeline_preserves_order_and_server_side_parse_errors() {
        for transport in [Transport::Jsonl, Transport::Framed(WireFormat::Binary)] {
            with_server(|addr| {
                let mut client = EngineClient::connect(addr, transport).unwrap();
                let lines = vec![
                    serde_json::to_string(&tiny_req(1)).unwrap(),
                    "   ".to_string(), // blank: skipped, no response expected
                    "{\"this is\": not json".to_string(),
                    serde_json::to_string(&tiny_req(3)).unwrap(),
                ];
                let responses = client.pipeline_lines(&lines, true).unwrap();
                assert_eq!(responses.len(), 4, "{transport}: 3 sent + shutdown ack");
                let typed: Vec<SolveResponse> = responses
                    .iter()
                    .map(|v| SolveResponse::from_value(v).unwrap())
                    .collect();
                assert_eq!(typed[0].id, 1);
                assert!(typed[0].ok);
                // the malformed line fails *server-side* on every transport
                assert_eq!(typed[1].error.as_ref().unwrap().kind, ErrorKind::Parse);
                assert_eq!(typed[2].id, 3);
                assert!(typed[2].ok);
                assert!(typed[3].ok, "shutdown ack");
            });
        }
    }
}
