//! Hostile-input tests for the v3 framed transport: truncated headers,
//! lying length prefixes, unknown format tags, and random byte salads must
//! all produce one structured `Parse` failure (or a clean close) — never a
//! panic, never a hung connection, and never a poisoned accept loop.

use proptest::{proptest, ProptestConfig};
use sched_core::{Instance, Job, SlotRef};
use sched_engine::codec::{read_frame, WireFormat, MAGIC, MAX_FRAME_LEN};
use sched_engine::{
    serve, EngineClient, EngineConfig, ErrorKind, SolveRequest, SolveResponse, Transport,
};
use serde::Deserialize;
use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

fn spawn_server() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || serve(listener, EngineConfig::with_workers(1)));
    addr
}

/// Proof of life: the server still solves on a fresh connection.
fn assert_server_alive(addr: SocketAddr) {
    let mut client = EngineClient::connect(addr, Transport::default()).expect("connect");
    let inst = Instance::new(1, 4, vec![Job::unit(vec![SlotRef::new(0, 1)])]);
    client
        .send(&SolveRequest::builder(7, inst).affine(3.0, 1.0).build())
        .unwrap();
    client.flush().unwrap();
    let resp = client.recv().unwrap().expect("response");
    assert!(resp.ok, "{:?}", resp.error);
}

/// Sends raw bytes on a fresh connection, half-closes, and returns
/// everything the server wrote back before closing.
fn poke(addr: SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    writer.write_all(bytes).unwrap();
    writer.flush().unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut out = Vec::new();
    BufReader::new(stream)
        .read_to_end(&mut out)
        .expect("drain server reply without hanging");
    out
}

/// Decodes the single framed failure response `poke` got back.
fn sole_failure(mut cursor: &[u8]) -> SolveResponse {
    let (format, payload) = read_frame(&mut cursor)
        .expect("server reply is a well-formed frame")
        .expect("server replied before closing");
    assert_eq!(format, WireFormat::Binary, "errors default to binary");
    let remaining: &[u8] = cursor;
    assert!(remaining.is_empty(), "exactly one reply frame, then close");
    let value = sched_engine::codec::payload_to_value(format, &payload).unwrap();
    let resp = SolveResponse::from_value(&value).unwrap();
    assert!(!resp.ok);
    resp
}

#[test]
fn truncated_length_prefix_yields_structured_parse_failure() {
    let addr = spawn_server();
    // magic + half a length word, then EOF.
    let resp = sole_failure(&poke(addr, &[MAGIC[0], MAGIC[1], 0x10, 0x00]));
    assert_eq!(resp.error.unwrap().kind, ErrorKind::Parse);
    assert_server_alive(addr);
}

#[test]
fn truncated_payload_yields_structured_parse_failure() {
    let addr = spawn_server();
    // A header promising 100 payload bytes, delivering 3.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&100u32.to_le_bytes());
    bytes.push(WireFormat::Binary.tag());
    bytes.extend_from_slice(&[1, 2, 3]);
    let resp = sole_failure(&poke(addr, &bytes));
    assert_eq!(resp.error.unwrap().kind, ErrorKind::Parse);
    assert_server_alive(addr);
}

#[test]
fn oversized_declared_length_is_rejected_without_buffering() {
    let addr = spawn_server();
    // Declares 4 GiB-ish; the server must refuse on the header alone (the
    // codec rejects before allocating — asserted by its unit tests) and
    // answer immediately even though no payload ever arrives.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    bytes.push(WireFormat::Binary.tag());
    let resp = sole_failure(&poke(addr, &bytes));
    let err = resp.error.unwrap();
    assert_eq!(err.kind, ErrorKind::Parse);
    assert!(
        err.message.contains("declares"),
        "error names the lying length: {}",
        err.message
    );
    assert_server_alive(addr);
}

#[test]
fn unknown_format_tag_yields_structured_parse_failure() {
    let addr = spawn_server();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&2u32.to_le_bytes());
    bytes.push(9); // no such format
    bytes.extend_from_slice(b"{}");
    let resp = sole_failure(&poke(addr, &bytes));
    assert_eq!(resp.error.unwrap().kind, ErrorKind::Parse);
    assert_server_alive(addr);
}

#[test]
fn undecodable_binary_payload_yields_structured_parse_failure() {
    let addr = spawn_server();
    // A perfectly framed payload of garbage binary-codec bytes.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&4u32.to_le_bytes());
    bytes.push(WireFormat::Binary.tag());
    bytes.extend_from_slice(&[0xFE, 0xDC, 0xBA, 0x98]);
    let resp = sole_failure(&poke(addr, &bytes));
    assert_eq!(resp.error.unwrap().kind, ErrorKind::Parse);
    assert_server_alive(addr);
}

/// One long-lived server shared by every random draw: random byte
/// prefixes — magic-led or not — must never panic the accept loop or hang
/// a connection. (Non-magic first bytes fall back to the JSONL path, so
/// this also fuzzes line parsing.)
fn fuzz_server() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(spawn_server)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_byte_prefixes_never_panic_the_accept_loop(
        lead_with_magic in proptest::any::<bool>(),
        bytes in proptest::collection::vec(0u8..=255, 0..64),
    ) {
        let addr = fuzz_server();
        let mut payload = Vec::new();
        if lead_with_magic {
            payload.extend_from_slice(&MAGIC);
        }
        payload.extend_from_slice(&bytes);
        // Whatever the server answers (failure frames, JSONL parse errors,
        // or nothing), it must close the connection instead of hanging...
        let _ = poke(addr, &payload);
        // ...and keep serving the next client.
        assert_server_alive(addr);
    }
}
