//! Property-based round-trip tests for the JSONL wire protocol: random
//! `SolveRequest`s and `SolveResponse`s must survive
//! serialize → parse → serialize with byte-identical JSON (the stub
//! serializer is deterministic, so string equality is the strongest
//! round-trip check available without `PartialEq` on every wire struct).

use proptest::prelude::*;
use sched_core::{CandidateInterval, Instance, Job, Schedule, SlotRef};
use sched_engine::protocol::{
    parse_line, ErrorKind, SolveMetrics, SolveMode, SolveRequest, SolveResponse, WireError,
    WireRequest, PROTOCOL_VERSION,
};

/// Strategy: a structurally valid instance on a random grid (slots in range
/// by construction; protocol round-trips do not require feasibility).
fn instance_strategy() -> impl Strategy<Value = Instance> {
    (1u32..4, 2u32..9).prop_flat_map(|(p, t)| {
        let jobs = proptest::collection::vec(
            (1u32..8, proptest::collection::vec((0..p, 0..t), 0..6)),
            0..5,
        );
        (Just(p), Just(t), jobs).prop_map(|(p, t, jobs)| Instance {
            num_processors: p,
            horizon: t,
            jobs: jobs
                .into_iter()
                .map(|(v, slots)| Job {
                    value: f64::from(v) * 0.5,
                    allowed: slots
                        .into_iter()
                        .map(|(proc, time)| SlotRef { proc, time })
                        .collect(),
                    work: None,
                })
                .collect(),
        })
    })
}

fn request_strategy() -> impl Strategy<Value = SolveRequest> {
    (
        instance_strategy(),
        (0u64..10_000, 0u32..3, 1u32..20, 0u32..4),
        (
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            1u32..10,
            1u32..9,
        ),
        // optional heterogeneous fleet: per-request wake/busy scale and
        // ladder depth (profiles are sized to the instance in prop_map)
        (any::<bool>(), 1u32..8, 1u32..4, 0u32..3),
    )
        .prop_map(
            |(
                instance,
                (id, mode, restart, policy),
                (set_opts, lazy, parallel, target, eps),
                (profiled, wake, busy, ladder),
            )| {
                let profiles = profiled.then(|| {
                    (0..instance.num_processors)
                        .map(|p| {
                            sched_core::PowerProfile::envelope_ladder(
                                f64::from(wake + p),
                                f64::from(busy) + 0.5 * f64::from(p),
                                ladder,
                            )
                        })
                        .collect()
                });
                let mode = match mode {
                    0 => SolveMode::ScheduleAll,
                    1 => SolveMode::PrizeCollecting,
                    _ => SolveMode::PrizeCollectingExact,
                };
                SolveRequest {
                    version: PROTOCOL_VERSION,
                    id,
                    mode,
                    instance,
                    restart: f64::from(restart),
                    rate: 1.0,
                    profiles,
                    policy: match policy {
                        0 => None,
                        1 => Some("all".into()),
                        2 => Some("single".into()),
                        _ => Some("maxlen:3".into()),
                    },
                    target: (mode != SolveMode::ScheduleAll).then(|| f64::from(target) * 0.5),
                    epsilon: (mode == SolveMode::PrizeCollecting).then(|| f64::from(eps) / 10.0),
                    lazy: set_opts.then_some(lazy),
                    parallel: set_opts.then_some(parallel),
                    trace_id: (id % 3 == 0).then(|| format!("trace-{id}")),
                    freq_ladder: None,
                }
            },
        )
}

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    (
        proptest::collection::vec((0u32..3, 0u32..5, 1u32..5, 1u32..30), 0..4),
        proptest::collection::vec((any::<bool>(), 0u32..3, 0u32..9), 0..5),
    )
        .prop_map(|(awake, assignments)| {
            let awake: Vec<CandidateInterval> = awake
                .into_iter()
                .map(|(proc, start, len, cost)| CandidateInterval {
                    proc,
                    start,
                    end: start + len,
                    cost: f64::from(cost) * 0.25,
                })
                .collect();
            let total_cost = awake.iter().map(|iv| iv.cost).sum();
            let assignments: Vec<Option<SlotRef>> = assignments
                .into_iter()
                .map(|(some, proc, time)| some.then_some(SlotRef { proc, time }))
                .collect();
            let scheduled_count = assignments.iter().flatten().count();
            Schedule {
                awake,
                assignments,
                total_cost,
                scheduled_value: scheduled_count as f64,
                scheduled_count,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn solve_request_round_trips(req in request_strategy()) {
        let json = serde_json::to_string(&req).unwrap();
        let back: SolveRequest = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(serde_json::to_string(&back).unwrap(), json);
        // and the line parser agrees it is a solve request
        match parse_line(&json) {
            Ok(WireRequest::Solve(parsed)) => {
                prop_assert_eq!(parsed.id, req.id);
                prop_assert_eq!(parsed.mode, req.mode);
            }
            other => return Err(TestCaseError::fail(format!("expected solve, got {other:?}"))),
        }
    }

    #[test]
    fn solve_response_round_trips(
        schedule in schedule_strategy(),
        id in 0u64..10_000,
        ok in any::<bool>(),
        (micros, cands, worker, hit) in (0u64..1_000_000, 0u64..5_000, 0u32..8, any::<bool>()),
    ) {
        let resp = if ok {
            SolveResponse::success(id, schedule, SolveMetrics {
                solve_micros: micros,
                candidates: cands,
                worker,
                cache_hit: hit,
            })
        } else {
            SolveResponse::failure(id, WireError::new(ErrorKind::Infeasible, "nope"))
        };
        let json = serde_json::to_string(&resp).unwrap();
        let back: SolveResponse = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(serde_json::to_string(&back).unwrap(), json);
        prop_assert_eq!(back.ok, resp.ok);
        prop_assert_eq!(back.id, resp.id);
    }

    // Forward compatibility: a response from a *future* server that carries
    // fields this client has never heard of must still parse, keeping every
    // known field intact. (This is what lets the `metrics` verb era add the
    // `obs` snapshot without a version bump.)
    #[test]
    fn solve_response_with_unknown_fields_still_parses(
        schedule in schedule_strategy(),
        id in 0u64..10_000,
        (micros, cands, worker, hit) in (0u64..1_000_000, 0u64..5_000, 0u32..8, any::<bool>()),
        extra in 0u64..1_000_000,
    ) {
        let resp = SolveResponse::success(id, schedule, SolveMetrics {
            solve_micros: micros,
            candidates: cands,
            worker,
            cache_hit: hit,
        });
        let json = serde_json::to_string(&resp).unwrap();
        // Splice unknown fields into both the response object and the
        // nested metrics object.
        let extended = json
            .replacen('{', &format!("{{\"future_field\":{extra},\"future_obj\":{{\"x\":[1,2]}},"), 1)
            .replacen("\"solve_micros\"", &format!("\"queue_ns\":{extra},\"solve_micros\""), 1);
        prop_assert!(extended != json);
        let back: SolveResponse = serde_json::from_str(&extended).unwrap();
        prop_assert_eq!(back.id, id);
        prop_assert!(back.ok);
        let m = back.metrics.unwrap();
        prop_assert_eq!(m.solve_micros, micros);
        prop_assert_eq!(m.candidates, cands);
        prop_assert_eq!(m.worker, worker);
        prop_assert_eq!(m.cache_hit, hit);
        prop_assert_eq!(back.schedule.unwrap().scheduled_count,
                        resp.schedule.unwrap().scheduled_count);
    }
}

#[test]
fn trace_id_is_additive_and_engine_stamps_and_echoes_it() {
    // wire level: lines without the field parse as None (old clients),
    // lines with it keep it
    let line = r#"{"version":1,"id":9,"mode":"ScheduleAll","instance":{"num_processors":1,"horizon":2,"jobs":[{"value":1,"allowed":[{"proc":0,"time":0}]}]},"restart":3,"rate":1}"#;
    let req = match parse_line(line).unwrap() {
        WireRequest::Solve(r) => *r,
        other => panic!("expected solve, got {other:?}"),
    };
    assert!(req.trace_id.is_none());

    let engine = sched_engine::engine::Engine::new(sched_engine::engine::EngineConfig {
        workers: 1,
        ..Default::default()
    });

    // engine stamps a deterministic id when the request carries none...
    let resp = engine.submit(req.clone()).wait();
    assert!(resp.ok);
    assert_eq!(resp.trace_id.as_deref(), Some("req-9"));

    // ...echoes the caller's id verbatim when present...
    let mut tagged = req.clone();
    tagged.trace_id = Some("client-abc".into());
    let resp = engine.submit(tagged).wait();
    assert!(resp.ok);
    assert_eq!(resp.trace_id.as_deref(), Some("client-abc"));

    // ...and on failures too (unsatisfiable version => structured error)
    let mut bad = req;
    bad.version = 999;
    bad.trace_id = Some("client-err".into());
    let resp = engine.submit(bad).wait();
    assert!(!resp.ok);
    assert_eq!(resp.error.unwrap().kind, ErrorKind::UnsupportedVersion);
    assert_eq!(resp.trace_id.as_deref(), Some("client-err"));
}

#[test]
fn v1_era_response_without_obs_field_parses() {
    // The exact shape a pre-metrics server sends: no `obs` key at all.
    let line = r#"{"version":2,"id":5,"ok":true,"schedule":null,"error":null,"metrics":{"solve_micros":12,"candidates":3,"worker":0,"cache_hit":false}}"#;
    let back: SolveResponse = serde_json::from_str(line).unwrap();
    assert!(back.ok);
    assert!(back.obs.is_none());
    assert_eq!(back.metrics.unwrap().solve_micros, 12);
}

#[test]
fn metrics_ack_round_trips_with_snapshot() {
    let registry = sched_obs::Registry::new();
    registry.counter("engine.requests").add(7);
    registry.histogram("engine.request.latency_ns").record(1500);
    let ack = SolveResponse::metrics_ack(registry.snapshot());
    let json = serde_json::to_string(&ack).unwrap();
    assert!(json.contains("\"schema\":\"obs/v1\""), "{json}");
    let back: SolveResponse = serde_json::from_str(&json).unwrap();
    assert!(back.ok);
    let obs = back.obs.expect("metrics ack carries a snapshot");
    assert_eq!(obs.schema, sched_obs::SCHEMA);
    assert_eq!(obs.counters[0].name, "engine.requests");
    assert_eq!(obs.counters[0].value, 7);
    assert_eq!(obs.histograms[0].count, 1);
    // An old client parsing the same ack as "just a control ack" works too:
    // the unknown `obs` field is ignored when absent from the struct — here
    // we simulate it by checking a plain control ack still byte-stable.
    let plain = serde_json::to_string(&SolveResponse::control_ack()).unwrap();
    let plain_back: SolveResponse = serde_json::from_str(&plain).unwrap();
    assert!(plain_back.ok && plain_back.obs.is_none());
}
