//! Property-based round-trip tests for the JSONL wire protocol: random
//! `SolveRequest`s and `SolveResponse`s must survive
//! serialize → parse → serialize with byte-identical JSON (the stub
//! serializer is deterministic, so string equality is the strongest
//! round-trip check available without `PartialEq` on every wire struct).

use proptest::prelude::*;
use sched_core::{CandidateInterval, Instance, Job, Schedule, SlotRef};
use sched_engine::protocol::{
    parse_line, ErrorKind, SolveMetrics, SolveMode, SolveRequest, SolveResponse, WireError,
    WireRequest, PROTOCOL_VERSION,
};

/// Strategy: a structurally valid instance on a random grid (slots in range
/// by construction; protocol round-trips do not require feasibility).
fn instance_strategy() -> impl Strategy<Value = Instance> {
    (1u32..4, 2u32..9).prop_flat_map(|(p, t)| {
        let jobs = proptest::collection::vec(
            (1u32..8, proptest::collection::vec((0..p, 0..t), 0..6)),
            0..5,
        );
        (Just(p), Just(t), jobs).prop_map(|(p, t, jobs)| Instance {
            num_processors: p,
            horizon: t,
            jobs: jobs
                .into_iter()
                .map(|(v, slots)| Job {
                    value: f64::from(v) * 0.5,
                    allowed: slots
                        .into_iter()
                        .map(|(proc, time)| SlotRef { proc, time })
                        .collect(),
                })
                .collect(),
        })
    })
}

fn request_strategy() -> impl Strategy<Value = SolveRequest> {
    (
        instance_strategy(),
        (0u64..10_000, 0u32..3, 1u32..20, 0u32..4),
        (
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            1u32..10,
            1u32..9,
        ),
        // optional heterogeneous fleet: per-request wake/busy scale and
        // ladder depth (profiles are sized to the instance in prop_map)
        (any::<bool>(), 1u32..8, 1u32..4, 0u32..3),
    )
        .prop_map(
            |(
                instance,
                (id, mode, restart, policy),
                (set_opts, lazy, parallel, target, eps),
                (profiled, wake, busy, ladder),
            )| {
                let profiles = profiled.then(|| {
                    (0..instance.num_processors)
                        .map(|p| {
                            sched_core::PowerProfile::envelope_ladder(
                                f64::from(wake + p),
                                f64::from(busy) + 0.5 * f64::from(p),
                                ladder,
                            )
                        })
                        .collect()
                });
                let mode = match mode {
                    0 => SolveMode::ScheduleAll,
                    1 => SolveMode::PrizeCollecting,
                    _ => SolveMode::PrizeCollectingExact,
                };
                SolveRequest {
                    version: PROTOCOL_VERSION,
                    id,
                    mode,
                    instance,
                    restart: f64::from(restart),
                    rate: 1.0,
                    profiles,
                    policy: match policy {
                        0 => None,
                        1 => Some("all".into()),
                        2 => Some("single".into()),
                        _ => Some("maxlen:3".into()),
                    },
                    target: (mode != SolveMode::ScheduleAll).then(|| f64::from(target) * 0.5),
                    epsilon: (mode == SolveMode::PrizeCollecting).then(|| f64::from(eps) / 10.0),
                    lazy: set_opts.then_some(lazy),
                    parallel: set_opts.then_some(parallel),
                }
            },
        )
}

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    (
        proptest::collection::vec((0u32..3, 0u32..5, 1u32..5, 1u32..30), 0..4),
        proptest::collection::vec((any::<bool>(), 0u32..3, 0u32..9), 0..5),
    )
        .prop_map(|(awake, assignments)| {
            let awake: Vec<CandidateInterval> = awake
                .into_iter()
                .map(|(proc, start, len, cost)| CandidateInterval {
                    proc,
                    start,
                    end: start + len,
                    cost: f64::from(cost) * 0.25,
                })
                .collect();
            let total_cost = awake.iter().map(|iv| iv.cost).sum();
            let assignments: Vec<Option<SlotRef>> = assignments
                .into_iter()
                .map(|(some, proc, time)| some.then_some(SlotRef { proc, time }))
                .collect();
            let scheduled_count = assignments.iter().flatten().count();
            Schedule {
                awake,
                assignments,
                total_cost,
                scheduled_value: scheduled_count as f64,
                scheduled_count,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn solve_request_round_trips(req in request_strategy()) {
        let json = serde_json::to_string(&req).unwrap();
        let back: SolveRequest = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(serde_json::to_string(&back).unwrap(), json);
        // and the line parser agrees it is a solve request
        match parse_line(&json) {
            Ok(WireRequest::Solve(parsed)) => {
                prop_assert_eq!(parsed.id, req.id);
                prop_assert_eq!(parsed.mode, req.mode);
            }
            other => return Err(TestCaseError::fail(format!("expected solve, got {other:?}"))),
        }
    }

    #[test]
    fn solve_response_round_trips(
        schedule in schedule_strategy(),
        id in 0u64..10_000,
        ok in any::<bool>(),
        (micros, cands, worker, hit) in (0u64..1_000_000, 0u64..5_000, 0u32..8, any::<bool>()),
    ) {
        let resp = if ok {
            SolveResponse::success(id, schedule, SolveMetrics {
                solve_micros: micros,
                candidates: cands,
                worker,
                cache_hit: hit,
            })
        } else {
            SolveResponse::failure(id, WireError::new(ErrorKind::Infeasible, "nope"))
        };
        let json = serde_json::to_string(&resp).unwrap();
        let back: SolveResponse = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(serde_json::to_string(&back).unwrap(), json);
        prop_assert_eq!(back.ok, resp.ok);
        prop_assert_eq!(back.id, resp.id);
    }
}
