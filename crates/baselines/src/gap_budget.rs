//! Appendix .2: prize-collecting gap-budget scheduling on one processor.
//!
//! The classical minimum-gap setting (Baptiste 2006, Demaine et al. 2007)
//! has the machine asleep whenever idle: awake slots are exactly the busy
//! slots, and a *gap* is a maximal idle period (one restart each).
//! Theorem .2.1 of the paper adapts that DP to the prize-collecting
//! question: **maximize scheduled value using at most `g` awake runs**.
//!
//! This module provides:
//!
//! * [`max_value_with_budget`] — an exact solver enumerating awake-run
//!   structures with matching-oracle leaves, enforcing the busy-when-awake
//!   constraint (every awake slot hosts a job). Exact for the moderate
//!   horizons the experiments use; the paper's `O(n·p⁵·g)` DP is the
//!   asymptotically-polynomial version of the same computation — see
//!   DESIGN.md's substitution note.
//! * [`value_of_awake_set`] — max total value schedulable in a fixed awake
//!   set (idling allowed; Chapter 2's relaxed semantics), used by tests and
//!   the exact solver's relaxation bound.

use bmatch::{BipartiteGraphBuilder, MatchingOracle, NONE};
use sched_core::Instance;

/// Maximum total value of jobs schedulable into the awake slot set `awake`
/// (idling allowed). Works for multi-processor instances too since slots are
/// dense global ids.
pub fn value_of_awake_set(inst: &Instance, awake: &[u32]) -> f64 {
    let mut b = BipartiteGraphBuilder::new(inst.num_slots(), inst.num_jobs() as u32);
    for (jid, job) in inst.jobs.iter().enumerate() {
        for &s in &job.allowed {
            b.add_edge(inst.slot_id(s), jid as u32);
        }
    }
    let g = b.build();
    let values: Vec<f64> = inst.jobs.iter().map(|j| j.value).collect();
    if values.is_empty() {
        return 0.0;
    }
    let mut oracle = MatchingOracle::new(&g, values);
    oracle.commit(awake);
    oracle.total()
}

/// Result of the gap-budget optimization.
#[derive(Clone, Debug, PartialEq)]
pub struct GapBudgetResult {
    /// Chosen awake runs `[start, end)` on processor 0 (every slot busy).
    pub intervals: Vec<(u32, u32)>,
    /// Maximum achievable scheduled value.
    pub value: f64,
}

/// Exact maximum scheduled value on a single processor using at most
/// `max_runs` awake runs (the paper's gap budget is `g = max_runs − 1`
/// interior restarts), under the classical busy-when-awake semantics:
/// every awake slot must host a scheduled job.
///
/// Search over run structures with two prunings: (i) a run prefix whose
/// slots cannot all be saturated is abandoned (adding more awake slots never
/// helps saturate earlier ones); (ii) branches stop once the full instance
/// value is reached. Intended for the small-horizon exact comparisons of the
/// experiments; see the module docs for the relation to the paper's DP.
///
/// # Panics
/// Panics if the instance has more than one processor.
pub fn max_value_with_budget(inst: &Instance, max_runs: u32) -> GapBudgetResult {
    assert_eq!(
        inst.num_processors, 1,
        "gap-budget DP is the single-processor Appendix .2 setting"
    );
    let t = inst.horizon;
    if inst.num_jobs() == 0 || max_runs == 0 || t == 0 {
        return GapBudgetResult {
            intervals: Vec::new(),
            value: 0.0,
        };
    }

    let mut b = BipartiteGraphBuilder::new(inst.num_slots(), inst.num_jobs() as u32);
    for (jid, job) in inst.jobs.iter().enumerate() {
        for &s in &job.allowed {
            b.add_edge(inst.slot_id(s), jid as u32);
        }
    }
    let g = b.build();

    // Boosted values: v'_j = v_j + M with M > Σv forces the weighted oracle
    // to maximize cardinality first, then value — so a selection saturates
    // its awake set iff matched_count == awake count, and the true value is
    // total − M·matched_count.
    let raw: Vec<f64> = inst.jobs.iter().map(|j| j.value).collect();
    let total_value: f64 = raw.iter().sum();
    let m_boost = total_value + 1.0;
    let boosted: Vec<f64> = raw.iter().map(|&v| v + m_boost).collect();
    let base = MatchingOracle::new(&g, boosted);

    let mut best = GapBudgetResult {
        intervals: Vec::new(),
        value: 0.0,
    };

    // DFS over run structures. Oracle state is cloned per branch — fine at
    // the horizons this solver is documented for.
    struct Node<'g> {
        /// Next slot a new run may start at.
        from: u32,
        /// Runs still available.
        remaining: u32,
        oracle: MatchingOracle<'g>,
        /// Awake slots committed so far.
        awake: u32,
        /// Chosen runs.
        chosen: Vec<(u32, u32)>,
    }
    let mut stack = vec![Node {
        from: 0,
        remaining: max_runs,
        oracle: base,
        awake: 0,
        chosen: Vec::new(),
    }];
    while let Some(Node {
        from,
        remaining,
        oracle,
        awake,
        chosen,
    }) = stack.pop()
    {
        let value = oracle.total() - m_boost * awake as f64;
        debug_assert!(value >= -1e-6);
        if value > best.value {
            best.value = value;
            best.intervals = chosen.clone();
        }
        if remaining == 0 || from >= t || best.value >= total_value {
            continue;
        }
        for start in from..t {
            for end in (start + 1)..=t {
                let mut o = oracle.clone();
                let slots: Vec<u32> = (start..end).collect(); // proc 0: id == time
                o.commit(&slots);
                let new_awake = awake + (end - start);
                // busy-when-awake: every awake slot matched, else prune —
                // longer runs from this start will be deficient too, but the
                // oracle is cheap enough that we simply skip this (start,end).
                let matched = o
                    .matching()
                    .filter(|&(x, y)| x != NONE && y != NONE)
                    .count() as u32;
                if matched != new_awake {
                    continue;
                }
                let mut c = chosen.clone();
                c.push((start, end));
                // next run must leave a gap of at least one slot
                stack.push(Node {
                    from: end + 1,
                    remaining: remaining - 1,
                    oracle: o,
                    awake: new_awake,
                    chosen: c,
                });
            }
        }
    }
    best
}

/// The classical *minimum-gap* objective (Baptiste 2006): the smallest number
/// of awake runs that schedules **every** job on the single processor, or
/// `None` if no awake set schedules them all. Computed by searching the run
/// budget upward with [`max_value_with_budget`]; exact, small horizons only
/// (see the module docs).
pub fn min_runs_schedule_all(inst: &Instance) -> Option<u32> {
    let total: f64 = inst.jobs.iter().map(|j| j.value).sum();
    if inst.num_jobs() == 0 {
        return Some(0);
    }
    let max_budget = inst.num_jobs() as u32; // one run per job always suffices if feasible
    (1..=max_budget).find(|&g| max_value_with_budget(inst, g).value >= total - 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::{Instance, Job, SlotRef};

    fn inst(t: u32, jobs: Vec<Job>) -> Instance {
        Instance::new(1, t, jobs)
    }

    #[test]
    fn value_of_awake_set_counts_weighted_jobs() {
        let i = inst(
            4,
            vec![Job::window(5.0, 0, 0, 2), Job::window(3.0, 0, 0, 2)],
        );
        assert_eq!(value_of_awake_set(&i, &[0, 1]), 8.0);
        assert_eq!(value_of_awake_set(&i, &[0]), 5.0);
        assert_eq!(value_of_awake_set(&i, &[3]), 0.0);
        assert_eq!(value_of_awake_set(&i, &[]), 0.0);
    }

    #[test]
    fn one_run_picks_denser_cluster() {
        // busy-when-awake: a run spanning [0,6) would idle at t∈{2,3,4} — not
        // allowed. One run can either host the two value-3 jobs ([0,2)) or
        // the value-10 job ([5,6)).
        let i = inst(
            6,
            vec![
                Job::window(3.0, 0, 0, 2),
                Job::window(3.0, 0, 0, 2),
                Job::window(10.0, 0, 5, 6),
            ],
        );
        let r = max_value_with_budget(&i, 1);
        assert_eq!(r.value, 10.0);
        assert_eq!(r.intervals, vec![(5, 6)]);
    }

    #[test]
    fn two_runs_capture_both_clusters() {
        let i = inst(
            6,
            vec![
                Job::window(3.0, 0, 0, 2),
                Job::window(3.0, 0, 0, 2),
                Job::window(10.0, 0, 5, 6),
            ],
        );
        let r = max_value_with_budget(&i, 2);
        assert_eq!(r.value, 16.0);
        assert_eq!(r.intervals.len(), 2);
        assert!(
            r.intervals[1].0 > r.intervals[0].1,
            "runs must be separated"
        );
    }

    #[test]
    fn budget_monotone_in_g() {
        let i = inst(
            8,
            vec![
                Job::window(1.0, 0, 0, 1),
                Job::window(2.0, 0, 3, 4),
                Job::window(4.0, 0, 6, 7),
            ],
        );
        let mut prev = 0.0;
        for g in 1..=3 {
            let r = max_value_with_budget(&i, g);
            assert!(r.value >= prev, "value decreased as budget grew");
            prev = r.value;
        }
        assert_eq!(prev, 7.0);
    }

    #[test]
    fn zero_budget_or_empty() {
        let i = inst(3, vec![Job::window(1.0, 0, 0, 3)]);
        assert_eq!(max_value_with_budget(&i, 0).value, 0.0);
        let empty = inst(3, vec![]);
        assert_eq!(max_value_with_budget(&empty, 2).value, 0.0);
    }

    #[test]
    fn flexible_jobs_merge_into_one_run() {
        // three jobs each allowed anywhere in [0,3): one run of length 3,
        // fully busy, schedules all of them
        let i = inst(
            3,
            vec![
                Job::window(1.0, 0, 0, 3),
                Job::window(1.0, 0, 0, 3),
                Job::window(1.0, 0, 0, 3),
            ],
        );
        let r = max_value_with_budget(&i, 1);
        assert_eq!(r.value, 3.0);
        assert_eq!(r.intervals, vec![(0, 3)]);
    }

    #[test]
    fn matches_brute_force_on_random_small() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for trial in 0..12 {
            let t = rng.gen_range(3..7u32);
            let n = rng.gen_range(1..5usize);
            let jobs: Vec<Job> = (0..n)
                .map(|_| {
                    let s = rng.gen_range(0..t);
                    let e = rng.gen_range(s + 1..=t);
                    Job::window(rng.gen_range(1..6) as f64, 0, s, e)
                })
                .collect();
            let i = inst(t, jobs);
            let budget = rng.gen_range(1..3u32);
            let dp = max_value_with_budget(&i, budget);
            // brute force over awake masks with ≤ budget runs and full
            // saturation (busy-when-awake)
            let mut best = 0.0f64;
            for mask in 0u32..(1 << t) {
                if count_runs(mask, t) > budget {
                    continue;
                }
                let awake: Vec<u32> = (0..t).filter(|&s| mask >> s & 1 == 1).collect();
                if !fully_saturable(&i, &awake) {
                    continue;
                }
                best = best.max(value_of_awake_set(&i, &awake));
            }
            assert_eq!(
                dp.value, best,
                "trial {trial}: DP disagrees with brute force"
            );
        }
    }

    /// Can every awake slot be matched to some job simultaneously?
    fn fully_saturable(inst: &Instance, awake: &[u32]) -> bool {
        let mut b = BipartiteGraphBuilder::new(inst.num_slots(), inst.num_jobs() as u32);
        for (jid, job) in inst.jobs.iter().enumerate() {
            for &s in &job.allowed {
                b.add_edge(inst.slot_id(s), jid as u32);
            }
        }
        let g = b.build();
        let allowed: std::collections::HashSet<u32> = awake.iter().copied().collect();
        let m = bmatch::hopcroft_karp(&g, |x| allowed.contains(&x));
        m.size == awake.len()
    }

    fn count_runs(mask: u32, t: u32) -> u32 {
        let mut runs = 0;
        let mut prev = false;
        for s in 0..t {
            let cur = mask >> s & 1 == 1;
            if cur && !prev {
                runs += 1;
            }
            prev = cur;
        }
        runs
    }

    #[test]
    #[should_panic(expected = "single-processor")]
    fn multi_processor_rejected() {
        let i = Instance::new(2, 3, vec![Job::window(1.0, 0, 0, 1)]);
        max_value_with_budget(&i, 1);
    }

    #[test]
    fn min_runs_matches_structure() {
        // pinned jobs at t = 0, 3, 6: three isolated runs needed
        let i = inst(
            7,
            vec![
                Job::unit(vec![SlotRef::new(0, 0)]),
                Job::unit(vec![SlotRef::new(0, 3)]),
                Job::unit(vec![SlotRef::new(0, 6)]),
            ],
        );
        assert_eq!(min_runs_schedule_all(&i), Some(3));
        // flexible jobs compress into one run
        let j = inst(
            4,
            vec![
                Job::window(1.0, 0, 0, 4),
                Job::window(1.0, 0, 0, 4),
                Job::window(1.0, 0, 0, 4),
            ],
        );
        assert_eq!(min_runs_schedule_all(&j), Some(1));
    }

    #[test]
    fn min_runs_infeasible_and_empty() {
        let i = inst(
            1,
            vec![
                Job::unit(vec![SlotRef::new(0, 0)]),
                Job::unit(vec![SlotRef::new(0, 0)]),
            ],
        );
        assert_eq!(min_runs_schedule_all(&i), None);
        assert_eq!(min_runs_schedule_all(&inst(3, vec![])), Some(0));
    }

    #[test]
    fn min_runs_adjacent_jobs_share_a_run() {
        // jobs at t=0,1 and t=4: two runs
        let i = inst(
            5,
            vec![
                Job::unit(vec![SlotRef::new(0, 0)]),
                Job::unit(vec![SlotRef::new(0, 1)]),
                Job::unit(vec![SlotRef::new(0, 4)]),
            ],
        );
        assert_eq!(min_runs_schedule_all(&i), Some(2));
    }
}
