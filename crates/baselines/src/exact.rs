//! Exact minimum-cost scheduling via pruned branch-and-bound over candidate
//! intervals.
//!
//! Exponential in the candidate count — intended for the small instances on
//! which experiments measure true approximation ratios. Pruning:
//!
//! * cost bound — abandon branches whose committed cost already meets the
//!   incumbent;
//! * reachability — abandon branches whose committed slots plus *all*
//!   remaining candidates still miss the utility target (one oracle gain
//!   query per node);
//! * candidate ordering — cheaper candidates first, which tightens the
//!   incumbent early.

use bmatch::{GainScratch, MatchingOracle};
use sched_core::objective::ScheduleReduction;
use sched_core::{CandidateInterval, Instance};

/// Result of an exact search.
#[derive(Clone, Debug, PartialEq)]
pub struct ExactResult {
    /// Chosen candidate indices (into the *original* candidate slice).
    pub chosen: Vec<usize>,
    /// Optimal cost.
    pub cost: f64,
    /// Number of search nodes expanded (diagnostics).
    pub nodes: u64,
}

/// Exact minimum-cost selection of candidates scheduling **all** jobs.
/// Returns `None` if infeasible or if `node_budget` is exhausted first.
pub fn exact_schedule_all(
    inst: &Instance,
    candidates: &[CandidateInterval],
    node_budget: u64,
) -> Option<ExactResult> {
    exact_min_cost(inst, candidates, None, inst.num_jobs() as f64, node_budget)
}

/// Exact minimum-cost selection achieving scheduled value ≥ `target`
/// (prize-collecting). Returns `None` if infeasible or out of node budget.
pub fn exact_prize_collecting(
    inst: &Instance,
    candidates: &[CandidateInterval],
    target: f64,
    node_budget: u64,
) -> Option<ExactResult> {
    let values: Vec<f64> = inst.jobs.iter().map(|j| j.value).collect();
    exact_min_cost(inst, candidates, Some(values), target, node_budget)
}

fn exact_min_cost(
    inst: &Instance,
    candidates: &[CandidateInterval],
    values: Option<Vec<f64>>,
    target: f64,
    node_budget: u64,
) -> Option<ExactResult> {
    if target <= 0.0 {
        return Some(ExactResult {
            chosen: Vec::new(),
            cost: 0.0,
            nodes: 0,
        });
    }
    let red = ScheduleReduction::build(inst, candidates);

    // order candidates by cost ascending (stable on index for determinism)
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&a, &b| {
        candidates[a]
            .cost
            .partial_cmp(&candidates[b].cost)
            .unwrap()
            .then(a.cmp(&b))
    });

    let oracle = match &values {
        Some(v) => MatchingOracle::new(&red.graph, v.clone()),
        None => MatchingOracle::new_cardinality(&red.graph),
    };

    // all slots of candidates order[i..] concatenated, for reachability checks
    let mut suffix_slots: Vec<Vec<u32>> = vec![Vec::new(); order.len() + 1];
    for i in (0..order.len()).rev() {
        let mut s = suffix_slots[i + 1].clone();
        s.extend_from_slice(red.slots_of(order[i]));
        suffix_slots[i] = s;
    }

    let mut best_cost = f64::INFINITY;
    let mut best_set: Option<Vec<usize>> = None;
    let mut nodes = 0u64;
    let mut scratch = GainScratch::new();
    let mut exhausted = false;

    // DFS stack: (next index, oracle state, picked set, cost)
    let mut stack: Vec<(usize, MatchingOracle<'_>, Vec<usize>, f64)> =
        vec![(0, oracle, Vec::new(), 0.0)];

    while let Some((i, mut o, picked, cost)) = stack.pop() {
        nodes += 1;
        if nodes > node_budget {
            exhausted = true;
            break;
        }
        if o.total() >= target - 1e-9 {
            if cost < best_cost {
                best_cost = cost;
                best_set = Some(picked);
            }
            continue;
        }
        if i == order.len() || cost >= best_cost {
            continue;
        }
        let potential = o.total() + o.gain_of(&suffix_slots[i], &mut scratch);
        if potential < target - 1e-9 {
            continue;
        }
        let cand = order[i];
        let c = red.cost_of(cand);

        // exclude branch pushed first so the include branch is explored
        // first (cheap candidates early → good incumbents fast)
        stack.push((i + 1, o.clone(), picked.clone(), cost));
        if cost + c < best_cost {
            o.commit(red.slots_of(cand));
            let mut p2 = picked;
            p2.push(cand);
            stack.push((i + 1, o, p2, cost + c));
        }
    }

    if exhausted {
        return None;
    }
    best_set.map(|mut chosen| {
        chosen.sort_unstable();
        ExactResult {
            chosen,
            cost: best_cost,
            nodes,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::{
        enumerate_candidates, schedule_all, AffineCost, CandidatePolicy, Instance, Job,
        PowerProfile, ProfileCost, SlotRef, SolveOptions,
    };

    #[test]
    fn trivial_zero_target() {
        let inst = Instance::new(1, 2, vec![]);
        let r = exact_schedule_all(&inst, &[], 1000).unwrap();
        assert_eq!(r.cost, 0.0);
        assert!(r.chosen.is_empty());
    }

    #[test]
    fn matches_hand_computed_optimum() {
        // jobs at t=0 and t=3, restart 10 → one merged interval [0,4), cost 14
        let inst = Instance::new(
            1,
            4,
            vec![
                Job::unit(vec![SlotRef::new(0, 0)]),
                Job::unit(vec![SlotRef::new(0, 3)]),
            ],
        );
        let cands = enumerate_candidates(&inst, &AffineCost::new(10.0, 1.0), CandidatePolicy::All);
        let r = exact_schedule_all(&inst, &cands, 1_000_000).unwrap();
        assert_eq!(r.cost, 14.0);
    }

    #[test]
    fn heterogeneous_profiles_exact_picks_the_cheap_processor() {
        // one job runnable on either processor at t=1; proc 1 is far
        // cheaper, so the optimum is proc 1's single slot — and the greedy
        // over the same profiled candidates can never beat exact
        let inst = Instance::new(
            2,
            3,
            vec![Job::unit(vec![SlotRef::new(0, 1), SlotRef::new(1, 1)])],
        );
        let fleet = [
            PowerProfile::affine(9.0, 2.0),
            PowerProfile::affine(1.0, 0.5),
        ];
        let cost = ProfileCost::new(&fleet);
        let cands = enumerate_candidates(&inst, &cost, CandidatePolicy::All);
        let r = exact_schedule_all(&inst, &cands, 1_000_000).unwrap();
        assert_eq!(r.cost, 1.5);
        assert!(cands[r.chosen[0]].proc == 1);
        let greedy = schedule_all(&inst, &cands, &SolveOptions::default()).unwrap();
        assert!(greedy.total_cost >= r.cost - 1e-12);
        assert_eq!(greedy.total_cost, 1.5);
    }

    #[test]
    fn infeasible_returns_none() {
        let inst = Instance::new(
            1,
            1,
            vec![
                Job::unit(vec![SlotRef::new(0, 0)]),
                Job::unit(vec![SlotRef::new(0, 0)]),
            ],
        );
        let cands = enumerate_candidates(&inst, &AffineCost::new(1.0, 1.0), CandidatePolicy::All);
        assert!(exact_schedule_all(&inst, &cands, 1_000_000).is_none());
    }

    #[test]
    fn greedy_never_beats_exact_and_respects_log_bound() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for trial in 0..15 {
            let t = rng.gen_range(3..=6u32);
            let n_jobs = rng.gen_range(1..=4usize);
            let jobs: Vec<Job> = (0..n_jobs)
                .map(|_| {
                    let s = rng.gen_range(0..t);
                    let e = rng.gen_range(s + 1..=t);
                    Job::window(1.0, 0, s, e)
                })
                .collect();
            let inst = Instance::new(1, t, jobs);
            let alpha = rng.gen_range(1..=6) as f64;
            let cands =
                enumerate_candidates(&inst, &AffineCost::new(alpha, 1.0), CandidatePolicy::All);
            let exact = exact_schedule_all(&inst, &cands, 5_000_000);
            let greedy = schedule_all(&inst, &cands, &SolveOptions::default());
            match (exact, greedy) {
                (Some(ex), Ok(g)) => {
                    assert!(
                        g.total_cost >= ex.cost - 1e-9,
                        "trial {trial}: greedy {} beat exact {}",
                        g.total_cost,
                        ex.cost
                    );
                    let n = inst.num_jobs() as f64;
                    let bound = 2.0 * (n + 1.0).log2().ceil() * ex.cost;
                    assert!(
                        g.total_cost <= bound + 1e-9,
                        "trial {trial}: greedy {} above O(B log n) bound {bound}",
                        g.total_cost
                    );
                }
                (None, Err(_)) => {} // both infeasible: consistent
                (ex, g) => panic!(
                    "trial {trial}: feasibility disagreement {ex:?} vs {:?}",
                    g.is_ok()
                ),
            }
        }
    }

    #[test]
    fn prize_collecting_exact_beats_partial_targets() {
        let inst = Instance::new(
            1,
            4,
            vec![
                Job::window(5.0, 0, 0, 1),
                Job::window(3.0, 0, 2, 3),
                Job::window(1.0, 0, 3, 4),
            ],
        );
        let cands = enumerate_candidates(&inst, &AffineCost::new(2.0, 1.0), CandidatePolicy::All);
        // value 5 reachable with just [0,1): cost 3
        let r = exact_prize_collecting(&inst, &cands, 5.0, 1_000_000).unwrap();
        assert_eq!(r.cost, 3.0);
        // value 8 needs slots 0 and 2: either [0,3) cost 5 or two intervals 3+3=6
        let r8 = exact_prize_collecting(&inst, &cands, 8.0, 1_000_000).unwrap();
        assert_eq!(r8.cost, 5.0);
    }

    #[test]
    fn node_budget_exhaustion_returns_none() {
        let inst = Instance::new(
            1,
            6,
            (0..5).map(|i| Job::window(1.0, 0, i, i + 1)).collect(),
        );
        let cands = enumerate_candidates(&inst, &AffineCost::new(1.0, 1.0), CandidatePolicy::All);
        assert!(exact_schedule_all(&inst, &cands, 3).is_none());
    }
}
