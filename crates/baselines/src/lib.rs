//! Baselines and exact solvers for the scheduling experiments.
//!
//! The paper proves `O(log n)`-approximation; measuring the *actual* ratio
//! requires the true optimum. Prior work's exact algorithms (Baptiste 2006's
//! DP and its multiprocessor extension) cover only the one-interval
//! `α + length` special case and are cited, not contributed; for ratio
//! measurement any exact solver works, so we use a pruned branch-and-bound
//! over candidate intervals ([`exact`]) — see DESIGN.md's substitution note.
//!
//! [`heuristics`] adds the comparison strawmen the experiments report
//! alongside the greedy: keep-everything-awake, conflict-blind per-job set
//! cover, and the classical EDF + gap-merge rule for the one-interval
//! single-processor case.

pub mod exact;
pub mod gap_budget;
pub mod heuristics;

pub use exact::{exact_prize_collecting, exact_schedule_all, ExactResult};
pub use gap_budget::{
    max_value_with_budget, min_runs_schedule_all, value_of_awake_set, GapBudgetResult,
};
pub use heuristics::{always_on_cost, cover_each_job_greedy, edf_gap_merge};
