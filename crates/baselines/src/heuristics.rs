//! Comparison heuristics reported alongside the greedy in the experiments.

use bmatch::MatchingOracle;
use sched_core::objective::ScheduleReduction;
use sched_core::{CandidateInterval, EnergyCost, Instance};

/// Cost of the naive policy that keeps **every** processor awake for the
/// whole horizon. `None` if some processor cannot stay awake throughout
/// (infinite cost).
pub fn always_on_cost(inst: &Instance, cost: &dyn EnergyCost) -> Option<f64> {
    if inst.horizon == 0 {
        return Some(0.0);
    }
    let mut total = 0.0;
    for p in 0..inst.num_processors {
        let c = cost.cost(p, 0, inst.horizon);
        if c.is_infinite() {
            return None;
        }
        total += c;
    }
    Some(total)
}

/// Conflict-blind per-job set cover: repeatedly pick the candidate interval
/// covering the most not-yet-"covered" jobs per unit cost, where a job counts
/// as covered as soon as *one* of its allowed slots is awake — ignoring that
/// two jobs may need the same slot. Afterwards the true matching is computed;
/// the returned flag says whether the cover actually schedules everything.
///
/// This is the strawman that motivates the paper's matching-rank utility: on
/// contended instances it reports "covered" while the real schedule is
/// infeasible.
pub fn cover_each_job_greedy(
    inst: &Instance,
    candidates: &[CandidateInterval],
) -> (Vec<usize>, f64, bool) {
    let n = inst.num_jobs();
    let mut covered = vec![false; n];
    let mut chosen: Vec<usize> = Vec::new();
    let mut total_cost = 0.0;

    // which jobs does each candidate touch?
    let jobs_of: Vec<Vec<u32>> = candidates
        .iter()
        .map(|iv| {
            (0..n as u32)
                .filter(|&j| {
                    inst.jobs[j as usize]
                        .allowed
                        .iter()
                        .any(|s| iv.covers(s.proc, s.time))
                })
                .collect()
        })
        .collect();

    while covered.iter().any(|&c| !c) {
        let mut best = (0.0f64, usize::MAX);
        for (i, jobs) in jobs_of.iter().enumerate() {
            if chosen.contains(&i) {
                continue;
            }
            let newly = jobs.iter().filter(|&&j| !covered[j as usize]).count();
            if newly == 0 {
                continue;
            }
            let ratio = newly as f64 / candidates[i].cost;
            if ratio > best.0 {
                best = (ratio, i);
            }
        }
        if best.1 == usize::MAX {
            break; // some job cannot be covered at all
        }
        chosen.push(best.1);
        total_cost += candidates[best.1].cost;
        for &j in &jobs_of[best.1] {
            covered[j as usize] = true;
        }
    }

    // verify with the true matching
    let red = ScheduleReduction::build(inst, candidates);
    let mut oracle = MatchingOracle::new_cardinality(&red.graph);
    for &i in &chosen {
        oracle.commit(red.slots_of(i));
    }
    let feasible = oracle.total() as usize == n;
    (chosen, total_cost, feasible)
}

/// Classical single-processor one-interval heuristic: schedule jobs EDF at
/// their earliest free slot, then merge awake runs separated by gaps shorter
/// than `alpha` (the restart cost), pricing with the `α + length` model.
///
/// Returns `None` when EDF fails (over-constrained windows) — unlike the
/// submodular greedy, this baseline has no fallback.
///
/// # Panics
/// Panics if the instance has more than one processor (the heuristic is
/// defined for the classical single-machine setting).
pub fn edf_gap_merge(inst: &Instance, alpha: f64) -> Option<f64> {
    assert_eq!(
        inst.num_processors, 1,
        "edf_gap_merge is a single-processor baseline"
    );
    let t = inst.horizon as usize;

    // windows: jobs sorted by deadline (last allowed slot)
    let mut jobs: Vec<(u32, u32)> = inst
        .jobs
        .iter()
        .map(|j| {
            let lo = j.allowed.iter().map(|s| s.time).min()?;
            let hi = j.allowed.iter().map(|s| s.time).max()?;
            Some((lo, hi))
        })
        .collect::<Option<Vec<_>>>()?;
    jobs.sort_by_key(|&(_, d)| d);

    let mut busy = vec![false; t];
    for &(r, d) in &jobs {
        let slot = (r..=d).find(|&u| !busy[u as usize])?;
        busy[slot as usize] = true;
    }

    // awake runs = busy slots; merge gaps < alpha
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut u = 0;
    while u < t {
        if busy[u] {
            let start = u;
            while u < t && busy[u] {
                u += 1;
            }
            runs.push((start, u));
        } else {
            u += 1;
        }
    }
    if runs.is_empty() {
        return Some(0.0);
    }
    let mut merged: Vec<(usize, usize)> = vec![runs[0]];
    for &(s, e) in &runs[1..] {
        let last = merged.last_mut().unwrap();
        let gap = s - last.1;
        if (gap as f64) < alpha {
            last.1 = e; // keep the machine awake through the short gap
        } else {
            merged.push((s, e));
        }
    }
    Some(merged.iter().map(|&(s, e)| alpha + (e - s) as f64).sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::{
        enumerate_candidates, schedule_all, AffineCost, CandidatePolicy, Job, SlotRef, SolveOptions,
    };

    #[test]
    fn always_on_simple() {
        let inst = Instance::new(2, 5, vec![Job::window(1.0, 0, 0, 1)]);
        let c = AffineCost::new(2.0, 1.0);
        assert_eq!(always_on_cost(&inst, &c), Some(14.0)); // 2·(2+5)
    }

    #[test]
    fn always_on_zero_horizon() {
        let inst = Instance::new(3, 0, vec![]);
        assert_eq!(always_on_cost(&inst, &AffineCost::new(1.0, 1.0)), Some(0.0));
    }

    #[test]
    fn cover_blind_misses_conflicts() {
        // two jobs both needing slot (0,0) only: cover-greedy claims success
        // with one interval, but the matching check exposes infeasibility.
        let inst = Instance::new(
            1,
            1,
            vec![
                Job::unit(vec![SlotRef::new(0, 0)]),
                Job::unit(vec![SlotRef::new(0, 0)]),
            ],
        );
        let cands = enumerate_candidates(&inst, &AffineCost::new(1.0, 1.0), CandidatePolicy::All);
        let (_, _, feasible) = cover_each_job_greedy(&inst, &cands);
        assert!(!feasible, "strawman should be exposed as infeasible");
    }

    #[test]
    fn cover_blind_ok_when_no_conflicts() {
        let inst = Instance::new(
            1,
            4,
            vec![Job::window(1.0, 0, 0, 2), Job::window(1.0, 0, 2, 4)],
        );
        let cands = enumerate_candidates(&inst, &AffineCost::new(1.0, 1.0), CandidatePolicy::All);
        let (chosen, cost, feasible) = cover_each_job_greedy(&inst, &cands);
        assert!(feasible);
        assert!(!chosen.is_empty());
        assert!(cost > 0.0);
    }

    #[test]
    fn edf_gap_merge_matches_hand_example() {
        // jobs at t∈{0} and t∈{3}; alpha = 10 → merge into [0,4): 10 + 4 = 14
        let inst = Instance::new(
            1,
            4,
            vec![
                Job::unit(vec![SlotRef::new(0, 0)]),
                Job::unit(vec![SlotRef::new(0, 3)]),
            ],
        );
        assert_eq!(edf_gap_merge(&inst, 10.0), Some(14.0));
        // alpha = 0.5 → keep two runs: (0.5+1)·2 = 3
        assert_eq!(edf_gap_merge(&inst, 0.5), Some(3.0));
    }

    #[test]
    fn edf_fails_when_overconstrained() {
        let inst = Instance::new(
            1,
            1,
            vec![
                Job::unit(vec![SlotRef::new(0, 0)]),
                Job::unit(vec![SlotRef::new(0, 0)]),
            ],
        );
        assert_eq!(edf_gap_merge(&inst, 1.0), None);
    }

    #[test]
    fn greedy_competitive_with_edf_on_one_interval_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..10 {
            let t = rng.gen_range(5..=10u32);
            let n = rng.gen_range(1..=4usize);
            let jobs: Vec<Job> = (0..n)
                .map(|_| {
                    let s = rng.gen_range(0..t);
                    let e = rng.gen_range(s + 1..=t);
                    Job::window(1.0, 0, s, e)
                })
                .collect();
            let inst = Instance::new(1, t, jobs);
            let alpha = rng.gen_range(1..=4) as f64;
            let cands =
                enumerate_candidates(&inst, &AffineCost::new(alpha, 1.0), CandidatePolicy::All);
            let greedy = schedule_all(&inst, &cands, &SolveOptions::default());
            let edf = edf_gap_merge(&inst, alpha);
            if let (Ok(g), Some(e)) = (greedy, edf) {
                // the greedy has a log n guarantee; EDF+merge has none — but
                // on these easy instances neither should be wildly worse
                let n = inst.num_jobs() as f64;
                let bound = 2.0 * (n + 1.0).log2().ceil();
                assert!(g.total_cost <= bound * e + 1e-9);
            }
        }
    }
}
