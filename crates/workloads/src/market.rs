//! Energy-market price curves: the paper's motivating example for
//! time-varying interval costs ("energy cost … varies substantially in
//! energy markets over the course of a day").

use rand::Rng;

/// Generates a per-slot price curve `base + amp·sin(2π·t/period) + noise`,
/// clamped to be strictly positive. `noise` is the uniform half-width.
pub fn market_prices(
    horizon: usize,
    base: f64,
    amp: f64,
    period: f64,
    noise: f64,
    rng: &mut impl Rng,
) -> Vec<f64> {
    assert!(base > 0.0 && amp >= 0.0 && period > 0.0 && noise >= 0.0);
    (0..horizon)
        .map(|t| {
            let s = base + amp * (2.0 * std::f64::consts::PI * t as f64 / period).sin();
            let n = if noise > 0.0 {
                rng.gen_range(-noise..noise)
            } else {
                0.0
            };
            (s + n).max(0.05)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn positive_and_right_length() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = market_prices(48, 1.0, 0.9, 24.0, 0.2, &mut rng);
        assert_eq!(p.len(), 48);
        assert!(p.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn oscillates_day_night() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = market_prices(24, 1.0, 0.8, 24.0, 0.0, &mut rng);
        // peak near t=6 (sin max), trough near t=18 (sin min)
        assert!(p[6] > p[18]);
        assert!(p[6] > 1.5);
        assert!(p[18] < 0.5);
    }

    #[test]
    fn zero_noise_deterministic() {
        let mut r1 = rand::rngs::StdRng::seed_from_u64(1);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(999);
        assert_eq!(
            market_prices(10, 1.0, 0.5, 12.0, 0.0, &mut r1),
            market_prices(10, 1.0, 0.5, 12.0, 0.0, &mut r2)
        );
    }
}
