//! Heterogeneous-fleet and sleep-ladder profile generators.
//!
//! Real fleets mix machine generations: a power-hungry old node next to an
//! efficient new one, each with firmware exposing several sleep depths.
//! These generators produce random [`PowerProfile`] fleets — distinct wake
//! costs and busy rates per processor, optionally with a monotone
//! [`SleepState`] ladder — and attach them to the timed arrival traces from
//! [`crate::arrivals`], giving the online replay harness and the CLI
//! (`generate --hetero`) reproducible heterogeneous scenarios. All
//! randomness comes from the caller's RNG, so every fleet is reproducible
//! from its seed.

use rand::Rng;
use sched_core::trace::ArrivalTrace;
use sched_core::{validate_profiles, PowerProfile};

use crate::arrivals::{generate_trace, ArrivalConfig, TraceKind};

/// One random per-processor profile fleet: wake costs drawn from
/// `[2, 10)`, busy rates from `[0.5, 2)`, and — when `sleep_levels > 0` — a
/// [`PowerProfile::envelope_ladder`] of that many states per processor
/// (strictly decreasing idle draw, strictly increasing wake cost, strictly
/// inside the awake/off envelope).
pub fn hetero_profiles(
    num_processors: u32,
    sleep_levels: u32,
    rng: &mut impl Rng,
) -> Vec<PowerProfile> {
    let fleet: Vec<PowerProfile> = (0..num_processors)
        .map(|_| {
            let wake = rng.gen_range(2.0..10.0f64);
            let busy = rng.gen_range(0.5..2.0f64);
            PowerProfile::envelope_ladder(wake, busy, sleep_levels)
        })
        .collect();
    debug_assert!(validate_profiles(&fleet, num_processors).is_ok());
    fleet
}

/// A timed arrival trace with an attached heterogeneous fleet: generates
/// the `kind` workload from `cfg`, then draws one random profile per
/// processor with `sleep_levels` ladder states. The trace's `restart`/`rate`
/// stay as the homogeneous fallback metadata but the profiles govern all
/// pricing.
pub fn hetero_trace(
    kind: TraceKind,
    cfg: &ArrivalConfig,
    sleep_levels: u32,
    rng: &mut impl Rng,
) -> ArrivalTrace {
    let mut trace = generate_trace(kind, cfg, rng);
    trace.profiles = Some(hetero_profiles(cfg.num_processors, sleep_levels, rng));
    trace.name = format!("hetero{sleep_levels}-{}", trace.name);
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sched_core::{enumerate_candidates, CandidatePolicy, ProfileCost, Solver};

    #[test]
    fn fleets_are_valid_and_distinct() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for levels in [0u32, 1, 3] {
            let fleet = hetero_profiles(4, levels, &mut rng);
            assert_eq!(validate_profiles(&fleet, 4), Ok(()));
            assert!(fleet
                .iter()
                .all(|p| p.sleep_states.len() == levels as usize));
            // random draws must actually differ across the fleet
            let wakes: Vec<u64> = fleet.iter().map(|p| p.wake_cost.to_bits()).collect();
            assert!(wakes.windows(2).any(|w| w[0] != w[1]), "degenerate fleet");
        }
    }

    #[test]
    fn hetero_traces_validate_and_stay_offline_feasible() {
        for kind in [
            TraceKind::PoissonBursts,
            TraceKind::Diurnal,
            TraceKind::DeadlineCliffs,
        ] {
            for seed in 0..4 {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let cfg = ArrivalConfig::default();
                let trace = hetero_trace(kind, &cfg, 2, &mut rng);
                assert_eq!(trace.validate(), Ok(()), "{kind} seed {seed}");
                assert!(trace.name.starts_with("hetero2-"));
                let profiles = trace.profiles.as_ref().unwrap();
                assert_eq!(profiles.len(), cfg.num_processors as usize);
                // planted homes keep the instance feasible under any
                // (finite, positive) pricing
                let inst = trace.to_instance();
                let cost = ProfileCost::new(profiles);
                let cands = enumerate_candidates(&inst, &cost, CandidatePolicy::All);
                assert!(
                    Solver::with_candidates(&inst, cands.as_slice())
                        .schedule_all()
                        .is_ok(),
                    "{kind} seed {seed}: hetero trace offline-infeasible"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ArrivalConfig::default();
        let a = hetero_trace(
            TraceKind::PoissonBursts,
            &cfg,
            2,
            &mut rand::rngs::StdRng::seed_from_u64(9),
        );
        let b = hetero_trace(
            TraceKind::PoissonBursts,
            &cfg,
            2,
            &mut rand::rngs::StdRng::seed_from_u64(9),
        );
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}
