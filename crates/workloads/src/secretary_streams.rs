//! Random utility functions for the Chapter 3 (secretary) experiments.

use rand::Rng;
use submodular::functions::{AdditiveFn, CoverageFn, DirectedCutFn, FacilityLocationFn};

/// Random unweighted coverage function: `n` candidates each covering every
/// universe item independently with probability `density`.
pub fn random_coverage(n: usize, universe: usize, density: f64, rng: &mut impl Rng) -> CoverageFn {
    let covers = (0..n)
        .map(|_| {
            (0..universe as u32)
                .filter(|_| rng.gen_bool(density))
                .collect()
        })
        .collect();
    CoverageFn::unweighted(universe, covers)
}

/// Random directed-cut function (the canonical non-monotone submodular
/// utility): `arcs` random arcs with weights in `1..=max_w`.
pub fn random_cut(n: usize, arcs: usize, max_w: u32, rng: &mut impl Rng) -> DirectedCutFn {
    let list: Vec<(u32, u32, f64)> = (0..arcs)
        .filter_map(|_| {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            (u != v).then(|| (u, v, rng.gen_range(1..=max_w) as f64))
        })
        .collect();
    DirectedCutFn::new(n, list)
}

/// Additive values with a heavy tail: mostly small values, a few large ones
/// (`value = base^pareto_draw`), the regime where secretary rules matter.
pub fn heavy_tail_additive(n: usize, rng: &mut impl Rng) -> AdditiveFn {
    let values = (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            (1.0 / (1.0 - u * 0.999)).powf(1.2)
        })
        .collect();
    AdditiveFn::new(values)
}

/// Random facility-location utility: `clients` clients with uniform
/// affinities to `n` candidate facilities.
pub fn random_facility_location(
    n: usize,
    clients: usize,
    rng: &mut impl Rng,
) -> FacilityLocationFn {
    let w = (0..clients)
        .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    FacilityLocationFn::new(n, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use submodular::{BitSet, SetFn};

    #[test]
    fn coverage_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let f = random_coverage(20, 30, 0.2, &mut rng);
        assert_eq!(f.ground_size(), 20);
        let full = BitSet::full(20);
        assert!(f.eval(&full) <= 30.0);
    }

    #[test]
    fn cut_is_nonmonotone_metadata() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let f = random_cut(15, 60, 5, &mut rng);
        assert!(!f.is_monotone());
        assert!(f.is_submodular());
        // full set cuts nothing
        assert_eq!(f.eval(&BitSet::full(15)), 0.0);
    }

    #[test]
    fn heavy_tail_positive_and_varied() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let f = heavy_tail_additive(200, &mut rng);
        let vals = f.values();
        assert!(vals.iter().all(|&v| v >= 1.0));
        let max = vals.iter().copied().fold(0.0, f64::max);
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max / min > 10.0, "tail not heavy: max {max}, min {min}");
    }

    #[test]
    fn facility_location_monotone() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let f = random_facility_location(8, 5, &mut rng);
        let a = BitSet::from_iter(8, [0, 1]);
        let b = BitSet::from_iter(8, [0, 1, 2, 3]);
        assert!(f.eval(&b) >= f.eval(&a));
    }
}
