//! Workload and instance generators for the experiments.
//!
//! * [`planted`] — scheduling instances with a *planted* feasible solution of
//!   known cost, giving an upper bound on OPT for approximation-ratio
//!   measurements at sizes where the exact solver is unaffordable;
//! * [`setcover_hard`] — the Appendix .1 reduction from Set Cover to
//!   one-interval scheduling with nonuniform processors (Theorem .1.2), plus
//!   the classical tight family on which the greedy provably pays
//!   `Ω(log n)·OPT`;
//! * [`market`] — sinusoidal day/night energy-price curves with noise, for
//!   the time-varying-cost scenario the paper motivates;
//! * [`secretary_streams`] — random utility functions (coverage, directed
//!   cut, additive with heavy tails) for the Chapter 3 experiments;
//! * [`arrivals`] — timed arrival traces (Poisson bursts, diurnal load,
//!   adversarial deadline cliffs) for the `sched-sim` online replay
//!   harness;
//! * [`hetero`] — heterogeneous-fleet power-profile generators (distinct
//!   per-processor wake costs / busy rates, optional sleep-state ladders)
//!   and profile-attached arrival traces;
//! * [`dvfs`] — speed-scaling workloads: instances and traces whose jobs
//!   carry planted work requirements against a shared frequency ladder,
//!   clamped so every workload stays feasible at the lowest frequency.
//!
//! All generators take explicit RNGs so every experiment is reproducible
//! from its printed seed.

pub mod arrivals;
pub mod dvfs;
pub mod hetero;
pub mod market;
pub mod online_hiring;
pub mod planted;
pub mod secretary_streams;
pub mod setcover_hard;

pub use arrivals::{
    deadline_cliffs, diurnal, generate_trace, poisson_bursts, ArrivalConfig, TraceKind,
};
pub use dvfs::{dvfs_instance, dvfs_trace, DvfsConfig};
pub use hetero::{hetero_profiles, hetero_trace};
pub use market::market_prices;
pub use online_hiring::ProcessorRankFn;
pub use planted::{planted_instance, PlantedConfig, PlantedInstance};
pub use setcover_hard::{greedy_lower_bound_family, set_cover_to_scheduling};
