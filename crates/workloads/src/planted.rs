//! Planted-OPT scheduling instances.
//!
//! A *planted* instance embeds a known feasible solution: a set of awake
//! intervals whose total cost `B` upper-bounds the true optimum. Jobs are
//! placed into distinct slots inside the planted intervals (so the plant
//! schedules everything), then optionally given extra random allowed slots
//! (decoys) — extra freedom can only lower OPT, so `measured_cost / B` is a
//! *conservative* estimate of the greedy's approximation ratio.

use rand::Rng;
use sched_core::{
    enumerate_candidates, AffineCost, CandidateInterval, CandidatePolicy, ConvexCost, EnergyCost,
    Instance, Job, SlotRef, TimeVaryingCost,
};

use crate::market::market_prices;

/// Which cost model to generate.
#[derive(Clone, Copy, Debug)]
pub enum PlantedCostModel {
    /// Classical `α + length` with the given restart `α`.
    Affine {
        /// Restart cost.
        restart: f64,
    },
    /// Sinusoidal day/night prices plus restart (see [`crate::market`]).
    Market {
        /// Restart cost.
        restart: f64,
    },
    /// Convex `restart + len + quad·len²`.
    Convex {
        /// Restart cost.
        restart: f64,
        /// Quadratic coefficient.
        quad: f64,
    },
}

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct PlantedConfig {
    /// Number of processors.
    pub num_processors: u32,
    /// Horizon `T`.
    pub horizon: u32,
    /// Approximate number of jobs to plant.
    pub target_jobs: usize,
    /// Probability that a job gets a decoy window on another processor.
    pub decoy_prob: f64,
    /// Job values drawn uniformly from `1..=max_value` (1 = unit values).
    pub max_value: u32,
    /// Cost model.
    pub cost_model: PlantedCostModel,
    /// Candidate policy for the returned candidate family.
    pub policy: CandidatePolicy,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        Self {
            num_processors: 2,
            horizon: 16,
            target_jobs: 12,
            decoy_prob: 0.3,
            max_value: 1,
            cost_model: PlantedCostModel::Affine { restart: 3.0 },
            policy: CandidatePolicy::All,
        }
    }
}

/// A planted instance: the problem, the candidate family, the plant, and its
/// cost (an upper bound on OPT).
pub struct PlantedInstance {
    /// The scheduling instance.
    pub instance: Instance,
    /// Candidate awake intervals (already priced).
    pub candidates: Vec<CandidateInterval>,
    /// The planted feasible solution.
    pub planted: Vec<CandidateInterval>,
    /// Total cost of the plant (`B ≥ OPT`).
    pub planted_cost: f64,
    /// The cost oracle used (kept alive for baselines like always-on).
    pub cost: Box<dyn EnergyCost + Send>,
}

/// Generates a planted instance. Panics only on degenerate configs
/// (`horizon == 0`, `num_processors == 0`).
pub fn planted_instance(cfg: &PlantedConfig, rng: &mut impl Rng) -> PlantedInstance {
    assert!(cfg.num_processors > 0 && cfg.horizon > 0);
    let cost: Box<dyn EnergyCost + Send> = match cfg.cost_model {
        PlantedCostModel::Affine { restart } => Box::new(AffineCost::new(restart, 1.0)),
        PlantedCostModel::Market { restart } => {
            let prices = (0..cfg.num_processors)
                .map(|_| market_prices(cfg.horizon as usize, 1.0, 0.8, 24.0, 0.1, rng))
                .collect();
            Box::new(TimeVaryingCost::new(restart, prices))
        }
        PlantedCostModel::Convex { restart, quad } => Box::new(ConvexCost::new(restart, 1.0, quad)),
    };

    // Plant awake intervals: 1–2 random pieces per processor, then keep
    // adding pieces into free space until the plant holds at least
    // `target_jobs` slots (or space runs out).
    let mut planted: Vec<CandidateInterval> = Vec::new();
    let mut occupied = vec![vec![false; cfg.horizon as usize]; cfg.num_processors as usize];
    let mut planted_slots = 0usize;
    let try_plant = |rng: &mut dyn rand::RngCore,
                     planted: &mut Vec<CandidateInterval>,
                     occupied: &mut Vec<Vec<bool>>,
                     planted_slots: &mut usize| {
        let proc = rng.gen_range(0..cfg.num_processors);
        let start = rng.gen_range(0..cfg.horizon);
        // must leave a one-slot margin to existing pieces on this processor
        let occ = &occupied[proc as usize];
        if occ[start as usize] || (start > 0 && occ[start as usize - 1]) {
            return false;
        }
        let want = rng.gen_range(1..=cfg.horizon.div_ceil(3).max(1));
        let mut end = start;
        while end < cfg.horizon && end - start < want && !occ[end as usize] {
            end += 1;
        }
        // keep a gap after the piece too
        if end < cfg.horizon && occ[end as usize] && end > start {
            end -= u32::from(end > start + 1);
        }
        if end == start {
            return false;
        }
        let c = cost.cost(proc, start, end);
        if !c.is_finite() {
            return false;
        }
        for t in start..end {
            occupied[proc as usize][t as usize] = true;
        }
        *planted_slots += (end - start) as usize;
        planted.push(CandidateInterval {
            proc,
            start,
            end,
            cost: c,
        });
        true
    };
    let initial_pieces = cfg.num_processors as usize * 2;
    for _ in 0..initial_pieces {
        try_plant(rng, &mut planted, &mut occupied, &mut planted_slots);
    }
    let mut attempts = 0;
    while planted_slots < cfg.target_jobs && attempts < 20 * cfg.target_jobs {
        try_plant(rng, &mut planted, &mut occupied, &mut planted_slots);
        attempts += 1;
    }
    // Guarantee at least one planted interval.
    if planted.is_empty() {
        let c = cost.cost(0, 0, 1);
        planted.push(CandidateInterval {
            proc: 0,
            start: 0,
            end: 1,
            cost: c,
        });
    }
    let planted_cost: f64 = planted.iter().map(|iv| iv.cost).sum();

    // Place jobs into distinct slots inside the plant.
    let mut free_slots: Vec<SlotRef> = planted
        .iter()
        .flat_map(|iv| (iv.start..iv.end).map(move |t| SlotRef::new(iv.proc, t)))
        .collect();
    free_slots.sort_unstable();
    free_slots.dedup();
    // shuffle
    for i in (1..free_slots.len()).rev() {
        let j = rng.gen_range(0..=i);
        free_slots.swap(i, j);
    }
    let n_jobs = cfg.target_jobs.min(free_slots.len()).max(1);

    let mut jobs = Vec::with_capacity(n_jobs);
    for &home in free_slots.iter().take(n_jobs) {
        let value = if cfg.max_value <= 1 {
            1.0
        } else {
            rng.gen_range(1..=cfg.max_value) as f64
        };
        let mut allowed = vec![home];
        // multi-interval decoys: extra windows that only make the problem easier
        if rng.gen_bool(cfg.decoy_prob) {
            let proc = rng.gen_range(0..cfg.num_processors);
            let start = rng.gen_range(0..cfg.horizon);
            let end = (start + rng.gen_range(1..=3u32)).min(cfg.horizon);
            allowed.extend((start..end).map(|t| SlotRef::new(proc, t)));
        }
        allowed.sort_unstable();
        allowed.dedup();
        jobs.push(Job {
            value,
            allowed,
            work: None,
        });
    }

    let instance = Instance::new(cfg.num_processors, cfg.horizon, jobs);
    let candidates = enumerate_candidates(&instance, cost.as_ref(), cfg.policy);

    PlantedInstance {
        instance,
        candidates,
        planted,
        planted_cost,
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sched_core::{schedule_all, SolveOptions};

    #[test]
    fn plant_is_feasible_and_greedy_respects_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for trial in 0..15 {
            let cfg = PlantedConfig::default();
            let p = planted_instance(&cfg, &mut rng);
            let n = p.instance.num_jobs() as f64;
            let s = schedule_all(&p.instance, &p.candidates, &SolveOptions::default())
                .unwrap_or_else(|e| panic!("trial {trial}: planted instance infeasible: {e}"));
            assert_eq!(s.scheduled_count, p.instance.num_jobs());
            let bound = 2.0 * (n + 1.0).log2().ceil() * p.planted_cost;
            assert!(
                s.total_cost <= bound + 1e-9,
                "trial {trial}: {} > bound {bound}",
                s.total_cost
            );
        }
    }

    #[test]
    fn market_and_convex_models_generate() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for model in [
            PlantedCostModel::Market { restart: 2.0 },
            PlantedCostModel::Convex {
                restart: 1.0,
                quad: 0.2,
            },
        ] {
            let cfg = PlantedConfig {
                cost_model: model,
                ..Default::default()
            };
            let p = planted_instance(&cfg, &mut rng);
            assert!(!p.candidates.is_empty());
            assert!(p.planted_cost > 0.0);
            let s = schedule_all(&p.instance, &p.candidates, &SolveOptions::default());
            assert!(s.is_ok());
        }
    }

    #[test]
    fn respects_target_jobs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let cfg = PlantedConfig {
            target_jobs: 5,
            horizon: 30,
            ..Default::default()
        };
        let p = planted_instance(&cfg, &mut rng);
        assert!(p.instance.num_jobs() <= 5);
        assert!(p.instance.num_jobs() >= 1);
    }

    #[test]
    fn values_in_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let cfg = PlantedConfig {
            max_value: 7,
            ..Default::default()
        };
        let p = planted_instance(&cfg, &mut rng);
        for j in &p.instance.jobs {
            assert!(j.value >= 1.0 && j.value <= 7.0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = PlantedConfig::default();
        let a = planted_instance(&cfg, &mut rand::rngs::StdRng::seed_from_u64(9));
        let b = planted_instance(&cfg, &mut rand::rngs::StdRng::seed_from_u64(9));
        assert_eq!(a.planted_cost, b.planted_cost);
        assert_eq!(a.instance.num_jobs(), b.instance.num_jobs());
        assert_eq!(a.candidates.len(), b.candidates.len());
    }
}
