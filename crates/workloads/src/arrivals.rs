//! Timed arrival-trace generators for the online replay harness.
//!
//! Three families, spanning the demand shapes the power-aware scheduling
//! literature simulates against (cf. Bunde, arXiv:cs/0605126):
//!
//! * [`poisson_bursts`] — a Poisson arrival process (exponential
//!   inter-arrival gaps, Poisson burst sizes) — bursty but memoryless;
//! * [`diurnal`] — sinusoidally modulated per-slot arrival intensity, the
//!   day/night load curve of a real fleet;
//! * [`deadline_cliffs`] — adversarial waves whose jobs all share one
//!   deadline at the wave's end, punishing procrastinating policies with a
//!   mass wake-up at the cliff.
//!
//! Every generator *plants* each job a private home slot on one processor
//! (an occupancy grid guarantees distinct homes), so the offline instance
//! is always feasible and `schedule_all` reference costs exist; windows are
//! single-processor and contiguous, which keeps eager deadline-ordered
//! online policies drop-free as well. All randomness comes from the caller's
//! RNG, so every trace is reproducible from its seed.

use rand::distributions::{Distribution, Exp, Poisson};
use rand::Rng;
use sched_core::trace::{ArrivalTrace, TimedJob};
use sched_core::SlotRef;

/// Shared sizing knobs for the arrival generators.
#[derive(Clone, Copy, Debug)]
pub struct ArrivalConfig {
    /// Number of processors.
    pub num_processors: u32,
    /// Horizon `T`.
    pub horizon: u32,
    /// Approximate number of jobs to generate (capped by free capacity).
    pub target_jobs: usize,
    /// Restart cost of the trace's affine energy model.
    pub restart: f64,
    /// Per-slot rate of the trace's affine energy model.
    pub rate: f64,
    /// Job values drawn uniformly from `1..=max_value` (1 = unit values).
    pub max_value: u32,
    /// Extra window slots granted past the planted home slot.
    pub slack: u32,
}

impl Default for ArrivalConfig {
    fn default() -> Self {
        Self {
            num_processors: 2,
            horizon: 24,
            target_jobs: 12,
            restart: 4.0,
            rate: 1.0,
            max_value: 1,
            slack: 3,
        }
    }
}

/// Which generator to run — the `--trace` flag of `power-sched generate`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// [`poisson_bursts`].
    PoissonBursts,
    /// [`diurnal`].
    Diurnal,
    /// [`deadline_cliffs`].
    DeadlineCliffs,
}

impl std::str::FromStr for TraceKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "poisson" => Ok(TraceKind::PoissonBursts),
            "diurnal" => Ok(TraceKind::Diurnal),
            "cliffs" => Ok(TraceKind::DeadlineCliffs),
            other => Err(format!(
                "unknown trace kind '{other}' (expected poisson, diurnal, or cliffs)"
            )),
        }
    }
}

impl std::fmt::Display for TraceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceKind::PoissonBursts => write!(f, "poisson"),
            TraceKind::Diurnal => write!(f, "diurnal"),
            TraceKind::DeadlineCliffs => write!(f, "cliffs"),
        }
    }
}

/// Dispatches to the selected generator.
pub fn generate_trace(kind: TraceKind, cfg: &ArrivalConfig, rng: &mut impl Rng) -> ArrivalTrace {
    match kind {
        TraceKind::PoissonBursts => poisson_bursts(cfg, rng),
        TraceKind::Diurnal => diurnal(cfg, rng),
        TraceKind::DeadlineCliffs => deadline_cliffs(cfg, rng),
    }
}

/// Occupancy grid for home-slot planting.
struct Grid {
    occ: Vec<Vec<bool>>,
}

impl Grid {
    /// # Panics
    /// Panics on degenerate configs (`horizon == 0`, `num_processors == 0`),
    /// like [`crate::planted_instance`]; callers with untrusted sizing (the
    /// CLI) must reject those before generating.
    fn new(cfg: &ArrivalConfig) -> Self {
        assert!(
            cfg.num_processors > 0 && cfg.horizon > 0,
            "arrival generators need at least one processor and one slot"
        );
        Self {
            occ: vec![vec![false; cfg.horizon as usize]; cfg.num_processors as usize],
        }
    }

    /// Claims the earliest free slot on `proc` in `[from, to)`.
    fn claim_earliest(&mut self, proc: u32, from: u32, to: u32) -> Option<u32> {
        (from..to)
            .find(|&t| !self.occ[proc as usize][t as usize])
            .inspect(|&t| {
                self.occ[proc as usize][t as usize] = true;
            })
    }

    /// Claims the latest free slot on `proc` in `[from, to)`.
    fn claim_latest(&mut self, proc: u32, from: u32, to: u32) -> Option<u32> {
        (from..to)
            .rev()
            .find(|&t| !self.occ[proc as usize][t as usize])
            .inspect(|&t| {
                self.occ[proc as usize][t as usize] = true;
            })
    }
}

fn job_value(cfg: &ArrivalConfig, rng: &mut impl Rng) -> f64 {
    if cfg.max_value <= 1 {
        1.0
    } else {
        rng.gen_range(1..=cfg.max_value) as f64
    }
}

/// Contiguous single-processor window `[release, deadline]` around `home`.
fn windowed_job(cfg: &ArrivalConfig, value: f64, release: u32, proc: u32, home: u32) -> TimedJob {
    let end = (home + 1 + cfg.slack).min(cfg.horizon);
    TimedJob {
        release,
        value,
        allowed: (release..end).map(|t| SlotRef::new(proc, t)).collect(),
        work: None,
    }
}

/// Poisson bursts: exponential inter-arrival gaps (mean `horizon /
/// (target_jobs / mean_burst)`), each arrival bringing `1 + Poisson(1)`
/// jobs on random processors.
pub fn poisson_bursts(cfg: &ArrivalConfig, rng: &mut impl Rng) -> ArrivalTrace {
    let mut grid = Grid::new(cfg); // asserts a non-degenerate grid first
    let mean_burst = 2.0;
    let bursts = (cfg.target_jobs as f64 / mean_burst).max(1.0);
    // Over-provision the rate: arrivals past the horizon are discarded and
    // the job count is capped at target_jobs, so without margin the
    // truncation makes traces chronically undershoot the target.
    let exp = Exp::new(1.6 * bursts / cfg.horizon as f64).expect("positive rate");
    let burst_size = Poisson::new(mean_burst - 1.0).expect("positive mean");

    let mut jobs = Vec::new();
    let mut clock = 0.0f64;
    while jobs.len() < cfg.target_jobs {
        clock += exp.sample(rng);
        let release = clock.floor() as i64;
        if release >= cfg.horizon as i64 {
            break;
        }
        // Never release at the very last slot: a job revealed there has a
        // single-slot window, which collides unavoidably with any policy
        // that deferred work into that slot.
        let release = (release as u32).min(cfg.horizon.saturating_sub(2));
        let burst: u64 = Distribution::<u64>::sample(&burst_size, rng) + 1;
        for _ in 0..burst {
            if jobs.len() >= cfg.target_jobs {
                break;
            }
            let proc = rng.gen_range(0..cfg.num_processors);
            if let Some(home) = grid.claim_earliest(proc, release, cfg.horizon) {
                jobs.push(windowed_job(cfg, job_value(cfg, rng), release, proc, home));
            }
        }
    }
    ArrivalTrace {
        name: format!(
            "poisson-p{}-T{}-n{}",
            cfg.num_processors,
            cfg.horizon,
            jobs.len()
        ),
        num_processors: cfg.num_processors,
        horizon: cfg.horizon,
        restart: cfg.restart,
        rate: cfg.rate,
        jobs,
        profiles: None,
        freq_ladder: None,
    }
}

/// Diurnal load: per-slot arrival counts drawn from a Poisson whose mean
/// follows a day/night sinusoid over the horizon — heavy half, quiet half.
pub fn diurnal(cfg: &ArrivalConfig, rng: &mut impl Rng) -> ArrivalTrace {
    let base = cfg.target_jobs as f64 / cfg.horizon as f64;
    let mut grid = Grid::new(cfg);
    let mut jobs = Vec::new();
    // Stop one slot early for the same single-slot-window reason as
    // [`poisson_bursts`].
    for t in 0..cfg.horizon.saturating_sub(1) {
        let phase = (t as f64 / cfg.horizon as f64) * std::f64::consts::TAU;
        let lambda = (base * (1.0 + 0.9 * phase.sin())).max(0.02);
        let arrivals: u64 = Poisson::new(lambda).expect("positive mean").sample(rng);
        for _ in 0..arrivals {
            if jobs.len() >= cfg.target_jobs {
                break;
            }
            let proc = rng.gen_range(0..cfg.num_processors);
            if let Some(home) = grid.claim_earliest(proc, t, cfg.horizon) {
                jobs.push(windowed_job(cfg, job_value(cfg, rng), t, proc, home));
            }
        }
    }
    ArrivalTrace {
        name: format!(
            "diurnal-p{}-T{}-n{}",
            cfg.num_processors,
            cfg.horizon,
            jobs.len()
        ),
        num_processors: cfg.num_processors,
        horizon: cfg.horizon,
        restart: cfg.restart,
        rate: cfg.rate,
        jobs,
        profiles: None,
        freq_ladder: None,
    }
}

/// Adversarial deadline cliffs: the horizon is split into waves; each
/// wave's jobs are released across its first half but **all** share the
/// wave-end deadline. A policy that procrastinates faces a mass wake-up at
/// the cliff; one that serves eagerly pays restarts per release. Homes are
/// planted backward from the cliff so the wave is always feasible.
pub fn deadline_cliffs(cfg: &ArrivalConfig, rng: &mut impl Rng) -> ArrivalTrace {
    let waves = 3u32.min(cfg.horizon.max(1));
    let wave_len = (cfg.horizon / waves).max(1);
    let per_wave = cfg.target_jobs.div_ceil(waves as usize);

    let mut grid = Grid::new(cfg);
    let mut jobs = Vec::new();
    for w in 0..waves {
        let wave_start = w * wave_len;
        let cliff = if w == waves - 1 {
            cfg.horizon
        } else {
            (w + 1) * wave_len
        };
        let release_span = ((cliff - wave_start) / 2).max(1);
        for _ in 0..per_wave {
            if jobs.len() >= cfg.target_jobs {
                break;
            }
            let release = wave_start + rng.gen_range(0..release_span);
            let proc = rng.gen_range(0..cfg.num_processors);
            if let Some(_home) = grid.claim_latest(proc, release, cliff) {
                jobs.push(TimedJob {
                    release,
                    value: job_value(cfg, rng),
                    allowed: (release..cliff).map(|t| SlotRef::new(proc, t)).collect(),
                    work: None,
                });
            }
        }
    }
    ArrivalTrace {
        name: format!(
            "cliffs-p{}-T{}-n{}",
            cfg.num_processors,
            cfg.horizon,
            jobs.len()
        ),
        num_processors: cfg.num_processors,
        horizon: cfg.horizon,
        restart: cfg.restart,
        rate: cfg.rate,
        jobs,
        profiles: None,
        freq_ladder: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sched_core::{enumerate_candidates, AffineCost, CandidatePolicy, Solver};

    fn kinds() -> [TraceKind; 3] {
        [
            TraceKind::PoissonBursts,
            TraceKind::Diurnal,
            TraceKind::DeadlineCliffs,
        ]
    }

    #[test]
    fn generated_traces_validate_and_are_offline_feasible() {
        for kind in kinds() {
            for seed in 0..8 {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let cfg = ArrivalConfig::default();
                let trace = generate_trace(kind, &cfg, &mut rng);
                assert_eq!(trace.validate(), Ok(()), "{kind} seed {seed}");
                assert!(!trace.jobs.is_empty(), "{kind} seed {seed}: empty trace");
                assert!(trace.jobs.len() <= cfg.target_jobs);
                let inst = trace.to_instance();
                let cost = AffineCost::new(trace.restart, trace.rate);
                let cands = enumerate_candidates(&inst, &cost, CandidatePolicy::All);
                let solved = Solver::with_candidates(&inst, cands.as_slice()).schedule_all();
                assert!(
                    solved.is_ok(),
                    "{kind} seed {seed}: planted trace offline-infeasible"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        for kind in kinds() {
            let cfg = ArrivalConfig::default();
            let a = generate_trace(kind, &cfg, &mut rand::rngs::StdRng::seed_from_u64(9));
            let b = generate_trace(kind, &cfg, &mut rand::rngs::StdRng::seed_from_u64(9));
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap(),
                "{kind} not deterministic"
            );
        }
    }

    #[test]
    fn cliffs_share_wave_deadlines() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let cfg = ArrivalConfig {
            horizon: 24,
            target_jobs: 9,
            ..Default::default()
        };
        let trace = deadline_cliffs(&cfg, &mut rng);
        let mut deadlines: Vec<u32> = trace.jobs.iter().map(|j| j.deadline().unwrap()).collect();
        deadlines.sort_unstable();
        deadlines.dedup();
        assert!(
            deadlines.len() <= 3,
            "more deadline cliffs than waves: {deadlines:?}"
        );
    }

    #[test]
    fn kind_parse_round_trip() {
        for kind in kinds() {
            assert_eq!(kind.to_string().parse::<TraceKind>().unwrap(), kind);
        }
        assert!("bogus".parse::<TraceKind>().is_err());
    }

    #[test]
    fn values_respect_max_value() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let cfg = ArrivalConfig {
            max_value: 5,
            ..Default::default()
        };
        let trace = poisson_bursts(&cfg, &mut rng);
        for j in &trace.jobs {
            assert!(j.value >= 1.0 && j.value <= 5.0);
        }
    }
}
