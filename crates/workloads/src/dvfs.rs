//! DVFS workload generators: speed-scaling instances and arrival traces
//! with planted work requirements.
//!
//! Both generators follow the planting discipline of [`crate::arrivals`] —
//! every job claims *exclusive whole slots* on an occupancy grid — but the
//! claim is sized for the ladder's **lowest** frequency: a job of work `w`
//! claims `ceil(w / f_min)` free slots inside its window. That makes every
//! generated instance solvable with the whole fleet pinned at the bottom
//! rung (each claimed slot exposes `f_min` lanes at level 0), so offline
//! feasibility never depends on the solver choosing to speed up. Traces
//! additionally clamp work at the ladder's top frequency, because an online
//! job must finish inside the single slot a policy runs it in.
//!
//! All randomness comes from the caller's RNG; every workload is
//! reproducible from its seed.

use rand::Rng;
use sched_core::dvfs::DvfsInstance;
use sched_core::trace::{ArrivalTrace, TimedJob};
use sched_core::{FreqLadder, Job, SlotRef};

/// Sizing knobs for the DVFS generators.
#[derive(Clone, Debug)]
pub struct DvfsConfig {
    /// Number of processors.
    pub num_processors: u32,
    /// Horizon `T`.
    pub horizon: u32,
    /// Approximate number of jobs to generate (capped by free capacity).
    pub target_jobs: usize,
    /// Fixed cost of waking a processor for an awake run.
    pub wake_cost: f64,
    /// Dynamic power coefficient `alpha` of `alpha · f^gamma + beta`.
    pub alpha: f64,
    /// Static power floor `beta`.
    pub beta: f64,
    /// Dynamic power exponent `gamma` (cube-law silicon ≈ 3).
    pub gamma: f64,
    /// Frequency rungs, strictly increasing.
    pub freqs: Vec<u32>,
    /// Work requirements drawn uniformly from `1..=max_work` before
    /// clamping.
    pub max_work: u32,
    /// Job values drawn uniformly from `1..=max_value` (1 = unit values).
    pub max_value: u32,
    /// Extra window slots granted past each job's release.
    pub slack: u32,
}

impl Default for DvfsConfig {
    fn default() -> Self {
        Self {
            num_processors: 2,
            horizon: 24,
            target_jobs: 10,
            wake_cost: 4.0,
            alpha: 1.0,
            beta: 0.0,
            gamma: 2.0,
            freqs: vec![1, 2, 4],
            max_work: 4,
            max_value: 1,
            slack: 3,
        }
    }
}

impl DvfsConfig {
    /// The config's frequency ladder.
    ///
    /// # Panics
    /// Panics when the ladder parameters are invalid (see
    /// [`FreqLadder::new`]); callers with untrusted knobs (the CLI) must
    /// validate first.
    pub fn ladder(&self) -> FreqLadder {
        FreqLadder::new(self.alpha, self.beta, self.gamma, self.freqs.clone())
    }
}

/// Occupancy grid: one exclusive claim per (processor, slot).
struct Grid {
    occ: Vec<Vec<bool>>,
}

impl Grid {
    fn new(cfg: &DvfsConfig) -> Self {
        assert!(
            cfg.num_processors > 0 && cfg.horizon > 0 && cfg.max_work > 0,
            "DVFS generators need at least one processor, one slot, and one work unit"
        );
        Self {
            occ: vec![vec![false; cfg.horizon as usize]; cfg.num_processors as usize],
        }
    }

    /// Free slots on `proc` in `[from, to)`, ascending.
    fn free_slots(&self, proc: u32, from: u32, to: u32) -> Vec<u32> {
        (from..to)
            .filter(|&t| !self.occ[proc as usize][t as usize])
            .collect()
    }

    fn claim(&mut self, proc: u32, slots: &[u32]) {
        for &t in slots {
            self.occ[proc as usize][t as usize] = true;
        }
    }
}

fn job_value(cfg: &DvfsConfig, rng: &mut impl Rng) -> f64 {
    if cfg.max_value <= 1 {
        1.0
    } else {
        rng.gen_range(1..=cfg.max_value) as f64
    }
}

/// One planted placement: window, clamped work, and the slots to claim.
struct Placement {
    release: u32,
    end: u32,
    proc: u32,
    work: u32,
}

/// Draws a placement whose work is feasible at the lowest frequency inside
/// the free portion of its window: `w = min(w_drawn, cap, f_min ·
/// free_slots)`, claiming `ceil(w / f_min)` exclusive slots. `cap` is the
/// top frequency for traces (single-slot online execution) and unbounded
/// for offline instances.
fn place(cfg: &DvfsConfig, grid: &mut Grid, cap: u32, rng: &mut impl Rng) -> Option<Placement> {
    let f_min = *cfg.freqs.first().expect("validated ladder is non-empty");
    // Never release at the very last slot (the single-slot-window hazard
    // the arrival generators document).
    let release = rng.gen_range(0..cfg.horizon.saturating_sub(1).max(1));
    let proc = rng.gen_range(0..cfg.num_processors);
    let end = (release + 1 + cfg.slack).min(cfg.horizon);
    let free = grid.free_slots(proc, release, end);
    if free.is_empty() {
        return None;
    }
    let w_drawn = rng.gen_range(1..=cfg.max_work);
    let work = w_drawn
        .min(cap)
        .min(f_min.saturating_mul(free.len() as u32))
        .max(1);
    let need = work.div_ceil(f_min) as usize;
    let claimed: Vec<u32> = free.into_iter().take(need).collect();
    grid.claim(proc, &claimed);
    Some(Placement {
        release,
        end,
        proc,
        work,
    })
}

/// Generates an offline [`DvfsInstance`]: jobs with planted work
/// requirements, each owning enough exclusive slots to finish at the
/// *lowest* frequency, so [`sched_core::solve_dvfs`] always succeeds.
///
/// # Panics
/// Panics on a degenerate config (zero processors/horizon/work, invalid
/// ladder parameters).
pub fn dvfs_instance(cfg: &DvfsConfig, rng: &mut impl Rng) -> DvfsInstance {
    let ladder = cfg.ladder();
    let mut grid = Grid::new(cfg);
    let mut placements = Vec::new();
    // Offline jobs may spread work over their window, so work is not
    // capped at the top frequency — only by what fits at the bottom rung.
    for _ in 0..cfg.target_jobs * 4 {
        if placements.len() >= cfg.target_jobs {
            break;
        }
        if let Some(p) = place(cfg, &mut grid, u32::MAX, rng) {
            placements.push(p);
        }
    }
    placements.sort_by_key(|p| (p.release, p.proc));
    let jobs = placements
        .into_iter()
        .map(|p| Job {
            value: job_value(cfg, rng),
            allowed: (p.release..p.end)
                .map(|t| SlotRef::new(p.proc, t))
                .collect(),
            work: Some(p.work),
        })
        .collect();
    DvfsInstance {
        num_processors: cfg.num_processors,
        horizon: cfg.horizon,
        wake_cost: cfg.wake_cost,
        ladder,
        jobs,
    }
}

/// Generates an online [`ArrivalTrace`] carrying the config's frequency
/// ladder. Work is additionally clamped at the top frequency (an online
/// policy runs a job inside one slot), and the lowest-frequency exclusive
/// claim keeps the trace offline-feasible — and eager greedy replay
/// drop-free, by the same one-owned-slot-per-window argument the classical
/// arrival generators use.
///
/// # Panics
/// Panics on a degenerate config, like [`dvfs_instance`].
pub fn dvfs_trace(cfg: &DvfsConfig, rng: &mut impl Rng) -> ArrivalTrace {
    let ladder = cfg.ladder();
    let f_max = ladder.max_freq();
    let mut grid = Grid::new(cfg);
    let mut placements = Vec::new();
    for _ in 0..cfg.target_jobs * 4 {
        if placements.len() >= cfg.target_jobs {
            break;
        }
        if let Some(p) = place(cfg, &mut grid, f_max, rng) {
            placements.push(p);
        }
    }
    placements.sort_by_key(|p| (p.release, p.proc));
    let jobs: Vec<TimedJob> = placements
        .into_iter()
        .map(|p| TimedJob {
            release: p.release,
            value: job_value(cfg, rng),
            allowed: (p.release..p.end)
                .map(|t| SlotRef::new(p.proc, t))
                .collect(),
            work: Some(p.work),
        })
        .collect();
    ArrivalTrace {
        name: format!(
            "dvfs-p{}-T{}-n{}",
            cfg.num_processors,
            cfg.horizon,
            jobs.len()
        ),
        num_processors: cfg.num_processors,
        horizon: cfg.horizon,
        restart: cfg.wake_cost,
        rate: ladder.level(0).power,
        jobs,
        profiles: None,
        freq_ladder: Some(ladder),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use sched_core::{solve_dvfs, solve_dvfs_naive, validate_dvfs_schedule};

    #[test]
    fn generated_instances_validate_and_solve() {
        for seed in 0..8 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let cfg = DvfsConfig::default();
            let dvfs = dvfs_instance(&cfg, &mut rng);
            assert_eq!(dvfs.validate(), Ok(()), "seed {seed}");
            assert!(!dvfs.jobs.is_empty(), "seed {seed}: empty instance");
            assert!(dvfs.jobs.len() <= cfg.target_jobs);
            let schedule = solve_dvfs(&dvfs)
                .unwrap_or_else(|e| panic!("seed {seed}: planted DVFS instance unsolvable: {e:?}"));
            assert_eq!(
                validate_dvfs_schedule(&dvfs, &schedule),
                vec![],
                "seed {seed}"
            );
        }
    }

    #[test]
    fn generated_traces_validate_and_compile() {
        for seed in 0..8 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let trace = dvfs_trace(&DvfsConfig::default(), &mut rng);
            assert_eq!(trace.validate(), Ok(()), "seed {seed}");
            assert!(!trace.jobs.is_empty(), "seed {seed}: empty trace");
            let dvfs = trace.to_dvfs_instance().expect("ladder trace converts");
            assert!(
                solve_dvfs(&dvfs).is_ok(),
                "seed {seed}: trace offline-infeasible"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = DvfsConfig::default();
        let a = dvfs_trace(&cfg, &mut rand::rngs::StdRng::seed_from_u64(5));
        let b = dvfs_trace(&cfg, &mut rand::rngs::StdRng::seed_from_u64(5));
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        // The clamp invariant, property-tested across the knob space: a
        // generated trace always validates (work never exceeds the top
        // frequency), and its compiled offline problem is solvable by both
        // solver paths — the lowest-frequency claim guarantees feasibility.
        #[test]
        fn traces_stay_feasible_across_configs(
            seed in 0u64..512,
            procs in 1u32..4,
            horizon in 4u32..20,
            target in 1usize..10,
            max_work in 1u32..7,
            slack in 0u32..4,
            ladder_kind in 0u8..3,
        ) {
            let freqs = match ladder_kind {
                0 => vec![1],
                1 => vec![1, 2],
                _ => vec![1, 2, 4],
            };
            let cfg = DvfsConfig {
                num_processors: procs,
                horizon,
                target_jobs: target,
                max_work,
                slack,
                freqs,
                ..DvfsConfig::default()
            };
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let trace = dvfs_trace(&cfg, &mut rng);
            prop_assert_eq!(trace.validate(), Ok(()));
            let dvfs = trace.to_dvfs_instance().expect("ladder trace converts");
            let fast = solve_dvfs(&dvfs);
            prop_assert!(fast.is_ok(), "planted trace offline-infeasible: {:?}", fast.err());
            let naive = solve_dvfs_naive(&dvfs);
            prop_assert!(naive.is_ok());
            // fast and naive agree bit-for-bit on generated workloads too
            prop_assert_eq!(
                fast.unwrap().total_cost.to_bits(),
                naive.unwrap().total_cost.to_bits()
            );
        }
    }
}
