//! The paper's online motivation (§3.1): *"you have a set of tasks to do,
//! and the processors arrive one by one … we can see the processors as some
//! secretaries, and we want to hire k secretaries to do the tasks."*
//!
//! This module closes the loop between the two halves of the paper: the
//! utility of a set of hired processors is the (weighted) **matching rank**
//! of Chapter 2 — the maximum value of jobs schedulable using only the
//! hired processors' slots — which Lemmas 2.2.2/2.3.2 prove monotone
//! submodular, so Algorithm 1 applies with its Theorem 3.2.5 guarantee.

use bmatch::{BipartiteGraph, BipartiteGraphBuilder, MatchingOracle};
use sched_core::Instance;
use submodular::{BitSet, SetFn};

/// Monotone submodular utility over *processors*: `f(P)` = maximum total
/// value of jobs schedulable using only slots on processors in `P`
/// (all slots of a hired processor are available; the hired set's awake-cost
/// side is Chapter 2's concern, not the hiring problem's).
pub struct ProcessorRankFn {
    num_processors: usize,
    graph: BipartiteGraph,
    values: Vec<f64>,
    /// Per processor: its dense slot ids that touch at least one job.
    slots_of_proc: Vec<Vec<u32>>,
}

impl ProcessorRankFn {
    /// Builds the utility from a scheduling instance (job values are used;
    /// pass unit-value jobs for the cardinality version).
    pub fn new(inst: &Instance) -> Self {
        let mut b = BipartiteGraphBuilder::new(inst.num_slots(), inst.num_jobs() as u32);
        for (jid, job) in inst.jobs.iter().enumerate() {
            for &s in &job.allowed {
                b.add_edge(inst.slot_id(s), jid as u32);
            }
        }
        let graph = b.build();
        let slots_of_proc = (0..inst.num_processors)
            .map(|p| {
                (0..inst.horizon)
                    .map(|t| p * inst.horizon + t)
                    .filter(|&sid| graph.deg_x(sid) > 0)
                    .collect()
            })
            .collect();
        Self {
            num_processors: inst.num_processors as usize,
            graph,
            values: inst.jobs.iter().map(|j| j.value).collect(),
            slots_of_proc,
        }
    }

    /// Max schedulable value using exactly the processors in `procs`.
    pub fn value_of(&self, procs: &[u32]) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mut oracle = MatchingOracle::new(&self.graph, self.values.clone());
        for &p in procs {
            oracle.commit(&self.slots_of_proc[p as usize]);
        }
        oracle.total()
    }
}

impl SetFn for ProcessorRankFn {
    fn ground_size(&self) -> usize {
        self.num_processors
    }

    fn eval(&self, set: &BitSet) -> f64 {
        let procs: Vec<u32> = set.iter().collect();
        self.value_of(&procs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::{Job, SlotRef};
    use secretary::{offline_greedy, random_stream, submodular_secretary};

    fn hiring_instance() -> Instance {
        // 4 processors, horizon 3; jobs pinned to specific processors
        Instance::new(
            4,
            3,
            vec![
                Job::unit(vec![SlotRef::new(0, 0)]),
                Job::unit(vec![SlotRef::new(0, 1)]),
                Job::unit(vec![SlotRef::new(1, 0)]),
                Job::unit(vec![SlotRef::new(2, 0), SlotRef::new(3, 0)]),
                Job::unit(vec![SlotRef::new(3, 1)]),
            ],
        )
    }

    #[test]
    fn value_counts_schedulable_jobs() {
        let f = ProcessorRankFn::new(&hiring_instance());
        assert_eq!(f.value_of(&[]), 0.0);
        assert_eq!(f.value_of(&[0]), 2.0);
        assert_eq!(f.value_of(&[0, 1]), 3.0);
        assert_eq!(f.value_of(&[3]), 2.0); // job 3 and job 4
        assert_eq!(f.value_of(&[0, 1, 2, 3]), 5.0);
    }

    #[test]
    fn is_monotone_submodular_exhaustively() {
        let f = ProcessorRankFn::new(&hiring_instance());
        submodular::functions::check_monotone_exhaustive(&f).unwrap();
        submodular::functions::check_submodular_exhaustive(&f).unwrap();
    }

    #[test]
    fn secretary_hires_useful_processors() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        // larger random hiring instance: 30 processors, 40 jobs
        let procs = 30u32;
        let horizon = 4u32;
        let jobs: Vec<Job> = (0..40)
            .map(|_| {
                let p = rng.gen_range(0..procs);
                let t = rng.gen_range(0..horizon);
                Job::unit(vec![SlotRef::new(p, t)])
            })
            .collect();
        let inst = Instance::new(procs, horizon, jobs);
        let f = ProcessorRankFn::new(&inst);
        let k = 5;
        let (_, offline) = offline_greedy(&f, k);
        assert!(offline > 0.0);
        let trials = 300;
        let mut total = 0.0;
        for _ in 0..trials {
            let s = random_stream(procs as usize, &mut rng);
            let hired = submodular_secretary(&f, &s, k);
            assert!(hired.len() <= k);
            total += f.value_of(&hired);
        }
        let ratio = total / trials as f64 / offline;
        let bound = (1.0 - 1.0 / std::f64::consts::E) / (7.0 * std::f64::consts::E);
        assert!(
            ratio >= bound,
            "online processor hiring ratio {ratio} below Theorem 3.2.5 bound"
        );
    }

    #[test]
    fn weighted_jobs_respected() {
        let inst = Instance::new(
            2,
            1,
            vec![
                Job {
                    value: 10.0,
                    allowed: vec![SlotRef::new(0, 0)],
                    work: None,
                },
                Job {
                    value: 1.0,
                    allowed: vec![SlotRef::new(1, 0)],
                    work: None,
                },
            ],
        );
        let f = ProcessorRankFn::new(&inst);
        assert_eq!(f.value_of(&[0]), 10.0);
        assert_eq!(f.value_of(&[1]), 1.0);
        assert_eq!(f.value_of(&[0, 1]), 11.0);
    }
}
