//! Set-Cover hardness workloads (Appendix .1 of the paper).
//!
//! Theorem .1.2 reduces Set Cover to *one-interval scheduling with nonuniform
//! processors*: one processor per set, one job per element, every job's
//! window is the full horizon but only on the processors whose sets contain
//! its element; keeping any processor awake costs 1 regardless of interval.
//! The minimum-cost schedule is exactly the minimum set cover — so the
//! scheduling greedy inherits both the `ln n` guarantee and the matching
//! lower bound. [`greedy_lower_bound_family`] provides the classical
//! instances on which the greedy provably pays `Ω(log n)·OPT`.

use sched_core::{CandidateInterval, Instance, Job, SlotRef};
use submodular::setcover::SetCoverInstance;

/// The Theorem .1.2 reduction. Returns the scheduling instance and its
/// candidate family: one full-horizon interval per processor at unit cost
/// (any sub-interval is dominated, so the one candidate per processor loses
/// nothing and keeps the equivalence exact).
pub fn set_cover_to_scheduling(sc: &SetCoverInstance) -> (Instance, Vec<CandidateInterval>) {
    let n = sc.universe as u32; // jobs AND horizon length
    let m = sc.sets.len() as u32; // processors
    assert!(n > 0, "empty universe");

    // job e is allowed on processor j (any time) iff e ∈ S_j
    let mut allowed_procs: Vec<Vec<u32>> = vec![Vec::new(); sc.universe];
    for (j, set) in sc.sets.iter().enumerate() {
        for &e in set {
            allowed_procs[e as usize].push(j as u32);
        }
    }
    let jobs: Vec<Job> = allowed_procs
        .into_iter()
        .map(|procs| {
            let allowed = procs
                .iter()
                .flat_map(|&p| (0..n).map(move |t| SlotRef::new(p, t)))
                .collect();
            Job {
                value: 1.0,
                allowed,
                work: None,
            }
        })
        .collect();

    let instance = Instance::new(m, n, jobs);
    let candidates = (0..m)
        .map(|p| CandidateInterval {
            proc: p,
            start: 0,
            end: n,
            cost: sc.costs[p as usize],
        })
        .collect();
    (instance, candidates)
}

/// The classical tight family for the Set Cover greedy: a `2 × (2^k − 1)`
/// element grid. The two rows cover everything (OPT = 2); the bait sets
/// `D_1..D_k` cover column blocks of halving width, and the greedy picks all
/// `k` of them — ratio `k/2 = Θ(log n)`.
pub fn greedy_lower_bound_family(k: u32) -> SetCoverInstance {
    assert!((1..=20).contains(&k));
    let m = (1u32 << k) - 1; // columns
    let universe = (2 * m) as usize;
    // element ids: row 0 = 0..m, row 1 = m..2m
    let row0: Vec<u32> = (0..m).collect();
    let row1: Vec<u32> = (m..2 * m).collect();

    let mut sets = vec![row0, row1];
    let mut col = 0u32;
    for j in 1..=k {
        let width = 1u32 << (k - j);
        let mut d = Vec::with_capacity(2 * width as usize);
        for c in col..col + width {
            d.push(c); // row 0
            d.push(m + c); // row 1
        }
        sets.push(d);
        col += width;
    }
    debug_assert_eq!(col, m);
    SetCoverInstance::unit_costs(universe, sets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::{schedule_all, SolveOptions};
    use submodular::setcover::{exact_set_cover, greedy_set_cover};

    #[test]
    fn reduction_preserves_optimum() {
        // universe {0,1,2}; sets {0,1}, {2}, {0,1,2}(cost 3)
        let sc = SetCoverInstance {
            universe: 3,
            sets: vec![vec![0, 1], vec![2], vec![0, 1, 2]],
            costs: vec![1.0, 1.0, 3.0],
        };
        let (inst, cands) = set_cover_to_scheduling(&sc);
        assert_eq!(inst.num_jobs(), 3);
        assert_eq!(cands.len(), 3);
        let s = schedule_all(&inst, &cands, &SolveOptions::default()).unwrap();
        let (_, opt) = exact_set_cover(&sc).unwrap();
        assert_eq!(opt, 2.0);
        // greedy on the scheduling side must match the set-cover greedy bound
        assert!(s.total_cost >= opt);
        assert!(s.total_cost <= (sc.harmonic_bound() + 1.0) * opt);
    }

    #[test]
    fn reduction_scheduling_greedy_equals_setcover_greedy() {
        let sc = SetCoverInstance {
            universe: 6,
            sets: vec![
                vec![0, 1, 2],
                vec![3, 4],
                vec![5],
                vec![0, 3, 5],
                vec![1, 2, 4],
            ],
            costs: vec![1.0, 1.0, 1.0, 1.0, 1.0],
        };
        let (inst, cands) = set_cover_to_scheduling(&sc);
        let s = schedule_all(&inst, &cands, &SolveOptions::default()).unwrap();
        let scg = greedy_set_cover(&sc);
        assert!(scg.complete);
        assert_eq!(
            s.total_cost, scg.cost,
            "scheduling greedy and set-cover greedy should pay the same"
        );
    }

    #[test]
    fn lower_bound_family_structure() {
        for k in 1..=5u32 {
            let sc = greedy_lower_bound_family(k);
            let m = (1usize << k) - 1;
            assert_eq!(sc.universe, 2 * m);
            assert_eq!(sc.sets.len(), 2 + k as usize);
            assert!(sc.is_coverable());
            // rows partition the universe
            assert_eq!(sc.sets[0].len(), m);
            assert_eq!(sc.sets[1].len(), m);
            // baits partition the universe too
            let bait_total: usize = sc.sets[2..].iter().map(|s| s.len()).sum();
            assert_eq!(bait_total, 2 * m);
        }
    }

    #[test]
    fn greedy_pays_log_factor_on_lower_bound_family() {
        for k in 2..=6u32 {
            let sc = greedy_lower_bound_family(k);
            let sol = greedy_set_cover(&sc);
            assert!(sol.complete);
            // OPT = 2 (the two rows); greedy must fall for the baits
            assert!(
                sol.cost >= k as f64,
                "k={k}: greedy cost {} below the intended Ω(log n) trap",
                sol.cost
            );
        }
    }

    #[test]
    fn reduction_infeasible_when_uncoverable() {
        let sc = SetCoverInstance::unit_costs(2, vec![vec![0]]);
        let (inst, cands) = set_cover_to_scheduling(&sc);
        assert!(schedule_all(&inst, &cands, &SolveOptions::default()).is_err());
    }
}
