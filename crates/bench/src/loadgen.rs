//! `bench::loadgen` — the engine *load* benchmark behind `loadgen_harness`
//! (`BENCH_engine_load.json`, schema `bench-engine-load/v1`).
//!
//! Where `bench::perf` measures solver throughput in-process, this harness
//! measures the **wire**: it boots a real `sched-engine` TCP server on an
//! ephemeral port and drives it with a load generator, producing
//!
//! * **closed-loop framing rows** — the same pinned request batch pushed
//!   through the legacy JSONL transport and the v3 binary framing, windowed
//!   pipelining, one row each, plus the pinned
//!   `binary_over_jsonl_closed_loop` ratio. Both directions of the
//!   comparison run in one process on one machine, so the ratio is
//!   machine-portable and CI gates on it (`--relative-only`);
//! * **open-loop arrival rows** — Poisson arrivals at fixed offered rates
//!   (sized relative to the measured closed-loop capacity: one rate under
//!   it, one rate over it) and a diurnally modulated row, against a server
//!   with a bounded admission queue and `reject` shedding. Each row reports
//!   offered rate, achieved throughput, shed rate, and p50/p99/p999
//!   response latency. Absolute numbers are hardware-bound — they are
//!   recorded for trend-reading, not gated relatively.
//!
//! Run it via `loadgen_harness [--quick] [--out BENCH_engine_load.json]
//! [--baseline FILE --tolerance F [--relative-only]]`.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sched_engine::codec::{self, WireFormat};
use sched_engine::{
    serve_with_options, EngineClient, EngineConfig, ErrorKind, ServeOptions, ShedPolicy,
    SolveRequest, SolveResponse, Transport,
};
use serde::{Deserialize, Serialize};
use workloads::planted::PlantedCostModel;
use workloads::{planted_instance, PlantedConfig};

use crate::table::Table;

/// Report schema identifier; bump when the JSON layout changes.
pub const SCHEMA: &str = "bench-engine-load/v1";

/// One measured load scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadRow {
    /// Scenario identifier (stable across runs).
    pub name: String,
    /// Wire transport the clients spoke (`jsonl` or `binary`).
    pub transport: String,
    /// Offered arrival rate in requests/sec (`0` for closed-loop rows,
    /// where the client offers as fast as responses drain).
    pub offered_rps: f64,
    /// Requests sent.
    pub sent: u64,
    /// Requests solved (`ok` responses).
    pub solved: u64,
    /// Requests shed with a structured `Overloaded` response.
    pub shed: u64,
    /// `shed / sent`.
    pub shed_rate: f64,
    /// Completed responses (solved + shed) per second of wall clock.
    pub throughput_rps: f64,
    /// Response-latency percentiles over all responses, microseconds.
    pub p50_us: f64,
    /// 99th percentile latency, microseconds.
    pub p99_us: f64,
    /// 99.9th percentile latency, microseconds.
    pub p999_us: f64,
}

/// A pinned machine-portable ratio (both sides measured in one process).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadRatio {
    /// Ratio identifier.
    pub name: String,
    /// The ratio value (e.g. binary throughput over JSONL throughput).
    pub value: f64,
}

/// The full report (`BENCH_engine_load.json`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadReport {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// `quick` (CI gate) or `full`.
    pub mode: String,
    /// Measured scenario rows.
    pub rows: Vec<LoadRow>,
    /// Pinned ratios — what CI gates on.
    pub ratios: Vec<LoadRatio>,
}

/// Harness sizing.
#[derive(Clone, Copy, Debug)]
pub struct LoadOptions {
    /// Smaller batches and shorter open-loop runs — the CI configuration.
    pub quick: bool,
}

/// Percentile over an unsorted sample of latencies (nearest-rank).
fn percentile_us(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    // The epsilon keeps exact products (0.999 · 1000) from ceiling up a
    // rank on floating-point jitter.
    let rank = ((p / 100.0) * sorted.len() as f64 - 1e-9).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1] as f64
}

fn latency_stats(mut micros: Vec<u64>) -> (f64, f64, f64) {
    micros.sort_unstable();
    (
        percentile_us(&micros, 50.0),
        percentile_us(&micros, 99.0),
        percentile_us(&micros, 99.9),
    )
}

/// The pinned request pool: small planted instances, realistic but cheap,
/// so the wire (not the solver) dominates closed-loop rows.
fn request_pool(quick: bool, seed: u64) -> Vec<SolveRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = if quick { 32 } else { 64 };
    (0..pool)
        .map(|i| {
            let planted = planted_instance(
                &PlantedConfig {
                    num_processors: 2,
                    horizon: 16,
                    target_jobs: 8 + i % 5,
                    decoy_prob: 0.2,
                    max_value: 3,
                    cost_model: PlantedCostModel::Affine { restart: 4.0 },
                    policy: sched_core::CandidatePolicy::All,
                },
                &mut rng,
            );
            SolveRequest::builder(i as u64, planted.instance)
                .affine(4.0, 1.0)
                .build()
        })
        .collect()
}

/// Boots a real TCP server on an ephemeral port; returns its address and a
/// shutdown closure that gracefully stops it (joining the serve thread).
fn boot_server(config: EngineConfig, shed_policy: Option<ShedPolicy>) -> (String, impl FnOnce()) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || {
        serve_with_options(
            listener,
            config,
            ServeOptions {
                metrics_out: None,
                shed_policy,
            },
        )
    });
    let shutdown_addr = addr.clone();
    let shutdown = move || {
        let mut client = EngineClient::connect(&*shutdown_addr, Transport::default())
            .expect("connect for shutdown");
        client.send_control("shutdown").expect("send shutdown");
        client.flush().expect("flush shutdown");
        let _ = client.recv();
        handle.join().expect("serve thread").expect("serve loop");
    };
    (addr, shutdown)
}

/// Closed-loop row: pushes `total` pooled requests through one connection
/// with windowed pipelining (window 32) and measures completion
/// throughput, best-of-`rounds` (one noisy scheduler tick must not poison
/// the pinned framing ratio — same convention as `bench::perf`).
fn closed_loop_row(
    addr: &str,
    transport: Transport,
    pool: &[SolveRequest],
    total: usize,
    rounds: usize,
    name: &str,
) -> LoadRow {
    let mut client = EngineClient::connect(addr, transport).expect("connect");
    let window = 32;
    let mut best: Option<(f64, u64, Vec<u64>)> = None;
    for _ in 0..rounds.max(1) {
        let mut latencies = Vec::with_capacity(total);
        let mut solved = 0u64;
        let t0 = Instant::now();
        let mut next_id = 0u64;
        while (next_id as usize) < total {
            let burst = window.min(total - next_id as usize);
            let sent_at = Instant::now();
            for _ in 0..burst {
                let mut req = pool[next_id as usize % pool.len()].clone();
                req.id = next_id;
                next_id += 1;
                client.send(&req).expect("send");
            }
            client.flush().expect("flush");
            for _ in 0..burst {
                let resp = client.recv().expect("recv").expect("response");
                if resp.ok {
                    solved += 1;
                }
                latencies.push(sent_at.elapsed().as_micros() as u64);
            }
        }
        let rps = total as f64 / t0.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(b, _, _)| rps > *b) {
            best = Some((rps, solved, latencies));
        }
    }
    let (throughput_rps, solved, latencies) = best.expect("at least one round");
    let (p50_us, p99_us, p999_us) = latency_stats(latencies);
    LoadRow {
        name: name.into(),
        transport: transport.to_string(),
        offered_rps: 0.0,
        sent: total as u64,
        solved,
        shed: 0,
        shed_rate: 0.0,
        throughput_rps,
        p50_us,
        p99_us,
        p999_us,
    }
}

/// Sleeps until `deadline`. Deliberately sleep-based (no spinning): the
/// generator shares cores with the server under test, and a spinning pacer
/// would starve the very workers it is measuring. Sleep overshoot makes
/// the *achieved* offered rate drift below nominal, which is why rows
/// report the measured send rate, not the request.
fn pace_until(deadline: Instant) {
    let now = Instant::now();
    if now < deadline {
        std::thread::sleep(deadline - now);
    }
}

/// Open-loop row: paced arrivals over one binary-framed connection against
/// a shedding server. `rate_at(i, elapsed)` returns the instantaneous
/// offered rate for the `i`-th arrival, letting callers express both flat
/// Poisson and diurnal modulation.
fn open_loop_row(
    addr: &str,
    pool: &[SolveRequest],
    total: usize,
    name: &str,
    mut rate_at: impl FnMut(f64) -> f64 + Send,
    seed: u64,
) -> LoadRow {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone stream"));
    let mut reader = BufReader::new(stream);
    let format = WireFormat::Binary;

    let t0 = Instant::now();
    let send_times = std::sync::Mutex::new(vec![None::<Instant>; total]);
    let measured_offered = std::sync::Mutex::new(0.0f64);
    let (solved, shed, latencies) = std::thread::scope(|scope| {
        let send_times = &send_times;
        let measured_offered = &measured_offered;
        scope.spawn(move || {
            // Sender: exponential inter-arrival gaps at the (possibly
            // time-varying) offered rate, deterministic seed. Arrivals the
            // pacer overslept past are sent immediately (catch-up burst),
            // keeping the average offered rate close to nominal.
            let mut rng = StdRng::seed_from_u64(seed);
            let mut next_at = Instant::now();
            for i in 0..total {
                pace_until(next_at);
                let mut req = pool[i % pool.len()].clone();
                req.id = i as u64;
                let payload = codec::value_to_payload(format, &req).expect("encode request");
                send_times.lock().unwrap()[i] = Some(Instant::now());
                codec::write_frame(&mut writer, format, &payload).expect("send frame");
                writer.flush().expect("flush frame");
                let rate = rate_at(t0.elapsed().as_secs_f64()).max(1.0);
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                next_at += Duration::from_secs_f64(-u.ln() / rate);
            }
            *measured_offered.lock().unwrap() = total as f64 / t0.elapsed().as_secs_f64();
        });

        // Receiver (this thread): responses come back in request order.
        let mut solved = 0u64;
        let mut shed = 0u64;
        let mut latencies = Vec::with_capacity(total);
        for i in 0..total {
            let (fmt, payload) = codec::read_frame(&mut reader)
                .expect("read frame")
                .expect("response before EOF");
            let done = Instant::now();
            let value = codec::payload_to_value(fmt, &payload).expect("decode payload");
            let resp = SolveResponse::from_value(&value).expect("typed response");
            let sent = send_times.lock().unwrap()[i].expect("send recorded before recv");
            latencies.push((done - sent).as_micros() as u64);
            if resp.ok {
                solved += 1;
            } else {
                let err = resp.error.as_ref().expect("failure carries error");
                assert_eq!(
                    err.kind,
                    ErrorKind::Overloaded,
                    "open-loop failures must be sheds: {err:?}"
                );
                shed += 1;
            }
        }
        (solved, shed, latencies)
    });
    let secs = t0.elapsed().as_secs_f64();
    let (p50_us, p99_us, p999_us) = latency_stats(latencies);
    LoadRow {
        name: name.into(),
        transport: "binary".into(),
        offered_rps: measured_offered.into_inner().unwrap(),
        sent: total as u64,
        solved,
        shed,
        shed_rate: shed as f64 / total as f64,
        throughput_rps: total as f64 / secs,
        p50_us,
        p99_us,
        p999_us,
    }
}

/// Runs every scenario and assembles the report.
pub fn run(options: LoadOptions) -> LoadReport {
    let quick = options.quick;
    let pool = request_pool(quick, 0x10AD);
    let closed_total = if quick { 256 } else { 1024 };

    // Closed-loop framing comparison: plain backpressure server (no
    // shedding — every request must complete), 2 workers for stability.
    let mut rows = Vec::new();
    let (addr, stop) = boot_server(
        EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        },
        None,
    );
    // Warm the candidate caches so neither transport pays enumeration.
    closed_loop_row(&addr, Transport::Jsonl, &pool, pool.len(), 1, "warmup");
    let jsonl = closed_loop_row(
        &addr,
        Transport::Jsonl,
        &pool,
        closed_total,
        3,
        "closed_loop",
    );
    let binary = closed_loop_row(
        &addr,
        Transport::Framed(WireFormat::Binary),
        &pool,
        closed_total,
        3,
        "closed_loop",
    );
    stop();
    let ratio = LoadRatio {
        name: "binary_over_jsonl_closed_loop".into(),
        value: binary.throughput_rps / jsonl.throughput_rps,
    };
    rows.push(jsonl);
    rows.push(binary);

    // Open-loop arrivals against a bounded queue with reject shedding.
    // Rates are pinned relative to this run's measured capacity, so the
    // under/over split survives hardware changes.
    let (addr, stop) = boot_server(
        EngineConfig {
            workers: 2,
            queue_depth: 8,
            ..EngineConfig::default()
        },
        Some(ShedPolicy::Reject),
    );
    // Warm this server's candidate caches sequentially (window 1 — a
    // pipelined warmup against the depth-8 queue would shed, leaving part
    // of the pool cold), then time a second sequential pass: its rate is
    // the single-in-flight service rate the paced open loop experiences,
    // which deep closed-loop pipelining overstates several-fold.
    let seq_capacity = {
        let mut warm = EngineClient::connect(&addr, Transport::default()).expect("warmup connect");
        let sequential_pass = |client: &mut EngineClient| {
            let t0 = Instant::now();
            for req in &pool {
                client.send(req).expect("warmup send");
                client.flush().expect("warmup flush");
                client
                    .recv()
                    .expect("warmup recv")
                    .expect("warmup response");
            }
            pool.len() as f64 / t0.elapsed().as_secs_f64()
        };
        sequential_pass(&mut warm); // cold pass: warms the caches
        sequential_pass(&mut warm) // warm pass: the measured rate
    };
    let open_total = if quick { 400 } else { 2000 };
    let under = 0.5 * seq_capacity;
    let over = 4.0 * seq_capacity;
    rows.push(open_loop_row(
        &addr,
        &pool,
        open_total,
        "poisson_under_capacity",
        |_| under,
        0xA1,
    ));
    rows.push(open_loop_row(
        &addr,
        &pool,
        open_total,
        "poisson_over_capacity",
        |_| over,
        0xA2,
    ));
    // Diurnal modulation: the offered rate swings ±60% around 80% of the
    // sequential service rate over a short "day", crossing it at peak and
    // idling well under it in the trough.
    let base = 0.8 * seq_capacity;
    let day_secs = (open_total as f64 / base).max(0.2);
    rows.push(open_loop_row(
        &addr,
        &pool,
        open_total,
        "diurnal",
        move |t| base * (1.0 + 0.6 * (std::f64::consts::TAU * t / day_secs).sin()),
        0xA3,
    ));
    stop();

    LoadReport {
        schema: SCHEMA.into(),
        mode: if quick { "quick" } else { "full" }.into(),
        rows,
        ratios: vec![ratio],
    }
}

/// Compares a fresh run against a committed baseline; same contract as
/// `bench::perf::compare`. Ratios (machine-portable) always gate; absolute
/// `throughput_rps` rows gate only without `relative_only`.
pub fn compare(
    fresh: &LoadReport,
    baseline: &LoadReport,
    tolerance: f64,
    relative_only: bool,
) -> Vec<String> {
    let mut problems = Vec::new();
    if fresh.schema != baseline.schema {
        problems.push(format!(
            "schema mismatch: fresh {} vs baseline {}",
            fresh.schema, baseline.schema
        ));
        return problems;
    }
    if !relative_only {
        for b in &baseline.rows {
            let Some(f) = fresh
                .rows
                .iter()
                .find(|f| f.name == b.name && f.transport == b.transport)
            else {
                continue;
            };
            let floor = b.throughput_rps * (1.0 - tolerance);
            if f.throughput_rps < floor {
                problems.push(format!(
                    "{} [{}]: {:.1} rps < floor {:.1} (baseline {:.1}, tolerance {:.0}%)",
                    b.name,
                    b.transport,
                    f.throughput_rps,
                    floor,
                    b.throughput_rps,
                    tolerance * 100.0
                ));
            }
        }
    }
    for b in &baseline.ratios {
        let Some(f) = fresh.ratios.iter().find(|f| f.name == b.name) else {
            continue;
        };
        let floor = b.value * (1.0 - tolerance);
        if f.value < floor {
            problems.push(format!(
                "{}: {:.2} < floor {:.2} (baseline {:.2})",
                b.name, f.value, floor, b.value
            ));
        }
    }
    problems
}

/// Renders the report as the human table printed to stderr.
pub fn render_table(report: &LoadReport) -> String {
    let mut table = Table::new(&[
        "scenario", "wire", "offered", "sent", "shed%", "rps", "p50 µs", "p99 µs", "p999 µs",
    ]);
    for r in &report.rows {
        table.row(vec![
            r.name.clone(),
            r.transport.clone(),
            if r.offered_rps > 0.0 {
                format!("{:.0}", r.offered_rps)
            } else {
                "closed".into()
            },
            r.sent.to_string(),
            format!("{:.1}", r.shed_rate * 100.0),
            format!("{:.0}", r.throughput_rps),
            format!("{:.0}", r.p50_us),
            format!("{:.0}", r.p99_us),
            format!("{:.0}", r.p999_us),
        ]);
    }
    let mut out = table.render();
    for ratio in &report.ratios {
        out.push_str(&format!("{}: {:.2}x\n", ratio.name, ratio.value));
    }
    out
}

/// Shared CLI driver for `loadgen_harness`.
///
/// Flags: `--quick`, `--out FILE` (default stdout), `--baseline FILE`
/// (enables the regression gate), `--tolerance F` (default 0.25),
/// `--relative-only` (gate only on the machine-portable ratios — the CI
/// configuration).
pub fn cli(args: &[String]) -> Result<(), String> {
    let quick = args.iter().any(|a| a == "--quick");
    let relative_only = args.iter().any(|a| a == "--relative-only");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let tolerance: f64 = match flag("--tolerance") {
        Some(v) => v.parse().map_err(|e| format!("bad --tolerance: {e}"))?,
        None => 0.25,
    };
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("--tolerance must be in [0, 1), got {tolerance}"));
    }

    let report = run(LoadOptions { quick });
    eprint!("{}", render_table(&report));
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    match flag("--out") {
        Some(out) => {
            std::fs::write(&out, format!("{json}\n")).map_err(|e| format!("writing {out}: {e}"))?;
            eprintln!("wrote {out}");
        }
        None => println!("{json}"),
    }

    if let Some(path) = flag("--baseline") {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("reading baseline {path}: {e}"))?;
        let baseline: LoadReport =
            serde_json::from_str(&text).map_err(|e| format!("{path} is not a load report: {e}"))?;
        let problems = compare(&report, &baseline, tolerance, relative_only);
        if !problems.is_empty() {
            return Err(format!(
                "load regression against {path}:\n  {}",
                problems.join("\n  ")
            ));
        }
        eprintln!(
            "load gate: no regression against {path} (tolerance {:.0}%)",
            tolerance * 100.0
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report(rps: f64, ratio: f64) -> LoadReport {
        LoadReport {
            schema: SCHEMA.into(),
            mode: "quick".into(),
            rows: vec![LoadRow {
                name: "closed_loop".into(),
                transport: "binary".into(),
                offered_rps: 0.0,
                sent: 10,
                solved: 10,
                shed: 0,
                shed_rate: 0.0,
                throughput_rps: rps,
                p50_us: 100.0,
                p99_us: 200.0,
                p999_us: 300.0,
            }],
            ratios: vec![LoadRatio {
                name: "binary_over_jsonl_closed_loop".into(),
                value: ratio,
            }],
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentile_us(&sorted, 50.0), 500.0);
        assert_eq!(percentile_us(&sorted, 99.0), 990.0);
        assert_eq!(percentile_us(&sorted, 99.9), 999.0);
        assert_eq!(percentile_us(&[], 50.0), 0.0);
        assert_eq!(percentile_us(&[7], 99.9), 7.0);
    }

    #[test]
    fn compare_gates_on_the_pinned_ratio() {
        let baseline = tiny_report(1000.0, 1.5);
        // Ratio holds, absolute throughput slumps: relative-only passes.
        let fresh = tiny_report(100.0, 1.45);
        assert!(compare(&fresh, &baseline, 0.25, true).is_empty());
        assert_eq!(compare(&fresh, &baseline, 0.25, false).len(), 1);
        // Ratio collapses below the floor: gated even relative-only.
        let fresh = tiny_report(1000.0, 1.0);
        assert_eq!(compare(&fresh, &baseline, 0.25, true).len(), 1);
        // Schema mismatch is terminal.
        let mut alien = tiny_report(1000.0, 1.5);
        alien.schema = "bench-engine-load/v0".into();
        assert_eq!(compare(&alien, &baseline, 0.25, true).len(), 1);
    }

    /// End-to-end smoke of the harness itself: tiny sizes, every scenario.
    #[test]
    fn quick_run_produces_a_complete_gateable_report() {
        let report = run(LoadOptions { quick: true });
        assert_eq!(report.schema, SCHEMA);
        let names: Vec<&str> = report.rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "closed_loop",
                "closed_loop",
                "poisson_under_capacity",
                "poisson_over_capacity",
                "diurnal"
            ]
        );
        assert_eq!(report.rows[0].transport, "jsonl");
        assert_eq!(report.rows[1].transport, "binary");
        for row in &report.rows {
            assert_eq!(
                row.solved + row.shed,
                row.sent,
                "{}: no silent drops",
                row.name
            );
            assert!(row.throughput_rps > 0.0);
            assert!(row.p999_us >= row.p99_us && row.p99_us >= row.p50_us);
        }
        // The over-capacity row must actually shed against a depth-8 queue.
        let over = &report.rows[3];
        assert!(over.shed > 0, "2x capacity against queue_depth=8 must shed");
        assert_eq!(report.ratios.len(), 1);
        assert!(report.ratios[0].value > 0.0);
        // The report round-trips through its JSON wire shape.
        let json = serde_json::to_string(&report).unwrap();
        let back: LoadReport = serde_json::from_str(&json).unwrap();
        assert!(compare(&back, &report, 0.25, true).is_empty());
    }
}
