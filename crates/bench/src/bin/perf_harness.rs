//! `perf_harness` — the repo's machine-readable perf trajectory.
//!
//! ```text
//! perf_harness [--quick] [--out BENCH_solver.json]
//!              [--baseline BENCH_solver.json] [--tolerance 0.25]
//! ```
//!
//! Runs pinned solve / engine / replay workloads and emits the
//! `bench-solver/v1` JSON report (see `bench::perf` for the schema).
//! With `--baseline`, compares the fresh run against a committed report and
//! exits nonzero on regression beyond the tolerance — the CI perf gate.
//! The same harness is reachable as `power-sched perf`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match bench::perf::cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
