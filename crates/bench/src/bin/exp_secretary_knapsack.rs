//! Thin wrapper: runs the `e09_secretary_knapsack` experiment (see DESIGN.md §3).
//! Usage: `cargo run -p bench --release --bin exp_secretary_knapsack [seed] [--quick]`

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = args
        .iter()
        .skip(1)
        .find_map(|a| a.parse::<u64>().ok())
        .unwrap_or(bench::DEFAULT_SEED);
    let quick = args.iter().any(|a| a == "--quick");
    bench::experiments::e09_secretary_knapsack::run(seed, quick);
}
