//! Thin wrapper: runs the `e06_secretary_monotone` experiment (see DESIGN.md §3).
//! Usage: `cargo run -p bench --release --bin exp_secretary_monotone [seed] [--quick]`

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = args
        .iter()
        .skip(1)
        .find_map(|a| a.parse::<u64>().ok())
        .unwrap_or(bench::DEFAULT_SEED);
    let quick = args.iter().any(|a| a == "--quick");
    bench::experiments::e06_secretary_monotone::run(seed, quick);
}
