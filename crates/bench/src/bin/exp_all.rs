//! Runs every experiment (E1–E13) in sequence; this regenerates all tables
//! recorded in EXPERIMENTS.md.
//! Usage: `cargo run -p bench --release --bin exp_all [seed] [--quick]`

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = args
        .iter()
        .skip(1)
        .find_map(|a| a.parse::<u64>().ok())
        .unwrap_or(bench::DEFAULT_SEED);
    let quick = args.iter().any(|a| a == "--quick");
    println!("power-scheduling experiment suite (seed {seed}, quick = {quick})");
    bench::experiments::run_all(seed, quick);
    println!("\nall experiment assertions passed.");
}
