//! `loadgen_harness` — the engine load benchmark (`BENCH_engine_load.json`).
//!
//! ```text
//! loadgen_harness [--quick] [--out BENCH_engine_load.json]
//!                 [--baseline BENCH_engine_load.json] [--tolerance 0.25]
//!                 [--relative-only]
//! ```
//!
//! Boots a real `sched-engine` TCP server and drives it with closed-loop
//! framing comparisons (JSONL vs v3 binary) and open-loop Poisson/diurnal
//! arrivals against a bounded, shedding admission queue. Emits the
//! `bench-engine-load/v1` JSON report (see `bench::loadgen` for the
//! schema). With `--baseline`, compares the fresh run against a committed
//! report and exits nonzero on regression beyond the tolerance — the CI
//! load gate (`--relative-only` gates only the machine-portable
//! binary-over-JSONL ratio).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match bench::loadgen::cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
