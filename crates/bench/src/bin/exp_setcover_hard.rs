//! Thin wrapper: runs the `e05_setcover_hard` experiment (see DESIGN.md §3).
//! Usage: `cargo run -p bench --release --bin exp_setcover_hard [seed] [--quick]`

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = args
        .iter()
        .skip(1)
        .find_map(|a| a.parse::<u64>().ok())
        .unwrap_or(bench::DEFAULT_SEED);
    let quick = args.iter().any(|a| a == "--quick");
    bench::experiments::e05_setcover_hard::run(seed, quick);
}
