//! Thin wrapper: runs the `e01_schedule_all` experiment (see DESIGN.md §3).
//! Usage: `cargo run -p bench --release --bin exp_schedule_all [seed] [--quick]`

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed = args
        .iter()
        .skip(1)
        .find_map(|a| a.parse::<u64>().ok())
        .unwrap_or(bench::DEFAULT_SEED);
    let quick = args.iter().any(|a| a == "--quick");
    bench::experiments::e01_schedule_all::run(seed, quick);
}
