//! E15 — Theorem .2.1 (Appendix .2): prize-collecting gap-budget scheduling.
//!
//! Exact value-vs-gap-budget trade-off curves on clustered single-processor
//! instances under the classical busy-when-awake semantics, plus the derived
//! minimum-gap objective. Checks: the curve is non-decreasing with
//! diminishing increments across the clusters, and the minimum run count
//! equals the number of job clusters when jobs are pinned.

use crate::table::{section, Table};
use baselines::{max_value_with_budget, min_runs_schedule_all};
use rand::{Rng, SeedableRng};
use sched_core::{Instance, Job, SlotRef};

/// Runs E15 and prints its table.
pub fn run(seed: u64, quick: bool) {
    section(&format!(
        "E15  Thm .2.1  prize-collecting gap budget (busy-when-awake)   [seed {seed}]"
    ));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x15);

    let trials = if quick { 3 } else { 8 };
    let mut t = Table::new(&[
        "trial",
        "clusters",
        "T",
        "g=1",
        "g=2",
        "g=3",
        "g=4",
        "min runs (all)",
    ]);
    for trial in 0..trials {
        // clustered instance: `c` pinned job clusters separated by gaps
        let c = rng.gen_range(2..=4usize);
        let mut jobs: Vec<Job> = Vec::new();
        let mut tpos = 0u32;
        let mut cluster_values: Vec<f64> = Vec::new();
        for _ in 0..c {
            let len = rng.gen_range(1..=2u32);
            let val = rng.gen_range(1..=9) as f64;
            let mut sum = 0.0;
            for _ in 0..len {
                jobs.push(Job {
                    value: val,
                    allowed: vec![SlotRef::new(0, tpos)],
                    work: None,
                });
                sum += val;
                tpos += 1;
            }
            cluster_values.push(sum);
            tpos += rng.gen_range(1..=2u32); // gap
        }
        let horizon = tpos;
        let inst = Instance::new(1, horizon, jobs);

        let values: Vec<f64> = (1..=4)
            .map(|g| max_value_with_budget(&inst, g).value)
            .collect();
        // monotone with diminishing increments
        for w in values.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "E15: value decreased with budget");
        }
        let total: f64 = cluster_values.iter().sum();
        assert!(
            values[(c - 1).min(3)] >= total - 1e-9 || c > 4,
            "E15: {c} runs should capture all {c} clusters"
        );
        let min_runs = min_runs_schedule_all(&inst).expect("pinned distinct slots feasible");
        assert_eq!(
            min_runs as usize, c,
            "E15: min runs must equal cluster count"
        );

        t.row(vec![
            trial.to_string(),
            c.to_string(),
            horizon.to_string(),
            format!("{:.0}", values[0]),
            format!("{:.0}", values[1]),
            format!("{:.0}", values[2]),
            format!("{:.0}", values[3]),
            min_runs.to_string(),
        ]);
    }
    t.print();
    println!("  (each extra awake run captures the best remaining cluster; exact solver)");
}
