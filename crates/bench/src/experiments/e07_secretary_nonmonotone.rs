//! E7 — Theorem 3.2.8: Algorithm 2 is `8e²`-competitive for non-monotone
//! submodular utilities (directed cuts).

use crate::table::{section, Table};
use rand::SeedableRng;
use rayon::prelude::*;
use secretary::{nonmonotone_submodular_secretary, offline_greedy, random_stream};
use submodular::{BitSet, SetFn};
use workloads::secretary_streams::random_cut;

/// Runs E7 and prints its table.
pub fn run(seed: u64, quick: bool) {
    section(&format!("E7  Theorem 3.2.8  non-monotone (directed cut) secretary ≥ 1/(8e²) ≈ 0.0169   [seed {seed}]"));
    let trials = if quick { 300 } else { 1500 };
    let bound = 1.0 / (8.0 * std::f64::consts::E * std::f64::consts::E);
    let mut t = Table::new(&[
        "n",
        "arcs",
        "k",
        "offline ref",
        "online avg",
        "ratio",
        "bound",
    ]);

    let configs: Vec<(usize, usize, usize)> = if quick {
        vec![(40, 200, 6)]
    } else {
        vec![(30, 120, 4), (60, 400, 8), (120, 900, 12)]
    };
    for &(n, arcs, k) in &configs {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xE7 ^ (n as u64) << 4);
        let f = random_cut(n, arcs, 5, &mut rng);
        let (_, offline) = offline_greedy(&f, k);
        if offline <= 0.0 {
            continue;
        }
        let total: f64 = (0..trials)
            .into_par_iter()
            .map(|trial| {
                let mut trng = rand::rngs::StdRng::seed_from_u64(
                    seed ^ 0x7E ^ (trial as u64) << 16 ^ (n as u64),
                );
                let s = random_stream(n, &mut trng);
                let hired = nonmonotone_submodular_secretary(&f, &s, k, &mut trng);
                f.eval(&BitSet::from_iter(n, hired))
            })
            .sum();
        let avg = total / trials as f64;
        let ratio = avg / offline;
        assert!(
            ratio >= bound,
            "E7: ratio {ratio} below Theorem 3.2.8 bound {bound}"
        );
        t.row(vec![
            n.to_string(),
            arcs.to_string(),
            k.to_string(),
            format!("{offline:.2}"),
            format!("{avg:.2}"),
            format!("{ratio:.3}"),
            format!("{bound:.4}"),
        ]);
    }
    t.print();
}
