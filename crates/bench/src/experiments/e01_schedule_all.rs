//! E1 — Theorem 2.2.1: the schedule-all greedy's cost is `O(B log n)`.
//!
//! Planted instances across `n`, `p`, and cost models; the measured ratio is
//! `greedy / B` where `B` is the planted solution's cost (≥ OPT, so the
//! reported ratio is conservative). For small instances the exact
//! branch-and-bound optimum is also computed and the true ratio shown.

use crate::table::{section, Table};
use baselines::exact_schedule_all;
use rand::SeedableRng;
use sched_core::{CandidatePolicy, Solver};
use workloads::planted::PlantedCostModel;
use workloads::{planted_instance, PlantedConfig};

/// Runs E1 and prints its table.
pub fn run(seed: u64, quick: bool) {
    section(&format!(
        "E1  Theorem 2.2.1  schedule-all, cost ≤ O(B log n)   [seed {seed}]"
    ));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    let sizes: &[(usize, u32, u32)] = if quick {
        &[(8, 1, 12), (16, 2, 16), (32, 2, 24)]
    } else {
        &[
            (8, 1, 12),
            (16, 2, 16),
            (32, 2, 24),
            (64, 4, 32),
            (128, 4, 48),
            (256, 4, 64),
        ]
    };
    let models: &[(&str, PlantedCostModel)] = &[
        ("affine", PlantedCostModel::Affine { restart: 3.0 }),
        ("market", PlantedCostModel::Market { restart: 2.0 }),
        (
            "convex",
            PlantedCostModel::Convex {
                restart: 1.0,
                quad: 0.3,
            },
        ),
    ];

    let mut t = Table::new(&[
        "n",
        "p",
        "model",
        "B(plant)",
        "greedy",
        "ratio≤",
        "bound 2⌈lg(n+1)⌉",
        "exactOPT",
        "ratio/OPT",
    ]);
    for &(n, p, horizon) in sizes {
        for (mname, model) in models {
            let cfg = PlantedConfig {
                num_processors: p,
                horizon,
                target_jobs: n,
                decoy_prob: 0.3,
                max_value: 1,
                cost_model: *model,
                policy: CandidatePolicy::All,
            };
            let inst = planted_instance(&cfg, &mut rng);
            let nn = inst.instance.num_jobs() as f64;
            let s = Solver::with_candidates(&inst.instance, &inst.candidates[..])
                .schedule_all()
                .expect("planted instances are feasible");
            let ratio = s.total_cost / inst.planted_cost;
            let bound = 2.0 * (nn + 1.0).log2().ceil();
            assert!(
                ratio <= bound + 1e-9,
                "E1 bound violated: {ratio} > {bound}"
            );

            // exact OPT for small instances only (B&B is exponential)
            let (opt_s, opt_ratio) =
                if inst.instance.num_jobs() <= 10 && inst.candidates.len() <= 700 {
                    match exact_schedule_all(&inst.instance, &inst.candidates, 4_000_000) {
                        Some(ex) => (
                            format!("{:.2}", ex.cost),
                            format!("{:.3}", s.total_cost / ex.cost),
                        ),
                        None => ("-".into(), "-".into()),
                    }
                } else {
                    ("-".into(), "-".into())
                };

            t.row(vec![
                inst.instance.num_jobs().to_string(),
                p.to_string(),
                mname.to_string(),
                format!("{:.2}", inst.planted_cost),
                format!("{:.2}", s.total_cost),
                format!("{ratio:.3}"),
                format!("{bound:.0}"),
                opt_s,
                opt_ratio,
            ]);
        }
    }
    t.print();
    println!("  (ratio≤ is vs the planted cost B ≥ OPT, hence conservative)");
}
