//! E12 — Lemmas 2.2.2 / 2.3.2: randomized falsification attempt on the
//! submodularity and monotonicity of the matching-rank utilities.
//!
//! Samples random bipartite graphs, random nested pairs `A ⊆ B`, and random
//! probe slots `v`, and counts violations of
//! `F(A∪{v}) − F(A) ≥ F(B∪{v}) − F(B)` — the count must be exactly zero for
//! both the cardinality and weighted oracles (the paper's proofs say so; the
//! experiment hammers the implementation).

use crate::table::{section, Table};
use bmatch::{BipartiteGraph, MatchingOracle};
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Runs E12 and prints its table.
pub fn run(seed: u64, quick: bool) {
    section(&format!(
        "E12  Lemmas 2.2.2/2.3.2  matching rank is monotone submodular   [seed {seed}]"
    ));
    let samples = if quick { 2_000 } else { 20_000 };
    let mut t = Table::new(&[
        "oracle",
        "samples",
        "submod. violations",
        "monot. violations",
    ]);

    for weighted in [false, true] {
        let (sub_v, mono_v): (usize, usize) = (0..samples)
            .into_par_iter()
            .map(|i| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(
                    seed ^ 0x12 ^ (i as u64) << 1 ^ weighted as u64,
                );
                let nx = rng.gen_range(2..=14u32);
                let ny = rng.gen_range(1..=10u32);
                let mut edges = Vec::new();
                for x in 0..nx {
                    for y in 0..ny {
                        if rng.gen_bool(0.3) {
                            edges.push((x, y));
                        }
                    }
                }
                let g = BipartiteGraph::from_edges(nx, ny, &edges);
                let values: Vec<f64> = (0..ny)
                    .map(|_| {
                        if weighted {
                            rng.gen_range(1..=12) as f64
                        } else {
                            1.0
                        }
                    })
                    .collect();
                let eval = |slots: &[u32]| {
                    let mut o = MatchingOracle::new(&g, values.clone());
                    o.commit(slots);
                    o.total()
                };
                let a: Vec<u32> = (0..nx).filter(|_| rng.gen_bool(0.3)).collect();
                let mut b = a.clone();
                for x in 0..nx {
                    if !b.contains(&x) && rng.gen_bool(0.3) {
                        b.push(x);
                    }
                }
                let v = rng.gen_range(0..nx);
                let (fa, fb) = (eval(&a), eval(&b));
                let mut av = a.clone();
                av.push(v);
                let mut bv = b.clone();
                bv.push(v);
                let ga = eval(&av) - fa;
                let gb = eval(&bv) - fb;
                let sub = usize::from(ga < gb - 1e-9);
                let mono = usize::from(fb < fa - 1e-9);
                (sub, mono)
            })
            .reduce(|| (0, 0), |x, y| (x.0 + y.0, x.1 + y.1));

        assert_eq!(sub_v, 0, "E12: submodularity violated!");
        assert_eq!(mono_v, 0, "E12: monotonicity violated!");
        t.row(vec![
            if weighted {
                "weighted (L2.3.2)"
            } else {
                "cardinality (L2.2.2)"
            }
            .to_string(),
            samples.to_string(),
            sub_v.to_string(),
            mono_v.to_string(),
        ]);
    }
    t.print();
}
