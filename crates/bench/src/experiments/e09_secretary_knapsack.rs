//! E9 — Theorem 3.1.3: `l`-knapsack submodular secretary, `O(l)`-competitive.
//!
//! The reduction loses a factor `4l`; the ratio must therefore degrade
//! roughly linearly in `l`, not faster.

use crate::table::{section, Table};
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use secretary::knapsack::offline_knapsack_estimate;
use secretary::{knapsack_secretary, random_stream, KnapsackInstance};
use submodular::{BitSet, SetFn};
use workloads::secretary_streams::heavy_tail_additive;

/// Runs E9 and prints its table.
pub fn run(seed: u64, quick: bool) {
    section(&format!(
        "E9  Theorem 3.1.3  l-knapsack secretary, Ω(1/l)   [seed {seed}]"
    ));
    let trials = if quick { 300 } else { 1200 };
    let n = if quick { 50 } else { 100 };
    let mut t = Table::new(&["l", "offline ref", "online avg", "ratio", "ratio·l"]);

    let mut ratios = Vec::new();
    for l in [1usize, 2, 4] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xE9 ^ (l as u64) << 3);
        let f = heavy_tail_additive(n, &mut rng);
        let weights: Vec<Vec<f64>> = (0..l)
            .map(|_| (0..n).map(|_| rng.gen_range(0.1..1.0)).collect())
            .collect();
        let caps: Vec<f64> = (0..l).map(|_| rng.gen_range(1.5..3.0)).collect();
        let inst = KnapsackInstance::new(weights, caps);
        let w = inst.reduced_weights();
        let all: Vec<u32> = (0..n as u32).collect();
        let offline = offline_knapsack_estimate(&f, &w, &all);
        if offline <= 0.0 {
            continue;
        }
        let total: f64 = (0..trials)
            .into_par_iter()
            .map(|trial| {
                let mut trng = rand::rngs::StdRng::seed_from_u64(
                    seed ^ 0x9E ^ (trial as u64) << 14 ^ (l as u64),
                );
                let s = random_stream(n, &mut trng);
                let taken = knapsack_secretary(&f, &inst, &s, &mut trng);
                debug_assert!(inst.feasible(&taken));
                f.eval(&BitSet::from_iter(n, taken))
            })
            .sum();
        let avg = total / trials as f64;
        let ratio = avg / offline;
        ratios.push((l, ratio));
        assert!(
            ratio * (l as f64) >= 0.02,
            "E9: ratio·l = {} collapses faster than O(l)",
            ratio * l as f64
        );
        t.row(vec![
            l.to_string(),
            format!("{offline:.2}"),
            format!("{avg:.2}"),
            format!("{ratio:.3}"),
            format!("{:.3}", ratio * l as f64),
        ]);
    }
    t.print();
    println!("  (ratio·l staying bounded away from 0 is the O(l) shape)");
}
