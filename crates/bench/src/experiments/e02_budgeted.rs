//! E2 — Lemma 2.1.2: bicriteria greedy sweep over ε.
//!
//! Planted coverage instances: `B` disjoint unit-cost subsets cover the
//! universe (the optimum), plus decoys. For each ε the greedy must reach
//! utility `(1−ε)·x` at cost ≤ `2⌈log₂(1/ε)⌉·B`, and the lazy variant must
//! match the eager pick sequence while evaluating far fewer candidates.

use crate::table::{section, Table};
use rand::{Rng, SeedableRng};
use submodular::functions::CoverageFn;
use submodular::{budgeted_greedy, GreedyConfig, SetSystemObjective};

/// Runs E2 and prints its table.
pub fn run(seed: u64, quick: bool) {
    section(&format!(
        "E2  Lemma 2.1.2  (1−ε, 2⌈lg 1/ε⌉)-bicriteria greedy   [seed {seed}]"
    ));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xE2);

    let universe = if quick { 60 } else { 240 };
    let opt_sets = 6usize;
    // plant: opt_sets disjoint unit-cost sets covering the universe
    let mut subsets: Vec<Vec<u32>> = vec![Vec::new(); opt_sets];
    for item in 0..universe as u32 {
        subsets[rng.gen_range(0..opt_sets)].push(item);
    }
    subsets.retain(|s| !s.is_empty());
    let b = subsets.len() as f64;
    // decoys: random subsets with random costs
    for _ in 0..40 {
        let mut s: Vec<u32> = (0..universe as u32)
            .filter(|_| rng.gen_bool(0.25))
            .collect();
        s.truncate(universe / 3);
        if !s.is_empty() {
            subsets.push(s);
        }
    }
    let mut costs = vec![1.0; subsets.len()];
    for c in costs.iter_mut().skip(opt_sets) {
        *c = rng.gen_range(0.7..3.0);
    }
    let f = CoverageFn::unweighted(universe, (0..universe).map(|i| vec![i as u32]).collect());

    let mut t = Table::new(&[
        "ε",
        "target x",
        "utility",
        "≥(1−ε)x",
        "cost",
        "bound 2⌈lg 1/ε⌉·B",
        "evals lazy",
        "evals eager",
    ]);
    let exps: Vec<i32> = if quick {
        vec![1, 3, 6]
    } else {
        (1..=10).collect()
    };
    for e in exps {
        let eps = 2f64.powi(-e);
        let x = universe as f64;
        let run_cfg = |lazy: bool| {
            let mut obj = SetSystemObjective::new(&f, subsets.clone(), costs.clone());
            let mut cfg = GreedyConfig::new(x, eps);
            cfg.lazy = lazy;
            budgeted_greedy(&mut obj, cfg)
        };
        let lazy = run_cfg(true);
        let eager = run_cfg(false);
        assert_eq!(lazy.chosen, eager.chosen, "lazy and eager must agree");
        assert!(lazy.reached_target);
        assert!(lazy.utility >= (1.0 - eps) * x - 1e-9);
        let bound = 2.0 * (1.0 / eps).log2().ceil() * b;
        assert!(lazy.total_cost <= bound + 1e-9, "E2 bound violated");
        t.row(vec![
            format!("2^-{e}"),
            format!("{x:.0}"),
            format!("{:.1}", lazy.utility),
            format!("{:.1}", (1.0 - eps) * x),
            format!("{:.2}", lazy.total_cost),
            format!("{bound:.1}"),
            lazy.evaluations.to_string(),
            eager.evaluations.to_string(),
        ]);
    }
    t.print();
    println!("  (B = {b} planted unit-cost sets; lazy/eager pick sequences verified identical)");
}
