//! E8 — Theorem 3.1.2: matroid-constrained submodular secretary,
//! `O(l log² r)`-competitive, across matroid families and `l ∈ {1,2,3}`.

use crate::table::{section, Table};
use matroid::{GraphicMatroid, LaminarMatroid, Matroid, PartitionMatroid, UniformMatroid};
use rand::SeedableRng;
use rayon::prelude::*;
use secretary::{matroid_submodular_secretary, offline_matroid_greedy, random_stream};
use submodular::{BitSet, SetFn};
use workloads::secretary_streams::random_coverage;

/// Runs E8 and prints its table.
pub fn run(seed: u64, quick: bool) {
    section(&format!(
        "E8  Theorem 3.1.2  matroid submodular secretary, Ω(1/(l log² r))   [seed {seed}]"
    ));
    let trials = if quick { 200 } else { 800 };
    let n = if quick { 48 } else { 96 };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xE8);
    let f = random_coverage(n, n / 2, 0.1, &mut rng);

    // matroid menagerie over ground 0..n
    let uniform = UniformMatroid::new(n, 8);
    let partition = PartitionMatroid::new((0..n as u32).map(|e| e % 6).collect(), vec![2; 6]);
    let laminar = LaminarMatroid::new(
        n,
        vec![(0..n as u32 / 2).collect(), (0..n as u32).collect()],
        vec![4, 10],
    );
    // graphic matroid on a random graph with n edges
    let verts = n / 3;
    let edges: Vec<(u32, u32)> = {
        use rand::Rng;
        (0..n)
            .map(|_| {
                (
                    rng.gen_range(0..verts as u32),
                    rng.gen_range(0..verts as u32),
                )
            })
            .collect()
    };
    let graphic = GraphicMatroid::new(verts, edges);

    let families: Vec<(&str, Vec<&dyn Matroid>)> = vec![
        ("uniform(8)", vec![&uniform]),
        ("partition", vec![&partition]),
        ("graphic", vec![&graphic]),
        ("laminar", vec![&laminar]),
        ("l=2: unif∧part", vec![&uniform, &partition]),
        ("l=3: +laminar", vec![&uniform, &partition, &laminar]),
    ];

    let mut t = Table::new(&[
        "constraint",
        "l",
        "r",
        "offline ref",
        "online avg",
        "ratio",
        "Ω(1/(l·lg²r))",
    ]);
    for (name, ms) in &families {
        let l = ms.len() as f64;
        let r = matroid::max_rank(ms) as f64;
        let (_, offline) = offline_matroid_greedy(&f, ms);
        if offline <= 0.0 {
            continue;
        }
        let total: f64 = (0..trials)
            .into_par_iter()
            .map(|trial| {
                let mut trng =
                    rand::rngs::StdRng::seed_from_u64(seed ^ 0x8E ^ (trial as u64) << 12);
                let s = random_stream(n, &mut trng);
                let hired = matroid_submodular_secretary(&f, &s, ms, &mut trng);
                debug_assert!(matroid::independent_in_all(ms, &hired));
                f.eval(&BitSet::from_iter(n, hired))
            })
            .sum();
        let avg = total / trials as f64;
        let ratio = avg / offline;
        let nominal = 1.0 / (8.0 * std::f64::consts::E * l * r.log2().max(1.0).powi(2));
        assert!(
            ratio >= nominal,
            "E8: {name} ratio {ratio} below the Θ(1/(l log² r)) shape {nominal}"
        );
        t.row(vec![
            name.to_string(),
            format!("{l:.0}"),
            format!("{r:.0}"),
            format!("{offline:.2}"),
            format!("{avg:.2}"),
            format!("{ratio:.3}"),
            format!("{nominal:.4}"),
        ]);
    }
    t.print();
    println!("  (independence of every hired set asserted in debug builds)");
}
