//! E10 — Theorem 3.1.4 / §3.5: the subadditive frontier.
//!
//! Lower-bound half: on the hidden-set hard function with `k = m = √n`,
//! value queries of size ≤ m are overwhelmingly uninformative (return 1), so
//! no polynomial-query algorithm can track the hidden optimum — we measure
//! the uninformative-query rate and the gap between query values and OPT.
//! Upper-bound half: the `O(√n)` algorithm's measured ratio times `√n` must
//! stay bounded (the matching upper bound).

use crate::table::{section, Table};
use rand::SeedableRng;
use secretary::{random_stream, subadditive_secretary, HiddenSetFn};
use submodular::{BitSet, SetFn};

/// Runs E10 and prints its tables.
pub fn run(seed: u64, quick: bool) {
    section(&format!(
        "E10  Theorem 3.5.1  hidden-set hardness: queries are blind   [seed {seed}]"
    ));
    let sizes: Vec<usize> = if quick {
        vec![100, 400]
    } else {
        vec![100, 400, 1600, 6400]
    };
    let mut t = Table::new(&[
        "n",
        "k=m=√n",
        "r",
        "OPT=f(S*)",
        "queries=1 (%)",
        "max query val",
    ]);
    for &n in &sizes {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x10 ^ n as u64);
        let k = (n as f64).sqrt().round() as usize;
        let t_budget = (n as f64).ln();
        let r = 3.0 * t_budget.sqrt() * (k as f64 * k as f64 / n as f64);
        let f = HiddenSetFn::sample(n, k, r, &mut rng);
        let queries = if quick { 300 } else { 1000 };
        let mut ones = 0usize;
        let mut maxv = 0.0f64;
        for _ in 0..queries {
            let q = BitSet::from_iter(n, random_stream(n, &mut rng).into_iter().take(k));
            let v = f.eval(&q);
            maxv = maxv.max(v);
            if v == 1.0 {
                ones += 1;
            }
        }
        let pct = 100.0 * ones as f64 / queries as f64;
        assert!(
            pct > 90.0,
            "E10: hard function leaked information ({pct}% uninformative)"
        );
        t.row(vec![
            n.to_string(),
            k.to_string(),
            format!("{r:.2}"),
            format!("{:.0}", f.optimum()),
            format!("{pct:.1}"),
            format!("{maxv:.0}"),
        ]);
    }
    t.print();
    println!("  (high uninformative rate + OPT ≫ 1 = the Ω̃(√n) lower bound mechanism)");

    section("E10b  §3.5.2  the O(√n) algorithm (upper bound)");
    let mut t2 = Table::new(&["n", "k=√n", "OPT", "alg avg", "ratio", "ratio·√n"]);
    for &n in &sizes {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xB10 ^ n as u64);
        let k = (n as f64).sqrt().round() as usize;
        let r = 1.5;
        let f = HiddenSetFn::sample(n, k, r, &mut rng);
        let opt = f.optimum();
        let trials = if quick { 300 } else { 1000 };
        let mut total = 0.0;
        for _ in 0..trials {
            let s = random_stream(n, &mut rng);
            let hired = subadditive_secretary(&f, &s, k, &mut rng);
            total += f.eval(&BitSet::from_iter(n, hired));
        }
        let avg = total / trials as f64;
        let ratio = avg / opt;
        let scaled = ratio * (n as f64).sqrt();
        assert!(
            scaled >= 0.3,
            "E10b: ratio·√n = {scaled} below the O(√n) upper-bound shape"
        );
        t2.row(vec![
            n.to_string(),
            k.to_string(),
            format!("{opt:.0}"),
            format!("{avg:.2}"),
            format!("{ratio:.3}"),
            format!("{scaled:.2}"),
        ]);
    }
    t2.print();
}
