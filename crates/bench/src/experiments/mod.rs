//! Per-theorem experiments (see DESIGN.md §3 for the index and
//! EXPERIMENTS.md for recorded outputs).

pub mod e01_schedule_all;
pub mod e02_budgeted;
pub mod e03_prize_collecting;
pub mod e05_setcover_hard;
pub mod e06_secretary_monotone;
pub mod e07_secretary_nonmonotone;
pub mod e08_secretary_matroid;
pub mod e09_secretary_knapsack;
pub mod e10_subadditive;
pub mod e11_bottleneck;
pub mod e12_submodularity;
pub mod e14_ablation;
pub mod e15_gap_budget;

/// Runs every experiment in sequence (the `exp_all` binary).
pub fn run_all(seed: u64, quick: bool) {
    e01_schedule_all::run(seed, quick);
    e02_budgeted::run(seed, quick);
    e03_prize_collecting::run(seed, quick);
    e05_setcover_hard::run(seed, quick);
    e06_secretary_monotone::run(seed, quick);
    e07_secretary_nonmonotone::run(seed, quick);
    e08_secretary_matroid::run(seed, quick);
    e09_secretary_knapsack::run(seed, quick);
    e10_subadditive::run(seed, quick);
    e11_bottleneck::run(seed, quick);
    e12_submodularity::run(seed, quick);
    e14_ablation::run(seed, quick);
    e15_gap_budget::run(seed, quick);
}
