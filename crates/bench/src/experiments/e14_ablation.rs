//! E14 — ablations of the design choices DESIGN.md calls out:
//!
//! * **candidate policy** — full `O(T²)` interval family vs length-bounded
//!   vs single slots. Single slots degenerate toward per-slot set cover
//!   (many restarts); the full family is what lets the algorithm merge awake
//!   intervals when restarts are expensive (the paper's key modeling point).
//! * **lazy vs eager** greedy — identical picks, far fewer oracle calls.
//!   The `parallel` toggle now measures *real* fan-out: the vendored rayon
//!   fans full scans out over `std::thread::scope`.
//! * **engine sharding** (E14c) — the same workload through the
//!   `sched-engine` worker pool at 1/2/4 workers, with
//!   `SolveOptions { parallel: true }` wired through each worker; costs must
//!   not depend on the worker count.

use crate::table::{section, Table};
use rand::SeedableRng;
use sched_core::{CandidatePolicy, SolveOptions, Solver};
use sched_engine::{Engine, EngineConfig, SolveRequest};
use std::time::Instant;
use workloads::planted::PlantedCostModel;
use workloads::{planted_instance, PlantedConfig};

/// Runs E14 and prints its tables.
pub fn run(seed: u64, quick: bool) {
    section(&format!(
        "E14  ablation: candidate interval policies   [seed {seed}]"
    ));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x14);
    let cfg = PlantedConfig {
        num_processors: 2,
        horizon: if quick { 20 } else { 40 },
        target_jobs: if quick { 16 } else { 40 },
        decoy_prob: 0.3,
        max_value: 1,
        // expensive restarts: interval merging matters
        cost_model: PlantedCostModel::Affine { restart: 8.0 },
        policy: CandidatePolicy::All,
    };
    let p = planted_instance(&cfg, &mut rng);

    let mut t = Table::new(&["policy", "#candidates", "cost", "vs All", "intervals", "ms"]);
    let mut all_cost = None;
    for (name, policy) in [
        ("All (T²)", CandidatePolicy::All),
        ("MaxLength(8)", CandidatePolicy::MaxLength(8)),
        ("MaxLength(3)", CandidatePolicy::MaxLength(3)),
        ("SingleSlots", CandidatePolicy::SingleSlots),
    ] {
        let solver = Solver::new(&p.instance, p.cost.as_ref()).policy(policy);
        let n_cands = solver.candidates().len();
        let t0 = Instant::now();
        let s = solver
            .schedule_all()
            .expect("planted instance feasible under every policy");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let base = *all_cost.get_or_insert(s.total_cost);
        t.row(vec![
            name.to_string(),
            n_cands.to_string(),
            format!("{:.2}", s.total_cost),
            format!("{:.2}x", s.total_cost / base),
            s.awake.len().to_string(),
            format!("{ms:.1}"),
        ]);
    }
    t.print();
    println!("  (restart cost 8: single-slot candidates pay one restart per job)");

    section("E14b  ablation: lazy vs eager vs parallel greedy (same instance)");
    // one Solver across all variants: the candidate cache survives option
    // changes, so each run differs only in greedy strategy
    let mut solver = Solver::new(&p.instance, p.cost.as_ref());
    solver.candidates();
    let mut t2 = Table::new(&["variant", "cost", "ms"]);
    for (name, lazy, parallel) in [
        ("eager", false, false),
        ("eager+rayon", false, true),
        ("lazy", true, false),
    ] {
        solver = solver.options(SolveOptions { lazy, parallel });
        let t0 = Instant::now();
        let s = solver.schedule_all().expect("feasible");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        t2.row(vec![
            name.to_string(),
            format!("{:.2}", s.total_cost),
            format!("{ms:.1}"),
        ]);
    }
    t2.print();
    println!("  (costs must be identical across variants — asserted in tests)");

    section("E14c  ablation: engine sharding (parallel scans on, 1/2/4 workers)");
    // The planted grid is shared by every request, so workers hit their
    // candidate caches after the first enumeration; the ablation isolates
    // the sharding itself.
    let batch = if quick { 16 } else { 48 };
    let requests: Vec<SolveRequest> = (0..batch)
        .map(|i| {
            SolveRequest::builder(i as u64, p.instance.clone())
                .affine(8.0, 1.0)
                .parallel(true) // SolveOptions.parallel through the pool
                .build()
        })
        .collect();
    let mut t3 = Table::new(&["workers", "cost (first req)", "req/s", "ms total"]);
    let mut baseline_cost = None;
    for workers in [1usize, 2, 4] {
        let engine = Engine::new(EngineConfig::with_workers(workers));
        let t0 = Instant::now();
        let responses = engine.solve_batch(requests.iter().cloned());
        let secs = t0.elapsed().as_secs_f64();
        let cost = responses[0]
            .schedule
            .as_ref()
            .expect("planted instance feasible")
            .total_cost;
        for r in &responses {
            assert!(r.ok, "engine request failed: {:?}", r.error);
            let c = r.schedule.as_ref().unwrap().total_cost;
            let base = *baseline_cost.get_or_insert(c);
            assert_eq!(
                c.to_bits(),
                base.to_bits(),
                "cost must not depend on worker count"
            );
        }
        t3.row(vec![
            workers.to_string(),
            format!("{cost:.2}"),
            format!("{:.0}", batch as f64 / secs),
            format!("{:.1}", secs * 1e3),
        ]);
    }
    t3.print();
    println!("  (bit-identical costs across worker counts — asserted above)");
}
