//! E5/E13 — Appendix .1 hardness reduction and the Set-Cover special case.
//!
//! E5: on the Theorem .1.2 reduction of the classical tight family, the
//! scheduling greedy's cost must *grow* like `Θ(log n)·OPT` (OPT = 2) —
//! demonstrating the lower bound is real, not an artifact of the analysis.
//! E13: on random coverable set systems, the greedy stays within
//! `(H_n + 1)·OPT` of the exact optimum (the classical guarantee the
//! Lemma 2.1.2 greedy generalizes).

use crate::table::{section, Table};
use rand::{Rng, SeedableRng};
use sched_core::{schedule_all, SolveOptions};
use submodular::setcover::{exact_set_cover, greedy_set_cover, SetCoverInstance};
use workloads::{greedy_lower_bound_family, set_cover_to_scheduling};

/// Runs E5 and E13 and prints both tables.
pub fn run(seed: u64, quick: bool) {
    section("E5  Thm .1.2  Set-Cover-hard reduction: greedy ratio grows ~ log n");
    let ks: Vec<u32> = if quick {
        vec![2, 4, 6]
    } else {
        vec![2, 4, 6, 8, 10]
    };
    let mut t = Table::new(&[
        "k",
        "n (universe)",
        "OPT",
        "sched-greedy",
        "ratio",
        "k/2 (trap)",
    ]);
    let mut ratios = Vec::new();
    for &k in &ks {
        let sc = greedy_lower_bound_family(k);
        let (inst, cands) = set_cover_to_scheduling(&sc);
        let s = schedule_all(&inst, &cands, &SolveOptions::default()).expect("coverable");
        let opt = 2.0;
        let ratio = s.total_cost / opt;
        ratios.push(ratio);
        assert!(
            s.total_cost >= k as f64,
            "greedy did not fall into the Ω(log n) trap: {}",
            s.total_cost
        );
        t.row(vec![
            k.to_string(),
            sc.universe.to_string(),
            format!("{opt:.0}"),
            format!("{:.0}", s.total_cost),
            format!("{ratio:.2}"),
            format!("{:.1}", k as f64 / 2.0),
        ]);
    }
    t.print();
    assert!(
        ratios.windows(2).all(|w| w[1] > w[0]),
        "ratio must grow with n on the hard family"
    );
    println!("  (growing ratio on the reduction = the Set-Cover lower bound materialized)");

    section("E13  §2.1  greedy generalizes Set-Cover greedy: cost ≤ (H_n+1)·OPT");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xE5);
    let trials = if quick { 5 } else { 20 };
    let mut t2 = Table::new(&["trial", "n", "m", "OPT", "greedy", "ratio", "H_n+1"]);
    for trial in 0..trials {
        let n = rng.gen_range(6..14usize);
        let m = rng.gen_range(4..10usize);
        let mut sets: Vec<Vec<u32>> = (0..m)
            .map(|_| (0..n as u32).filter(|_| rng.gen_bool(0.35)).collect())
            .collect();
        sets.push((0..n as u32).collect()); // ensure coverable
        let costs: Vec<f64> = (0..sets.len())
            .map(|_| rng.gen_range(1..6) as f64)
            .collect();
        let sc = SetCoverInstance {
            universe: n,
            sets,
            costs,
        };
        let sol = greedy_set_cover(&sc);
        let (_, opt) = exact_set_cover(&sc).expect("coverable by construction");
        let hn1 = sc.harmonic_bound() + 1.0;
        assert!(sol.complete);
        assert!(sol.cost <= hn1 * opt + 1e-9, "E13 harmonic bound violated");
        t2.row(vec![
            trial.to_string(),
            n.to_string(),
            sc.sets.len().to_string(),
            format!("{opt:.0}"),
            format!("{:.0}", sol.cost),
            format!("{:.2}", sol.cost / opt),
            format!("{hn1:.2}"),
        ]);
    }
    t2.print();
}
