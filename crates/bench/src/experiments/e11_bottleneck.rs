//! E11 — Theorem 3.6.1: the bottleneck (min-utility) secretary rule hires
//! the `k` best with probability bounded below by an expression decaying in
//! `k` (the paper's garbled "1/e 2k"; we report the measured probability
//! against both candidate readings `1/(e²k)` and `e⁻²ᵏ`).

use crate::table::{section, Table};
use rand::SeedableRng;
use secretary::bottleneck::hired_k_best;
use secretary::{bottleneck_secretary, random_stream};

/// Runs E11 and prints its table.
pub fn run(seed: u64, quick: bool) {
    section(&format!(
        "E11  Theorem 3.6.1  bottleneck rule: P[hire exactly the k best]   [seed {seed}]"
    ));
    let n = 100;
    let trials = if quick { 3000 } else { 20000 };
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x11);
    let mut t = Table::new(&["k", "measured P", "1/(e²k)", "e^(-2k)", "≥1/(e²k)?"]);
    let mut prev = f64::INFINITY;
    for k in [2usize, 3, 4, 5] {
        let mut hit = 0usize;
        for _ in 0..trials {
            let order = random_stream(n, &mut rng);
            let vals: Vec<f64> = order.iter().map(|&i| i as f64 + 1.0).collect();
            let hired = bottleneck_secretary(&vals, k, None);
            if hired_k_best(&vals, &hired, k) {
                hit += 1;
            }
        }
        let p = hit as f64 / trials as f64;
        let inv_e2k = 1.0 / (std::f64::consts::E.powi(2) * k as f64);
        let e_m2k = (-2.0 * k as f64).exp();
        assert!(
            p >= e_m2k,
            "E11: measured {p} below even the weakest reading e^(-2k) = {e_m2k}"
        );
        assert!(p <= prev, "success probability should not increase with k");
        prev = p;
        t.row(vec![
            k.to_string(),
            format!("{p:.4}"),
            format!("{inv_e2k:.4}"),
            format!("{e_m2k:.5}"),
            if p >= inv_e2k {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    t.print();
    println!("  ({trials} trials per k, n = {n}; the measured curve sits near 1/(e·k)·(1−1/k)^k)");
}
