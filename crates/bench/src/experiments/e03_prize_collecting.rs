//! E3/E4 — Theorems 2.3.1 and 2.3.3: prize-collecting scheduling.
//!
//! E3 sweeps ε at fixed `Z`: value must reach `(1−ε)Z` and cost stay within
//! `2⌈log₂ 1/ε⌉·B`. E4 sweeps the value spread `Δ = v_max/v_min` with the
//! exact-`Z` algorithm: cost within `(2⌈log₂(nΔ)⌉ + 1)·B`.

use crate::table::{section, Table};
use rand::{Rng, SeedableRng};
use sched_core::{CandidatePolicy, Solver};
use workloads::planted::PlantedCostModel;
use workloads::{planted_instance, PlantedConfig};

/// Runs E3 (ε sweep) and E4 (Δ sweep) and prints both tables.
pub fn run(seed: u64, quick: bool) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xE3);

    section(&format!(
        "E3  Theorem 2.3.1  prize-collecting (1−ε)Z, cost O(B log 1/ε)   [seed {seed}]"
    ));
    let cfg = PlantedConfig {
        num_processors: 2,
        horizon: if quick { 14 } else { 24 },
        target_jobs: if quick { 12 } else { 24 },
        decoy_prob: 0.25,
        max_value: 9,
        cost_model: PlantedCostModel::Affine { restart: 3.0 },
        policy: CandidatePolicy::All,
    };
    let p = planted_instance(&cfg, &mut rng);
    let total = p.instance.total_value();
    let z = 0.8 * total;
    // one Solver for the whole ε sweep: candidates priced once, reused
    let solver = Solver::with_candidates(&p.instance, &p.candidates[..]);
    let mut t = Table::new(&["ε", "Z", "value", "≥(1−ε)Z", "cost", "bound 2⌈lg 1/ε⌉·B"]);
    for e in [1, 2, 4, 6, 8] {
        let eps = 2f64.powi(-e);
        let s = solver
            .prize_collecting(z, eps)
            .expect("planted instance can reach Z");
        assert!(
            s.scheduled_value >= (1.0 - eps) * z - 1e-9,
            "E3 value guarantee violated"
        );
        let bound = 2.0 * (1.0 / eps).log2().ceil() * p.planted_cost;
        assert!(s.total_cost <= bound + 1e-9, "E3 cost bound violated");
        t.row(vec![
            format!("2^-{e}"),
            format!("{z:.1}"),
            format!("{:.1}", s.scheduled_value),
            format!("{:.1}", (1.0 - eps) * z),
            format!("{:.2}", s.total_cost),
            format!("{bound:.1}"),
        ]);
    }
    t.print();
    println!("  (B = planted cost {:.2} ≥ OPT)", p.planted_cost);

    section("E4  Theorem 2.3.3  exact-Z, cost O((log n + log Δ)·B)");
    let mut t4 = Table::new(&["Δ", "n", "Z", "value", "cost", "bound (2⌈lg nΔ⌉+1)·B"]);
    for &delta in &[1u32, 4, 16, 64, 256] {
        let cfg = PlantedConfig {
            max_value: delta,
            ..cfg
        };
        let p = planted_instance(&cfg, &mut rng);
        let total = p.instance.total_value();
        let z = rng.gen_range(0.5..0.9) * total;
        let s = Solver::with_candidates(&p.instance, &p.candidates[..])
            .prize_collecting_exact(z)
            .expect("planted instance can reach Z");
        assert!(
            s.scheduled_value >= z - 1e-9,
            "E4 exact-Z guarantee violated"
        );
        let n = p.instance.num_jobs() as f64;
        let (vmin, vmax) = p.instance.value_range().unwrap();
        let d = vmax / vmin;
        let bound = (2.0 * (n * d).log2().ceil() + 1.0) * p.planted_cost;
        assert!(s.total_cost <= bound + 1e-9, "E4 cost bound violated");
        t4.row(vec![
            format!("{d:.0}"),
            format!("{n:.0}"),
            format!("{z:.1}"),
            format!("{:.1}", s.scheduled_value),
            format!("{:.2}", s.total_cost),
            format!("{bound:.1}"),
        ]);
    }
    t4.print();
}
