//! E6 — Theorem 3.2.5: the monotone submodular secretary algorithm is
//! `(1−1/e)/(7e)`-competitive in expectation.
//!
//! Monte-Carlo over random arrival orders on coverage and facility-location
//! utilities; reference is the offline greedy (a `(1−1/e)`-approximation of
//! the true optimum, so the reported ratio *underestimates* competitiveness
//! against `f(R)` by at most that factor — still far above the bound).

use crate::table::{section, Table};
use rand::SeedableRng;
use rayon::prelude::*;
use secretary::{offline_greedy, random_stream, submodular_secretary};
use submodular::{BitSet, SetFn};
use workloads::secretary_streams::{random_coverage, random_facility_location};

/// Runs E6 and prints its table.
pub fn run(seed: u64, quick: bool) {
    section(&format!(
        "E6  Theorem 3.2.5  monotone submodular secretary ≥ (1−1/e)/(7e) ≈ 0.0332   [seed {seed}]"
    ));
    let trials = if quick { 200 } else { 1000 };
    let mut t = Table::new(&[
        "utility",
        "n",
        "k",
        "offline ref",
        "online avg",
        "ratio",
        "bound",
    ]);
    let bound = (1.0 - 1.0 / std::f64::consts::E) / (7.0 * std::f64::consts::E);

    let configs: Vec<(usize, usize)> = if quick {
        vec![(60, 4), (120, 8)]
    } else {
        vec![(50, 2), (100, 4), (200, 8), (400, 16), (1000, 32)]
    };

    for &(n, k) in &configs {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ (n as u64) << 8 ^ k as u64);
        for which in ["coverage", "facility"] {
            let f: Box<dyn SetFn + Send + Sync> = match which {
                "coverage" => Box::new(random_coverage(n, n / 2 + 10, 0.08, &mut rng)),
                _ => Box::new(random_facility_location(n, n / 3 + 5, &mut rng)),
            };
            let (_, offline) = offline_greedy(f.as_ref(), k);
            if offline <= 0.0 {
                continue;
            }
            // parallel Monte-Carlo with per-trial derived seeds (reproducible)
            let total: f64 = (0..trials)
                .into_par_iter()
                .map(|trial| {
                    let mut trng = rand::rngs::StdRng::seed_from_u64(
                        seed ^ 0xE6 ^ (trial as u64) << 20 ^ (n as u64),
                    );
                    let s = random_stream(n, &mut trng);
                    let hired = submodular_secretary(f.as_ref(), &s, k);
                    f.eval(&BitSet::from_iter(n, hired))
                })
                .sum();
            let avg = total / trials as f64;
            let ratio = avg / offline;
            assert!(
                ratio >= bound,
                "E6: ratio {ratio} below Theorem 3.2.5 bound {bound} ({which}, n={n}, k={k})"
            );
            t.row(vec![
                which.to_string(),
                n.to_string(),
                k.to_string(),
                format!("{offline:.2}"),
                format!("{avg:.2}"),
                format!("{ratio:.3}"),
                format!("{bound:.4}"),
            ]);
        }
    }
    t.print();
    println!("  ({trials} Monte-Carlo arrival orders per row; reference = offline greedy)");
}
