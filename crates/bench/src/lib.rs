//! Experiment harness: one module per experiment in DESIGN.md's index
//! (E1–E13), each printing the paper-claim-vs-measured table recorded in
//! EXPERIMENTS.md, plus small table-formatting utilities.
//!
//! Every experiment takes an explicit seed and a `quick` flag (smaller
//! sweeps for CI); binaries under `src/bin/` are thin wrappers. Criterion
//! performance benches live in `benches/`, and the machine-readable perf
//! harness (`perf_harness`, `power-sched perf`, `BENCH_solver.json`) in
//! [`perf`].

pub mod experiments;
pub mod loadgen;
pub mod perf;
pub mod table;

pub use table::Table;

/// Default seed used by the binaries (date of the thesis defense).
pub const DEFAULT_SEED: u64 = 20100521;
