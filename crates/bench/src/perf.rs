//! The machine-readable perf harness behind `perf_harness` and
//! `power-sched perf` — the repo's performance trajectory.
//!
//! Runs pinned, deterministic workloads through the three hot paths
//! (direct solve, engine batch, online replay) and emits a stable JSON
//! report (`BENCH_solver.json` schema `bench-solver/v1`):
//!
//! ```json
//! {
//!   "schema": "bench-solver/v1",
//!   "mode": "full",
//!   "workloads": [
//!     {"name": "solve_schedule_all_n64_p4_t32", "path": "fast",
//!      "ops": 20, "ns_per_op": 450000.0, "ops_per_sec": 2200.0,
//!      "peak_candidates": 2112},
//!     ...
//!   ],
//!   "speedups": [{"workload": "solve_schedule_all_n64_p4_t32",
//!                 "fast_over_naive": 2.3}, ...]
//! }
//! ```
//!
//! * `path` is `"fast"` (the production bitset/arena solve path), `"naive"`
//!   (the retained seed implementation in `sched_core::naive`, proven
//!   bit-identical by the equivalence proptests), or `"n/a"` for workloads
//!   without a naive twin (engine, replay).
//! * `ops_per_sec` is the headline throughput (solves/sec, requests/sec, or
//!   traces/sec); `ns_per_op` its inverse; `peak_candidates` the largest
//!   candidate family any solve in the workload optimized over.
//! * `speedups` pairs each fast row with its naive twin — the
//!   machine-portable form of the hot-path speedup claim.
//!
//! Timing is best-of-`rounds` wall clock over whole workload passes (the
//! same convention as the vendored criterion), so one noisy scheduler tick
//! cannot poison a row. `--baseline FILE` compares a fresh run against a
//! committed report and fails on regression beyond the given tolerance —
//! the CI perf gate.

use std::time::Instant;

use rand::SeedableRng;
use sched_core::naive::naive_schedule_all;
use sched_core::{
    enumerate_candidates, schedule_all, solve_dvfs, solve_dvfs_naive, CandidatePolicy,
    PowerProfile, ProfileCost, SolveOptions,
};
use sched_engine::{Engine, EngineConfig, SolveRequest};
use sched_sim::{replay, replay_fleet, FleetOptions, OfflineRef, PolicyKind};
use serde::{Deserialize, Serialize};
use workloads::planted::PlantedCostModel;
use workloads::{
    dvfs_instance, generate_trace, planted_instance, ArrivalConfig, DvfsConfig, PlantedConfig,
    TraceKind,
};

use crate::Table;

/// Report schema identifier; bump when the JSON layout changes.
pub const SCHEMA: &str = "bench-solver/v1";

/// One measured workload row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkloadResult {
    /// Workload identifier (stable across runs).
    pub name: String,
    /// `fast`, `naive`, or `n/a` (no naive twin).
    pub path: String,
    /// Operations (solves / requests / traces) per timed pass.
    pub ops: u64,
    /// Nanoseconds per operation (best pass).
    pub ns_per_op: f64,
    /// Operations per second (best pass).
    pub ops_per_sec: f64,
    /// Largest candidate family any solve optimized over.
    pub peak_candidates: u64,
}

/// One fast-vs-naive pairing.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Speedup {
    /// Workload the pair belongs to.
    pub workload: String,
    /// `fast.ops_per_sec / naive.ops_per_sec`.
    pub fast_over_naive: f64,
}

/// The full report (`BENCH_solver.json`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfReport {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// `quick` (CI gate) or `full`.
    pub mode: String,
    /// Measured rows.
    pub workloads: Vec<WorkloadResult>,
    /// Fast-vs-naive pairings.
    pub speedups: Vec<Speedup>,
}

/// Harness sizing.
#[derive(Clone, Copy, Debug)]
pub struct PerfOptions {
    /// Smaller instances and fewer passes — the CI configuration.
    pub quick: bool,
}

fn time_best<F: FnMut()>(rounds: usize, mut pass: F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..rounds {
        let t0 = Instant::now();
        pass();
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best
}

fn row(name: &str, path: &str, ops: u64, total_ns: u64, peak_candidates: u64) -> WorkloadResult {
    let ns_per_op = total_ns as f64 / ops as f64;
    WorkloadResult {
        name: name.into(),
        path: path.into(),
        ops,
        ns_per_op,
        ops_per_sec: 1e9 / ns_per_op,
        peak_candidates,
    }
}

/// Runs every workload and assembles the report.
pub fn run(opts: PerfOptions) -> PerfReport {
    let rounds = if opts.quick { 3 } else { 7 };
    // pass size stays identical across modes so per-op throughput is
    // comparable between a quick CI run and the committed full baseline
    let mut workloads = Vec::new();
    let mut speedups = Vec::new();

    // --- direct solve workloads: fast vs naive on identical instances ---
    // quick mode runs the *same* shapes with fewer passes, so every row
    // keeps its name and stays comparable against a committed full-mode
    // baseline (ops_per_sec is per-solve, independent of the pass size)
    let solve_shapes: &[(usize, u32, u32, u64)] =
        &[(24, 2, 16, 11), (64, 4, 32, 11), (128, 4, 48, 11)];
    for &(n, p, t, seed) in solve_shapes {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let inst = planted_instance(
            &PlantedConfig {
                num_processors: p,
                horizon: t,
                target_jobs: n,
                decoy_prob: 0.3,
                max_value: 1,
                cost_model: PlantedCostModel::Affine { restart: 3.0 },
                policy: CandidatePolicy::All,
            },
            &mut rng,
        );
        let name = format!("solve_schedule_all_n{n}_p{p}_t{t}");
        let solves: u64 = 20;
        let opts_solve = SolveOptions::default();
        let peak = inst.candidates.len() as u64;

        // interleave fast and naive passes so clock drift, thermal state,
        // and scheduler noise hit both paths alike
        let (mut fast_ns, mut naive_ns) = (u64::MAX, u64::MAX);
        for _ in 0..rounds {
            let t0 = Instant::now();
            for _ in 0..solves {
                std::hint::black_box(
                    schedule_all(&inst.instance, &inst.candidates, &opts_solve).unwrap(),
                );
            }
            fast_ns = fast_ns.min(t0.elapsed().as_nanos() as u64);
            let t0 = Instant::now();
            for _ in 0..solves {
                std::hint::black_box(
                    naive_schedule_all(&inst.instance, &inst.candidates, &opts_solve).unwrap(),
                );
            }
            naive_ns = naive_ns.min(t0.elapsed().as_nanos() as u64);
        }
        let fast = row(&name, "fast", solves, fast_ns, peak);
        let naive = row(&name, "naive", solves, naive_ns, peak);
        speedups.push(Speedup {
            workload: name.clone(),
            fast_over_naive: fast.ops_per_sec / naive.ops_per_sec,
        });
        workloads.push(fast);
        workloads.push(naive);
    }

    // --- heterogeneous solve workload: per-processor profiles ---
    // same planted shape as the n64 row, re-priced under a fixed
    // heterogeneous fleet, so the gate catches a hot-path regression that
    // only bites when per-processor costs differ
    {
        let (n, p, t, seed) = (64usize, 4u32, 32u32, 11u64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let planted = planted_instance(
            &PlantedConfig {
                num_processors: p,
                horizon: t,
                target_jobs: n,
                decoy_prob: 0.3,
                max_value: 1,
                cost_model: PlantedCostModel::Affine { restart: 3.0 },
                policy: CandidatePolicy::All,
            },
            &mut rng,
        );
        let fleet: Vec<PowerProfile> = (0..p)
            .map(|proc| PowerProfile::affine(2.0 + 1.5 * proc as f64, 0.75 + 0.5 * proc as f64))
            .collect();
        let cost = ProfileCost::new(&fleet);
        let cands = enumerate_candidates(&planted.instance, &cost, CandidatePolicy::All);
        let name = format!("solve_schedule_all_hetero_n{n}_p{p}_t{t}");
        let solves: u64 = 20;
        let opts_solve = SolveOptions::default();
        let (mut fast_ns, mut naive_ns) = (u64::MAX, u64::MAX);
        for _ in 0..rounds {
            let t0 = Instant::now();
            for _ in 0..solves {
                std::hint::black_box(schedule_all(&planted.instance, &cands, &opts_solve).unwrap());
            }
            fast_ns = fast_ns.min(t0.elapsed().as_nanos() as u64);
            let t0 = Instant::now();
            for _ in 0..solves {
                std::hint::black_box(
                    naive_schedule_all(&planted.instance, &cands, &opts_solve).unwrap(),
                );
            }
            naive_ns = naive_ns.min(t0.elapsed().as_nanos() as u64);
        }
        let fast = row(&name, "fast", solves, fast_ns, cands.len() as u64);
        let naive = row(&name, "naive", solves, naive_ns, cands.len() as u64);
        speedups.push(Speedup {
            workload: name.clone(),
            fast_over_naive: fast.ops_per_sec / naive.ops_per_sec,
        });
        workloads.push(fast);
        workloads.push(naive);
    }

    // --- DVFS solve workload: speed-scaling compile → solve → decompile ---
    // the n64 shape with planted work requirements over a three-rung
    // quadratic ladder; fast and naive run the identical pipeline end to
    // end (compilation included — it is part of every real DVFS solve), so
    // the speedup isolates the solver paths on the lane-expanded grid
    {
        let (n, p, t, seed) = (64usize, 4u32, 32u32, 11u64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dvfs = dvfs_instance(
            &DvfsConfig {
                num_processors: p,
                horizon: t,
                target_jobs: n,
                ..DvfsConfig::default()
            },
            &mut rng,
        );
        let name = format!("solve_dvfs_n{n}_p{p}_t{t}");
        let solves: u64 = 20;
        let peak = dvfs
            .compile()
            .expect("pinned DVFS shape compiles")
            .candidates
            .len() as u64;
        let (mut fast_ns, mut naive_ns) = (u64::MAX, u64::MAX);
        for _ in 0..rounds {
            let t0 = Instant::now();
            for _ in 0..solves {
                std::hint::black_box(solve_dvfs(&dvfs).unwrap());
            }
            fast_ns = fast_ns.min(t0.elapsed().as_nanos() as u64);
            let t0 = Instant::now();
            for _ in 0..solves {
                std::hint::black_box(solve_dvfs_naive(&dvfs).unwrap());
            }
            naive_ns = naive_ns.min(t0.elapsed().as_nanos() as u64);
        }
        let fast = row(&name, "fast", solves, fast_ns, peak);
        let naive = row(&name, "naive", solves, naive_ns, peak);
        speedups.push(Speedup {
            workload: name.clone(),
            fast_over_naive: fast.ops_per_sec / naive.ops_per_sec,
        });
        workloads.push(fast);
        workloads.push(naive);
    }

    // --- engine batch workload: the `bench_engine_throughput` shape ---
    let requests = engine_workload(64);
    let peak = requests
        .iter()
        .map(|r| {
            let p = r.instance.num_processors as u64;
            let t = r.instance.horizon as u64;
            p * t * (t + 1) / 2
        })
        .max()
        .unwrap_or(0);
    for &workers in &[1usize, 4] {
        let name = format!("engine_mixed{}_w{workers}", requests.len());
        let ns = time_best(rounds, || {
            let engine = Engine::new(EngineConfig::with_workers(workers));
            let responses = engine.solve_batch(requests.iter().cloned());
            assert!(responses.iter().all(|r| r.ok), "engine workload failed");
        });
        workloads.push(row(&name, "n/a", requests.len() as u64, ns, peak));
    }

    // --- online replay workload: trace replays through the simulator ---
    let cfg = ArrivalConfig::default();
    let count = 8;
    let traces: Vec<_> = (0..count)
        .map(|i| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(100 + i);
            generate_trace(TraceKind::PoissonBursts, &cfg, &mut rng)
        })
        .collect();
    let peak = traces
        .iter()
        .map(|tr| {
            let p = tr.num_processors as u64;
            let t = tr.horizon as u64;
            p * t * (t + 1) / 2
        })
        .max()
        .unwrap_or(0);
    let fleet = FleetOptions {
        workers: 1,
        offline: OfflineRef::Greedy,
    };
    let name = format!("replay_poisson_x{count}_greedy");
    let ns = time_best(rounds, || {
        let reports = replay_fleet(&traces, &PolicyKind::Greedy, &fleet);
        assert!(reports.iter().all(|r| r.is_ok()), "replay workload failed");
    });
    workloads.push(row(&name, "n/a", count, ns, peak));

    // --- warm-start re-solve workloads: PeriodicResolve warm vs cold ---
    // One pinned Poisson trace per period; both variants replay the whole
    // trace and the row times the *re-solves only* (the policy's own
    // per-re-solve wall clocks, summed), so the speedup isolates exactly
    // what the warm handle accelerates. `fast` = warm-start on, `naive` =
    // cold re-solves, mirroring the fast/naive pairing of the solve rows;
    // the Speedup row is the warm-over-cold ratio the CI gate pins.
    for &(period, seed) in &[(1u32, 1234u64), (4u32, 4321u64)] {
        let cfg = ArrivalConfig {
            num_processors: 2,
            horizon: 192,
            target_jobs: 28,
            restart: 3.0,
            rate: 1.0,
            max_value: 1,
            slack: 2,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut trace = generate_trace(TraceKind::PoissonBursts, &cfg, &mut rng);
        // Advance-notice arrivals: announce every job `LEAD` ticks before
        // its window opens (releasing earlier only relaxes the instance, so
        // the trace stays feasible). A k=1 re-solver then sees long quiet
        // stretches where the pending set's windows are untouched — the
        // memoized-solve fast path of the warm handle — interleaved with
        // arrival/service ticks that exercise the delta path. This is the
        // advance-reservation shape warm-starting targets: re-solve every
        // tick, change rarely.
        const LEAD: u32 = 24;
        for job in &mut trace.jobs {
            job.release = job.release.saturating_sub(LEAD);
        }
        let peak = {
            let t = trace.horizon as u64;
            trace.num_processors as u64 * t * (t + 1) / 2
        };
        let name = format!("resolve_warm_vs_cold_k{period}");
        let run_once = |warm: bool| -> (u64, u64, u64) {
            let mut policy = PolicyKind::Resolve { period, warm }.build(None);
            let out = replay(&trace, policy.as_mut()).expect("pinned trace replays");
            let rs = out
                .resolve_stats
                .expect("resolve policy reports per-re-solve timing");
            (rs.count, rs.total_ns, out.schedule.total_cost.to_bits())
        };
        // interleave warm and cold passes so clock drift and scheduler
        // noise hit both paths alike
        let (mut warm_ns, mut cold_ns) = (u64::MAX, u64::MAX);
        let (mut resolves, mut warm_bits, mut cold_bits) = (0, 0, 0);
        for _ in 0..rounds {
            let (count, ns, bits) = run_once(true);
            warm_ns = warm_ns.min(ns);
            (resolves, warm_bits) = (count, bits);
            let (count, ns, bits) = run_once(false);
            cold_ns = cold_ns.min(ns);
            assert_eq!(count, resolves, "warm must not change the cadence");
            cold_bits = bits;
        }
        assert_eq!(
            warm_bits, cold_bits,
            "warm replay diverged from cold on {name}"
        );
        let fast = row(&name, "fast", resolves, warm_ns, peak);
        let naive = row(&name, "naive", resolves, cold_ns, peak);
        speedups.push(Speedup {
            workload: name.clone(),
            fast_over_naive: fast.ops_per_sec / naive.ops_per_sec,
        });
        workloads.push(fast);
        workloads.push(naive);
    }

    // --- telemetry overhead workload: ambient registry off vs on ---
    // The n64 solve shape again, once with no ambient registry (`fast` —
    // spans disarm at creation, counters vanish in `with_active`) and once
    // with a thread-local registry installed (`naive` — every span,
    // histogram, and counter lands). The pinned Speedup row is the
    // zero-cost-when-disabled claim in machine-readable form: the ratio
    // must stay ≈1.0 within the CI tolerance.
    {
        let (n, p, t, seed) = (64usize, 4u32, 32u32, 11u64);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let inst = planted_instance(
            &PlantedConfig {
                num_processors: p,
                horizon: t,
                target_jobs: n,
                decoy_prob: 0.3,
                max_value: 1,
                cost_model: PlantedCostModel::Affine { restart: 3.0 },
                policy: CandidatePolicy::All,
            },
            &mut rng,
        );
        let name = format!("obs_overhead_n{n}_p{p}_t{t}");
        let solves: u64 = 20;
        let opts_solve = SolveOptions::default();
        let peak = inst.candidates.len() as u64;
        let registry = std::sync::Arc::new(sched_obs::Registry::new());
        // interleaved, like every other fast/naive pair; the thread-local
        // is reset between passes (and left unset afterwards)
        let (mut off_ns, mut on_ns) = (u64::MAX, u64::MAX);
        for _ in 0..rounds {
            sched_obs::set_thread(None);
            let t0 = Instant::now();
            for _ in 0..solves {
                std::hint::black_box(
                    schedule_all(&inst.instance, &inst.candidates, &opts_solve).unwrap(),
                );
            }
            off_ns = off_ns.min(t0.elapsed().as_nanos() as u64);
            sched_obs::set_thread(Some(std::sync::Arc::clone(&registry)));
            let t0 = Instant::now();
            for _ in 0..solves {
                std::hint::black_box(
                    schedule_all(&inst.instance, &inst.candidates, &opts_solve).unwrap(),
                );
            }
            on_ns = on_ns.min(t0.elapsed().as_nanos() as u64);
            sched_obs::set_thread(None);
        }
        let fast = row(&name, "fast", solves, off_ns, peak);
        let naive = row(&name, "naive", solves, on_ns, peak);
        speedups.push(Speedup {
            workload: name.clone(),
            fast_over_naive: fast.ops_per_sec / naive.ops_per_sec,
        });
        workloads.push(fast);
        workloads.push(naive);

        // --- tracing overhead: same shape, ambient tracer off vs on ---
        // With the tracer installed every span becomes a ring-buffer event
        // and the greedy emits its per-pick decision log. The pinned row
        // bounds that cost: `fast` (no tracer) over `naive` (thread-local
        // tracer) must stay ≈1.0 — the record path formats nothing and
        // takes one short lock per event.
        let name = format!("trace_overhead_n{n}_p{p}_t{t}");
        let tracer = std::sync::Arc::new(sched_obs::trace::Tracer::new());
        let (mut off_ns, mut on_ns) = (u64::MAX, u64::MAX);
        for _ in 0..rounds {
            sched_obs::trace::set_thread(None);
            let t0 = Instant::now();
            for _ in 0..solves {
                std::hint::black_box(
                    schedule_all(&inst.instance, &inst.candidates, &opts_solve).unwrap(),
                );
            }
            off_ns = off_ns.min(t0.elapsed().as_nanos() as u64);
            sched_obs::trace::set_thread(Some(std::sync::Arc::clone(&tracer)));
            let t0 = Instant::now();
            for _ in 0..solves {
                std::hint::black_box(
                    schedule_all(&inst.instance, &inst.candidates, &opts_solve).unwrap(),
                );
            }
            on_ns = on_ns.min(t0.elapsed().as_nanos() as u64);
            sched_obs::trace::set_thread(None);
            // bounded ring: clearing between rounds keeps eviction churn
            // out of the measurement's steady state
            tracer.clear();
        }
        let fast = row(&name, "fast", solves, off_ns, peak);
        let naive = row(&name, "naive", solves, on_ns, peak);
        speedups.push(Speedup {
            workload: name.clone(),
            fast_over_naive: fast.ops_per_sec / naive.ops_per_sec,
        });
        workloads.push(fast);
        workloads.push(naive);
    }

    PerfReport {
        schema: SCHEMA.into(),
        mode: if opts.quick { "quick" } else { "full" }.into(),
        workloads,
        speedups,
    }
}

/// The deterministic mixed-mode engine workload (the shape
/// `bench_engine_throughput` uses, sized by `count`).
fn engine_workload(count: usize) -> Vec<SolveRequest> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE16);
    (0..count)
        .map(|i| {
            let planted = planted_instance(
                &PlantedConfig {
                    num_processors: 2,
                    horizon: 24,
                    target_jobs: 16 + i % 8,
                    decoy_prob: 0.3,
                    max_value: 3,
                    cost_model: PlantedCostModel::Affine { restart: 4.0 },
                    policy: CandidatePolicy::All,
                },
                &mut rng,
            );
            let inst = planted.instance;
            let total = inst.total_value();
            match i % 3 {
                0 => SolveRequest::builder(i as u64, inst)
                    .affine(4.0, 1.0)
                    .build(),
                1 => SolveRequest::builder(i as u64, inst)
                    .affine(4.0, 1.0)
                    .prize_collecting((total * 0.5).max(1.0))
                    .epsilon(0.25)
                    .build(),
                _ => SolveRequest::builder(i as u64, inst)
                    .affine(4.0, 1.0)
                    .prize_collecting_exact((total * 0.4).max(1.0))
                    .build(),
            }
        })
        .collect()
}

/// Renders the report as the human table printed to stderr.
pub fn render_table(report: &PerfReport) -> String {
    let mut table = Table::new(&["workload", "path", "ops", "ns/op", "ops/sec", "peak cands"]);
    for w in &report.workloads {
        table.row(vec![
            w.name.clone(),
            w.path.clone(),
            w.ops.to_string(),
            format!("{:.0}", w.ns_per_op),
            format!("{:.1}", w.ops_per_sec),
            w.peak_candidates.to_string(),
        ]);
    }
    let mut out = table.render();
    for s in &report.speedups {
        out.push_str(&format!(
            "speedup {}: fast is {:.2}x naive\n",
            s.workload, s.fast_over_naive
        ));
    }
    out
}

/// Compares a fresh run against a committed baseline. Returns the list of
/// regressions: fast-over-naive speedups that decayed below
/// `baseline · (1 − tolerance)`, plus — unless `relative_only` is set —
/// workloads whose absolute throughput fell below the same floor.
///
/// The speedup ratios are machine-portable (both paths ran on the same
/// machine in the same process), so they are what CI gates on; absolute
/// `ops_per_sec` comparisons are only meaningful when fresh run and
/// baseline come from comparable hardware. Workloads present in only one
/// report are ignored (schemas must match, though).
pub fn compare(
    fresh: &PerfReport,
    baseline: &PerfReport,
    tolerance: f64,
    relative_only: bool,
) -> Vec<String> {
    let mut problems = Vec::new();
    if fresh.schema != baseline.schema {
        problems.push(format!(
            "schema mismatch: fresh {} vs baseline {}",
            fresh.schema, baseline.schema
        ));
        return problems;
    }
    for b in &baseline.workloads {
        if relative_only {
            break;
        }
        let Some(f) = fresh
            .workloads
            .iter()
            .find(|f| f.name == b.name && f.path == b.path)
        else {
            continue;
        };
        let floor = b.ops_per_sec * (1.0 - tolerance);
        if f.ops_per_sec < floor {
            problems.push(format!(
                "{} [{}]: {:.1} ops/sec < floor {:.1} (baseline {:.1}, tolerance {:.0}%)",
                b.name,
                b.path,
                f.ops_per_sec,
                floor,
                b.ops_per_sec,
                tolerance * 100.0
            ));
        }
    }
    for b in &baseline.speedups {
        let Some(f) = fresh.speedups.iter().find(|f| f.workload == b.workload) else {
            continue;
        };
        let floor = b.fast_over_naive * (1.0 - tolerance);
        if f.fast_over_naive < floor {
            problems.push(format!(
                "{} speedup: {:.2}x < floor {:.2}x (baseline {:.2}x)",
                b.workload, f.fast_over_naive, floor, b.fast_over_naive
            ));
        }
    }
    problems
}

/// Shared CLI driver for `perf_harness` and `power-sched perf`.
///
/// Flags: `--quick`, `--out FILE` (default stdout), `--baseline FILE`
/// (enables the regression gate), `--tolerance F` (default 0.25),
/// `--relative-only` (gate only on the machine-portable fast-over-naive
/// speedups — the CI configuration, where runner hardware differs from
/// the machine that recorded the baseline).
pub fn cli(args: &[String]) -> Result<(), String> {
    let quick = args.iter().any(|a| a == "--quick");
    let relative_only = args.iter().any(|a| a == "--relative-only");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let tolerance: f64 = match flag("--tolerance") {
        Some(v) => v.parse().map_err(|e| format!("bad --tolerance: {e}"))?,
        None => 0.25,
    };
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("--tolerance must be in [0, 1), got {tolerance}"));
    }

    let report = run(PerfOptions { quick });
    eprint!("{}", render_table(&report));
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    match flag("--out") {
        Some(out) => {
            std::fs::write(&out, format!("{json}\n")).map_err(|e| format!("writing {out}: {e}"))?;
            eprintln!("wrote {out}");
        }
        None => println!("{json}"),
    }

    if let Some(path) = flag("--baseline") {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("reading baseline {path}: {e}"))?;
        let baseline: PerfReport =
            serde_json::from_str(&text).map_err(|e| format!("{path} is not a perf report: {e}"))?;
        let problems = compare(&report, &baseline, tolerance, relative_only);
        if !problems.is_empty() {
            return Err(format!(
                "perf regression against {path}:\n  {}",
                problems.join("\n  ")
            ));
        }
        eprintln!(
            "perf gate: no regression against {path} (tolerance {:.0}%)",
            tolerance * 100.0
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report(ops_per_sec: f64, speedup: f64) -> PerfReport {
        PerfReport {
            schema: SCHEMA.into(),
            mode: "quick".into(),
            workloads: vec![WorkloadResult {
                name: "w".into(),
                path: "fast".into(),
                ops: 1,
                ns_per_op: 1e9 / ops_per_sec,
                ops_per_sec,
                peak_candidates: 10,
            }],
            speedups: vec![Speedup {
                workload: "w".into(),
                fast_over_naive: speedup,
            }],
        }
    }

    #[test]
    fn compare_flags_regressions_within_tolerance() {
        let base = tiny_report(1000.0, 2.5);
        assert!(compare(&tiny_report(800.0, 2.5), &base, 0.25, false).is_empty());
        assert_eq!(
            compare(&tiny_report(700.0, 2.5), &base, 0.25, false).len(),
            1
        );
        assert_eq!(
            compare(&tiny_report(1000.0, 1.5), &base, 0.25, false).len(),
            1
        );
        // missing workloads are ignored, schema mismatch is fatal
        let mut other = tiny_report(100.0, 1.0);
        other.workloads[0].name = "other".into();
        other.speedups[0].workload = "other".into();
        assert!(compare(&other, &base, 0.25, false).is_empty());
        let mut bad = tiny_report(1000.0, 2.5);
        bad.schema = "bench-solver/v0".into();
        assert_eq!(compare(&bad, &base, 0.25, false).len(), 1);
    }

    #[test]
    fn relative_only_ignores_absolute_throughput() {
        // a 10x slower machine with the speedup intact passes; a decayed
        // speedup still fails
        let base = tiny_report(1000.0, 2.5);
        assert!(compare(&tiny_report(100.0, 2.5), &base, 0.25, true).is_empty());
        assert_eq!(
            compare(&tiny_report(100.0, 1.5), &base, 0.25, true).len(),
            1
        );
    }

    #[test]
    fn report_serde_round_trip() {
        let r = tiny_report(123.0, 2.0);
        let json = serde_json::to_string(&r).unwrap();
        let back: PerfReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.schema, SCHEMA);
        assert_eq!(back.workloads.len(), 1);
        assert_eq!(back.workloads[0].ops_per_sec, 123.0);
        assert_eq!(back.speedups[0].fast_over_naive, 2.0);
    }

    #[test]
    fn quick_run_produces_expected_rows() {
        let report = run(PerfOptions { quick: true });
        assert_eq!(report.schema, SCHEMA);
        assert_eq!(report.mode, "quick");
        // (3 solve shapes + 1 hetero shape + 1 DVFS shape + 2 warm-vs-cold
        // shapes + 1 telemetry-overhead shape + 1 tracing-overhead shape)
        // × 2 paths + 2 engine rows + 1 replay row
        assert_eq!(report.workloads.len(), 21);
        assert_eq!(report.speedups.len(), 9);
        assert!(report
            .speedups
            .iter()
            .any(|s| s.workload == "resolve_warm_vs_cold_k1"));
        assert!(report
            .speedups
            .iter()
            .any(|s| s.workload == "obs_overhead_n64_p4_t32"));
        assert!(report
            .speedups
            .iter()
            .any(|s| s.workload == "trace_overhead_n64_p4_t32"));
        assert!(report
            .workloads
            .iter()
            .any(|w| w.name.contains("hetero") && w.path == "fast"));
        assert!(report
            .workloads
            .iter()
            .any(|w| w.name == "solve_dvfs_n64_p4_t32" && w.path == "naive"));
        assert!(report
            .speedups
            .iter()
            .any(|s| s.workload == "solve_dvfs_n64_p4_t32"));
        for w in &report.workloads {
            assert!(w.ops_per_sec > 0.0, "{}", w.name);
            assert!(w.ns_per_op > 0.0, "{}", w.name);
        }
    }
}
