//! Minimal fixed-width table printer for experiment output.

/// A simple right-aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("  ");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!("{:>w$}", c, w = widths[i]));
                if i + 1 < ncols {
                    line.push_str("  ");
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * ncols;
        out.push_str(&format!("  {}\n", "-".repeat(total)));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints an experiment section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["n", "ratio"]);
        t.row(vec!["8".into(), "1.25".into()]);
        t.row(vec!["128".into(), "2.0".into()]);
        let s = t.render();
        assert!(s.contains("ratio"));
        assert!(s.lines().count() == 4);
        // right alignment: the "8" row should pad to width of "128"
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].starts_with("    8"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
