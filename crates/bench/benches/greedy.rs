//! Criterion benches for the Lemma 2.1.2 budgeted greedy: eager vs lazy vs
//! parallel candidate scans on coverage set systems (the ablation DESIGN.md
//! calls out).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use submodular::functions::CoverageFn;
use submodular::{budgeted_greedy, GreedyConfig, SetSystemObjective};

struct Inst {
    f: CoverageFn,
    subsets: Vec<Vec<u32>>,
    costs: Vec<f64>,
    universe: usize,
}

fn coverage_instance(universe: usize, m: usize, seed: u64) -> Inst {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut subsets: Vec<Vec<u32>> = (0..m)
        .map(|_| {
            (0..universe as u32)
                .filter(|_| rng.gen_bool(0.05))
                .collect()
        })
        .collect();
    subsets.push((0..universe as u32).collect()); // coverable guarantee
    let costs = (0..subsets.len())
        .map(|i| {
            if i + 1 == subsets.len() {
                universe as f64
            } else {
                rng.gen_range(0.5..4.0)
            }
        })
        .collect();
    let f = CoverageFn::unweighted(universe, (0..universe).map(|i| vec![i as u32]).collect());
    Inst {
        f,
        subsets,
        costs,
        universe,
    }
}

fn bench_greedy_variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("budgeted_greedy");
    g.sample_size(10);
    for &(u, m) in &[(300usize, 200usize), (1000, 800)] {
        let inst = coverage_instance(u, m, 7);
        for (name, lazy, parallel) in [
            ("eager", false, false),
            ("lazy", true, false),
            ("lazy_par", true, true),
        ] {
            g.bench_with_input(
                BenchmarkId::new(name, format!("u{u}_m{m}")),
                &inst,
                |b, inst| {
                    b.iter(|| {
                        let mut obj = SetSystemObjective::new(
                            &inst.f,
                            inst.subsets.clone(),
                            inst.costs.clone(),
                        );
                        let cfg = GreedyConfig {
                            target: inst.universe as f64,
                            epsilon: 1.0 / (inst.universe as f64 + 1.0),
                            lazy,
                            parallel,
                        };
                        budgeted_greedy(&mut obj, cfg).total_cost
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_greedy_variants);
criterion_main!(benches);
