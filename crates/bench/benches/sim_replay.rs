//! `bench_sim_replay` — traces/sec through the `sched-sim` online replay
//! harness: each policy over a fixed 12-trace mixed fleet (Poisson bursts,
//! diurnal, deadline cliffs at the CLI-default size), at 1 and 4 fleet
//! workers. The offline reference (the expensive part at small sizes) is
//! part of the measured regime, as it is for every `power-sched replay`
//! invocation; the resolve rows additionally exercise the shared
//! `sched-engine` pool behind suffix re-solves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use sched_core::trace::ArrivalTrace;
use sched_sim::{replay_fleet, FleetOptions, OfflineRef, PolicyKind};
use workloads::{generate_trace, ArrivalConfig, TraceKind};

/// Deterministic mixed fleet: 4 traces per generator at the CLI-default
/// size (seeds chosen clear of the rare resolve deferral drops, so every
/// row measures completed replays).
fn fleet() -> Vec<ArrivalTrace> {
    let kinds = [
        TraceKind::PoissonBursts,
        TraceKind::Diurnal,
        TraceKind::DeadlineCliffs,
    ];
    let mut traces = Vec::new();
    for (i, kind) in kinds.iter().enumerate() {
        for seed in 0..4u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1000 * i as u64 + seed);
            traces.push(generate_trace(*kind, &ArrivalConfig::default(), &mut rng));
        }
    }
    traces
}

fn bench_sim_replay(c: &mut Criterion) {
    let traces = fleet();
    let mut g = c.benchmark_group("sim_replay");
    g.sample_size(10);
    for policy in ["greedy", "hiring", "resolve:4"] {
        let kind: PolicyKind = policy.parse().unwrap();
        for &workers in &[1usize, 4] {
            g.bench_with_input(BenchmarkId::new(policy, workers), &traces, |b, traces| {
                b.iter(|| {
                    let reports = replay_fleet(
                        traces,
                        &kind,
                        &FleetOptions {
                            workers,
                            offline: OfflineRef::Auto,
                        },
                    );
                    let mut ratio_sum = 0.0;
                    for r in &reports {
                        let r = r.as_ref().expect("replay failed");
                        assert!(r.ratio >= 1.0 - 1e-9, "ratio {} < 1", r.ratio);
                        ratio_sum += r.ratio;
                    }
                    ratio_sum
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_sim_replay);
criterion_main!(benches);
