//! Criterion benches for the online algorithms: per-stream decision cost of
//! Algorithms 1/2 and the matroid variant.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use matroid::{Matroid, PartitionMatroid};
use rand::SeedableRng;
use secretary::{
    matroid_submodular_secretary, nonmonotone_submodular_secretary, random_stream,
    submodular_secretary,
};
use workloads::secretary_streams::{random_coverage, random_cut};

fn bench_submodular_secretary(c: &mut Criterion) {
    let mut g = c.benchmark_group("submodular_secretary");
    for &n in &[100usize, 400] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let f = random_coverage(n, n / 2, 0.08, &mut rng);
        let stream = random_stream(n, &mut rng);
        g.bench_with_input(BenchmarkId::from_parameter(n), &stream, |b, s| {
            b.iter(|| submodular_secretary(black_box(&f), s, 8).len())
        });
    }
    g.finish();
}

fn bench_nonmonotone(c: &mut Criterion) {
    let mut g = c.benchmark_group("nonmonotone_secretary");
    for &n in &[100usize, 400] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let f = random_cut(n, n * 4, 5, &mut rng);
        let stream = random_stream(n, &mut rng);
        g.bench_with_input(BenchmarkId::from_parameter(n), &stream, |b, s| {
            let mut trng = rand::rngs::StdRng::seed_from_u64(5);
            b.iter(|| nonmonotone_submodular_secretary(black_box(&f), s, 8, &mut trng).len())
        });
    }
    g.finish();
}

fn bench_matroid_secretary(c: &mut Criterion) {
    let mut g = c.benchmark_group("matroid_secretary");
    for &n in &[100usize, 400] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let f = random_coverage(n, n / 2, 0.08, &mut rng);
        let m = PartitionMatroid::new((0..n as u32).map(|e| e % 6).collect(), vec![2; 6]);
        let ms: Vec<&dyn Matroid> = vec![&m];
        let stream = random_stream(n, &mut rng);
        g.bench_with_input(BenchmarkId::from_parameter(n), &stream, |b, s| {
            let mut trng = rand::rngs::StdRng::seed_from_u64(7);
            b.iter(|| matroid_submodular_secretary(black_box(&f), s, &ms, &mut trng).len())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_submodular_secretary,
    bench_nonmonotone,
    bench_matroid_secretary
);
criterion_main!(benches);
