//! Criterion benches for the end-to-end scheduling pipeline (reduction +
//! greedy + extraction) across instance sizes and cost models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use sched_core::{schedule_all, CandidatePolicy, SolveOptions};
use workloads::planted::PlantedCostModel;
use workloads::{planted_instance, PlantedConfig, PlantedInstance};

fn make(n: usize, p: u32, horizon: u32, model: PlantedCostModel, seed: u64) -> PlantedInstance {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    planted_instance(
        &PlantedConfig {
            num_processors: p,
            horizon,
            target_jobs: n,
            decoy_prob: 0.3,
            max_value: 1,
            cost_model: model,
            policy: CandidatePolicy::All,
        },
        &mut rng,
    )
}

fn bench_schedule_all(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_all");
    g.sample_size(10);
    for &(n, p, t) in &[(16usize, 2u32, 16u32), (64, 4, 32), (128, 4, 48)] {
        let inst = make(n, p, t, PlantedCostModel::Affine { restart: 3.0 }, 11);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_p{p}_t{t}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    schedule_all(&inst.instance, &inst.candidates, &SolveOptions::default())
                        .unwrap()
                        .total_cost
                })
            },
        );
    }
    g.finish();
}

fn bench_lazy_vs_eager_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_all_variants");
    g.sample_size(10);
    let inst = make(64, 4, 32, PlantedCostModel::Market { restart: 2.0 }, 13);
    for (name, lazy) in [("lazy", true), ("eager", false)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &inst, |b, inst| {
            b.iter(|| {
                schedule_all(
                    &inst.instance,
                    &inst.candidates,
                    &SolveOptions {
                        lazy,
                        parallel: false,
                    },
                )
                .unwrap()
                .total_cost
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_schedule_all, bench_lazy_vs_eager_end_to_end);
criterion_main!(benches);
