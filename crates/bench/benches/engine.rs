//! `bench_engine_throughput` — requests/sec through the `sched-engine`
//! worker pool at 1, 2, and 4 workers on a fixed mixed-mode workload.
//!
//! Each iteration spins up a fresh engine (so worker-pool startup is part of
//! the measured regime, as it would be for a short-lived batch job) and
//! pushes the whole workload through `solve_batch`. On multi-core machines
//! the 4-worker row should beat the 1-worker row roughly linearly until the
//! core count caps it; on a single core the rows document the (small)
//! sharding overhead instead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use sched_core::CandidatePolicy;
use sched_engine::{Engine, EngineConfig, SolveRequest};
use workloads::planted::PlantedCostModel;
use workloads::{planted_instance, PlantedConfig};

/// A deterministic 64-request mixed-mode workload (the same shape the
/// `power-sched batch` acceptance test uses, sized for bench runtime).
fn workload() -> Vec<SolveRequest> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xE16);
    (0..64usize)
        .map(|i| {
            let planted = planted_instance(
                &PlantedConfig {
                    num_processors: 2,
                    horizon: 24,
                    target_jobs: 16 + i % 8,
                    decoy_prob: 0.3,
                    max_value: 3,
                    cost_model: PlantedCostModel::Affine { restart: 4.0 },
                    policy: CandidatePolicy::All,
                },
                &mut rng,
            );
            let inst = planted.instance;
            let total = inst.total_value();
            match i % 3 {
                0 => SolveRequest::builder(i as u64, inst)
                    .affine(4.0, 1.0)
                    .build(),
                1 => SolveRequest::builder(i as u64, inst)
                    .affine(4.0, 1.0)
                    .prize_collecting((total * 0.5).max(1.0))
                    .epsilon(0.25)
                    .build(),
                _ => SolveRequest::builder(i as u64, inst)
                    .affine(4.0, 1.0)
                    .prize_collecting_exact((total * 0.4).max(1.0))
                    .build(),
            }
        })
        .collect()
}

fn bench_engine_throughput(c: &mut Criterion) {
    let requests = workload();
    let mut g = c.benchmark_group("engine_throughput");
    g.sample_size(10);
    for &workers in &[1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("workers", workers),
            &requests,
            |b, requests| {
                b.iter(|| {
                    let engine = Engine::new(EngineConfig::with_workers(workers));
                    let responses = engine.solve_batch(requests.iter().cloned());
                    assert!(responses.iter().all(|r| r.ok));
                    responses.len()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);
