//! Criterion benches for the bipartite matching substrate: Hopcroft–Karp
//! scaling, incremental oracle insertion, and marginal-gain evaluation.

use bmatch::{hopcroft_karp, BipartiteGraph, GainScratch, MatchingOracle};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};

fn random_graph(nx: u32, ny: u32, deg: usize, seed: u64) -> BipartiteGraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(nx as usize * deg);
    for x in 0..nx {
        for _ in 0..deg {
            edges.push((x, rng.gen_range(0..ny)));
        }
    }
    BipartiteGraph::from_edges(nx, ny, &edges)
}

fn bench_hopcroft_karp(c: &mut Criterion) {
    let mut g = c.benchmark_group("hopcroft_karp");
    for &n in &[200u32, 800, 3200] {
        let graph = random_graph(n, n / 2, 4, 42);
        g.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
            b.iter(|| hopcroft_karp(black_box(graph), |_| true).size)
        });
    }
    g.finish();
}

fn bench_incremental_oracle(c: &mut Criterion) {
    let mut g = c.benchmark_group("oracle_insert_all");
    for &n in &[200u32, 800, 3200] {
        let graph = random_graph(n, n / 2, 4, 43);
        g.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, graph| {
            b.iter(|| {
                let mut o = MatchingOracle::new_cardinality(graph);
                for x in 0..graph.nx() {
                    o.add_slot(x);
                }
                o.total()
            })
        });
    }
    g.finish();
}

fn bench_gain_evaluation(c: &mut Criterion) {
    // gain_of on a half-committed oracle: the greedy's inner loop
    let mut g = c.benchmark_group("oracle_gain_of");
    for &n in &[400u32, 1600] {
        let graph = random_graph(n, n / 2, 4, 44);
        let mut oracle = MatchingOracle::new_cardinality(&graph);
        for x in 0..n / 2 {
            oracle.add_slot(x);
        }
        let probe: Vec<u32> = (n / 2..n / 2 + 16).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &probe, |b, probe| {
            let mut scratch = GainScratch::new();
            b.iter(|| oracle.gain_of(black_box(probe), &mut scratch))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_hopcroft_karp,
    bench_incremental_oracle,
    bench_gain_evaluation
);
criterion_main!(benches);
