//! Structured event tracing: the causal-timeline companion to the metrics
//! registry in the crate root.
//!
//! A [`Tracer`] is a lock-cheap bounded ring buffer of [`TraceEvent`]s —
//! monotonic timestamp, duration, name, kind, `trace_id`, and small
//! key/value args — retained **per thread** (each thread keeps its last
//! `capacity` events; older ones are dropped and counted). Events arrive
//! from two sources:
//!
//! * the existing [`span!`](crate::span) RAII timers, which emit a
//!   `span` event on drop whenever a tracer is ambiently installed
//!   (thread tracer from [`set_thread`], else the process-global one from
//!   [`install_global`] — mirroring the metrics registry exactly), and
//! * explicit [`instant`] decision points (greedy picks, warm-vs-cold
//!   rebuild choices, per-slot simulator decisions, engine accept errors).
//!
//! Every event is stamped with the thread's ambient *trace id*
//! ([`set_trace_id`]): the engine sets it per request from the wire
//! protocol's additive `trace_id` field, the CLI sets it per replayed
//! trace, so one id follows a request end-to-end across threads and
//! processes.
//!
//! # Export formats
//!
//! Two stable formats, both hand-serialized (no allocation on the record
//! path is spent preparing for either):
//!
//! * [`Tracer::to_trace_jsonl`] — one `trace/v1` JSON object per line
//!   (see [`TRACE_SCHEMA`]), greppable and streamable;
//! * [`Tracer::to_chrome_json`] — the Chrome trace-event format (`ph:"X"`
//!   complete events, `ph:"i"` instants), loadable in Perfetto or
//!   `chrome://tracing`. The `trace_id` and all args ride in each event's
//!   `args` object.
//!
//! # Flight recorder
//!
//! [`Tracer::flight_recorder`] is the same machinery with a small
//! per-thread capacity: install it ambiently and the last
//! [`FLIGHT_CAPACITY`] events per thread are always on hand.
//! [`Tracer::dump_to_stderr`] prints them (as `trace/v1` JSONL behind a
//! `# flight-recorder` header line) on request failure, accept-loop error
//! bursts, and graceful shutdown.
//!
//! # Feature gating
//!
//! The ambient layer ([`install_global`], [`set_thread`], [`set_trace_id`],
//! [`enabled`], [`instant`], and the span hook) compiles to no-ops without
//! the crate's `enabled` feature, like the rest of the ambient API. The
//! types and the explicit-handle [`Tracer`] API stay available in both
//! modes so code holding an `Option<Arc<Tracer>>` compiles unchanged.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Schema tag: the `schema` field of every `trace/v1` JSONL line.
pub const TRACE_SCHEMA: &str = "trace/v1";

/// Per-thread event capacity of [`Tracer::flight_recorder`].
pub const FLIGHT_CAPACITY: usize = 256;

/// Per-thread event capacity of [`Tracer::new`] — sized for a full solve
/// narration, not a black box.
pub const DEFAULT_CAPACITY: usize = 65_536;

// ---------------------------------------------------------------------------
// Event model
// ---------------------------------------------------------------------------

/// A small typed argument value: numbers are stored as numbers so the
/// record path never formats strings.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values serialize as `null`).
    F64(f64),
    /// Free-form string.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

impl fmt::Display for ArgValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgValue::U64(v) => write!(f, "{v}"),
            ArgValue::I64(v) => write!(f, "{v}"),
            ArgValue::F64(v) => write!(f, "{v}"),
            ArgValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// Event kind: a timed `Span` (duration > 0 semantics) or a point-in-time
/// `Instant` decision record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// RAII-timed region (Chrome `ph:"X"`).
    Span,
    /// Point event (Chrome `ph:"i"`).
    Instant,
}

impl EventKind {
    /// The `kind` string used in `trace/v1`.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Instant => "instant",
        }
    }
}

/// One recorded event. Timestamps are nanoseconds since the owning
/// tracer's construction (a monotonic, per-process epoch).
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Event name (span histogram name or decision-point name).
    pub name: &'static str,
    /// Span or instant.
    pub kind: EventKind,
    /// Start time, ns since the tracer's epoch.
    pub ts_ns: u64,
    /// Duration in ns (0 for instants).
    pub dur_ns: u64,
    /// Ambient trace id at record time (empty when none was set).
    pub trace_id: Arc<str>,
    /// Stable per-process thread number (not the OS tid).
    pub tid: u64,
    /// Small key/value payload.
    pub args: Vec<(&'static str, ArgValue)>,
}

// ---------------------------------------------------------------------------
// Thread numbering
// ---------------------------------------------------------------------------

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// This thread's stable trace thread number (1-based, assigned on first
/// use, never reused within a process).
pub fn thread_number() -> u64 {
    TID.with(|t| *t)
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

#[derive(Default)]
struct ThreadBuf {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// Bounded per-thread ring buffers behind one short mutex: recording an
/// event is a lock, a `VecDeque` push, and (at capacity) a pop — no
/// serialization, no string formatting.
pub struct Tracer {
    epoch: Instant,
    capacity: usize,
    threads: Mutex<HashMap<u64, ThreadBuf>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// A tracer with [`DEFAULT_CAPACITY`] events retained per thread.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// A tracer retaining the last `capacity` events per thread.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            threads: Mutex::new(HashMap::new()),
        }
    }

    /// Flight-recorder mode: a small always-on ring
    /// ([`FLIGHT_CAPACITY`] events per thread) meant to be dumped on
    /// failure, not exported wholesale.
    pub fn flight_recorder() -> Self {
        Self::with_capacity(FLIGHT_CAPACITY)
    }

    /// Nanoseconds from the tracer's epoch to `t` (0 if `t` predates it).
    pub fn ts_of(&self, t: Instant) -> u64 {
        t.checked_duration_since(self.epoch)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
    }

    fn push(&self, ev: TraceEvent) {
        let mut threads = self.threads.lock().unwrap();
        let buf = threads.entry(ev.tid).or_default();
        if buf.events.len() >= self.capacity {
            buf.events.pop_front();
            buf.dropped += 1;
        }
        buf.events.push_back(ev);
    }

    /// Records a span event for the calling thread.
    pub fn record_span(
        &self,
        name: &'static str,
        start: Instant,
        dur_ns: u64,
        trace_id: Arc<str>,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.push(TraceEvent {
            name,
            kind: EventKind::Span,
            ts_ns: self.ts_of(start),
            dur_ns,
            trace_id,
            tid: thread_number(),
            args,
        });
    }

    /// Records an instant event for the calling thread, stamped `now`.
    /// `trace_id` of `None` uses the empty id — callers with an ambient id
    /// should prefer the module-level [`instant`].
    pub fn record_instant(
        &self,
        name: &'static str,
        trace_id: Option<&str>,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.push(TraceEvent {
            name,
            kind: EventKind::Instant,
            ts_ns: self.ts_of(Instant::now()),
            dur_ns: 0,
            trace_id: trace_id.map(Arc::from).unwrap_or_else(empty_id),
            tid: thread_number(),
            args,
        });
    }

    /// All retained events, merged across threads and ordered by start
    /// time (ties: longer spans first so parents precede their children,
    /// then thread number).
    pub fn events(&self) -> Vec<TraceEvent> {
        let threads = self.threads.lock().unwrap();
        let mut out: Vec<TraceEvent> = threads
            .values()
            .flat_map(|b| b.events.iter().cloned())
            .collect();
        out.sort_by(|a, b| {
            a.ts_ns
                .cmp(&b.ts_ns)
                .then(b.dur_ns.cmp(&a.dur_ns))
                .then(a.tid.cmp(&b.tid))
        });
        out
    }

    /// Total events evicted by the per-thread rings so far.
    pub fn dropped(&self) -> u64 {
        self.threads
            .lock()
            .unwrap()
            .values()
            .map(|b| b.dropped)
            .sum()
    }

    /// Retained event count across all threads.
    pub fn len(&self) -> usize {
        self.threads
            .lock()
            .unwrap()
            .values()
            .map(|b| b.events.len())
            .sum()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all retained events (the drop counters survive).
    pub fn clear(&self) {
        for buf in self.threads.lock().unwrap().values_mut() {
            buf.events.clear();
        }
    }

    /// `trace/v1` JSONL: one self-describing JSON object per event, in
    /// [`Tracer::events`] order.
    pub fn to_trace_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            write_trace_v1_line(&mut out, &ev);
            out.push('\n');
        }
        out
    }

    /// Chrome trace-event JSON (one object, `traceEvents` array) loadable
    /// in Perfetto / `chrome://tracing`. Spans map to `ph:"X"` complete
    /// events, instants to thread-scoped `ph:"i"`; timestamps are
    /// microseconds with nanosecond decimals; `trace_id` and the event
    /// args land in each event's `args` object.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, ev) in self.events().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            escape_json(ev.name, &mut out);
            out.push_str("\",\"cat\":\"sched\",\"pid\":1,\"tid\":");
            out.push_str(&ev.tid.to_string());
            match ev.kind {
                EventKind::Span => {
                    out.push_str(&format!(
                        ",\"ph\":\"X\",\"ts\":{},\"dur\":{}",
                        micros(ev.ts_ns),
                        micros(ev.dur_ns)
                    ));
                }
                EventKind::Instant => {
                    out.push_str(&format!(
                        ",\"ph\":\"i\",\"s\":\"t\",\"ts\":{}",
                        micros(ev.ts_ns)
                    ));
                }
            }
            out.push_str(",\"args\":{\"trace_id\":\"");
            escape_json(&ev.trace_id, &mut out);
            out.push('"');
            for (k, v) in &ev.args {
                out.push_str(",\"");
                escape_json(k, &mut out);
                out.push_str("\":");
                write_arg_value(&mut out, v);
            }
            out.push_str("}}");
        }
        out.push_str("],\"displayTimeUnit\":\"ns\"}");
        out
    }

    /// Flight-recorder dump: a `# flight-recorder` header naming the
    /// trigger, then the retained events as `trace/v1` JSONL, on stderr.
    pub fn dump_to_stderr(&self, reason: &str) {
        eprintln!(
            "# flight-recorder dump ({reason}): {} events, {} dropped",
            self.len(),
            self.dropped()
        );
        eprint!("{}", self.to_trace_jsonl());
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

fn empty_id() -> Arc<str> {
    static EMPTY: Mutex<Option<Arc<str>>> = Mutex::new(None);
    EMPTY
        .lock()
        .unwrap()
        .get_or_insert_with(|| Arc::from(""))
        .clone()
}

/// Chrome `ts`/`dur` microseconds with full nanosecond precision.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn write_trace_v1_line(out: &mut String, ev: &TraceEvent) {
    out.push_str("{\"schema\":\"");
    out.push_str(TRACE_SCHEMA);
    out.push_str("\",\"name\":\"");
    escape_json(ev.name, out);
    out.push_str("\",\"kind\":\"");
    out.push_str(ev.kind.as_str());
    out.push_str(&format!(
        "\",\"ts_ns\":{},\"dur_ns\":{},\"trace_id\":\"",
        ev.ts_ns, ev.dur_ns
    ));
    escape_json(&ev.trace_id, out);
    out.push_str(&format!("\",\"tid\":{},\"args\":{{", ev.tid));
    for (i, (k, v)) in ev.args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(k, out);
        out.push_str("\":");
        write_arg_value(out, v);
    }
    out.push_str("}}");
}

fn write_arg_value(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(n) => out.push_str(&n.to_string()),
        ArgValue::I64(n) => out.push_str(&n.to_string()),
        ArgValue::F64(x) if x.is_finite() => {
            // `{}` prints integral floats without a fraction — still a
            // valid JSON number, and round-trippable.
            out.push_str(&format!("{x}"));
        }
        ArgValue::F64(_) => out.push_str("null"),
        ArgValue::Str(s) => {
            out.push('"');
            escape_json(s, out);
            out.push('"');
        }
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

// ---------------------------------------------------------------------------
// Ambient tracer + trace-id context (feature `enabled`)
// ---------------------------------------------------------------------------

#[cfg(feature = "enabled")]
mod ambient {
    use super::*;
    use std::cell::RefCell;
    use std::sync::OnceLock;

    static GLOBAL: OnceLock<Arc<Tracer>> = OnceLock::new();

    thread_local! {
        static THREAD: RefCell<Option<Arc<Tracer>>> = const { RefCell::new(None) };
        static TRACE_ID: RefCell<Option<Arc<str>>> = const { RefCell::new(None) };
    }

    /// Installs the process-global fallback tracer. Returns `false` (and
    /// leaves the existing one in place) if one was already installed.
    pub fn install_global(t: Arc<Tracer>) -> bool {
        GLOBAL.set(t).is_ok()
    }

    /// The process-global tracer, if installed.
    pub fn global() -> Option<Arc<Tracer>> {
        GLOBAL.get().cloned()
    }

    /// Sets (or with `None`, clears) this thread's tracer, shadowing the
    /// global one — engine workers point this at the shared flight
    /// recorder.
    pub fn set_thread(t: Option<Arc<Tracer>>) {
        THREAD.with(|c| *c.borrow_mut() = t);
    }

    /// The active tracer: thread, else global.
    pub fn active_tracer() -> Option<Arc<Tracer>> {
        THREAD.with(|c| c.borrow().clone()).or_else(global)
    }

    /// True when any tracer would receive ambient events. Use this to
    /// gate argument construction for [`instant`] calls in hot loops.
    pub fn enabled() -> bool {
        THREAD.with(|c| c.borrow().is_some()) || GLOBAL.get().is_some()
    }

    /// Sets (or clears) this thread's ambient trace id; every event
    /// recorded on this thread is stamped with it until changed.
    pub fn set_trace_id(id: Option<&str>) {
        TRACE_ID.with(|c| *c.borrow_mut() = id.map(Arc::from));
    }

    /// This thread's ambient trace id, if set.
    pub fn current_trace_id() -> Option<Arc<str>> {
        TRACE_ID.with(|c| c.borrow().clone())
    }

    /// Records an instant event (with the ambient trace id) into the
    /// active tracer; a cheap no-op when none is installed.
    pub fn instant(name: &'static str, args: Vec<(&'static str, ArgValue)>) {
        if let Some(t) = active_tracer() {
            t.push(TraceEvent {
                name,
                kind: EventKind::Instant,
                ts_ns: t.ts_of(Instant::now()),
                dur_ns: 0,
                trace_id: current_trace_id().unwrap_or_else(empty_id),
                tid: thread_number(),
                args,
            });
        }
    }

    /// The span hook: called by `Span::drop` with the span's start and
    /// elapsed time. No-op when no tracer is ambiently installed.
    pub(crate) fn emit_span(name: &'static str, start: Instant, dur_ns: u64) {
        if let Some(t) = active_tracer() {
            t.record_span(
                name,
                start,
                dur_ns,
                current_trace_id().unwrap_or_else(empty_id),
                Vec::new(),
            );
        }
    }
}

#[cfg(feature = "enabled")]
pub(crate) use ambient::emit_span;
#[cfg(feature = "enabled")]
pub use ambient::{
    active_tracer, current_trace_id, enabled, global, install_global, instant, set_thread,
    set_trace_id,
};

#[cfg(not(feature = "enabled"))]
mod disabled {
    use super::*;

    /// No-op (built without the `enabled` feature).
    pub fn install_global(_t: Arc<Tracer>) -> bool {
        false
    }
    /// No-op (built without the `enabled` feature).
    pub fn global() -> Option<Arc<Tracer>> {
        None
    }
    /// No-op (built without the `enabled` feature).
    pub fn set_thread(_t: Option<Arc<Tracer>>) {}
    /// No-op (built without the `enabled` feature).
    pub fn active_tracer() -> Option<Arc<Tracer>> {
        None
    }
    /// No-op (built without the `enabled` feature).
    pub fn enabled() -> bool {
        false
    }
    /// No-op (built without the `enabled` feature).
    pub fn set_trace_id(_id: Option<&str>) {}
    /// No-op (built without the `enabled` feature).
    pub fn current_trace_id() -> Option<Arc<str>> {
        None
    }
    /// No-op (built without the `enabled` feature).
    pub fn instant(_name: &'static str, _args: Vec<(&'static str, ArgValue)>) {}
}

#[cfg(not(feature = "enabled"))]
pub use disabled::{
    active_tracer, current_trace_id, enabled, global, install_global, instant, set_thread,
    set_trace_id,
};

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn uninstall() {
        set_thread(None);
        set_trace_id(None);
    }

    #[test]
    fn ring_buffer_retains_last_n_per_thread() {
        let t = Tracer::with_capacity(3);
        for i in 0..5u64 {
            t.record_instant("tick", Some("rb"), vec![("i", i.into())]);
        }
        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(t.dropped(), 2);
        // the retained ones are the LAST three
        let kept: Vec<u64> = evs
            .iter()
            .map(|e| match e.args[0].1 {
                ArgValue::U64(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn ambient_thread_tracer_records_spans_and_instants() {
        let t = Arc::new(Tracer::new());
        set_thread(Some(t.clone()));
        set_trace_id(Some("unit-1"));
        {
            let _outer = crate::span!("outer_ns");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = crate::span!("inner_ns");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            instant(
                "decision",
                vec![("pick", 7u64.into()), ("gain", 1.5.into())],
            );
        }
        uninstall();

        let evs = t.events();
        assert_eq!(evs.len(), 3);
        assert!(evs.iter().all(|e| &*e.trace_id == "unit-1"));
        let outer = evs.iter().find(|e| e.name == "outer_ns").unwrap();
        let inner = evs.iter().find(|e| e.name == "inner_ns").unwrap();
        let pick = evs.iter().find(|e| e.name == "decision").unwrap();
        assert_eq!(outer.kind, EventKind::Span);
        assert_eq!(pick.kind, EventKind::Instant);
        // nesting: the inner span's interval lies within the outer's
        assert!(outer.ts_ns <= inner.ts_ns);
        assert!(inner.ts_ns + inner.dur_ns <= outer.ts_ns + outer.dur_ns);
        // the instant happened inside the outer span too
        assert!(pick.ts_ns >= outer.ts_ns && pick.ts_ns <= outer.ts_ns + outer.dur_ns);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn spans_stay_disarmed_without_tracer_or_registry() {
        if crate::global().is_some() || global().is_some() {
            return; // another test installed a process-global sink
        }
        uninstall();
        crate::set_thread(None);
        let s = crate::span("idle_ns");
        assert!(format!("{s:?}").contains("None"));
    }

    #[test]
    fn jsonl_export_is_valid_and_self_describing() {
        let t = Tracer::new();
        t.record_instant(
            "quote\"test",
            Some("id-1"),
            vec![("msg", "a\"b\\c".into()), ("x", ArgValue::F64(f64::NAN))],
        );
        let jsonl = t.to_trace_jsonl();
        let line = jsonl.lines().next().unwrap();
        assert!(line.starts_with("{\"schema\":\"trace/v1\""));
        assert!(line.contains("\"kind\":\"instant\""));
        assert!(line.contains("\"trace_id\":\"id-1\""));
        assert!(line.contains("quote\\\"test"));
        assert!(line.contains("a\\\"b\\\\c"));
        assert!(
            line.contains("\"x\":null"),
            "NaN serializes as null: {line}"
        );
    }

    #[test]
    fn chrome_export_shapes_spans_and_instants() {
        let t = Tracer::new();
        t.record_span(
            "solve_ns",
            Instant::now(),
            1500,
            Arc::from("c-1"),
            Vec::new(),
        );
        t.record_instant("pick", Some("c-1"), vec![("cand", 3u64.into())]);
        let chrome = t.to_chrome_json();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"dur\":1.500"));
        assert!(chrome.contains("\"ph\":\"i\""));
        assert!(chrome.contains("\"trace_id\":\"c-1\""));
        assert!(chrome.ends_with("],\"displayTimeUnit\":\"ns\"}"));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn trace_id_scopes_to_the_thread() {
        let t = Arc::new(Tracer::new());
        set_thread(Some(t.clone()));
        set_trace_id(Some("main-id"));
        let t2 = t.clone();
        std::thread::spawn(move || {
            set_thread(Some(t2));
            // no trace id set on this thread => empty stamp
            instant("other", Vec::new());
            uninstall();
        })
        .join()
        .unwrap();
        instant("mine", Vec::new());
        uninstall();
        let evs = t.events();
        let other = evs.iter().find(|e| e.name == "other").unwrap();
        let mine = evs.iter().find(|e| e.name == "mine").unwrap();
        assert_eq!(&*other.trace_id, "");
        assert_eq!(&*mine.trace_id, "main-id");
        assert_ne!(other.tid, mine.tid);
    }
}
