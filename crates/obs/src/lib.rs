//! `sched-obs`: workspace-wide telemetry for the power-scheduling crates.
//!
//! The crate provides three layers:
//!
//! 1. **Primitives** — [`Counter`], [`Gauge`], and [`Histogram`]. All three
//!    record through relaxed atomics, so once a handle is resolved the cost
//!    of a data point is a handful of uncontended atomic adds and recording
//!    is safe from any number of threads.
//! 2. **Registry** — [`Registry`] is a named get-or-create map of the
//!    primitives behind per-kind `RwLock`s. Lookups take the read lock
//!    (shared, cheap); only the first use of a new name takes the write
//!    lock. A [`Registry::snapshot`] freezes everything into the plain-data
//!    [`Snapshot`] for exposition.
//! 3. **Ambient API** — [`counter_add`], [`gauge_add`], [`record_ns`], and
//!    the [`span!`] timer macro record into whichever registry is *active*:
//!    the thread registry installed with [`set_thread`] if present,
//!    otherwise the process-global one installed with [`install_global`],
//!    otherwise nowhere (each helper is a cheap thread-local check and an
//!    early return). Deep library code — the solver hot path, the greedy
//!    loop — uses only the ambient API, so it needs no plumbed-through
//!    handles and costs nothing when no registry is installed. Compiling
//!    this crate with `--no-default-features` (dropping the `enabled`
//!    feature) turns the whole ambient API into no-ops at compile time.
//! 4. **Tracing** — the [`trace`] module adds the causal timeline the
//!    registry cannot express: an ambiently installed [`trace::Tracer`]
//!    receives a [`trace::TraceEvent`] from every [`span!`] drop and every
//!    explicit decision point, stamped with the thread's trace id, and
//!    exports `trace/v1` JSONL or Chrome trace-event JSON. Same
//!    thread-shadows-global install rules, same `enabled` feature gate.
//!
//! # Histogram buckets and percentiles
//!
//! Histograms use a fixed log-linear bucket layout: values below 16 get one
//! exact bucket each; every power-of-two octave `[2^k, 2^(k+1))` above that
//! is split into 8 linear sub-buckets. A reported percentile is the
//! *inclusive upper bound* of the bucket holding the nearest-rank sample
//! (clamped to the exact observed maximum), so percentiles are exact below
//! 16 and within 12.5% relative error above. `count`, `sum`, `min`, and
//! `max` are always exact.
//!
//! All percentile extraction — histogram walks here and sorted-sample
//! statistics elsewhere in the workspace — uses the single nearest-rank
//! rule implemented by [`nearest_rank_index`].
//!
//! # Exposition
//!
//! [`Snapshot`] serializes to the stable `obs/v1` JSON schema (see
//! [`SCHEMA`]) and renders as a human text table via
//! [`Snapshot::render_text`]. Snapshot struct fields are ordered
//! name-first so the compact JSON is greppable (`"name":"x","count":0`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
#[cfg(feature = "enabled")]
use std::time::Instant;

use serde::{Deserialize, Serialize};

pub mod trace;

/// Schema tag carried by every serialized [`Snapshot`].
pub const SCHEMA: &str = "obs/v1";

// ---------------------------------------------------------------------------
// Nearest-rank rule
// ---------------------------------------------------------------------------

/// The workspace's single percentile rule: the q-th quantile of n ordered
/// samples is the sample at 1-based rank `ceil(q * n)`, clamped to `[1, n]`.
///
/// Returns the 0-based index into the sorted sample array, or `None` when
/// `n == 0` (callers report 0 for empty populations). Consequences worth
/// spelling out:
///
/// * `n == 1`: every quantile is the single sample.
/// * `n == 2`: p50 is the *lower* sample (`ceil(0.5 * 2) = 1`), p99 the
///   upper.
/// * Quantiles never interpolate; they always return an observed sample.
pub fn nearest_rank_index(n: usize, q: f64) -> Option<usize> {
    if n == 0 {
        return None;
    }
    let rank = (q * n as f64).ceil() as usize;
    Some(rank.clamp(1, n) - 1)
}

// ---------------------------------------------------------------------------
// Histogram bucket layout
// ---------------------------------------------------------------------------

/// One exact bucket per value below this threshold.
const EXACT: u64 = 16;
/// Sub-buckets per power-of-two octave above the exact range.
const SUBS: usize = 8;
/// Total bucket count: 16 exact + 8 per octave for exponents 4..=63.
const NUM_BUCKETS: usize = EXACT as usize + (64 - 4) * SUBS;

/// Maps a value to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v < EXACT {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // 4..=63
        let sub = ((v >> (exp - 3)) & 0x7) as usize;
        EXACT as usize + (exp - 4) * SUBS + sub
    }
}

/// Inclusive upper bound of a bucket; the value reported for percentiles.
fn bucket_bound(idx: usize) -> u64 {
    if idx < EXACT as usize {
        idx as u64
    } else {
        let exp = 4 + (idx - EXACT as usize) / SUBS;
        let sub = (idx - EXACT as usize) % SUBS;
        // [2^exp + sub*2^(exp-3), 2^exp + (sub+1)*2^(exp-3) - 1]; the last
        // bucket's bound is u64::MAX, so compute in u128.
        let hi = (1u128 << exp) + (((sub + 1) as u128) << (exp - 3)) - 1;
        hi.min(u64::MAX as u128) as u64
    }
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

/// Monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `v` to the counter.
    pub fn add(&self, v: u64) {
        self.value.fetch_add(v, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Signed instantaneous level (queue depths, in-flight requests).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket log-linear histogram (see the crate docs for the layout).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Freezes the histogram into its snapshot row.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let count = self.count();
        let max = self.max.load(Ordering::Relaxed);
        let min = if count == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        };
        let quantile = |q: f64| -> u64 {
            let Some(idx0) = nearest_rank_index(count as usize, q) else {
                return 0;
            };
            let rank = idx0 as u64 + 1;
            let mut seen = 0u64;
            for (b, slot) in self.buckets.iter().enumerate() {
                seen += slot.load(Ordering::Relaxed);
                if seen >= rank {
                    return bucket_bound(b).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min,
            max,
            p50: quantile(0.50),
            p99: quantile(0.99),
            p999: quantile(0.999),
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Named get-or-create store of [`Counter`]s, [`Gauge`]s, and
/// [`Histogram`]s. Cloneable handles (`Arc`) come out; recording through a
/// handle never touches the registry locks again.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<HashMap<String, Arc<Counter>>>,
    gauges: RwLock<HashMap<String, Arc<Gauge>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
}

fn get_or_create<T: Default>(map: &RwLock<HashMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(v) = map.read().unwrap().get(name) {
        return Arc::clone(v);
    }
    let mut w = map.write().unwrap();
    Arc::clone(w.entry(name.to_string()).or_default())
}

impl Registry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.histograms, name)
    }

    /// Freezes every metric into a [`Snapshot`], rows sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: Vec<CounterSnapshot> = self
            .counters
            .read()
            .unwrap()
            .iter()
            .map(|(name, c)| CounterSnapshot {
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<GaugeSnapshot> = self
            .gauges
            .read()
            .unwrap()
            .iter()
            .map(|(name, g)| GaugeSnapshot {
                name: name.clone(),
                value: g.get(),
            })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSnapshot> = self
            .histograms
            .read()
            .unwrap()
            .iter()
            .map(|(name, h)| h.snapshot(name))
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot {
            schema: SCHEMA.to_string(),
            counters,
            gauges,
            histograms,
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot (obs/v1)
// ---------------------------------------------------------------------------

/// One counter row. Fields are name-first for greppable compact JSON.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Counter value at snapshot time.
    pub value: u64,
}

/// One gauge row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Gauge level at snapshot time.
    pub value: i64,
}

/// One histogram row: exact count/sum/min/max plus nearest-rank
/// percentiles reported at bucket granularity (exact below 16, within
/// 12.5% above — see the crate docs).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Number of samples (exact).
    pub count: u64,
    /// Sum of samples (exact).
    pub sum: u64,
    /// Smallest sample (exact; 0 when empty).
    pub min: u64,
    /// Largest sample (exact; 0 when empty).
    pub max: u64,
    /// Median (nearest-rank, bucket upper bound).
    pub p50: u64,
    /// 99th percentile (nearest-rank, bucket upper bound).
    pub p99: u64,
    /// 99.9th percentile (nearest-rank, bucket upper bound).
    pub p999: u64,
}

/// A frozen registry: the `obs/v1` wire and file format.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Always [`SCHEMA`] (`"obs/v1"`).
    pub schema: String,
    /// Counter rows, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Gauge rows, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histogram rows, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot {
            schema: SCHEMA.to_string(),
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        }
    }
}

impl Snapshot {
    /// Merges every row of `other` into `self` under `prefix` (e.g.
    /// `"worker0."`), used to fold per-worker registries into one global
    /// snapshot. Rows stay sorted.
    ///
    /// Name collisions are **kept, not combined**: if a prefixed row lands
    /// on a name `self` already has, both rows survive, with `self`'s row
    /// first (the sort is stable and merged rows are appended). Combining
    /// would silently fabricate totals — histogram percentiles in
    /// particular cannot be merged exactly — so a duplicated name is left
    /// visible for the consumer to notice.
    pub fn merge_prefixed(&mut self, other: &Snapshot, prefix: &str) {
        for c in &other.counters {
            self.counters.push(CounterSnapshot {
                name: format!("{prefix}{}", c.name),
                value: c.value,
            });
        }
        for g in &other.gauges {
            self.gauges.push(GaugeSnapshot {
                name: format!("{prefix}{}", g.name),
                value: g.value,
            });
        }
        for h in &other.histograms {
            let mut h = h.clone();
            h.name = format!("{prefix}{}", h.name);
            self.histograms.push(h);
        }
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        self.gauges.sort_by(|a, b| a.name.cmp(&b.name));
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Compact `obs/v1` JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serializes")
    }

    /// Parses `obs/v1` JSON (unknown extra fields are ignored).
    pub fn from_json(s: &str) -> Result<Snapshot, String> {
        let snap: Snapshot = serde_json::from_str(s).map_err(|e| e.to_string())?;
        if snap.schema != SCHEMA {
            return Err(format!(
                "unsupported metrics schema {:?} (want {SCHEMA:?})",
                snap.schema
            ));
        }
        Ok(snap)
    }

    /// Human-readable text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            let w = self.counters.iter().map(|c| c.name.len()).max().unwrap();
            for c in &self.counters {
                out.push_str(&format!("  {:<w$}  {}\n", c.name, c.value, w = w));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            let w = self.gauges.iter().map(|g| g.name.len()).max().unwrap();
            for g in &self.gauges {
                out.push_str(&format!("  {:<w$}  {}\n", g.name, g.value, w = w));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            let w = self
                .histograms
                .iter()
                .map(|h| h.name.len())
                .max()
                .unwrap()
                .max("name".len());
            out.push_str(&format!(
                "  {:<w$}  {:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>16}\n",
                "name",
                "count",
                "p50",
                "p99",
                "p999",
                "min",
                "max",
                "sum",
                w = w
            ));
            for h in &self.histograms {
                out.push_str(&format!(
                    "  {:<w$}  {:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>16}\n",
                    h.name,
                    h.count,
                    h.p50,
                    h.p99,
                    h.p999,
                    h.min,
                    h.max,
                    h.sum,
                    w = w
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Ambient API (feature `enabled`)
// ---------------------------------------------------------------------------

#[cfg(feature = "enabled")]
mod ambient {
    use super::*;
    use std::cell::RefCell;
    use std::sync::OnceLock;

    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

    thread_local! {
        static THREAD: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
    }

    /// Installs the process-global fallback registry. Returns `false` (and
    /// leaves the existing one in place) if one was already installed.
    pub fn install_global(r: Arc<Registry>) -> bool {
        GLOBAL.set(r).is_ok()
    }

    /// The process-global registry, if installed.
    pub fn global() -> Option<Arc<Registry>> {
        GLOBAL.get().cloned()
    }

    /// Sets (or with `None`, clears) this thread's registry. The thread
    /// registry shadows the global one for all ambient recording on this
    /// thread — engine workers use this so solver metrics land per-worker.
    pub fn set_thread(r: Option<Arc<Registry>>) {
        THREAD.with(|t| *t.borrow_mut() = r);
    }

    /// Runs `f` against the active registry (thread, else global), or
    /// returns `None` when neither is installed.
    pub fn with_active<R>(f: impl FnOnce(&Registry) -> R) -> Option<R> {
        THREAD.with(|t| {
            if let Some(r) = t.borrow().as_ref() {
                return Some(f(r));
            }
            GLOBAL.get().map(|r| f(r))
        })
    }

    /// True when any registry would receive ambient records.
    pub fn active() -> bool {
        THREAD.with(|t| t.borrow().is_some()) || GLOBAL.get().is_some()
    }
}

#[cfg(feature = "enabled")]
pub use ambient::{active, global, install_global, set_thread, with_active};

/// Adds `v` to the ambient counter `name` (no-op without a registry).
#[cfg(feature = "enabled")]
pub fn counter_add(name: &str, v: u64) {
    if v > 0 {
        with_active(|r| r.counter(name).add(v));
    }
}

/// Adds `delta` to the ambient gauge `name` (no-op without a registry).
#[cfg(feature = "enabled")]
pub fn gauge_add(name: &str, delta: i64) {
    with_active(|r| r.gauge(name).add(delta));
}

/// Records `ns` into the ambient histogram `name` (no-op without a
/// registry). By convention every duration histogram in the workspace is
/// in nanoseconds and named `*_ns`.
#[cfg(feature = "enabled")]
pub fn record_ns(name: &str, ns: u64) {
    with_active(|r| r.histogram(name).record(ns));
}

/// RAII timer from [`span`] / [`span!`]: on drop, records the elapsed
/// nanoseconds into the ambient histogram it was created for.
#[must_use = "a span records on drop; binding it to _ drops immediately"]
#[derive(Debug)]
pub struct Span {
    #[cfg(feature = "enabled")]
    armed: Option<(&'static str, Instant)>,
}

/// Starts a span timer for histogram `name`. When neither a registry nor a
/// tracer (see [`trace`]) is active at creation the span is disarmed and
/// drop does nothing (the clock is never read).
#[cfg(feature = "enabled")]
pub fn span(name: &'static str) -> Span {
    Span {
        armed: (ambient::active() || trace::enabled()).then(|| (name, Instant::now())),
    }
}

#[cfg(feature = "enabled")]
impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, start)) = self.armed.take() {
            let dur_ns = start.elapsed().as_nanos() as u64;
            record_ns(name, dur_ns);
            trace::emit_span(name, start, dur_ns);
        }
    }
}

// Disabled ambient API: every helper is an empty inlineable stub, so
// instrumented call sites compile to nothing.
#[cfg(not(feature = "enabled"))]
mod disabled {
    use super::*;

    /// No-op (built without the `enabled` feature).
    pub fn install_global(_r: Arc<Registry>) -> bool {
        false
    }
    /// No-op (built without the `enabled` feature).
    pub fn global() -> Option<Arc<Registry>> {
        None
    }
    /// No-op (built without the `enabled` feature).
    pub fn set_thread(_r: Option<Arc<Registry>>) {}
    /// No-op (built without the `enabled` feature).
    pub fn with_active<R>(_f: impl FnOnce(&Registry) -> R) -> Option<R> {
        None
    }
    /// No-op (built without the `enabled` feature).
    pub fn active() -> bool {
        false
    }
    /// No-op (built without the `enabled` feature).
    pub fn counter_add(_name: &str, _v: u64) {}
    /// No-op (built without the `enabled` feature).
    pub fn gauge_add(_name: &str, _delta: i64) {}
    /// No-op (built without the `enabled` feature).
    pub fn record_ns(_name: &str, _ns: u64) {}
    /// No-op (built without the `enabled` feature).
    pub fn span(_name: &'static str) -> Span {
        Span {}
    }
}

#[cfg(not(feature = "enabled"))]
pub use disabled::{
    active, counter_add, gauge_add, global, install_global, record_ns, set_thread, span,
    with_active,
};

/// Starts an RAII span timer recording into the named ambient histogram:
/// `let _span = sched_obs::span!("core.reduction.build_ns");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_edge_cases() {
        // 0 samples: no index, callers report 0.
        assert_eq!(nearest_rank_index(0, 0.5), None);
        assert_eq!(nearest_rank_index(0, 0.999), None);
        // 1 sample: every quantile is that sample.
        assert_eq!(nearest_rank_index(1, 0.0), Some(0));
        assert_eq!(nearest_rank_index(1, 0.5), Some(0));
        assert_eq!(nearest_rank_index(1, 0.999), Some(0));
        // 2 samples: p50 is the lower, p99/p999 the upper.
        assert_eq!(nearest_rank_index(2, 0.5), Some(0));
        assert_eq!(nearest_rank_index(2, 0.99), Some(1));
        assert_eq!(nearest_rank_index(2, 0.999), Some(1));
        // The classic 100-sample case: p50 is sample 50 (1-based), p99
        // sample 99, p999 clamps to sample 100.
        assert_eq!(nearest_rank_index(100, 0.5), Some(49));
        assert_eq!(nearest_rank_index(100, 0.99), Some(98));
        assert_eq!(nearest_rank_index(100, 0.999), Some(99));
    }

    #[test]
    fn bucket_layout_is_monotone_and_tight() {
        // Every value maps into a bucket whose bound is >= the value, and
        // the bound is within 12.5% above the exact range.
        let probes: Vec<u64> = (0..64)
            .flat_map(|e| {
                let base = 1u64 << e;
                [
                    base,
                    base + base / 3,
                    base + base / 2,
                    base.saturating_mul(2).saturating_sub(1),
                ]
            })
            .chain(0..=17)
            .chain([u64::MAX, u64::MAX - 1])
            .collect();
        for &v in &probes {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS, "index {idx} out of range for {v}");
            let hi = bucket_bound(idx);
            assert!(hi >= v, "bound {hi} below value {v}");
            if v >= EXACT {
                // Relative error of reporting the bound instead of v.
                let err = (hi - v) as f64 / v as f64;
                assert!(err <= 0.125, "error {err} too large for {v}");
            } else {
                assert_eq!(hi, v, "exact range must be exact");
            }
        }
        // Bucket indices are monotone in the value.
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        for pair in sorted.windows(2) {
            assert!(bucket_index(pair[0]) <= bucket_index(pair[1]));
        }
        // The last bucket's bound is u64::MAX exactly.
        assert_eq!(bucket_bound(bucket_index(u64::MAX)), u64::MAX);
    }

    #[test]
    fn histogram_exact_below_sixteen() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.record(v);
        }
        let s = h.snapshot("t");
        assert_eq!(s.count, 10);
        assert_eq!(s.sum, 55);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10);
        assert_eq!(s.p50, 5); // rank ceil(0.5*10)=5 -> sample 5
        assert_eq!(s.p99, 10);
        assert_eq!(s.p999, 10);
    }

    #[test]
    fn histogram_empty_and_singleton() {
        let h = Histogram::default();
        let s = h.snapshot("empty");
        assert_eq!(
            (s.count, s.sum, s.min, s.max, s.p50, s.p99, s.p999),
            (0, 0, 0, 0, 0, 0, 0)
        );
        h.record(1234);
        let s = h.snapshot("one");
        assert_eq!(s.count, 1);
        assert_eq!((s.min, s.max), (1234, 1234));
        // Single sample: all percentiles clamp to the exact max.
        assert_eq!((s.p50, s.p99, s.p999), (1234, 1234, 1234));
    }

    #[test]
    fn histogram_two_samples_follow_nearest_rank() {
        let h = Histogram::default();
        h.record(2);
        h.record(9);
        let s = h.snapshot("two");
        assert_eq!(s.p50, 2, "p50 of two samples is the lower");
        assert_eq!(s.p99, 9, "p99 of two samples is the upper");
    }

    #[test]
    fn histogram_percentile_within_bucket_error() {
        let h = Histogram::default();
        for v in 0..10_000u64 {
            h.record(v * 97); // spread across many octaves
        }
        let s = h.snapshot("wide");
        let exact_p99 = 97 * 9899; // nearest-rank on the exact samples
        assert!(s.p99 >= exact_p99 as u64);
        assert!((s.p99 as f64) <= exact_p99 as f64 * 1.125 + 1.0);
        assert_eq!(s.max, 97 * 9_999);
        assert!(s.p999 <= s.max);
    }

    #[test]
    fn registry_handles_are_shared() {
        let r = Registry::new();
        r.counter("a").add(2);
        r.counter("a").add(3);
        assert_eq!(r.counter("a").get(), 5);
        r.gauge("g").add(7);
        r.gauge("g").add(-3);
        assert_eq!(r.gauge("g").get(), 4);
        r.histogram("h").record(10);
        assert_eq!(r.histogram("h").count(), 1);
    }

    #[test]
    fn snapshot_json_round_trip_and_schema() {
        let r = Registry::new();
        r.counter("b.count").inc();
        r.counter("a.count").add(41);
        r.gauge("depth").set(3);
        r.histogram("lat_ns").record(100);
        r.histogram("lat_ns").record(200);
        let snap = r.snapshot();
        assert_eq!(snap.schema, SCHEMA);
        // Sorted by name.
        assert_eq!(snap.counters[0].name, "a.count");
        assert_eq!(snap.counters[1].name, "b.count");
        let json = snap.to_json();
        // Greppable, name-first compact encoding.
        assert!(json.contains("\"schema\":\"obs/v1\""), "{json}");
        assert!(json.contains("\"name\":\"a.count\",\"value\":41"), "{json}");
        assert!(json.contains("\"name\":\"lat_ns\",\"count\":2"), "{json}");
        let back = Snapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        // Unknown extra fields must be ignored (forward compatibility).
        let extended = json.replacen(
            "\"schema\":\"obs/v1\"",
            "\"schema\":\"obs/v1\",\"future\":{\"x\":1}",
            1,
        );
        assert_eq!(Snapshot::from_json(&extended).unwrap(), snap);
        // Wrong schema rejected.
        assert!(Snapshot::from_json(&json.replacen("obs/v1", "obs/v9", 1)).is_err());
    }

    #[test]
    fn merge_prefixed_keeps_rows_sorted() {
        let a = Registry::new();
        a.counter("x").inc();
        let b = Registry::new();
        b.counter("a").add(2);
        b.histogram("h").record(5);
        let mut snap = a.snapshot();
        snap.merge_prefixed(&b.snapshot(), "worker0.");
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["worker0.a", "x"]);
        assert_eq!(snap.histograms[0].name, "worker0.h");
    }

    #[test]
    fn render_text_mentions_every_metric() {
        let r = Registry::new();
        r.counter("hits").add(9);
        r.gauge("depth").set(-2);
        r.histogram("lat_ns").record(50);
        let text = r.snapshot().render_text();
        assert!(text.contains("hits"), "{text}");
        assert!(text.contains("depth"), "{text}");
        assert!(text.contains("lat_ns"), "{text}");
        assert!(text.contains("p999"), "{text}");
        assert_eq!(Snapshot::default().render_text(), "(no metrics recorded)\n");
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn ambient_thread_registry_scopes_recording() {
        // Thread registry shadows global; clearing it restores fallback.
        let r = Arc::new(Registry::new());
        set_thread(Some(Arc::clone(&r)));
        counter_add("scoped", 2);
        record_ns("span_ns", 10);
        {
            let _s = span!("timed_ns");
        }
        gauge_add("g", -4);
        set_thread(None);
        assert_eq!(r.counter("scoped").get(), 2);
        assert_eq!(r.gauge("g").get(), -4);
        assert_eq!(r.histogram("span_ns").count(), 1);
        assert_eq!(r.histogram("timed_ns").count(), 1);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn spans_are_disarmed_without_a_registry() {
        // No thread registry on this test thread and we never rely on the
        // global: a span created while inactive must not record even if a
        // registry appears before the drop.
        set_thread(None);
        trace::set_thread(None);
        if global().is_some() || trace::global().is_some() {
            return; // another test in the process installed a global sink
        }
        let s = span!("never_ns");
        let r = Arc::new(Registry::new());
        set_thread(Some(Arc::clone(&r)));
        drop(s);
        set_thread(None);
        assert_eq!(r.histogram("never_ns").count(), 0);
    }

    #[test]
    fn merge_prefixed_keeps_both_rows_on_name_collision() {
        // an empty prefix makes every row of `other` collide with `self`
        let a = Registry::new();
        a.counter("reqs").add(3);
        a.gauge("depth").add(1);
        a.histogram("lat_ns").record(10);
        let b = Registry::new();
        b.counter("reqs").add(5);
        b.gauge("depth").add(2);
        b.histogram("lat_ns").record(20);

        let mut snap = a.snapshot();
        snap.merge_prefixed(&b.snapshot(), "");
        // both rows survive — nothing is silently summed or dropped —
        // and the pre-existing row sorts first (stable sort, appended
        // rows come later among equals)
        let reqs: Vec<u64> = snap
            .counters
            .iter()
            .filter(|c| c.name == "reqs")
            .map(|c| c.value)
            .collect();
        assert_eq!(reqs, vec![3, 5]);
        let depths: Vec<i64> = snap
            .gauges
            .iter()
            .filter(|g| g.name == "depth")
            .map(|g| g.value)
            .collect();
        assert_eq!(depths, vec![1, 2]);
        let lats: Vec<u64> = snap
            .histograms
            .iter()
            .filter(|h| h.name == "lat_ns")
            .map(|h| h.sum)
            .collect();
        assert_eq!(lats, vec![10, 20]);
        // rows stay globally sorted by name despite the duplicates
        assert!(snap.counters.windows(2).all(|w| w[0].name <= w[1].name));

        // the same prefix applied twice duplicates deterministically too
        let mut twice = Registry::new().snapshot();
        twice.merge_prefixed(&b.snapshot(), "w0.");
        twice.merge_prefixed(&b.snapshot(), "w0.");
        assert_eq!(
            twice
                .counters
                .iter()
                .filter(|c| c.name == "w0.reqs")
                .count(),
            2
        );
    }

    #[test]
    fn from_json_rejects_malformed_and_truncated_input_without_panicking() {
        let valid = {
            let r = Registry::new();
            r.counter("c").add(1);
            r.snapshot().to_json()
        };
        assert!(Snapshot::from_json(&valid).is_ok());

        // truncations at every length must fail with a nonzero-information
        // error (never a panic, never a silent default)
        for cut in 0..valid.len().min(80) {
            let err =
                Snapshot::from_json(&valid[..cut]).expect_err("truncated snapshot must not parse");
            assert!(!err.is_empty(), "error carries a message at cut {cut}");
        }

        // structurally valid JSON of the wrong shape
        for bad in ["[]", "42", "\"obs/v1\"", "{\"schema\":17}"] {
            let err = Snapshot::from_json(bad).expect_err(bad);
            assert!(!err.is_empty(), "{bad}");
        }

        // right shape, wrong schema tag: the error names both schemas
        let err = Snapshot::from_json(
            "{\"schema\":\"obs/v0\",\"counters\":[],\"gauges\":[],\"histograms\":[]}",
        )
        .expect_err("wrong schema must not parse");
        assert!(err.contains("obs/v0") && err.contains(SCHEMA), "{err}");
    }
}
