//! Algorithms 1 and 2: the (non-)monotone submodular secretary problem.
//!
//! **Algorithm 1** (monotone, Theorem 3.2.5, `(1−1/e)/(7e)`-competitive):
//! partition the stream into `k` equal segments; within segment `i`, run the
//! classical 1/e rule on the *marginal* objective `e ↦ f(T_{i−1} ∪ {e})`,
//! hiring at most one element per segment. The `if αᵢ < f(T_{i−1})` clamp in
//! the paper's pseudocode keeps `f(Tᵢ)` non-decreasing even when `f` is not
//! monotone.
//!
//! **Algorithm 2** (non-monotone, Theorem 3.2.8, `1/(8e²)`-competitive):
//! split the stream into halves `U₁, U₂`; with probability 1/2 run
//! Algorithm 1 on `U₁`, otherwise on `U₂`. The halves are disjoint, so by
//! Lemma 3.2.7 one of `f(R ∪ X₁), f(R ∪ X₂)` is at least `f(R)/2`.

use rand::Rng;
use submodular::{BitSet, SetFn};

/// Euler's constant reciprocal, the observation fraction of the 1/e rule.
const INV_E: f64 = 0.36787944117144233;

/// Algorithm 1. `stream` is the arrival order (element ids); at most `k`
/// elements are hired, at most one per segment. Returns the hired set in
/// hire order.
///
/// Value-oracle discipline: `f` is only evaluated on subsets of elements at
/// or before the current stream position, matching §3.2.1.
pub fn submodular_secretary<F: SetFn + ?Sized>(f: &F, stream: &[u32], k: usize) -> Vec<u32> {
    let n = stream.len();
    let mut hired: Vec<u32> = Vec::with_capacity(k);
    if n == 0 || k == 0 {
        return hired;
    }
    let mut t_set = BitSet::new(f.ground_size());
    let mut f_t = f.eval(&t_set); // f(∅)

    let seg_len = n as f64 / k as f64;
    let mut with_e = BitSet::new(f.ground_size());

    for i in 0..k {
        let seg_start = (i as f64 * seg_len).floor() as usize;
        let seg_end = (((i + 1) as f64) * seg_len).floor() as usize;
        let seg_end = seg_end.min(n).max(seg_start);
        if seg_start >= seg_end {
            continue;
        }
        let obs_end = (seg_start as f64 + (seg_end - seg_start) as f64 * INV_E).floor() as usize;
        let obs_end = obs_end.clamp(seg_start, seg_end);

        // observation window: record α_i = max f(T ∪ {a_j})
        let mut alpha = f64::NEG_INFINITY;
        for &e in &stream[seg_start..obs_end] {
            with_e.copy_from(&t_set);
            with_e.insert(e);
            alpha = alpha.max(f.eval(&with_e));
        }
        // the paper's clamp: never accept a value that decreases f(T)
        if alpha < f_t {
            alpha = f_t;
        }

        // selection window: hire the first element matching the threshold
        for &e in &stream[obs_end..seg_end] {
            with_e.copy_from(&t_set);
            with_e.insert(e);
            let v = f.eval(&with_e);
            if v >= alpha {
                t_set.insert(e);
                f_t = v;
                hired.push(e);
                break;
            }
        }
    }
    hired
}

/// Algorithm 2: the non-monotone wrapper. Flips one fair coin (from `rng`)
/// and runs Algorithm 1 on the first or second half of the stream.
pub fn nonmonotone_submodular_secretary<F: SetFn + ?Sized>(
    f: &F,
    stream: &[u32],
    k: usize,
    rng: &mut impl Rng,
) -> Vec<u32> {
    let n = stream.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let half = n / 2;
    if rng.gen_bool(0.5) {
        submodular_secretary(f, &stream[..half], k)
    } else {
        submodular_secretary(f, &stream[half..], k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::offline_greedy;
    use crate::stream::random_stream;
    use rand::SeedableRng;
    use submodular::functions::{AdditiveFn, CoverageFn, DirectedCutFn, MaxFn};

    fn eval_set<F: SetFn + ?Sized>(f: &F, set: &[u32]) -> f64 {
        f.eval(&BitSet::from_iter(f.ground_size(), set.iter().copied()))
    }

    #[test]
    fn hires_at_most_k() {
        let f = AdditiveFn::new((0..40).map(|i| i as f64 + 1.0).collect());
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for k in [1usize, 3, 7] {
            let s = random_stream(40, &mut rng);
            let hired = submodular_secretary(&f, &s, k);
            assert!(hired.len() <= k);
            // no duplicates
            let mut h = hired.clone();
            h.sort_unstable();
            h.dedup();
            assert_eq!(h.len(), hired.len());
        }
    }

    #[test]
    fn empty_inputs() {
        let f = AdditiveFn::new(vec![1.0]);
        assert!(submodular_secretary(&f, &[], 3).is_empty());
        assert!(submodular_secretary(&f, &[0], 0).is_empty());
    }

    #[test]
    fn k_equals_one_reduces_to_classic_style() {
        // with k=1 the algorithm is a single 1/e rule on f({e})
        let f = MaxFn::new((0..30).map(|i| i as f64).collect());
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let trials = 2000;
        let mut hits = 0;
        for _ in 0..trials {
            let s = random_stream(30, &mut rng);
            let hired = submodular_secretary(&f, &s, 1);
            if hired.first() == Some(&29) {
                hits += 1;
            }
        }
        let p = hits as f64 / trials as f64;
        assert!(
            p > 0.25,
            "should hire the best with probability ≈ 1/e, got {p}"
        );
    }

    #[test]
    fn monotone_competitive_ratio_exceeds_theorem_bound() {
        // Monte-Carlo: expected value must beat the (1-1/e)/(7e) ≈ 0.0332
        // bound comfortably on coverage instances.
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let universe = 60;
        let n = 80;
        let covers: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                (0..universe as u32)
                    .filter(|_| rng.gen_bool(0.08))
                    .collect()
            })
            .collect();
        let f = CoverageFn::unweighted(universe, covers);
        let k = 8;
        let (_, opt) = offline_greedy(&f, k);
        assert!(opt > 0.0);
        let trials = 300;
        let mut total = 0.0;
        for _ in 0..trials {
            let s = random_stream(n, &mut rng);
            let hired = submodular_secretary(&f, &s, k);
            total += eval_set(&f, &hired);
        }
        let ratio = (total / trials as f64) / opt;
        let bound = (1.0 - 1.0 / std::f64::consts::E) / (7.0 * std::f64::consts::E);
        assert!(
            ratio >= bound,
            "empirical competitive ratio {ratio} below paper bound {bound}"
        );
    }

    #[test]
    fn values_never_decrease_under_clamp() {
        // On a non-monotone function, Algorithm 1's clamp keeps f(T_i)
        // non-decreasing; verify via the cut function.
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let n = 30;
        let arcs: Vec<(u32, u32, f64)> = (0..n as u32)
            .flat_map(|u| (0..n as u32).map(move |v| (u, v)))
            .filter(|&(u, v)| u != v && (u + v) % 3 == 0)
            .map(|(u, v)| (u, v, 1.0))
            .collect();
        let f = DirectedCutFn::new(n, arcs);
        for _ in 0..50 {
            let s = random_stream(n, &mut rng);
            let hired = submodular_secretary(&f, &s, 5);
            // replay the prefix values
            let mut prev = 0.0;
            for i in 0..=hired.len() {
                let v = eval_set(&f, &hired[..i]);
                assert!(
                    v >= prev - 1e-9,
                    "f(T_i) decreased: {v} < {prev} (prefix {i})"
                );
                prev = v;
            }
        }
    }

    #[test]
    fn nonmonotone_wrapper_hires_from_one_half_only() {
        let f = AdditiveFn::new(vec![1.0; 20]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let s = random_stream(20, &mut rng);
        let first_half: std::collections::HashSet<u32> = s[..10].iter().copied().collect();
        let hired = nonmonotone_submodular_secretary(&f, &s, 3, &mut rng);
        assert!(!hired.is_empty());
        let in_first = hired.iter().filter(|e| first_half.contains(e)).count();
        assert!(
            in_first == 0 || in_first == hired.len(),
            "hires must come from exactly one half"
        );
    }

    #[test]
    fn nonmonotone_beats_bound_on_cut_streams() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let n = 40;
        let arcs: Vec<(u32, u32, f64)> = (0..200)
            .map(|_| {
                (
                    rng.gen_range(0..n as u32),
                    rng.gen_range(0..n as u32),
                    rng.gen_range(1..5) as f64,
                )
            })
            .filter(|&(u, v, _)| u != v)
            .collect();
        let f = DirectedCutFn::new(n, arcs);
        let k = 6;
        let (_, greedy_ref) = offline_greedy(&f, k);
        assert!(greedy_ref > 0.0);
        let trials = 400;
        let mut total = 0.0;
        for _ in 0..trials {
            let s = random_stream(n, &mut rng);
            let hired = nonmonotone_submodular_secretary(&f, &s, k, &mut rng);
            total += eval_set(&f, &hired);
        }
        let ratio = (total / trials as f64) / greedy_ref;
        let bound = 1.0 / (8.0 * std::f64::consts::E * std::f64::consts::E);
        assert!(
            ratio >= bound,
            "non-monotone ratio {ratio} below 1/(8e²) = {bound}"
        );
    }
}
