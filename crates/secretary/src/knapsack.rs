//! Section 3.4: the submodular secretary problem under `l` knapsack
//! constraints (Theorem 3.1.3, `O(l)`-competitive).
//!
//! Reduction (Lemma 3.4.1): scale every knapsack to capacity 1 and give item
//! `j` the single weight `w'_j = max_i w_ij / C_i`; any set feasible for the
//! single knapsack is feasible for all `l`, and the single-knapsack optimum
//! is at least `OPT/4l`. Both steps are online-safe (computable on arrival).
//!
//! Single-knapsack algorithm: flip a fair coin. *Heads*: hire the single
//! best item via the 1/e rule (covers the case of one dominant item).
//! *Tails*: observe the first half, compute a constant-factor offline
//! estimate `ÔPT` of the knapsack optimum on it (density greedy ∨ best
//! single item — our substitution for the Lee et al. solver, see DESIGN.md),
//! then greedily take second-half items whose marginal density beats
//! `ÔPT/6` while they fit.

use rand::Rng;
use submodular::{BitSet, SetFn};

use crate::classic::classic_secretary;

const INV_E: f64 = 0.36787944117144233;

/// An `l`-knapsack constraint system over items `0..n`.
#[derive(Clone, Debug)]
pub struct KnapsackInstance {
    /// `weights[i][j]` = weight of item `j` in knapsack `i` (non-negative).
    pub weights: Vec<Vec<f64>>,
    /// `capacities[i]` > 0.
    pub capacities: Vec<f64>,
}

impl KnapsackInstance {
    /// Creates and validates an instance.
    pub fn new(weights: Vec<Vec<f64>>, capacities: Vec<f64>) -> Self {
        assert_eq!(weights.len(), capacities.len());
        assert!(!capacities.is_empty(), "need at least one knapsack");
        let n = weights.first().map_or(0, |w| w.len());
        for (i, row) in weights.iter().enumerate() {
            assert_eq!(row.len(), n, "knapsack {i} has wrong arity");
            assert!(row.iter().all(|&w| w >= 0.0), "negative weight");
        }
        assert!(capacities.iter().all(|&c| c > 0.0), "non-positive capacity");
        Self {
            weights,
            capacities,
        }
    }

    /// Number of knapsacks `l`.
    pub fn num_knapsacks(&self) -> usize {
        self.capacities.len()
    }

    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.weights.first().map_or(0, |w| w.len())
    }

    /// Is `set` feasible in every knapsack?
    pub fn feasible(&self, set: &[u32]) -> bool {
        self.weights
            .iter()
            .zip(&self.capacities)
            .all(|(row, &c)| set.iter().map(|&j| row[j as usize]).sum::<f64>() <= c + 1e-12)
    }

    /// The reduction's single-knapsack weights `w'_j = max_i w_ij / C_i`
    /// (capacity 1).
    pub fn reduced_weights(&self) -> Vec<f64> {
        let n = self.num_items();
        (0..n)
            .map(|j| {
                self.weights
                    .iter()
                    .zip(&self.capacities)
                    .map(|(row, &c)| row[j] / c)
                    .fold(0.0, f64::max)
            })
            .collect()
    }
}

/// Offline constant-factor approximation for submodular maximization under a
/// single unit knapsack, restricted to `items`: max(density greedy, best
/// single item). Used to estimate `ÔPT` from the first half of the stream.
pub fn offline_knapsack_estimate<F: SetFn + ?Sized>(f: &F, w: &[f64], items: &[u32]) -> f64 {
    let n = f.ground_size();
    let mut best_single = 0.0f64;
    let mut buf = BitSet::new(n);
    for &j in items {
        if w[j as usize] <= 1.0 {
            buf.clear();
            buf.insert(j);
            best_single = best_single.max(f.eval(&buf));
        }
    }

    // density greedy
    let mut taken = BitSet::new(n);
    let mut cur = f.eval(&taken);
    let mut load = 0.0;
    let mut remaining: Vec<u32> = items.to_vec();
    let mut tmp = BitSet::new(n);
    loop {
        let mut best: Option<(f64, usize)> = None;
        for (pos, &j) in remaining.iter().enumerate() {
            let wj = w[j as usize];
            if wj <= 0.0 || load + wj > 1.0 {
                continue;
            }
            tmp.copy_from(&taken);
            tmp.insert(j);
            let gain = f.eval(&tmp) - cur;
            if gain <= 0.0 {
                continue;
            }
            let density = gain / wj;
            if best.is_none_or(|(d, _)| density > d) {
                best = Some((density, pos));
            }
        }
        let Some((_, pos)) = best else { break };
        let j = remaining.swap_remove(pos);
        taken.insert(j);
        load += w[j as usize];
        cur = f.eval(&taken);
    }
    cur.max(best_single)
}

/// Theorem 3.1.3: the `l`-knapsack submodular secretary algorithm. `stream`
/// is the arrival order; the returned set is feasible in every knapsack.
pub fn knapsack_secretary<F: SetFn + ?Sized>(
    f: &F,
    inst: &KnapsackInstance,
    stream: &[u32],
    rng: &mut impl Rng,
) -> Vec<u32> {
    let n = stream.len();
    if n == 0 {
        return Vec::new();
    }
    let w = inst.reduced_weights();
    let ground = f.ground_size();

    if rng.gen_bool(0.5) {
        // best single feasible item via 1/e rule
        let vals: Vec<f64> = stream
            .iter()
            .map(|&j| {
                if w[j as usize] <= 1.0 {
                    let mut b = BitSet::new(ground);
                    b.insert(j);
                    f.eval(&b)
                } else {
                    f64::NEG_INFINITY
                }
            })
            .collect();
        return match classic_secretary(&vals, INV_E) {
            Some(pos) if vals[pos].is_finite() => vec![stream[pos]],
            _ => Vec::new(),
        };
    }

    // estimate phase on the first half
    let half = n / 2;
    let estimate = offline_knapsack_estimate(f, &w, &stream[..half]);
    if estimate <= 0.0 {
        return Vec::new();
    }
    let density_bar = estimate / 6.0;

    // selection phase on the second half
    let mut taken_ids: Vec<u32> = Vec::new();
    let mut taken = BitSet::new(ground);
    let mut cur = f.eval(&taken);
    let mut load = 0.0;
    let mut tmp = BitSet::new(ground);
    for &j in &stream[half..] {
        let wj = w[j as usize];
        if wj <= 0.0 || load + wj > 1.0 {
            continue;
        }
        tmp.copy_from(&taken);
        tmp.insert(j);
        let v = f.eval(&tmp);
        let gain = v - cur;
        if gain / wj >= density_bar {
            taken.insert(j);
            taken_ids.push(j);
            cur = v;
            load += wj;
        }
    }
    taken_ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::random_stream;
    use rand::SeedableRng;
    use submodular::functions::AdditiveFn;

    fn eval_set<F: SetFn + ?Sized>(f: &F, set: &[u32]) -> f64 {
        f.eval(&BitSet::from_iter(f.ground_size(), set.iter().copied()))
    }

    #[test]
    fn reduction_weights_and_feasibility() {
        let inst = KnapsackInstance::new(
            vec![vec![2.0, 1.0, 4.0], vec![1.0, 3.0, 1.0]],
            vec![4.0, 6.0],
        );
        let w = inst.reduced_weights();
        assert_eq!(w, vec![0.5, 0.5, 1.0]);
        assert!(inst.feasible(&[0, 1]));
        assert!(inst.feasible(&[2]));
        assert!(!inst.feasible(&[0, 1, 2])); // knapsack 0: 2+1+4=7 > 4
    }

    #[test]
    fn single_knapsack_reduction_preserves_feasibility() {
        // any set feasible under (w', cap 1) must be feasible in all knapsacks
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..30 {
            let n = 8;
            let l = rng.gen_range(1..4usize);
            let weights: Vec<Vec<f64>> = (0..l)
                .map(|_| (0..n).map(|_| rng.gen_range(0.0..3.0)).collect())
                .collect();
            let caps: Vec<f64> = (0..l).map(|_| rng.gen_range(1.0..5.0)).collect();
            let inst = KnapsackInstance::new(weights, caps);
            let w = inst.reduced_weights();
            // random subsets feasible under reduced weights
            let set: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(0.4)).collect();
            let reduced_ok = set.iter().map(|&j| w[j as usize]).sum::<f64>() <= 1.0;
            if reduced_ok {
                assert!(inst.feasible(&set), "reduction not conservative");
            }
        }
    }

    #[test]
    fn offline_estimate_reasonable() {
        // items weights 0.5 each, additive values; best pair value
        let f = AdditiveFn::new(vec![4.0, 3.0, 2.0, 1.0]);
        let w = vec![0.5, 0.5, 0.5, 0.5];
        let est = offline_knapsack_estimate(&f, &w, &[0, 1, 2, 3]);
        assert_eq!(est, 7.0); // density greedy takes items 0 and 1
    }

    #[test]
    fn output_always_feasible() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        use rand::Rng;
        let n = 30;
        let f = AdditiveFn::new((0..n).map(|_| rng.gen_range(1.0..10.0)).collect());
        let weights: Vec<Vec<f64>> = (0..2)
            .map(|_| (0..n).map(|_| rng.gen_range(0.1..2.0)).collect())
            .collect();
        let inst = KnapsackInstance::new(weights, vec![3.0, 4.0]);
        for _ in 0..200 {
            let s = random_stream(n, &mut rng);
            let taken = knapsack_secretary(&f, &inst, &s, &mut rng);
            assert!(inst.feasible(&taken), "infeasible output {taken:?}");
        }
    }

    #[test]
    fn achieves_constant_fraction_of_offline() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        use rand::Rng;
        let n = 60;
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..10.0)).collect();
        let f = AdditiveFn::new(values);
        let weights = vec![(0..n)
            .map(|_| rng.gen_range(0.1..1.0))
            .collect::<Vec<f64>>()];
        let inst = KnapsackInstance::new(weights, vec![2.0]);
        let w = inst.reduced_weights();
        let all: Vec<u32> = (0..n as u32).collect();
        let offline = offline_knapsack_estimate(&f, &w, &all);
        assert!(offline > 0.0);
        let trials = 600;
        let mut total = 0.0;
        for _ in 0..trials {
            let s = random_stream(n, &mut rng);
            let taken = knapsack_secretary(&f, &inst, &s, &mut rng);
            total += eval_set(&f, &taken);
        }
        let ratio = (total / trials as f64) / offline;
        assert!(
            ratio >= 0.05,
            "knapsack secretary ratio {ratio} too far below constant"
        );
    }

    #[test]
    fn empty_stream() {
        let f = AdditiveFn::new(vec![]);
        let inst = KnapsackInstance::new(vec![vec![]], vec![1.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert!(knapsack_secretary(&f, &inst, &[], &mut rng).is_empty());
    }
}
