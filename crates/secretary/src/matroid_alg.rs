//! Algorithm 3: the (multi-)matroid submodular secretary problem
//! (Theorem 3.1.2, `O(l log² r)`-competitive).
//!
//! The algorithm works on the first half `U₁` of the stream only (so that in
//! expectation a large independent fragment of the optimum is still
//! addable later), guesses the refined-optimum size `k = |S*|` uniformly from
//! `{2⁰, 2¹, …, 2^⌈log₂ r⌉}` (the `log r` guessing loses one `log r` factor;
//! the per-segment analysis the other), and then runs the segment/threshold
//! machinery of Algorithm 1 restricted to moves that keep the hired set
//! independent in **all** given matroids. Small guesses (`k ≤ log₂ r`)
//! degrade to hiring the single best feasible element by the 1/e rule.

use matroid::Matroid;
use rand::Rng;
use submodular::{BitSet, SetFn};

const INV_E: f64 = 0.36787944117144233;

/// Runs Algorithm 3 on the arrival order `stream` under the given matroid
/// constraints. Returns the hired set (independent in every matroid).
pub fn matroid_submodular_secretary<F: SetFn + ?Sized>(
    f: &F,
    stream: &[u32],
    matroids: &[&dyn Matroid],
    rng: &mut impl Rng,
) -> Vec<u32> {
    let n = stream.len();
    if n == 0 || matroids.is_empty() {
        return Vec::new();
    }
    let r = matroid::max_rank(matroids).max(1);
    let log_r = (r as f64).log2().ceil() as u32;

    // guess k uniformly from {2^0, ..., 2^log_r}
    let exp = rng.gen_range(0..=log_r);
    let k = 1usize << exp;

    let half = &stream[..n / 2];
    if half.is_empty() {
        return Vec::new();
    }

    if (k as f64) <= (r as f64).log2().max(1.0) {
        // singleton mode: 1/e rule over feasible single elements of U1
        return best_feasible_singleton(f, half, matroids);
    }

    segmented_matroid_greedy(f, half, matroids, k)
}

/// 1/e rule on `f({e})` restricted to elements independent as singletons.
fn best_feasible_singleton<F: SetFn + ?Sized>(
    f: &F,
    stream: &[u32],
    matroids: &[&dyn Matroid],
) -> Vec<u32> {
    let n = stream.len();
    let cutoff = ((n as f64) * INV_E).floor() as usize;
    let mut single = BitSet::new(f.ground_size());
    let eval1 = |e: u32, buf: &mut BitSet| {
        buf.clear();
        buf.insert(e);
        f.eval(buf)
    };
    let feasible = |e: u32| matroids.iter().all(|m| m.is_independent(&[e]));

    let mut threshold = f64::NEG_INFINITY;
    for &e in &stream[..cutoff] {
        if feasible(e) {
            threshold = threshold.max(eval1(e, &mut single));
        }
    }
    for &e in &stream[cutoff..] {
        if feasible(e) && eval1(e, &mut single) > threshold {
            return vec![e];
        }
    }
    Vec::new()
}

/// Algorithm 1's segment/threshold loop with matroid feasibility filters:
/// `k` segments over `stream`, at most one hire per segment, hires must keep
/// the set independent in all matroids (the `T_{i−1} ∪ {a_j} ∈ I` conditions
/// in the paper's pseudocode).
fn segmented_matroid_greedy<F: SetFn + ?Sized>(
    f: &F,
    stream: &[u32],
    matroids: &[&dyn Matroid],
    k: usize,
) -> Vec<u32> {
    let n = stream.len();
    let mut hired: Vec<u32> = Vec::new();
    let mut t_set = BitSet::new(f.ground_size());
    let mut f_t = f.eval(&t_set);
    let seg_len = n as f64 / k as f64;
    let mut with_e = BitSet::new(f.ground_size());

    for i in 0..k {
        let seg_start = (i as f64 * seg_len).floor() as usize;
        let seg_end = ((((i + 1) as f64) * seg_len).floor() as usize).min(n);
        if seg_start >= seg_end {
            continue;
        }
        let obs_end = (seg_start as f64 + (seg_end - seg_start) as f64 * INV_E).floor() as usize;
        let obs_end = obs_end.clamp(seg_start, seg_end);

        let feasible = |e: u32, hired: &Vec<u32>| matroids.iter().all(|m| m.can_add(hired, e));

        let mut alpha = f64::NEG_INFINITY;
        for &e in &stream[seg_start..obs_end] {
            if t_set.contains(e) || !feasible(e, &hired) {
                continue;
            }
            with_e.copy_from(&t_set);
            with_e.insert(e);
            alpha = alpha.max(f.eval(&with_e));
        }
        if alpha < f_t {
            alpha = f_t;
        }

        for &e in &stream[obs_end..seg_end] {
            if t_set.contains(e) || !feasible(e, &hired) {
                continue;
            }
            with_e.copy_from(&t_set);
            with_e.insert(e);
            let v = f.eval(&with_e);
            if v >= alpha {
                t_set.insert(e);
                hired.push(e);
                f_t = v;
                break;
            }
        }
    }
    hired
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offline::offline_matroid_greedy;
    use crate::stream::random_stream;
    use matroid::{GraphicMatroid, PartitionMatroid, UniformMatroid};
    use rand::SeedableRng;
    use submodular::functions::{AdditiveFn, CoverageFn};

    fn eval_set<F: SetFn + ?Sized>(f: &F, set: &[u32]) -> f64 {
        f.eval(&BitSet::from_iter(f.ground_size(), set.iter().copied()))
    }

    #[test]
    fn output_always_independent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let n = 40;
        let f = AdditiveFn::new((0..n).map(|i| (i % 7) as f64 + 1.0).collect());
        let m1 = UniformMatroid::new(n, 5);
        let m2 = PartitionMatroid::new((0..n as u32).map(|e| e % 4).collect(), vec![2; 4]);
        let ms: Vec<&dyn Matroid> = vec![&m1, &m2];
        for _ in 0..100 {
            let s = random_stream(n, &mut rng);
            let hired = matroid_submodular_secretary(&f, &s, &ms, &mut rng);
            assert!(
                matroid::independent_in_all(&ms, &hired),
                "hired {hired:?} dependent"
            );
        }
    }

    #[test]
    fn empty_cases() {
        let f = AdditiveFn::new(vec![1.0]);
        let m = UniformMatroid::new(1, 1);
        let ms: Vec<&dyn Matroid> = vec![&m];
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert!(matroid_submodular_secretary(&f, &[], &ms, &mut rng).is_empty());
        let no_ms: Vec<&dyn Matroid> = vec![];
        assert!(matroid_submodular_secretary(&f, &[0], &no_ms, &mut rng).is_empty());
    }

    #[test]
    fn achieves_reasonable_fraction_on_partition_matroid() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let n = 60;
        let universe = 40;
        let covers: Vec<Vec<u32>> = (0..n)
            .map(|_| (0..universe as u32).filter(|_| rng.gen_bool(0.1)).collect())
            .collect();
        let f = CoverageFn::unweighted(universe, covers);
        let m = PartitionMatroid::new((0..n as u32).map(|e| e % 5).collect(), vec![2; 5]);
        let ms: Vec<&dyn Matroid> = vec![&m];
        let (_, off) = offline_matroid_greedy(&f, &ms);
        assert!(off > 0.0);
        let r = matroid::max_rank(&ms) as f64;
        let l = 1.0;
        let trials = 500;
        let mut total = 0.0;
        for _ in 0..trials {
            let s = random_stream(n, &mut rng);
            let hired = matroid_submodular_secretary(&f, &s, &ms, &mut rng);
            total += eval_set(&f, &hired);
        }
        let ratio = (total / trials as f64) / off;
        // Theorem 3.1.2's bound is Ω(1/(l log² r)); check we clear it.
        let bound = 1.0 / (8.0 * std::f64::consts::E * l * (r.log2().max(1.0)).powi(2));
        assert!(
            ratio >= bound,
            "matroid secretary ratio {ratio} below bound {bound}"
        );
    }

    #[test]
    fn graphic_matroid_output_is_forest() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        // K6: 15 edges
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        let ne = edges.len();
        let gm = GraphicMatroid::new(6, edges);
        let ms: Vec<&dyn Matroid> = vec![&gm];
        let f = AdditiveFn::new((0..ne).map(|i| (i * 13 % 17) as f64 + 1.0).collect());
        for _ in 0..50 {
            let s = random_stream(ne, &mut rng);
            let hired = matroid_submodular_secretary(&f, &s, &ms, &mut rng);
            assert!(gm.is_independent(&hired));
            assert!(hired.len() <= 5);
        }
    }
}
