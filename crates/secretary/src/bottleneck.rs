//! Section 3.6 and Appendix .3: bottleneck (min) and robust top-`k`
//! secretary rules.
//!
//! * [`bottleneck_secretary`] — the paper's `O(k)`-competitive rule for the
//!   aggregate `f(T) = min_{e∈T} v_e` (hiring a team limited by its slowest
//!   member): observe the first `1/k` fraction, set the threshold `a` to the
//!   best efficiency seen, then hire the first `k` later arrivals exceeding
//!   `a`. Theorem 3.6.1 lower-bounds the probability of hiring exactly the
//!   `k` best.
//! * [`oblivious_topk`] — the appendix's robust rule: split the stream into
//!   `k` segments and run an independent 1/e rule in each; the same run
//!   simultaneously approximates every monotone weighted objective
//!   `Σ γᵢ·a⁽ⁱ⁾` without knowing `γ`.

const INV_E: f64 = 0.36787944117144233;

/// The bottleneck rule. `values_in_order` are the efficiencies in arrival
/// order; `observe_frac` defaults to the paper's `1/k` when `None`.
/// Returns the stream positions hired (at most `k`, possibly fewer).
pub fn bottleneck_secretary(
    values_in_order: &[f64],
    k: usize,
    observe_frac: Option<f64>,
) -> Vec<usize> {
    let n = values_in_order.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let frac = observe_frac.unwrap_or(1.0 / k as f64);
    let cutoff = ((n as f64) * frac.clamp(0.0, 1.0)).floor() as usize;
    let cutoff = cutoff.min(n);
    let a = values_in_order[..cutoff]
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let mut hired = Vec::with_capacity(k);
    for (pos, &v) in values_in_order.iter().enumerate().skip(cutoff) {
        if v > a {
            hired.push(pos);
            if hired.len() == k {
                break;
            }
        }
    }
    hired
}

/// Did the rule hire exactly the `k` largest values? (The success event of
/// Theorem 3.6.1; assumes distinct values.)
pub fn hired_k_best(values_in_order: &[f64], hired: &[usize], k: usize) -> bool {
    if hired.len() != k {
        return false;
    }
    let mut sorted: Vec<f64> = values_in_order.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let kth = sorted[k - 1];
    hired.iter().all(|&p| values_in_order[p] >= kth)
}

/// Oblivious top-`k`: `k` independent per-segment 1/e rules. Returns hired
/// stream positions (at most one per segment).
pub fn oblivious_topk(values_in_order: &[f64], k: usize) -> Vec<usize> {
    let n = values_in_order.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let seg_len = n as f64 / k as f64;
    let mut hired = Vec::with_capacity(k);
    for i in 0..k {
        let lo = (i as f64 * seg_len).floor() as usize;
        let hi = ((((i + 1) as f64) * seg_len).floor() as usize).min(n);
        if lo >= hi {
            continue;
        }
        let obs_end = (lo as f64 + (hi - lo) as f64 * INV_E).floor() as usize;
        let obs_end = obs_end.clamp(lo, hi);
        let threshold = values_in_order[lo..obs_end]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        if let Some(p) = values_in_order[obs_end..hi]
            .iter()
            .position(|&v| v > threshold)
        {
            hired.push(obs_end + p);
        }
    }
    hired
}

/// The γ-weighted objective of Appendix .3: sort the hired values
/// decreasingly and take `Σ γᵢ · v⁽ⁱ⁾` (missing positions contribute 0).
/// `gamma` must be non-increasing.
pub fn gamma_objective(values: &[f64], gamma: &[f64]) -> f64 {
    debug_assert!(
        gamma.windows(2).all(|w| w[0] >= w[1]),
        "γ must be non-increasing"
    );
    let mut v = values.to_vec();
    v.sort_by(|a, b| b.partial_cmp(a).unwrap());
    gamma
        .iter()
        .zip(v.iter().chain(std::iter::repeat(&0.0)))
        .map(|(&g, &x)| g * x)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::random_stream;
    use rand::SeedableRng;

    #[test]
    fn hires_at_most_k_above_threshold() {
        let vals = [5.0, 1.0, 7.0, 6.0, 8.0, 9.0, 2.0, 10.0];
        let hired = bottleneck_secretary(&vals, 2, Some(0.25));
        // cutoff 2 -> a = 5; first 2 above 5 afterwards: positions 2 (7), 3 (6)
        assert_eq!(hired, vec![2, 3]);
    }

    #[test]
    fn empty_cases() {
        assert!(bottleneck_secretary(&[], 3, None).is_empty());
        assert!(bottleneck_secretary(&[1.0], 0, None).is_empty());
    }

    #[test]
    fn success_detection() {
        let vals = [3.0, 9.0, 8.0, 1.0];
        assert!(hired_k_best(&vals, &[1, 2], 2));
        assert!(!hired_k_best(&vals, &[1, 3], 2));
        assert!(!hired_k_best(&vals, &[1], 2));
    }

    #[test]
    fn success_probability_positive_and_k_dependent() {
        // Monte-Carlo estimate of P[hire exactly the k best]; must be clearly
        // positive and follow the Theorem 3.6.1 shape (decaying in k).
        let mut rng = rand::rngs::StdRng::seed_from_u64(314);
        let n = 60;
        let trials = 3000;
        let mut probs = Vec::new();
        for k in [2usize, 4] {
            let mut hit = 0;
            for _ in 0..trials {
                let order = random_stream(n, &mut rng);
                let vals: Vec<f64> = order.iter().map(|&i| i as f64 + 1.0).collect();
                let hired = bottleneck_secretary(&vals, k, None);
                if hired_k_best(&vals, &hired, k) {
                    hit += 1;
                }
            }
            probs.push(hit as f64 / trials as f64);
        }
        assert!(
            probs[0] > 0.02,
            "k=2 success probability too small: {}",
            probs[0]
        );
        assert!(
            probs[1] > 0.001,
            "k=4 success probability too small: {}",
            probs[1]
        );
        assert!(
            probs[0] > probs[1],
            "success probability should decay with k"
        );
    }

    #[test]
    fn oblivious_topk_one_per_segment() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let n = 50;
        let k = 5;
        let order = random_stream(n, &mut rng);
        let vals: Vec<f64> = order.iter().map(|&i| i as f64).collect();
        let hired = oblivious_topk(&vals, k);
        assert!(hired.len() <= k);
        // one hire per segment: positions must be in distinct length-10 blocks
        let mut segs: Vec<usize> = hired.iter().map(|&p| p / 10).collect();
        segs.dedup();
        assert_eq!(segs.len(), hired.len());
    }

    #[test]
    fn gamma_objective_weighted_sum() {
        let g = [3.0, 2.0, 1.0];
        assert_eq!(gamma_objective(&[1.0, 5.0], &g), 3.0 * 5.0 + 2.0 * 1.0);
        assert_eq!(gamma_objective(&[], &g), 0.0);
        assert_eq!(gamma_objective(&[2.0, 2.0, 2.0, 2.0], &g), 12.0);
    }

    #[test]
    fn oblivious_topk_approximates_gamma_objectives() {
        // The same run must do well for several γ vectors simultaneously.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let n = 100;
        let k = 5;
        let trials = 500;
        let gammas: Vec<Vec<f64>> = vec![
            vec![1.0, 0.0, 0.0, 0.0, 0.0], // max
            vec![1.0; 5],                  // sum of top 5
            vec![5.0, 4.0, 3.0, 2.0, 1.0],
        ];
        let mut ratios = vec![0.0f64; gammas.len()];
        for _ in 0..trials {
            let order = random_stream(n, &mut rng);
            let vals: Vec<f64> = order.iter().map(|&i| (i + 1) as f64).collect();
            let hired = oblivious_topk(&vals, k);
            let hired_vals: Vec<f64> = hired.iter().map(|&p| vals[p]).collect();
            let mut top: Vec<f64> = vals.clone();
            top.sort_by(|a, b| b.partial_cmp(a).unwrap());
            for (i, g) in gammas.iter().enumerate() {
                let opt = gamma_objective(&top[..k], g);
                ratios[i] += gamma_objective(&hired_vals, g) / opt;
            }
        }
        for (i, r) in ratios.iter().enumerate() {
            let avg = r / trials as f64;
            assert!(
                avg > 0.2,
                "oblivious rule ratio {avg} too low for gamma #{i}"
            );
        }
    }
}
