//! Offline reference solvers used to estimate `f(R)` (the offline optimum)
//! in competitive-ratio experiments.

use matroid::Matroid;
use submodular::{BitSet, SetFn};

/// Cardinality-constrained offline greedy: `k` rounds of best-marginal-gain.
/// For monotone submodular `f` this is the classical `(1−1/e)`-approximation
/// (Nemhauser–Wolsey–Fisher); we use it as the reference "OPT" proxy for
/// larger instances and say so in EXPERIMENTS.md.
pub fn offline_greedy<F: SetFn + ?Sized>(f: &F, k: usize) -> (Vec<u32>, f64) {
    let n = f.ground_size();
    let mut set = BitSet::new(n);
    let mut cur = f.eval(&set);
    let mut chosen = Vec::with_capacity(k);
    let mut tmp = BitSet::new(n);
    for _ in 0..k {
        let mut best = (0.0f64, u32::MAX);
        for e in 0..n as u32 {
            if set.contains(e) {
                continue;
            }
            tmp.copy_from(&set);
            tmp.insert(e);
            let gain = f.eval(&tmp) - cur;
            if gain > best.0 || (gain == best.0 && best.1 != u32::MAX && e < best.1) {
                best = (gain, e);
            }
        }
        if best.1 == u32::MAX || best.0 <= 0.0 {
            break;
        }
        set.insert(best.1);
        cur += best.0;
        chosen.push(best.1);
    }
    (chosen, cur)
}

/// Exact optimum over all subsets of size ≤ `k` by enumeration. Exponential —
/// use only for small `n` (≤ 24-ish) in tests and calibration runs.
pub fn offline_exact_small<F: SetFn + ?Sized>(f: &F, k: usize) -> (Vec<u32>, f64) {
    let n = f.ground_size();
    assert!(n <= 24, "exact enumeration limited to n ≤ 24, got {n}");
    let mut best_val = f.eval(&BitSet::new(n));
    let mut best_set: Vec<u32> = Vec::new();
    let mut scratch = BitSet::new(n);

    // iterate over all masks with popcount ≤ k
    for mask in 0u32..(1u32 << n) {
        if (mask.count_ones() as usize) > k {
            continue;
        }
        scratch.clear();
        for e in 0..n as u32 {
            if mask >> e & 1 == 1 {
                scratch.insert(e);
            }
        }
        let v = f.eval(&scratch);
        if v > best_val {
            best_val = v;
            best_set = scratch.iter().collect();
        }
    }
    (best_set, best_val)
}

/// Offline greedy under `l` matroid constraints: each round adds the
/// best-marginal element whose addition stays independent in *all* matroids.
/// For monotone submodular `f` this is the classical `1/(l+1)`-approximation.
pub fn offline_matroid_greedy<F: SetFn + ?Sized>(
    f: &F,
    matroids: &[&dyn Matroid],
) -> (Vec<u32>, f64) {
    let n = f.ground_size();
    let mut set = BitSet::new(n);
    let mut ids: Vec<u32> = Vec::new();
    let mut cur = f.eval(&set);
    let mut tmp = BitSet::new(n);
    loop {
        let mut best = (0.0f64, u32::MAX);
        for e in 0..n as u32 {
            if set.contains(e) {
                continue;
            }
            if !matroids.iter().all(|m| m.can_add(&ids, e)) {
                continue;
            }
            tmp.copy_from(&set);
            tmp.insert(e);
            let gain = f.eval(&tmp) - cur;
            if gain > best.0 || (gain == best.0 && best.1 != u32::MAX && e < best.1) {
                best = (gain, e);
            }
        }
        if best.1 == u32::MAX || best.0 <= 0.0 {
            break;
        }
        set.insert(best.1);
        ids.push(best.1);
        cur += best.0;
    }
    (ids, cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matroid::UniformMatroid;
    use submodular::functions::{AdditiveFn, CoverageFn};

    #[test]
    fn greedy_picks_top_values_for_additive() {
        let f = AdditiveFn::new(vec![5.0, 1.0, 9.0, 3.0]);
        let (chosen, val) = offline_greedy(&f, 2);
        assert_eq!(val, 14.0);
        let mut c = chosen;
        c.sort_unstable();
        assert_eq!(c, vec![0, 2]);
    }

    #[test]
    fn greedy_within_one_minus_inv_e_of_exact() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for _ in 0..20 {
            let n = rng.gen_range(5..12usize);
            let u = rng.gen_range(5..15usize);
            let covers: Vec<Vec<u32>> = (0..n)
                .map(|_| (0..u as u32).filter(|_| rng.gen_bool(0.3)).collect())
                .collect();
            let f = CoverageFn::unweighted(u, covers);
            let k = rng.gen_range(1..=4usize);
            let (_, g) = offline_greedy(&f, k);
            let (_, opt) = offline_exact_small(&f, k);
            assert!(g >= (1.0 - 1.0 / std::f64::consts::E) * opt - 1e-9);
            assert!(g <= opt + 1e-9);
        }
    }

    #[test]
    fn exact_small_finds_optimum() {
        let f = CoverageFn::unweighted(4, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]]);
        let (set, val) = offline_exact_small(&f, 2);
        assert_eq!(val, 4.0);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn matroid_greedy_respects_constraint() {
        let f = AdditiveFn::new(vec![5.0, 4.0, 3.0, 2.0]);
        let m = UniformMatroid::new(4, 2);
        let ms: Vec<&dyn Matroid> = vec![&m];
        let (ids, val) = offline_matroid_greedy(&f, &ms);
        assert_eq!(ids.len(), 2);
        assert_eq!(val, 9.0);
    }

    #[test]
    fn matroid_greedy_multiple_constraints() {
        use matroid::PartitionMatroid;
        let f = AdditiveFn::new(vec![5.0, 4.0, 3.0, 2.0]);
        let m1 = UniformMatroid::new(4, 3);
        // elements {0,1} in group 0 cap 1; {2,3} group 1 cap 1
        let m2 = PartitionMatroid::new(vec![0, 0, 1, 1], vec![1, 1]);
        let ms: Vec<&dyn Matroid> = vec![&m1, &m2];
        let (ids, val) = offline_matroid_greedy(&f, &ms);
        assert_eq!(ids.len(), 2);
        assert_eq!(val, 8.0); // 5 + 3
    }
}
