//! Arrival streams: uniformly random permutations of the ground set.

use rand::Rng;

/// A uniformly random arrival order of elements `0..n` (Fisher–Yates).
pub fn random_stream(n: usize, rng: &mut impl Rng) -> Vec<u32> {
    let mut v: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn is_permutation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = random_stream(50, &mut rng);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = random_stream(20, &mut rand::rngs::StdRng::seed_from_u64(7));
        let b = random_stream(20, &mut rand::rngs::StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn roughly_uniform_first_element() {
        // sanity: over many draws, each element appears first with freq ≈ 1/n
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 5;
        let trials = 5000;
        let mut counts = vec![0usize; n];
        for _ in 0..trials {
            counts[random_stream(n, &mut rng)[0] as usize] += 1;
        }
        for &c in &counts {
            let freq = c as f64 / trials as f64;
            assert!((freq - 0.2).abs() < 0.05, "first-element frequency {freq}");
        }
    }

    #[test]
    fn edge_sizes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert!(random_stream(0, &mut rng).is_empty());
        assert_eq!(random_stream(1, &mut rng), vec![0]);
    }
}
