//! Section 3.5: the subadditive secretary problem.
//!
//! Two halves of Theorem 3.1.4:
//!
//! * **Upper bound** — [`subadditive_secretary`], the `O(√n)`-competitive
//!   algorithm: with probability 1/2 hire the single best item (1/e rule,
//!   `k`-competitive for monotone subadditive `f`); otherwise hire *all* of a
//!   uniformly random one of the `⌈n/k⌉` contiguous segments (`n/k`-
//!   competitive by subadditivity). The better branch gives `O(√n)` at
//!   `k = √n`.
//! * **Lower bound** — [`HiddenSetFn`], the hard function of Theorem 3.5.1:
//!   a random hidden set `S*` (each element w.p. `k/n`) and
//!   `f(S) = max(1, ⌈|S ∩ S*|/r⌉)`. Monotone and subadditive, almost
//!   submodular (Proposition 3.5.3), yet every query of size ≤ `m` returns 1
//!   w.h.p., so no sub-exponential algorithm can locate `S*`. Experiment E10
//!   measures exactly this query-blindness.

use rand::Rng;
use submodular::{BitSet, SetFn};

use crate::classic::classic_secretary;

const INV_E: f64 = 0.36787944117144233;

/// The hard monotone subadditive function of Theorem 3.5.1:
/// `f(S) = max(1, ⌈|S ∩ S*|/r⌉)` (and `f(∅) = 1` — the paper's function is
/// 1 on every "uninformative" set, which is what makes queries useless).
#[derive(Clone, Debug)]
pub struct HiddenSetFn {
    n: usize,
    hidden: BitSet,
    r: f64,
}

impl HiddenSetFn {
    /// Creates the function with an explicit hidden set and threshold `r`.
    pub fn new(n: usize, hidden: BitSet, r: f64) -> Self {
        assert_eq!(hidden.capacity(), n);
        assert!(r > 0.0);
        Self { n, hidden, r }
    }

    /// Samples the hidden set: each element independently with probability
    /// `k/n` (the construction in the paper's proof).
    pub fn sample(n: usize, k: usize, r: f64, rng: &mut impl Rng) -> Self {
        let p = (k as f64 / n as f64).clamp(0.0, 1.0);
        let mut hidden = BitSet::new(n);
        for e in 0..n as u32 {
            if rng.gen_bool(p) {
                hidden.insert(e);
            }
        }
        Self::new(n, hidden, r)
    }

    /// The hidden set (for evaluation only — algorithms must not peek).
    pub fn hidden(&self) -> &BitSet {
        &self.hidden
    }

    /// `g(S) = |S ∩ S*|`, the underlying submodular counter.
    pub fn overlap(&self, set: &BitSet) -> usize {
        set.intersection_count(&self.hidden)
    }

    /// The threshold `r`.
    pub fn r(&self) -> f64 {
        self.r
    }

    /// The maximum attainable value, `f(S*)`.
    pub fn optimum(&self) -> f64 {
        let g = self.hidden.count() as f64;
        (g / self.r).ceil().max(1.0)
    }
}

impl SetFn for HiddenSetFn {
    fn ground_size(&self) -> usize {
        self.n
    }
    /// Note: `f(∅) = 1`, deliberately (see type docs).
    fn eval(&self, set: &BitSet) -> f64 {
        let g = set.intersection_count(&self.hidden) as f64;
        (g / self.r).ceil().max(1.0)
    }
    fn is_monotone(&self) -> bool {
        true
    }
    fn is_submodular(&self) -> bool {
        false
    }
}

/// The `O(√n)`-competitive subadditive secretary algorithm (§3.5.2) for
/// monotone subadditive `f`, hiring at most `k` elements.
pub fn subadditive_secretary<F: SetFn + ?Sized>(
    f: &F,
    stream: &[u32],
    k: usize,
    rng: &mut impl Rng,
) -> Vec<u32> {
    let n = stream.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    if rng.gen_bool(0.5) {
        // best single item via the 1/e rule
        let ground = f.ground_size();
        let mut buf = BitSet::new(ground);
        let vals: Vec<f64> = stream
            .iter()
            .map(|&e| {
                buf.clear();
                buf.insert(e);
                f.eval(&buf)
            })
            .collect();
        match classic_secretary(&vals, INV_E) {
            Some(pos) => vec![stream[pos]],
            None => Vec::new(),
        }
    } else {
        // hire all of one uniformly random segment of length ≤ k
        let num_segments = n.div_ceil(k);
        let seg = rng.gen_range(0..num_segments);
        let lo = seg * k;
        let hi = ((seg + 1) * k).min(n);
        stream[lo..hi].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::random_stream;
    use rand::SeedableRng;
    use submodular::functions::MaxFn;

    #[test]
    fn hidden_fn_values() {
        let hidden = BitSet::from_iter(10, [0, 1, 2, 3, 4, 5]);
        let f = HiddenSetFn::new(10, hidden, 2.0);
        assert_eq!(f.eval(&BitSet::new(10)), 1.0);
        assert_eq!(f.eval(&BitSet::from_iter(10, [7, 8])), 1.0);
        assert_eq!(f.eval(&BitSet::from_iter(10, [0, 1])), 1.0);
        assert_eq!(f.eval(&BitSet::from_iter(10, [0, 1, 2])), 2.0);
        assert_eq!(f.eval(&BitSet::from_iter(10, [0, 1, 2, 3, 4, 5])), 3.0);
        assert_eq!(f.optimum(), 3.0);
    }

    #[test]
    fn hidden_fn_is_monotone_and_subadditive_randomized() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let f = HiddenSetFn::sample(12, 6, 2.0, &mut rng);
        use rand::Rng;
        for _ in 0..300 {
            let a = BitSet::from_iter(12, (0..12u32).filter(|_| rng.gen_bool(0.4)));
            let b = BitSet::from_iter(12, (0..12u32).filter(|_| rng.gen_bool(0.4)));
            let mut ab = a.clone();
            ab.union_with(&b);
            // subadditive: f(A) + f(B) >= f(A ∪ B)
            assert!(f.eval(&a) + f.eval(&b) >= f.eval(&ab) - 1e-9);
            // monotone
            assert!(f.eval(&ab) >= f.eval(&a) - 1e-9);
        }
    }

    #[test]
    fn almost_submodular_proposition_3_5_3() {
        // f(A) + f(B) >= f(A∪B) + f(A∩B) − 2
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let f = HiddenSetFn::sample(12, 6, 1.5, &mut rng);
        use rand::Rng;
        for _ in 0..300 {
            let a = BitSet::from_iter(12, (0..12u32).filter(|_| rng.gen_bool(0.5)));
            let b = BitSet::from_iter(12, (0..12u32).filter(|_| rng.gen_bool(0.5)));
            let mut ab = a.clone();
            ab.union_with(&b);
            let mut ib = a.clone();
            ib.intersect_with(&b);
            assert!(
                f.eval(&a) + f.eval(&b) >= f.eval(&ab) + f.eval(&ib) - 2.0 - 1e-9,
                "almost-submodularity violated"
            );
        }
    }

    #[test]
    fn queries_are_uninformative_at_scale() {
        // Theorem 3.5.1's mechanism: for n = 400, k = m = 20, r = 3·√t·(mk/n),
        // random queries of size ≤ m almost always evaluate to 1.
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let n = 400;
        let k = 20;
        let t = 8.0f64; // log-ish query budget
        let r = 3.0 * t.sqrt() * (k as f64 * k as f64 / n as f64);
        let f = HiddenSetFn::sample(n, k, r, &mut rng);
        let mut ones = 0;
        let queries = 500;
        for _ in 0..queries {
            let q = BitSet::from_iter(n, random_stream(n, &mut rng).into_iter().take(k));
            if f.eval(&q) == 1.0 {
                ones += 1;
            }
        }
        assert!(
            ones as f64 / queries as f64 > 0.95,
            "too many informative queries: {ones}/{queries}"
        );
        // yet the optimum is much larger than 1
        assert!(f.optimum() >= 2.0);
    }

    #[test]
    fn algorithm_output_bounded_by_k() {
        let f = MaxFn::new((0..50).map(|i| i as f64).collect());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = random_stream(50, &mut rng);
            let hired = subadditive_secretary(&f, &s, 7, &mut rng);
            assert!(hired.len() <= 7);
        }
    }

    #[test]
    fn segment_branch_returns_contiguous_block() {
        let f = MaxFn::new(vec![1.0; 20]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        // force the segment branch by trying seeds until output > 1
        for _ in 0..50 {
            let s = random_stream(20, &mut rng);
            let hired = subadditive_secretary(&f, &s, 5, &mut rng);
            if hired.len() > 1 {
                // must be a contiguous block of the stream
                let pos: Vec<usize> = hired
                    .iter()
                    .map(|e| s.iter().position(|x| x == e).unwrap())
                    .collect();
                for w in pos.windows(2) {
                    assert_eq!(w[1], w[0] + 1, "segment not contiguous");
                }
                return;
            }
        }
        panic!("segment branch never produced a multi-element hire");
    }

    #[test]
    fn empty_inputs() {
        let f = MaxFn::new(vec![1.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert!(subadditive_secretary(&f, &[], 3, &mut rng).is_empty());
        assert!(subadditive_secretary(&f, &[0], 0, &mut rng).is_empty());
    }
}
