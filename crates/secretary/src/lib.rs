//! Secretary algorithms — Chapter 3 of Zadimoghaddam (2010).
//!
//! The online face of the scheduling work: processors/secretaries arrive in
//! uniformly random order; decisions to hire are immediate and irrevocable;
//! utility of the hired set is a (possibly non-monotone) submodular function
//! accessed through a value oracle that may only be queried on already-seen
//! elements.
//!
//! Implemented algorithms and their paper guarantees:
//!
//! | Module | Algorithm | Guarantee |
//! |---|---|---|
//! | [`classic`] | Dynkin's 1/e rule | best item w.p. ≥ 1/e |
//! | [`submodular_alg`] | Algorithm 1 (monotone) | `(1−1/e)/(7e)`-competitive (Thm 3.2.5) |
//! | [`submodular_alg`] | Algorithm 2 (non-monotone) | `1/(8e²)`-competitive (Thm 3.2.8) |
//! | [`matroid_alg`] | Algorithm 3 (+`l` matroids) | `O(l log² r)`-competitive (Thm 3.1.2) |
//! | [`knapsack`] | `l`-knapsack reduction + single-knapsack | `O(l)`-competitive (Thm 3.1.3) |
//! | [`subadditive`] | segment sampler + hidden-set hard function | `O(√n)` upper bound, `Ω̃(√n)` lower (Thm 3.1.4) |
//! | [`bottleneck`] | min-utility threshold rule | hires the `k` best w.p. ≈ `e⁻²ᵏ`-ish (Thm 3.6.1) |
//! | [`bottleneck`] | oblivious top-`k` (per-segment 1/e rule) | robust `γ`-objective (App. .3) |
//!
//! Offline reference solvers used by the experiments to estimate `f(R)` live
//! in [`offline`]. All randomness is injected (`rand::Rng`), so every
//! simulation is reproducible from its seed.

pub mod bottleneck;
pub mod classic;
pub mod knapsack;
pub mod matroid_alg;
pub mod offline;
pub mod stream;
pub mod subadditive;
pub mod submodular_alg;

pub use bottleneck::{bottleneck_secretary, oblivious_topk};
pub use classic::classic_secretary;
pub use knapsack::{knapsack_secretary, KnapsackInstance};
pub use matroid_alg::matroid_submodular_secretary;
pub use offline::{offline_exact_small, offline_greedy, offline_matroid_greedy};
pub use stream::random_stream;
pub use subadditive::{subadditive_secretary, HiddenSetFn};
pub use submodular_alg::{nonmonotone_submodular_secretary, submodular_secretary};
