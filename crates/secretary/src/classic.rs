//! The classical secretary problem: Dynkin's 1/e stopping rule.
//!
//! Observe the first `⌊φ·n⌋` arrivals without hiring; then hire the first
//! arrival strictly better than everything observed. With `φ = 1/e` the best
//! element is hired with probability → 1/e. Used standalone and as the
//! per-segment subroutine inside Algorithm 1.

/// Runs the threshold rule on values given **in arrival order**; returns the
/// stream position of the hired element, or `None` if no later element beats
/// the observation phase (the classic "walked away empty-handed" outcome).
///
/// `observe_frac` is clamped to `[0, 1)`; the canonical choice is `1/e`.
/// Ties are treated as "not better" (strict improvement required), matching
/// the standard analysis for distinct values.
pub fn classic_secretary(values_in_order: &[f64], observe_frac: f64) -> Option<usize> {
    let n = values_in_order.len();
    if n == 0 {
        return None;
    }
    let frac = observe_frac.clamp(0.0, 1.0 - f64::EPSILON);
    let cutoff = ((n as f64) * frac).floor() as usize;
    let threshold = values_in_order[..cutoff]
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    values_in_order[cutoff..]
        .iter()
        .position(|&v| v > threshold)
        .map(|p| cutoff + p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::random_stream;
    use rand::SeedableRng;

    const INV_E: f64 = 0.36787944117144233;

    #[test]
    fn empty_and_single() {
        assert_eq!(classic_secretary(&[], INV_E), None);
        // cutoff 0 => first element always hired
        assert_eq!(classic_secretary(&[5.0], INV_E), Some(0));
    }

    #[test]
    fn hires_first_above_observation_max() {
        let vals = [3.0, 7.0, 1.0, 5.0, 9.0, 2.0];
        // observe 2 items (6/e ≈ 2.2): threshold 7; first later > 7 is 9 at 4
        assert_eq!(classic_secretary(&vals, INV_E), Some(4));
    }

    #[test]
    fn none_when_best_in_observation() {
        let vals = [9.0, 7.0, 1.0, 5.0, 2.0, 0.5];
        assert_eq!(classic_secretary(&vals, INV_E), None);
    }

    #[test]
    fn success_probability_close_to_inv_e() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2718);
        let n = 100;
        let trials = 4000;
        let mut hits = 0;
        for _ in 0..trials {
            let order = random_stream(n, &mut rng);
            let vals: Vec<f64> = order.iter().map(|&i| i as f64).collect();
            if let Some(pos) = classic_secretary(&vals, INV_E) {
                if vals[pos] == (n - 1) as f64 {
                    hits += 1;
                }
            }
        }
        let p = hits as f64 / trials as f64;
        assert!(
            (p - INV_E).abs() < 0.04,
            "empirical success probability {p} far from 1/e"
        );
    }

    #[test]
    fn observe_frac_one_never_hires() {
        let vals = [1.0, 2.0, 3.0];
        // frac clamped below 1: cutoff = 2, can still hire the last element
        let r = classic_secretary(&vals, 1.0);
        assert_eq!(r, Some(2));
    }

    #[test]
    fn zero_frac_hires_first() {
        let vals = [1.0, 2.0];
        assert_eq!(classic_secretary(&vals, 0.0), Some(0));
    }
}
