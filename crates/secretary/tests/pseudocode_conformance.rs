//! Conformance tests for the paper's pseudocode edge conditions: segment
//! arithmetic when `n` is not a multiple of `k` (the paper pads with dummy
//! secretaries; we use fractional boundaries, which must behave identically
//! at the interface), degenerate stream/k relationships, and the
//! value-oracle discipline.

use rand::SeedableRng;
use secretary::{
    bottleneck_secretary, classic_secretary, oblivious_topk, random_stream, submodular_secretary,
};
use submodular::functions::{AdditiveFn, MaxFn};
use submodular::{BitSet, SetFn};

#[test]
fn k_larger_than_n_is_safe() {
    let f = AdditiveFn::new(vec![1.0, 2.0, 3.0]);
    for k in [4usize, 10, 100] {
        let hired = submodular_secretary(&f, &[2, 0, 1], k);
        assert!(hired.len() <= 3);
        let mut h = hired.clone();
        h.sort_unstable();
        h.dedup();
        assert_eq!(h.len(), hired.len(), "duplicate hires with k={k}");
    }
}

#[test]
fn n_not_multiple_of_k_covers_whole_stream() {
    // With distinct additive values, the per-segment threshold rule can hire
    // at any selection-window position — over many random orders the stream
    // tail must be hired sometimes, i.e. the fractional segment boundaries
    // leave no dead zone. (With *equal* values the rule deterministically
    // hires the first selection-window element, so distinct values are
    // essential here.)
    let n = 17;
    let k = 5;
    let f = AdditiveFn::new((0..n).map(|i| i as f64 + 1.0).collect());
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let mut hired_at_position = vec![0usize; n];
    let trials = 3000;
    for _ in 0..trials {
        let s = random_stream(n, &mut rng);
        for e in submodular_secretary(&f, &s, k) {
            let pos = s.iter().position(|&x| x == e).unwrap();
            hired_at_position[pos] += 1;
        }
    }
    // every selection window position after the first observation window
    // should be reachable; in particular the final element must sometimes be
    // hired (the tail is not orphaned by rounding)
    assert!(
        hired_at_position[n - 1] > 0,
        "stream tail never hired: segment rounding orphaned it"
    );
    // and positions inside observation windows are never hired; spot-check
    // position 0 (always observed, never hireable)
    assert_eq!(hired_at_position[0], 0, "position 0 is observation-only");
}

#[test]
fn all_observation_no_selection_when_segment_tiny() {
    // k = n: every segment has length 1 with an empty observation window, so
    // the algorithm hires greedily whenever the clamp allows. Must not panic
    // and must hire at most n.
    let n = 6;
    let f = MaxFn::new((0..n).map(|i| i as f64 + 1.0).collect());
    let s: Vec<u32> = (0..n as u32).collect();
    let hired = submodular_secretary(&f, &s, n);
    assert!(hired.len() <= n);
}

#[test]
fn oracle_discipline_only_seen_subsets() {
    // §3.2.1: the oracle answers only for sets of already-arrived elements.
    // Use an identity stream (arrival position == element id) and a probe
    // that records, for each query, the largest id it contained; replaying
    // the algorithm's scan order shows that every query's max id is at most
    // the stream position being processed. We verify the observable
    // consequence: queries never contain ids beyond the stream slice handed
    // to the algorithm.
    struct MaxProbe<'a> {
        inner: &'a AdditiveFn,
        max_seen: std::sync::atomic::AtomicU32,
    }
    impl SetFn for MaxProbe<'_> {
        fn ground_size(&self) -> usize {
            self.inner.ground_size()
        }
        fn eval(&self, set: &BitSet) -> f64 {
            if let Some(m) = set.iter().max() {
                self.max_seen
                    .fetch_max(m, std::sync::atomic::Ordering::Relaxed);
            }
            self.inner.eval(set)
        }
    }

    let n = 30;
    let inner = AdditiveFn::new(vec![1.0; n]);
    let stream: Vec<u32> = (0..n as u32).collect();
    for cut in [10usize, 20, n] {
        let probe = MaxProbe {
            inner: &inner,
            max_seen: std::sync::atomic::AtomicU32::new(0),
        };
        let hired = submodular_secretary(&probe, &stream[..cut], 5);
        let max_queried = probe.max_seen.load(std::sync::atomic::Ordering::Relaxed);
        assert!(
            (max_queried as usize) < cut,
            "oracle queried element {max_queried} beyond the arrived prefix {cut}"
        );
        assert!(hired.iter().all(|&e| (e as usize) < cut));
    }
}

#[test]
fn classic_rule_never_hires_from_observation_window() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    for _ in 0..200 {
        let n = 40;
        let order = random_stream(n, &mut rng);
        let vals: Vec<f64> = order.iter().map(|&i| i as f64).collect();
        if let Some(pos) = classic_secretary(&vals, 1.0 / std::f64::consts::E) {
            let cutoff = ((n as f64) / std::f64::consts::E).floor() as usize;
            assert!(pos >= cutoff, "hired inside the observation window");
        }
    }
}

#[test]
fn bottleneck_hires_in_arrival_order() {
    let vals = [1.0, 9.0, 3.0, 8.0, 7.0, 6.5];
    let hired = bottleneck_secretary(&vals, 3, Some(0.2));
    // positions must be strictly increasing (irrevocable sequential hires)
    assert!(hired.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn oblivious_topk_segments_do_not_overlap() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    for &(n, k) in &[(10usize, 3usize), (17, 5), (50, 7), (8, 8)] {
        let order = random_stream(n, &mut rng);
        let vals: Vec<f64> = order.iter().map(|&i| i as f64).collect();
        let hired = oblivious_topk(&vals, k);
        assert!(hired.len() <= k);
        assert!(hired.windows(2).all(|w| w[0] < w[1]));
    }
}
