//! # sched-sim — discrete-event online scheduling simulator
//!
//! The paper's model is offline: every job is known up front. This crate
//! replays *timed arrival traces* ([`sched_core::trace::ArrivalTrace`] —
//! jobs revealed at release times) into pluggable online policies and
//! measures their **empirical competitive ratio** against the offline
//! solver stack, connecting the online half of the codebase (the secretary
//! algorithms) to the exact machinery of Chapter 2.
//!
//! * The simulator ([`replay`]) owns the clock and enforces causality: a
//!   [`Policy`] sees only released jobs through its [`SlotView`], and every
//!   [`SlotDecision`] is validated (no double-booking, no running on
//!   sleeping processors, no unreleased jobs).
//! * Energy accounting reuses the offline pricing: maximal awake runs are
//!   costed by the trace's affine model exactly as candidate intervals
//!   would be, and the finished replay is an ordinary
//!   [`sched_core::Schedule`] cross-checked through
//!   [`sched_core::simulate`]'s [`PowerTrace`](sched_core::PowerTrace).
//! * The ratio harness ([`replay_with_report`], [`replay_fleet`]) solves
//!   the offline instance — exactly (branch-and-bound) for small traces,
//!   with the greedy `O(log n)` [`Solver`](sched_core::Solver) otherwise —
//!   and emits JSON [`ReplayReport`]s; fleets parallelize across traces
//!   with bit-identical output at any worker count.
//!
//! ## Policies
//!
//! | Policy | Flag | Idea |
//! |---|---|---|
//! | [`GreedyWake`] | `greedy` | wake on demand, sleep when idle |
//! | [`ThresholdHiring`] | `hiring[:F]` | observe a demand prefix, commit via Dynkin's rule (`secretary`), then hold awake to the restart break-even |
//! | [`PeriodicResolve`] | `resolve[:K]` | every `K` slots re-solve the revealed suffix through [`Solver`](sched_core::Solver) (optionally a shared [`sched_engine::Engine`]) and follow the plan |
//!
//! ## Quickstart
//!
//! ```
//! use sched_core::trace::{ArrivalTrace, TimedJob};
//! use sched_sim::{replay_with_report, OfflineRef, PolicyKind};
//!
//! let trace = ArrivalTrace {
//!     name: "doc".into(),
//!     num_processors: 1,
//!     horizon: 6,
//!     restart: 3.0,
//!     rate: 1.0,
//!     jobs: vec![
//!         TimedJob::window(1.0, 0, 0, 0, 2),
//!         TimedJob::window(1.0, 3, 0, 3, 6),
//!     ],
//!     profiles: None,
//!     freq_ladder: None,
//! };
//! let mut policy = PolicyKind::Greedy.build(None);
//! let (report, _) = replay_with_report(&trace, policy.as_mut(), OfflineRef::Auto).unwrap();
//! assert_eq!(report.scheduled, 2);
//! assert!(report.ratio >= 1.0); // online never beats the offline optimum
//! ```

pub mod fleet;
pub mod policy;
pub mod replay;
pub mod report;

pub use fleet::{replay_fleet, FleetOptions};
pub use policy::{
    greedy_decision, GreedyWake, PeriodicResolve, Policy, PolicyKind, ResolveStats, SlotDecision,
    SlotView, ThresholdHiring,
};
pub use replay::{replay, ReplayOutcome, SimError};
pub use report::{offline_reference, replay_with_report, OfflineRef, ReplayReport};
