//! Per-trace replay reports: online cost vs. an offline reference, as JSON.
//!
//! The offline reference is the crate's honesty anchor. By default
//! ([`OfflineRef::Auto`]) small traces are solved to *true optimality* with
//! the branch-and-bound solver from `baselines` (so `ratio >= 1` is a
//! theorem, not an observation: the online schedule is itself a feasible
//! offline schedule), and larger traces fall back to the `O(log n)` greedy
//! [`Solver`] the paper's offline chapter provides. The report records
//! which reference was used.

use serde::{Deserialize, Serialize};

use baselines::exact_schedule_all;
use sched_core::trace::ArrivalTrace;
use sched_core::{enumerate_candidates, profile_energy, CandidatePolicy, Solver};

use crate::policy::{Policy, ResolveStats};
use crate::replay::{replay, ReplayOutcome, SimError};

/// Which offline baseline the competitive ratio is measured against.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OfflineRef {
    /// Exact branch-and-bound for small traces, greedy [`Solver`] otherwise.
    #[default]
    Auto,
    /// Always the greedy `O(log n)` [`Solver`].
    Greedy,
    /// Always exact (errors on traces too large for the node budget).
    Exact,
}

impl std::str::FromStr for OfflineRef {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(OfflineRef::Auto),
            "greedy" => Ok(OfflineRef::Greedy),
            "exact" => Ok(OfflineRef::Exact),
            other => Err(format!(
                "unknown offline reference '{other}' (expected auto, greedy, or exact)"
            )),
        }
    }
}

/// Exact search is attempted only below these sizes — measured on this
/// branch-and-bound, ~60 candidates is where node counts cross ~10⁵ and the
/// reference stops being cheap enough to run per trace in a fleet. The
/// node budget backstops unlucky instances; exhaustion falls back to
/// greedy under [`OfflineRef::Auto`].
const EXACT_MAX_CANDIDATES: usize = 60;
const EXACT_MAX_JOBS: usize = 10;
const EXACT_NODE_BUDGET: u64 = 1_500_000;

/// The offline reference cost for a trace, plus the label of the solver
/// that produced it (`"exact"` or `"greedy"`).
pub fn offline_reference(
    trace: &ArrivalTrace,
    which: OfflineRef,
) -> Result<(f64, &'static str), SimError> {
    let inst = trace.to_instance();
    if inst.num_jobs() == 0 {
        return Ok((0.0, "exact"));
    }
    // DVFS traces are referenced against the *compiled* speed-scaling
    // problem: work-expanded sub-jobs over the (level × lane) virtual grid.
    // The online replay's priced runs are feasible awake intervals of that
    // relaxation, so `ratio >= 1` stays a theorem for drop-free replays.
    if trace.freq_ladder.is_some() {
        let dvfs = trace
            .to_dvfs_instance()
            .expect("freq_ladder is present, so the trace converts");
        let compiled = dvfs
            .compile()
            .map_err(|e| SimError::OfflineInfeasible(e.to_string()))?;
        let try_exact = match which {
            OfflineRef::Exact => true,
            OfflineRef::Greedy => false,
            OfflineRef::Auto => {
                compiled.candidates.len() <= EXACT_MAX_CANDIDATES
                    && compiled.instance.num_jobs() <= EXACT_MAX_JOBS
            }
        };
        if try_exact {
            if let Some(exact) =
                exact_schedule_all(&compiled.instance, &compiled.candidates, EXACT_NODE_BUDGET)
            {
                return Ok((exact.cost, "exact"));
            }
            if which == OfflineRef::Exact {
                return Err(SimError::OfflineInfeasible(
                    "exact reference infeasible or out of node budget".into(),
                ));
            }
        }
        return Solver::with_candidates(&compiled.instance, compiled.candidates.as_slice())
            .schedule_all()
            .map(|s| (s.total_cost, "greedy"))
            .map_err(|e| SimError::OfflineInfeasible(e.to_string()));
    }
    // Per-processor profile pricing — identical to the affine model for
    // traces without explicit profiles, so online and offline costs stay
    // directly comparable either way.
    let cost = trace.cost_model();
    let candidates = enumerate_candidates(&inst, &cost, CandidatePolicy::All);

    let try_exact = match which {
        OfflineRef::Exact => true,
        OfflineRef::Greedy => false,
        OfflineRef::Auto => {
            candidates.len() <= EXACT_MAX_CANDIDATES && inst.num_jobs() <= EXACT_MAX_JOBS
        }
    };
    if try_exact {
        if let Some(exact) = exact_schedule_all(&inst, &candidates, EXACT_NODE_BUDGET) {
            return Ok((exact.cost, "exact"));
        }
        if which == OfflineRef::Exact {
            return Err(SimError::OfflineInfeasible(
                "exact reference infeasible or out of node budget".into(),
            ));
        }
    }
    Solver::with_candidates(&inst, candidates.as_slice())
        .schedule_all()
        .map(|s| (s.total_cost, "greedy"))
        .map_err(|e| SimError::OfflineInfeasible(e.to_string()))
}

/// One trace × one policy, summarized — the JSONL record `power-sched
/// replay` emits per trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReplayReport {
    /// Trace label.
    pub trace: String,
    /// Policy display name.
    pub policy: String,
    /// Jobs in the trace.
    pub jobs: usize,
    /// Jobs the policy scheduled.
    pub scheduled: usize,
    /// Jobs whose windows expired unscheduled.
    pub dropped: usize,
    /// Explicit "nothing was dropped" verdict. `PeriodicResolve`'s
    /// documented deferral-drop hazard means a plan-following replay can
    /// silently lose late arrivals; scripts and the competitive-ratio
    /// assertions must gate on this boolean — the `ratio` of a lossy replay
    /// compares an *incomplete* online schedule against the full offline
    /// optimum and is meaningless (it can even sit below 1).
    pub drop_free: bool,
    /// Online energy cost.
    pub online_cost: f64,
    /// Deployed energy of the online schedule under the trace's power
    /// profiles: maximal awake runs with every inter-run gap bridged at the
    /// break-even sleep depth. Equals `online_cost` for ladder-free fleets;
    /// never exceeds it.
    pub deployed_cost: f64,
    /// Offline reference cost.
    pub offline_cost: f64,
    /// Empirical competitive ratio (`online / offline`; `1.0` for an empty
    /// trace).
    pub ratio: f64,
    /// Explicit `ratio ≥ 1` verdict (up to float slack). Scripts must
    /// assert on this boolean: grepping the serialized `ratio` digits for a
    /// leading `0` also matched any other field ordering that happened to
    /// put a `0`-prefixed float after it, and silently inverted if serde
    /// ever reordered fields.
    pub ratio_ok: bool,
    /// Which offline solver produced the reference (`exact` or `greedy`).
    pub offline_ref: String,
    /// Total restarts paid (awake runs started).
    pub restarts: usize,
    /// Total awake slots.
    pub awake_slots: usize,
    /// Total busy slots.
    pub busy_slots: usize,
    /// Fleet utilization: busy / awake (0 when never awake).
    pub utilization: f64,
    /// Policy event counter (re-solves, hiring commitments).
    pub events: u64,
    /// Re-solve accounting for re-solving policies: warm/cold solve split
    /// and per-re-solve wall-time statistics. Absent for eager policies.
    pub resolve_stats: Option<ResolveStats>,
}

impl ReplayReport {
    /// Builds the report from a finished replay and an offline reference.
    pub fn from_outcome(
        trace: &ArrivalTrace,
        outcome: &ReplayOutcome,
        offline_cost: f64,
        offline_ref: &'static str,
    ) -> Self {
        let online_cost = outcome.online_cost();
        let ratio = if offline_cost > 0.0 {
            online_cost / offline_cost
        } else {
            1.0
        };
        let ratio_ok = ratio >= 1.0 - 1e-9;
        // DVFS runs are already priced at their ladder level; the sleep
        // ladder's gap-bridging does not apply (a trace cannot carry both),
        // so deployed energy is the online cost itself.
        let deployed_cost = if trace.freq_ladder.is_some() {
            online_cost
        } else {
            profile_energy(
                &trace.to_instance(),
                &outcome.schedule,
                &trace.fleet_profiles(),
            )
            .total
        };
        ReplayReport {
            trace: trace.name.clone(),
            policy: outcome.policy.clone(),
            jobs: trace.jobs.len(),
            scheduled: outcome.schedule.scheduled_count,
            dropped: outcome.dropped.len(),
            drop_free: outcome.dropped.is_empty(),
            online_cost,
            deployed_cost,
            offline_cost,
            ratio,
            ratio_ok,
            offline_ref: offline_ref.into(),
            restarts: outcome.power.restarts.iter().sum(),
            awake_slots: outcome.power.awake_slots.iter().sum(),
            busy_slots: outcome.power.busy_slots.iter().sum(),
            utilization: outcome.power.fleet_utilization().unwrap_or(0.0),
            events: outcome.events,
            resolve_stats: outcome.resolve_stats,
        }
    }
}

/// Replays `trace` through `policy` and reports against `offline` — the
/// one-call entry point. Returns the report and the full outcome (for
/// callers that also want the timeline).
pub fn replay_with_report(
    trace: &ArrivalTrace,
    policy: &mut dyn Policy,
    offline: OfflineRef,
) -> Result<(ReplayReport, ReplayOutcome), SimError> {
    let outcome = replay(trace, policy)?;
    let (offline_cost, offline_ref) = offline_reference(trace, offline)?;
    let report = ReplayReport::from_outcome(trace, &outcome, offline_cost, offline_ref);
    Ok((report, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use sched_core::trace::TimedJob;
    use sched_core::SlotRef;

    fn trace() -> ArrivalTrace {
        ArrivalTrace {
            name: "report-test".into(),
            num_processors: 1,
            horizon: 8,
            restart: 4.0,
            rate: 1.0,
            jobs: vec![
                TimedJob::window(1.0, 0, 0, 0, 2),
                TimedJob::window(1.0, 0, 0, 3, 5),
                TimedJob::window(1.0, 5, 0, 5, 8),
            ],
            profiles: None,
            freq_ladder: None,
        }
    }

    #[test]
    fn exact_reference_bounds_every_policy_from_below() {
        let t = trace();
        let (opt, kind) = offline_reference(&t, OfflineRef::Auto).unwrap();
        assert_eq!(kind, "exact"); // small trace: auto uses exact
                                   // OPT: all three jobs, e.g. [0,1) + [3,6) = 5 + 7 = 12, or one run
                                   // [0,6) = 10... exact finds the true minimum; sanity-bound it.
        assert!(opt > 0.0 && opt <= 12.0);
        for kind in ["greedy", "hiring", "resolve:2"] {
            let kind: PolicyKind = kind.parse().unwrap();
            let (report, outcome) =
                replay_with_report(&t, kind.build(None).as_mut(), OfflineRef::Auto).unwrap();
            assert_eq!(report.dropped, 0, "{kind}");
            assert_eq!(report.scheduled, 3, "{kind}");
            assert!(
                report.ratio >= 1.0 - 1e-9,
                "{kind}: ratio {} < 1 (online {}, offline {})",
                report.ratio,
                report.online_cost,
                report.offline_cost
            );
            assert!(report.ratio_ok, "{kind}: ratio_ok must reflect ratio >= 1");
            assert!(
                report.drop_free,
                "{kind}: drop_free must reflect dropped == 0"
            );
            assert_eq!(report.online_cost, outcome.online_cost());
            // ladder-free fleet: deployed energy is exactly the interval sum
            assert!(
                (report.deployed_cost - report.online_cost).abs() < 1e-9,
                "{kind}"
            );
            assert_eq!(report.offline_ref, "exact");
        }
    }

    #[test]
    fn dvfs_trace_replays_and_bounds_ratio() {
        // Cubic-ish ladder: P(1) = 1, P(2) = 4. The work-2 job forces its
        // run up to the top level; the later unit job runs at the bottom.
        let t = ArrivalTrace {
            name: "dvfs-report".into(),
            num_processors: 1,
            horizon: 6,
            restart: 2.0,
            rate: 1.0,
            jobs: vec![
                TimedJob::window(1.0, 0, 0, 0, 2).with_work(2),
                TimedJob::window(1.0, 0, 0, 4, 6),
            ],
            profiles: None,
            freq_ladder: Some(sched_core::FreqLadder::new(1.0, 0.0, 2.0, vec![1, 2])),
        };
        for kind in ["greedy", "hiring", "resolve:2"] {
            let kind: PolicyKind = kind.parse().unwrap();
            let (report, outcome) =
                replay_with_report(&t, kind.build(None).as_mut(), OfflineRef::Auto).unwrap();
            assert!(report.drop_free, "{kind}: dropped {:?}", outcome.dropped);
            assert_eq!(report.scheduled, 2, "{kind}");
            assert!(
                report.ratio >= 1.0 - 1e-9,
                "{kind}: ratio {} < 1 (online {}, offline {})",
                report.ratio,
                report.online_cost,
                report.offline_cost
            );
            // DVFS traces report deployed == online (no sleep ladder).
            assert_eq!(report.deployed_cost, report.online_cost, "{kind}");
        }
        // Greedy wakes twice: [t,t+1) at level 1 (2 + 4) and one unit run
        // at level 0 (2 + 1) — online cost 9 against a known-exact anchor.
        let (report, _) = replay_with_report(
            &t,
            PolicyKind::Greedy.build(None).as_mut(),
            OfflineRef::Auto,
        )
        .unwrap();
        assert_eq!(report.online_cost, 9.0);
        assert_eq!(report.offline_ref, "exact");
    }

    #[test]
    fn greedy_reference_selectable() {
        let t = trace();
        let (greedy_cost, kind) = offline_reference(&t, OfflineRef::Greedy).unwrap();
        assert_eq!(kind, "greedy");
        let (exact_cost, _) = offline_reference(&t, OfflineRef::Exact).unwrap();
        assert!(greedy_cost >= exact_cost - 1e-9);
    }

    #[test]
    fn empty_trace_has_unit_ratio() {
        let t = ArrivalTrace {
            name: "empty".into(),
            num_processors: 1,
            horizon: 4,
            restart: 1.0,
            rate: 1.0,
            jobs: vec![],
            profiles: None,
            freq_ladder: None,
        };
        let (report, _) = replay_with_report(
            &t,
            PolicyKind::Greedy.build(None).as_mut(),
            OfflineRef::Auto,
        )
        .unwrap();
        assert_eq!(report.ratio, 1.0);
        assert!(report.ratio_ok);
        assert_eq!(report.online_cost, 0.0);
        assert_eq!(report.offline_cost, 0.0);
    }

    #[test]
    fn report_serde_round_trip() {
        let t = trace();
        let (report, _) = replay_with_report(
            &t,
            PolicyKind::Greedy.build(None).as_mut(),
            OfflineRef::Auto,
        )
        .unwrap();
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"drop_free\":true"), "{json}");
        let back: ReplayReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.ratio, report.ratio);
        assert_eq!(back.ratio_ok, report.ratio_ok);
        assert_eq!(back.drop_free, report.drop_free);
        assert_eq!(back.deployed_cost, report.deployed_cost);
        assert_eq!(back.policy, report.policy);
        assert_eq!(back.offline_ref, report.offline_ref);
    }

    #[test]
    fn deferral_loss_serializes_drop_free_false_and_can_undercut_opt() {
        // The documented deferral-drop hazard, as a concrete trace where
        // the loss is *intrinsic* to deferral: the expensive restart makes
        // the t=0 re-solve merge X (allowed {1, 4}) and Z ({4, 5}) into the
        // single interval [4,6), deferring X past its early slot. The
        // adversary then releases Y at slot 4 — its only slot, which the
        // plan already spent on X. No re-solve can repair this (X's slot 1
        // is in the past; X, Y, Z now fight over slots {4, 5}), so the
        // rescue dry-run correctly escalates to a re-solve, the re-solve
        // reports the suffix infeasible, and exactly Y drops. The replay
        // *completes* with one drop — and its ratio compares an incomplete
        // schedule against the full offline optimum (which runs X@1 early),
        // so it sits BELOW 1 here. `drop_free:false` is the
        // machine-readable signal that such a ratio is meaningless.
        let t = ArrivalTrace {
            name: "deferral-cliff".into(),
            num_processors: 1,
            horizon: 6,
            restart: 10.0,
            rate: 1.0,
            jobs: vec![
                TimedJob {
                    release: 0,
                    value: 1.0,
                    allowed: vec![SlotRef::new(0, 1), SlotRef::new(0, 4)],
                    work: None,
                },
                TimedJob::window(1.0, 0, 0, 4, 6),
                TimedJob {
                    release: 4,
                    value: 1.0,
                    allowed: vec![SlotRef::new(0, 4)],
                    work: None,
                },
            ],
            profiles: None,
            freq_ladder: None,
        };
        // offline-feasible: X@1, Y@4, Z@5 — one interval [1,6), OPT = 15
        let (opt, kind) = offline_reference(&t, OfflineRef::Auto).unwrap();
        assert_eq!(kind, "exact");
        assert_eq!(opt, 15.0);
        let (report, outcome) = replay_with_report(
            &t,
            PolicyKind::Resolve {
                period: 10,
                warm: false,
            }
            .build(None)
            .as_mut(),
            OfflineRef::Auto,
        )
        .unwrap();
        assert_eq!(report.dropped, 1, "deferral must cost exactly job Y");
        assert!(!report.drop_free);
        assert_eq!(outcome.dropped, vec![2]);
        // the lossy online schedule ([4,6) = 12) undercuts the full OPT
        assert!(
            report.ratio < 1.0,
            "lossy ratio {} should undercut OPT",
            report.ratio
        );
        assert!(!report.ratio_ok);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"drop_free\":false"), "{json}");
    }

    #[test]
    fn offline_infeasible_is_reported() {
        let t = ArrivalTrace {
            name: "overfull".into(),
            num_processors: 1,
            horizon: 2,
            restart: 1.0,
            rate: 1.0,
            jobs: vec![
                TimedJob::window(1.0, 0, 0, 0, 1),
                TimedJob::window(1.0, 0, 0, 0, 1),
            ],
            profiles: None,
            freq_ladder: None,
        };
        assert!(matches!(
            offline_reference(&t, OfflineRef::Auto),
            Err(SimError::OfflineInfeasible(_))
        ));
    }
}
