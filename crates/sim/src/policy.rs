//! Online scheduling policies and the decision interface they implement.
//!
//! A [`Policy`] is called once per time slot with a [`SlotView`] — the
//! causality-restricted window onto the trace (only released jobs are
//! visible) — and answers with a [`SlotDecision`]: which processors to keep
//! awake during the slot and which pending jobs to run on them. The
//! simulator in [`crate::replay`] validates every decision, so a policy
//! cannot cheat (run an unreleased job, double-book a slot, run a job on a
//! sleeping processor).
//!
//! Three policies ship with the crate, spanning the design space the paper's
//! online chapter motivates:
//!
//! * [`GreedyWake`] — wake on demand, sleep when idle: runs every runnable
//!   pending job at its first opportunity (least-slack first) and never pays
//!   for an idle slot. Maximum restarts, zero idle energy.
//! * [`ThresholdHiring`] — secretary-style: serves eagerly while *observing*
//!   demand for a prefix of the horizon, then uses Dynkin's threshold rule
//!   (via [`secretary::classic_secretary`]) to commit to a hold-awake
//!   regime: once hired, awake processors are kept awake through idle gaps
//!   up to the restart/rate break-even point (the ski-rental rule for sleep
//!   states).
//! * [`PeriodicResolve`] — every `k` slots (and whenever a newly revealed
//!   job would expire before the next checkpoint), re-solves the revealed
//!   suffix through the offline [`sched_core::Solver`] and follows that
//!   plan; optionally shares a [`sched_engine::Engine`] worker pool so
//!   fleets of traces reuse one candidate-enumeration cache.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use sched_core::{
    CandidateInterval, FreqLadder, Instance, Job, PowerProfile, ProfileCost, SlotRef, Solver,
    TimedJob, WarmHandle,
};
use sched_engine::{Engine, SolveRequest};
use secretary::classic_secretary;
use serde::{Deserialize, Serialize};

/// What a policy may see at one time slot: the clock, the trace geometry,
/// the *released* jobs, and yesterday's machine state. Constructed by the
/// simulator; policies cannot reach unreleased jobs through it.
pub struct SlotView<'a> {
    /// Current slot.
    pub now: u32,
    /// Number of processors.
    pub num_processors: u32,
    /// Horizon `T`.
    pub horizon: u32,
    /// Restart cost of the trace's affine model (the fleet-wide default;
    /// heterogeneous fleets answer per processor via
    /// [`SlotView::wake_cost`]).
    pub restart: f64,
    /// Per-slot rate of the trace's affine model (see
    /// [`SlotView::busy_rate`]).
    pub rate: f64,
    pub(crate) jobs: &'a [TimedJob],
    pub(crate) pending: &'a [usize],
    pub(crate) awake_prev: &'a [bool],
    /// One power profile per processor (the trace's, or the affine default
    /// cloned fleet-wide).
    pub(crate) profiles: &'a [PowerProfile],
    /// Did the trace carry explicit profiles? (Engine-mode re-solves only
    /// ship profiles over the wire when they are explicit.)
    pub(crate) explicit_profiles: bool,
    /// The trace's frequency ladder, when it is a DVFS trace. Awake runs
    /// are then re-priced by the simulator at the lowest level covering the
    /// heaviest job in the run, and idle holds burn the bottom level's
    /// power instead of the affine rate.
    pub(crate) freq_ladder: Option<&'a FreqLadder>,
}

impl SlotView<'_> {
    /// Ids of released, unscheduled, unexpired jobs (ascending).
    pub fn pending(&self) -> &[usize] {
        self.pending
    }

    /// The job data for a *released* job id.
    ///
    /// # Panics
    /// Panics if the job has not been released yet — the causality guard.
    pub fn job(&self, id: usize) -> &TimedJob {
        let j = &self.jobs[id];
        assert!(
            j.release <= self.now,
            "policy peeked at job {id} before its release ({} > {})",
            j.release,
            self.now
        );
        j
    }

    /// Was `proc` awake during the previous slot?
    pub fn was_awake(&self, proc: u32) -> bool {
        self.awake_prev[proc as usize]
    }

    /// The power profile of one processor.
    pub fn profile(&self, proc: u32) -> &PowerProfile {
        &self.profiles[proc as usize]
    }

    /// Full wake cost of `proc` (per-processor under heterogeneous fleets).
    pub fn wake_cost(&self, proc: u32) -> f64 {
        self.profiles[proc as usize].wake_cost
    }

    /// Per-slot awake rate of `proc`.
    pub fn busy_rate(&self, proc: u32) -> f64 {
        self.profiles[proc as usize].busy_rate
    }

    /// Largest idle streak worth bridging awake on `proc` — the ski-rental
    /// break-even against the cheapest sleep option (off, or any ladder
    /// state), capped at the horizon. Equals `ceil(restart / rate)` for the
    /// affine default profile. On a DVFS trace the idle burn is the bottom
    /// frequency's power, not the affine rate, so the break-even is
    /// `ceil(restart / P(f_min))`.
    pub fn hold_break_even(&self, proc: u32) -> u32 {
        if let Some(ladder) = self.freq_ladder {
            let idle_burn = ladder.level(0).power;
            let slots = (self.restart / idle_burn).ceil() as u32;
            return slots.max(1).min(self.horizon);
        }
        self.profiles[proc as usize].hold_break_even(self.horizon)
    }

    /// The trace's frequency ladder, when this is a DVFS trace.
    pub fn ladder(&self) -> Option<&FreqLadder> {
        self.freq_ladder
    }

    /// The lowest ladder level able to finish `work` units in one slot, or
    /// `None` when the trace has no ladder (or no level is fast enough).
    pub fn min_level_for(&self, work: u32) -> Option<usize> {
        self.freq_ladder.and_then(|l| l.min_level_for(work))
    }

    /// Processors on which `id` may run *right now* (sorted, deduped).
    pub fn runnable_procs(&self, id: usize) -> Vec<u32> {
        let mut procs: Vec<u32> = self
            .job(id)
            .allowed
            .iter()
            .filter(|s| s.time == self.now)
            .map(|s| s.proc)
            .collect();
        procs.sort_unstable();
        procs.dedup();
        procs
    }

    /// Number of allowed slots strictly after `now` — the job's remaining
    /// opportunities if it is not run in this slot.
    pub fn slack(&self, id: usize) -> usize {
        self.job(id)
            .allowed
            .iter()
            .filter(|s| s.time > self.now)
            .count()
    }
}

/// A policy's answer for one slot.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SlotDecision {
    /// Processors awake during this slot (sorted, deduped by the policy;
    /// the simulator validates).
    pub awake: Vec<u32>,
    /// `(job id, processor)` assignments executing in this slot. Every
    /// processor must appear in `awake` and at most once in `run`.
    pub run: Vec<(usize, u32)>,
}

/// Per-re-solve cost accounting for re-solving policies: warm/cold solve
/// counters plus wall-time statistics over the individual suffix solves.
/// Surfaced in [`crate::report::ReplayReport`] and the CLI aggregate table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResolveStats {
    /// Re-solves served by the incremental warm path (delta or
    /// instance-identity); always 0 when warm-start is off.
    pub warm: u64,
    /// Re-solves that rebuilt solver state from scratch (every re-solve when
    /// warm-start is off; first solve and checksum fallbacks when on).
    pub cold: u64,
    /// Total timed re-solves (`warm + cold`).
    pub count: u64,
    /// Summed wall time of all re-solves, nanoseconds.
    pub total_ns: u64,
    /// Median re-solve wall time, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile re-solve wall time, nanoseconds.
    pub p99_ns: u64,
}

/// An online scheduling policy: one decision per slot, under causality.
pub trait Policy: Send {
    /// Display name carried into reports.
    fn name(&self) -> String;

    /// Decides the current slot.
    fn decide(&mut self, view: &SlotView<'_>) -> SlotDecision;

    /// Policy-specific event count (re-solves, hiring commitments, …);
    /// reported as `events` in replay reports.
    fn events(&self) -> u64 {
        0
    }

    /// Re-solve accounting, for policies that re-solve ([`PeriodicResolve`]);
    /// `None` for everything else.
    fn resolve_stats(&self) -> Option<ResolveStats> {
        None
    }
}

/// Least-slack-first eager assignment: the shared work-horse of the
/// policies. Orders pending jobs by `(slack, id)` and places each on a free
/// allowed processor, preferring processors already woken this slot, then
/// processors awake in the previous slot, then the lowest index. With
/// `forced_only` set, only jobs out of slack (their last opportunity is this
/// slot) are placed — the deadline-rescue pass.
pub fn greedy_decision(view: &SlotView<'_>, forced_only: bool) -> SlotDecision {
    let mut order: Vec<usize> = view.pending().to_vec();
    order.sort_by_key(|&id| (view.slack(id), id));
    let mut used = vec![false; view.num_processors as usize];
    let mut decision = SlotDecision::default();
    for id in order {
        if forced_only && view.slack(id) > 0 {
            continue;
        }
        let pick = view
            .runnable_procs(id)
            .into_iter()
            .filter(|&p| !used[p as usize])
            .min_by_key(|&p| (!decision.awake.contains(&p), !view.was_awake(p), p));
        if let Some(p) = pick {
            used[p as usize] = true;
            if !decision.awake.contains(&p) {
                decision.awake.push(p);
            }
            decision.run.push((id, p));
        }
    }
    decision.awake.sort_unstable();
    decision
}

/// Wake on demand, sleep when idle: every runnable pending job runs at its
/// first opportunity; a processor is awake exactly when it executes a job.
/// The maximal-restart / zero-idle corner of the design space.
#[derive(Clone, Copy, Debug, Default)]
pub struct GreedyWake;

impl Policy for GreedyWake {
    fn name(&self) -> String {
        "greedy".into()
    }

    fn decide(&mut self, view: &SlotView<'_>) -> SlotDecision {
        greedy_decision(view, false)
    }
}

/// Secretary-style threshold hiring.
///
/// For the first `observe_frac` of the horizon the policy serves jobs
/// eagerly (like [`GreedyWake`]) while recording the per-slot demand — the
/// total value of pending jobs runnable in that slot. After the observation
/// phase it applies Dynkin's rule through
/// [`secretary::classic_secretary`]: the first slot whose demand strictly
/// beats everything observed triggers the *hiring commitment*. From then on
/// the policy holds awake processors through idle gaps up to that
/// processor's break-even against its cheapest sleep option
/// ([`SlotView::hold_break_even`]: `min(wake/busy, min_k wake_k/(busy −
/// idle_k))` over the sleep ladder — `ceil(restart / rate)`, the classical
/// ski-rental bound, under the affine default), re-entering the hold
/// regime whenever demand beats the observed threshold again.
pub struct ThresholdHiring {
    observe_frac: f64,
    demand: Vec<f64>,
    hired: bool,
    commits: u64,
    idle_streak: Vec<u32>,
}

impl ThresholdHiring {
    /// The canonical observation fraction `1/e`.
    pub const INV_E: f64 = 0.36787944117144233;

    /// `observe_frac` is clamped to `[0, 0.9]`.
    pub fn new(observe_frac: f64) -> Self {
        Self {
            observe_frac: observe_frac.clamp(0.0, 0.9),
            demand: Vec::new(),
            hired: false,
            commits: 0,
            idle_streak: Vec::new(),
        }
    }

    fn cutoff(&self, horizon: u32) -> usize {
        (horizon as f64 * self.observe_frac).floor() as usize
    }
}

impl Default for ThresholdHiring {
    fn default() -> Self {
        Self::new(Self::INV_E)
    }
}

impl Policy for ThresholdHiring {
    fn name(&self) -> String {
        format!("hiring:{:.3}", self.observe_frac)
    }

    fn decide(&mut self, view: &SlotView<'_>) -> SlotDecision {
        let t = view.now as usize;
        let cutoff = self.cutoff(view.horizon);
        self.idle_streak.resize(view.num_processors as usize, 0);
        let demand_now: f64 = view
            .pending()
            .iter()
            .filter(|&&id| !view.runnable_procs(id).is_empty())
            .map(|&id| view.job(id).value)
            .sum();
        self.demand.push(demand_now);

        let mut decision = greedy_decision(view, false);

        if t >= cutoff && !self.hired {
            // Dynkin's rule on the demand stream revealed so far. The
            // fraction is chosen so classic_secretary's internal cutoff is
            // exactly ours; Some(t) means this very slot is the first whose
            // demand strictly beats the whole observation phase.
            let frac = (cutoff as f64 + 0.5) / (t + 1) as f64;
            if classic_secretary(&self.demand, frac) == Some(t) {
                self.hired = true;
                self.commits += 1;
            }
        }

        if self.hired {
            // Hold-awake regime: keep yesterday's awake processors awake
            // through idle gaps shorter than that processor's break-even
            // against its cheapest sleep option (per-processor under
            // heterogeneous fleets; ceil(restart/rate) for the affine
            // default).
            for p in 0..view.num_processors {
                let running = decision.awake.contains(&p);
                if running {
                    self.idle_streak[p as usize] = 0;
                } else if view.was_awake(p)
                    && self.idle_streak[p as usize] < view.hold_break_even(p)
                {
                    self.idle_streak[p as usize] += 1;
                    decision.awake.push(p);
                }
            }
            decision.awake.sort_unstable();
        }
        decision
    }

    fn events(&self) -> u64 {
        self.commits
    }
}

/// How [`PeriodicResolve`] runs its suffix solves.
enum Resolver {
    /// Inline [`Solver`] call on the policy's thread.
    Inline,
    /// Shared [`sched_engine::Engine`] worker pool: fleets of traces on the
    /// same grid reuse one per-worker candidate-enumeration cache.
    Engine(Arc<Engine>),
}

/// Re-solve the revealed suffix every `period` slots through the offline
/// solver stack, then follow the plan.
///
/// At each checkpoint (and early, whenever a newly revealed job would expire
/// before the next checkpoint while still having a future slot to plan) the
/// policy builds an [`Instance`] from all pending jobs with their remaining
/// windows and solves `schedule_all` over the full grid — either inline or
/// through a shared [`Engine`]. The resulting schedule *is* the plan: awake
/// intervals (clamped to the present) and per-job slot assignments, followed
/// verbatim until the next re-solve. A forced-job rescue pass backstops
/// arrivals the plan missed — a job revealed at its very last opportunity
/// is placed directly on a free allowed processor when a dry run proves the
/// rescue will succeed (skipping a suffix re-solve it would not need), and
/// triggers the full re-solve otherwise, since re-planning can move the
/// occupying job to a later slot — and an infeasible suffix degrades to
/// eager greedy for one slot.
///
/// Unlike the eager policies, plan-following *defers* jobs toward cheap
/// merged intervals — so an adversarial late arrival can collide with a
/// deferred job in a way no re-solve can repair (the early slots the
/// offline optimum would have used are already in the past). Such losses
/// are intrinsic to deferral, are counted in
/// [`ReplayOutcome::dropped`](crate::replay::ReplayOutcome::dropped), and
/// show up as `fallbacks` here.
pub struct PeriodicResolve {
    period: u32,
    resolver: Resolver,
    /// Incremental warm-start state; when present, suffix solves go through
    /// [`WarmHandle::solve`] (inline, bypassing any engine) so consecutive
    /// re-solves reuse the candidate family, reduction arrays, and clean
    /// gains. Bit-identical to the cold path by construction.
    warm: Option<WarmHandle>,
    next_resolve: u32,
    plan_awake: Vec<CandidateInterval>,
    plan_assign: HashMap<usize, SlotRef>,
    /// Set when the last re-solve found the suffix infeasible; until the
    /// next checkpoint the policy serves eagerly instead of following a
    /// (nonexistent) plan.
    degraded: bool,
    resolves: u64,
    fallbacks: u64,
    /// Wall time of each suffix re-solve, nanoseconds, in call order.
    solve_ns: Vec<u64>,
}

/// Ids for engine-mode solve requests; global so concurrent fleet replays
/// sharing one engine never collide (ids are only used for diagnostics).
static RESOLVE_REQUEST_IDS: AtomicU64 = AtomicU64::new(0);

impl PeriodicResolve {
    /// Re-solve every `period` slots (`period >= 1`), solving inline.
    pub fn new(period: u32) -> Self {
        Self {
            period: period.max(1),
            resolver: Resolver::Inline,
            warm: None,
            next_resolve: 0,
            plan_awake: Vec::new(),
            plan_assign: HashMap::new(),
            degraded: false,
            resolves: 0,
            fallbacks: 0,
            solve_ns: Vec::new(),
        }
    }

    /// Same policy, but suffix solves go through `engine`'s worker pool.
    pub fn with_engine(period: u32, engine: Arc<Engine>) -> Self {
        Self {
            resolver: Resolver::Engine(engine),
            ..Self::new(period)
        }
    }

    /// Same policy, with incremental warm-start re-solving: a private
    /// [`WarmHandle`] carries the candidate family, reduction, and gain
    /// seeds from one checkpoint to the next. Decisions are bit-identical
    /// to [`PeriodicResolve::new`].
    pub fn new_warm(period: u32) -> Self {
        Self {
            warm: Some(WarmHandle::new(sched_core::CandidatePolicy::All)),
            ..Self::new(period)
        }
    }

    /// Warm/cold solve counts of the warm handle, when warm-start is on.
    pub fn warm_stats(&self) -> Option<sched_core::WarmStats> {
        self.warm.as_ref().map(|h| h.stats())
    }

    /// Number of suffix re-solves performed so far.
    pub fn resolves(&self) -> u64 {
        self.resolves
    }

    /// Number of slots that fell back to eager greedy (infeasible suffix).
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// First-free-processor allocation of forced unplanned jobs (ascending
    /// id): the single implementation behind both the rescue pass and its
    /// predictive dry run in `decide` — they must agree exactly, or the dry
    /// run could predict a rescue that then fails and silently drops a job
    /// the skipped re-solve would have saved. `used` marks processors the
    /// plan already occupies this slot. Returns the placements and whether
    /// every forced job found a processor.
    fn rescue_placements(
        &self,
        view: &SlotView<'_>,
        mut used: Vec<bool>,
    ) -> (Vec<(usize, u32)>, bool) {
        let mut forced: Vec<usize> = view
            .pending()
            .iter()
            .copied()
            .filter(|id| !self.plan_assign.contains_key(id) && view.slack(*id) == 0)
            .collect();
        forced.sort_unstable();
        let mut placed = Vec::new();
        let mut complete = true;
        for id in forced {
            match view
                .runnable_procs(id)
                .into_iter()
                .find(|&p| !used[p as usize])
            {
                Some(p) => {
                    used[p as usize] = true;
                    placed.push((id, p));
                }
                None => complete = false,
            }
        }
        (placed, complete)
    }

    /// Processors occupied this slot by plan-assigned pending jobs.
    fn plan_used_now(&self, view: &SlotView<'_>) -> Vec<bool> {
        let mut used = vec![false; view.num_processors as usize];
        for &id in view.pending() {
            if let Some(slot) = self.plan_assign.get(&id) {
                if slot.time == view.now {
                    used[slot.proc as usize] = true;
                }
            }
        }
        used
    }

    fn resolve(&mut self, view: &SlotView<'_>) {
        self.plan_awake.clear();
        self.plan_assign.clear();
        self.degraded = false;
        self.next_resolve = view.now + self.period;
        if view.pending().is_empty() {
            return;
        }
        self.resolves += 1;

        let ids: Vec<usize> = view.pending().to_vec();
        let jobs: Vec<Job> = ids
            .iter()
            .map(|&id| {
                let j = view.job(id);
                Job {
                    value: j.value,
                    allowed: j
                        .allowed
                        .iter()
                        .copied()
                        .filter(|s| s.time >= view.now)
                        .collect(),
                    work: None,
                }
            })
            .collect();
        let inst = Instance {
            num_processors: view.num_processors,
            horizon: view.horizon,
            jobs,
        };

        let started = Instant::now();
        let solved = match (&mut self.warm, &self.resolver) {
            (Some(handle), _) => {
                // Warm path: solve through the handle so the candidate
                // family, reduction arrays, and clean gains carry over from
                // the previous checkpoint. Trace job ids are the stable keys
                // steering the old↔new pairing.
                let cost = ProfileCost::new(view.profiles);
                let keys: Vec<u64> = ids.iter().map(|&id| id as u64).collect();
                handle.solve(&inst, &keys, &cost).ok()
            }
            (None, Resolver::Inline) => {
                // Per-processor profile pricing; bit-identical to the affine
                // (restart, rate) oracle when the trace has no explicit
                // profiles.
                let cost = ProfileCost::new(view.profiles);
                Solver::new(&inst, &cost).schedule_all().ok()
            }
            (None, Resolver::Engine(engine)) => {
                let id = RESOLVE_REQUEST_IDS.fetch_add(1, Ordering::Relaxed);
                let mut req = SolveRequest::builder(id, inst)
                    .affine(view.restart, view.rate)
                    .build();
                if view.explicit_profiles {
                    req.profiles = Some(view.profiles.to_vec());
                }
                engine.submit(req).wait().schedule
            }
        };
        let elapsed_ns = started.elapsed().as_nanos() as u64;
        self.solve_ns.push(elapsed_ns);
        sched_obs::record_ns("sim.resolve.latency_ns", elapsed_ns);
        if sched_obs::trace::enabled() {
            // Per-resolve decision event: what was re-solved, through which
            // resolver, and whether the suffix came back feasible.
            let resolver = if self.warm.is_some() {
                "warm"
            } else {
                match self.resolver {
                    Resolver::Inline => "inline",
                    Resolver::Engine(_) => "engine",
                }
            };
            sched_obs::trace::instant(
                "sim.policy.resolve",
                vec![
                    ("now", u64::from(view.now).into()),
                    ("pending", ids.len().into()),
                    ("resolver", resolver.into()),
                    ("feasible", u64::from(solved.is_some()).into()),
                    ("latency_ns", elapsed_ns.into()),
                ],
            );
        }
        let Some(schedule) = solved else {
            // Infeasible suffix: serve eagerly until the next slot's retry.
            self.degraded = true;
            self.next_resolve = view.now + 1;
            self.fallbacks += 1;
            return;
        };

        for iv in &schedule.awake {
            let mut iv = *iv;
            iv.start = iv.start.max(view.now);
            if iv.start < iv.end {
                self.plan_awake.push(iv);
            }
        }
        for (i, asg) in schedule.assignments.iter().enumerate() {
            if let Some(slot) = asg {
                self.plan_assign.insert(ids[i], *slot);
            }
        }
    }
}

impl Policy for PeriodicResolve {
    fn name(&self) -> String {
        if self.warm.is_some() {
            format!("resolve:{}:warm", self.period)
        } else {
            format!("resolve:{}", self.period)
        }
    }

    fn decide(&mut self, view: &SlotView<'_>) -> SlotDecision {
        // An unplanned job that would expire before the next checkpoint
        // triggers an early re-solve — except when its final opportunity is
        // *this very slot* and a dry run shows the rescue pass below will
        // place it on a processor the plan leaves free: then the rescue is
        // guaranteed to serve it without the cost of a suffix re-solve.
        // When the dry run fails (all its allowed processors are taken by
        // planned jobs) the full re-solve still fires — a re-solve CAN save
        // such a job by reshuffling the occupying plan entry to a later
        // slot, so skipping it unconditionally would drop jobs the
        // re-solve path serves.
        let future_expiring = view.pending().iter().any(|&id| {
            !self.plan_assign.contains_key(&id)
                && view
                    .job(id)
                    .deadline()
                    .is_some_and(|d| d < self.next_resolve && d > view.now)
        });
        let rescue_would_fail =
            !future_expiring && !self.rescue_placements(view, self.plan_used_now(view)).1;
        if view.now >= self.next_resolve || future_expiring || rescue_would_fail {
            self.resolve(view);
        }

        if self.degraded {
            // Last re-solve found the suffix infeasible: serve eagerly.
            return greedy_decision(view, false);
        }

        let mut used = vec![false; view.num_processors as usize];
        let mut decision = SlotDecision::default();
        for &id in view.pending() {
            if let Some(slot) = self.plan_assign.get(&id) {
                if slot.time == view.now && !used[slot.proc as usize] {
                    used[slot.proc as usize] = true;
                    decision.run.push((id, slot.proc));
                }
            }
        }
        for p in 0..view.num_processors {
            let planned_awake = self.plan_awake.iter().any(|iv| iv.covers(p, view.now));
            if planned_awake || used[p as usize] {
                decision.awake.push(p);
            }
        }

        // Rescue pass: forced jobs the plan missed (released after the last
        // re-solve, at their final opportunity) are placed on free allowed
        // processors rather than dropped — via the same allocation the dry
        // run above predicted with.
        for (id, p) in self.rescue_placements(view, used).0 {
            if !decision.awake.contains(&p) {
                decision.awake.push(p);
            }
            decision.run.push((id, p));
        }
        decision.awake.sort_unstable();
        decision
    }

    fn events(&self) -> u64 {
        self.resolves
    }

    fn resolve_stats(&self) -> Option<ResolveStats> {
        let mut sorted = self.solve_ns.clone();
        sorted.sort_unstable();
        // Nearest-rank percentiles (the workspace-wide rule, shared with
        // `sched_obs` histograms): rank ⌈q·n⌉, zero when there are no
        // samples. With one sample every percentile is that sample; with
        // two, p50 is the smaller and p99 the larger.
        let pct = |q: f64| match sched_obs::nearest_rank_index(sorted.len(), q) {
            Some(i) => sorted[i],
            None => 0,
        };
        let (warm, cold) = match &self.warm {
            Some(h) => (h.stats().warm, h.stats().cold),
            None => (0, self.resolves),
        };
        Some(ResolveStats {
            warm,
            cold,
            count: self.solve_ns.len() as u64,
            total_ns: self.solve_ns.iter().sum(),
            p50_ns: pct(0.50),
            p99_ns: pct(0.99),
        })
    }
}

/// Parseable policy selector — the `--policy` flag of `power-sched replay`.
#[derive(Clone, Debug, PartialEq)]
pub enum PolicyKind {
    /// [`GreedyWake`].
    Greedy,
    /// [`ThresholdHiring`] with the given observation fraction.
    Hiring {
        /// Fraction of the horizon observed before hiring.
        observe_frac: f64,
    },
    /// [`PeriodicResolve`] with the given re-solve period.
    Resolve {
        /// Slots between suffix re-solves.
        period: u32,
        /// Incremental warm-start re-solving (bit-identical decisions,
        /// faster re-solves). Off by default.
        warm: bool,
    },
}

impl PolicyKind {
    /// Instantiates the policy. When `engine` is given and the kind is
    /// [`PolicyKind::Resolve`] without warm-start, suffix solves go through
    /// the shared pool; warm-start solves inline through its own
    /// [`WarmHandle`] (whose cross-checkpoint reuse subsumes the engine's
    /// per-grid enumeration cache).
    pub fn build(&self, engine: Option<&Arc<Engine>>) -> Box<dyn Policy> {
        match *self {
            PolicyKind::Greedy => Box::new(GreedyWake),
            PolicyKind::Hiring { observe_frac } => Box::new(ThresholdHiring::new(observe_frac)),
            PolicyKind::Resolve { period, warm: true } => {
                Box::new(PeriodicResolve::new_warm(period))
            }
            PolicyKind::Resolve {
                period,
                warm: false,
            } => match engine {
                Some(e) => Box::new(PeriodicResolve::with_engine(period, Arc::clone(e))),
                None => Box::new(PeriodicResolve::new(period)),
            },
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyKind::Greedy => write!(f, "greedy"),
            PolicyKind::Hiring { observe_frac } => write!(f, "hiring:{observe_frac:.3}"),
            PolicyKind::Resolve {
                period,
                warm: false,
            } => write!(f, "resolve:{period}"),
            PolicyKind::Resolve { period, warm: true } => write!(f, "resolve:{period}:warm"),
        }
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "greedy" => Ok(PolicyKind::Greedy),
            "hiring" => Ok(PolicyKind::Hiring {
                observe_frac: ThresholdHiring::INV_E,
            }),
            "resolve" => Ok(PolicyKind::Resolve {
                period: 4,
                warm: false,
            }),
            other => {
                if let Some(f) = other.strip_prefix("hiring:") {
                    let observe_frac: f64 = f
                        .parse()
                        .map_err(|e| format!("bad observe fraction in '{other}': {e}"))?;
                    if !(0.0..=0.9).contains(&observe_frac) {
                        return Err(format!("observe fraction {observe_frac} outside [0, 0.9]"));
                    }
                    Ok(PolicyKind::Hiring { observe_frac })
                } else if let Some(k) = other.strip_prefix("resolve:") {
                    let (k, warm) = match k.strip_suffix(":warm") {
                        Some(k) => (k, true),
                        None => (k, false),
                    };
                    let period: u32 = k
                        .parse()
                        .map_err(|e| format!("bad period in '{other}': {e}"))?;
                    if period == 0 {
                        return Err("resolve period must be positive".into());
                    }
                    Ok(PolicyKind::Resolve { period, warm })
                } else {
                    Err(format!(
                        "unknown policy '{other}' (expected greedy, hiring[:F], or resolve[:K[:warm]])"
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_kind_parse_and_display() {
        assert_eq!("greedy".parse::<PolicyKind>().unwrap(), PolicyKind::Greedy);
        assert_eq!(
            "resolve:8".parse::<PolicyKind>().unwrap(),
            PolicyKind::Resolve {
                period: 8,
                warm: false
            }
        );
        assert_eq!(
            "resolve:8:warm".parse::<PolicyKind>().unwrap(),
            PolicyKind::Resolve {
                period: 8,
                warm: true
            }
        );
        assert_eq!(
            "hiring:0.5".parse::<PolicyKind>().unwrap(),
            PolicyKind::Hiring { observe_frac: 0.5 }
        );
        assert!(matches!(
            "hiring".parse::<PolicyKind>().unwrap(),
            PolicyKind::Hiring { .. }
        ));
        assert!(matches!(
            "resolve".parse::<PolicyKind>().unwrap(),
            PolicyKind::Resolve {
                period: 4,
                warm: false
            }
        ));
        for bad in [
            "",
            "bogus",
            "resolve:0",
            "resolve:x",
            "resolve:4:tepid",
            "hiring:2.0",
        ] {
            assert!(bad.parse::<PolicyKind>().is_err(), "{bad} should not parse");
        }
        assert_eq!(
            PolicyKind::Resolve {
                period: 4,
                warm: false
            }
            .to_string(),
            "resolve:4"
        );
        assert_eq!(
            PolicyKind::Resolve {
                period: 2,
                warm: true
            }
            .to_string(),
            "resolve:2:warm"
        );
        assert_eq!(PolicyKind::Greedy.to_string(), "greedy");
    }

    #[test]
    fn resolve_stats_percentiles_follow_nearest_rank_on_tiny_samples() {
        // Zero samples: every field is zero, not a panic or a garbage index.
        let mut p = PeriodicResolve::new(4);
        let s = p.resolve_stats().unwrap();
        assert_eq!((s.count, s.total_ns, s.p50_ns, s.p99_ns), (0, 0, 0, 0));

        // One sample: every percentile is that sample (rank ⌈q·1⌉ = 1).
        p.solve_ns = vec![700];
        let s = p.resolve_stats().unwrap();
        assert_eq!((s.count, s.total_ns), (1, 700));
        assert_eq!((s.p50_ns, s.p99_ns), (700, 700));

        // Two samples: p50 is the smaller (rank ⌈0.5·2⌉ = 1), p99 the
        // larger (rank ⌈0.99·2⌉ = 2) — the rule the old round()-based
        // formula got wrong by mapping p50 of two samples to the larger.
        p.solve_ns = vec![900, 100];
        let s = p.resolve_stats().unwrap();
        assert_eq!((s.count, s.total_ns), (2, 1000));
        assert_eq!((s.p50_ns, s.p99_ns), (100, 900));

        // A larger check against the shared rule directly.
        p.solve_ns = (1..=100).rev().collect();
        let s = p.resolve_stats().unwrap();
        assert_eq!(s.p50_ns, 50);
        assert_eq!(s.p99_ns, 99);
    }

    #[test]
    fn greedy_decision_prefers_already_awake_processors() {
        let jobs = vec![
            TimedJob::window(1.0, 0, 0, 0, 4),
            TimedJob::window(1.0, 0, 1, 0, 4),
        ];
        let pending = vec![0usize, 1];
        let awake_prev = vec![false, true];
        let profiles = vec![PowerProfile::affine(3.0, 1.0); 2];
        let view = SlotView {
            now: 0,
            num_processors: 2,
            horizon: 4,
            restart: 3.0,
            rate: 1.0,
            jobs: &jobs,
            pending: &pending,
            awake_prev: &awake_prev,
            profiles: &profiles,
            explicit_profiles: false,
            freq_ladder: None,
        };
        // each job is single-processor here, so both procs get used
        let d = greedy_decision(&view, false);
        assert_eq!(d.awake, vec![0, 1]);
        assert_eq!(d.run.len(), 2);

        // a two-processor job prefers the previously awake processor
        let jobs = vec![TimedJob {
            release: 0,
            value: 1.0,
            allowed: vec![SlotRef::new(0, 0), SlotRef::new(1, 0)],
            work: None,
        }];
        let pending = vec![0usize];
        let view = SlotView {
            now: 0,
            num_processors: 2,
            horizon: 4,
            restart: 3.0,
            rate: 1.0,
            jobs: &jobs,
            pending: &pending,
            awake_prev: &awake_prev,
            profiles: &profiles,
            explicit_profiles: false,
            freq_ladder: None,
        };
        let d = greedy_decision(&view, false);
        assert_eq!(d.run, vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "before its release")]
    fn view_enforces_causality() {
        let jobs = vec![TimedJob::window(1.0, 5, 0, 5, 8)];
        let pending: Vec<usize> = vec![];
        let awake_prev = vec![false];
        let profiles = vec![PowerProfile::affine(1.0, 1.0)];
        let view = SlotView {
            now: 2,
            num_processors: 1,
            horizon: 8,
            restart: 1.0,
            rate: 1.0,
            jobs: &jobs,
            pending: &pending,
            awake_prev: &awake_prev,
            profiles: &profiles,
            explicit_profiles: false,
            freq_ladder: None,
        };
        let _ = view.job(0);
    }
}
