//! Deterministic parallel replay of trace fleets.
//!
//! [`replay_fleet`] replays every trace through a fresh instance of the
//! selected policy, fanning the traces across `workers` threads. Each
//! replay is a pure deterministic function of its trace and the policy
//! configuration, and results are returned in input order — so the output
//! is **bit-identical at any worker count** (the property the acceptance
//! tests pin down).
//!
//! For [`PolicyKind::Resolve`] the fleet shares one [`sched_engine::Engine`]
//! across all replays: every suffix re-solve of every trace goes through the
//! same worker pool, whose per-worker candidate caches are keyed by
//! (grid × cost × policy) — a fleet of traces on one grid enumerates
//! candidate intervals a handful of times instead of once per re-solve.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sched_core::trace::ArrivalTrace;
use sched_engine::{Engine, EngineConfig};

use crate::policy::PolicyKind;
use crate::replay::SimError;
use crate::report::{replay_with_report, OfflineRef, ReplayReport};

/// Fleet configuration.
#[derive(Clone, Copy, Debug)]
pub struct FleetOptions {
    /// Replay threads (and, for `resolve`, engine workers). `0` means one
    /// per available core.
    pub workers: usize,
    /// Offline reference selection.
    pub offline: OfflineRef,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self {
            workers: 1,
            offline: OfflineRef::Auto,
        }
    }
}

/// Replays every trace under a fresh `kind` policy; one result per trace,
/// in input order, bit-identical at any worker count.
pub fn replay_fleet(
    traces: &[ArrivalTrace],
    kind: &PolicyKind,
    options: &FleetOptions,
) -> Vec<Result<ReplayReport, SimError>> {
    let workers = if options.workers > 0 {
        options.workers
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    };
    let engine = match kind {
        PolicyKind::Resolve { .. } => {
            Some(Arc::new(Engine::new(EngineConfig::with_workers(workers))))
        }
        _ => None,
    };

    let mut results: Vec<Option<Result<ReplayReport, SimError>>> = Vec::new();
    results.resize_with(traces.len(), || None);
    if traces.is_empty() {
        return Vec::new();
    }

    if workers <= 1 {
        for (i, trace) in traces.iter().enumerate() {
            let mut policy = kind.build(engine.as_ref());
            results[i] = Some(
                replay_with_report(trace, policy.as_mut(), options.offline)
                    .map(|(report, _)| report),
            );
        }
    } else {
        // Work stealing over a shared index counter; each slot of `results`
        // is written by exactly one worker, then reassembled in order.
        let next = AtomicUsize::new(0);
        let slots: Vec<std::sync::Mutex<Option<Result<ReplayReport, SimError>>>> = (0..traces
            .len())
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..workers.min(traces.len()) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= traces.len() {
                        break;
                    }
                    let mut policy = kind.build(engine.as_ref());
                    let result = replay_with_report(&traces[i], policy.as_mut(), options.offline)
                        .map(|(report, _)| report);
                    *slots[i].lock().unwrap() = Some(result);
                });
            }
        });
        for (i, slot) in slots.into_iter().enumerate() {
            results[i] = slot.into_inner().unwrap();
        }
    }

    results
        .into_iter()
        .map(|r| r.expect("every trace replayed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_core::trace::TimedJob;

    /// Small enough (2·28 = 56 candidates) that the auto reference is the
    /// exact optimum, making the `ratio >= 1` assertions theorems.
    fn fleet(n: usize) -> Vec<ArrivalTrace> {
        (0..n)
            .map(|i| ArrivalTrace {
                name: format!("t{i}"),
                num_processors: 2,
                horizon: 7,
                restart: 3.0,
                rate: 1.0,
                jobs: (0..4)
                    .map(|j| {
                        let release = ((i + j) % 4) as u32;
                        TimedJob::window(1.0, release, (j % 2) as u32, release, release + 3)
                    })
                    .collect(),
                profiles: None,
                freq_ladder: None,
            })
            .collect()
    }

    #[test]
    fn fleet_results_bit_identical_across_worker_counts() {
        let traces = fleet(7);
        for kind in ["greedy", "hiring", "resolve:3"] {
            let kind: PolicyKind = kind.parse().unwrap();
            let base = replay_fleet(
                &traces,
                &kind,
                &FleetOptions {
                    workers: 1,
                    offline: OfflineRef::Auto,
                },
            );
            for workers in [2, 4] {
                let other = replay_fleet(
                    &traces,
                    &kind,
                    &FleetOptions {
                        workers,
                        offline: OfflineRef::Auto,
                    },
                );
                // Wall-clock re-solve timings are legitimately run-dependent;
                // everything else (decisions, energy, warm/cold counts) must
                // be bit-identical.
                let normalize = |r: &crate::report::ReplayReport| {
                    let mut r = r.clone();
                    if let Some(rs) = &mut r.resolve_stats {
                        rs.total_ns = 0;
                        rs.p50_ns = 0;
                        rs.p99_ns = 0;
                    }
                    serde_json::to_string(&r).unwrap()
                };
                let a: Vec<String> = base
                    .iter()
                    .map(|r| normalize(r.as_ref().unwrap()))
                    .collect();
                let b: Vec<String> = other
                    .iter()
                    .map(|r| normalize(r.as_ref().unwrap()))
                    .collect();
                assert_eq!(a, b, "{kind} differs at {workers} workers");
            }
        }
    }

    #[test]
    fn resolve_fleet_shares_an_engine() {
        let traces = fleet(5);
        let kind = PolicyKind::Resolve {
            period: 3,
            warm: false,
        };
        let reports = replay_fleet(&traces, &kind, &FleetOptions::default());
        for r in reports {
            let r = r.unwrap();
            assert_eq!(r.dropped, 0);
            assert!(r.ratio >= 1.0 - 1e-9, "ratio {}", r.ratio);
            assert!(r.events >= 1);
        }
    }

    #[test]
    fn empty_fleet_is_fine() {
        assert!(replay_fleet(&[], &PolicyKind::Greedy, &FleetOptions::default()).is_empty());
    }
}
