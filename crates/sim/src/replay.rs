//! The discrete-event replay loop: clock, causality, validation, and energy
//! accounting.
//!
//! [`replay`] owns the clock. At each slot it reveals the jobs released at
//! that instant, hands the policy a causality-restricted [`SlotView`], and
//! validates the returned [`SlotDecision`] before committing it: a job must
//! be pending and allowed on its assigned (processor, slot), processors
//! must not be double-booked, and every executing processor must be awake.
//! Awake slots are folded into maximal per-processor runs, each priced by
//! the trace's affine cost model exactly as the offline optimizer would
//! price the same interval — so online and offline costs are directly
//! comparable. On a DVFS trace each run is instead priced at the lowest
//! ladder level whose frequency covers the heaviest job executed in the
//! run (`wake + P(f_ℓ) · len`, the bottom level when the run is idle),
//! which keeps every run a feasible awake interval of the compiled
//! offline DVFS problem. The finished replay is packaged as an ordinary
//! [`Schedule`] plus the [`PowerTrace`] machine-state timeline from
//! [`sched_core::simulate`].

use sched_core::simulate::{simulate, PowerTrace};
use sched_core::trace::{ArrivalTrace, TraceError};
use sched_core::{CandidateInterval, EnergyCost, FreqLadder, PowerProfile, Schedule, SlotRef};

use crate::policy::{Policy, ResolveStats, SlotDecision, SlotView};

/// Why a replay failed.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The trace failed [`ArrivalTrace::validate`].
    Trace(TraceError),
    /// The policy returned an invalid decision (the message names the
    /// offending job/processor and slot).
    PolicyViolation {
        /// Slot at which the violation happened.
        slot: u32,
        /// Human-readable description.
        message: String,
    },
    /// The offline reference solve failed (the trace is offline-infeasible).
    OfflineInfeasible(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Trace(e) => write!(f, "invalid trace: {e}"),
            SimError::PolicyViolation { slot, message } => {
                write!(f, "policy violation at slot {slot}: {message}")
            }
            SimError::OfflineInfeasible(m) => write!(f, "offline reference infeasible: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<TraceError> for SimError {
    fn from(e: TraceError) -> Self {
        SimError::Trace(e)
    }
}

/// Everything a finished replay produced.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// The online schedule: maximal awake runs (priced like offline
    /// candidates) and per-job assignments, indexed like the trace's jobs.
    pub schedule: Schedule,
    /// Machine-state timeline, restarts, and utilization — from
    /// [`sched_core::simulate`] on the online schedule.
    pub power: PowerTrace,
    /// Jobs whose windows expired unscheduled (trace job ids, ascending).
    pub dropped: Vec<usize>,
    /// The policy's event counter (re-solves, hiring commitments, …).
    pub events: u64,
    /// Re-solve accounting (warm/cold split and per-re-solve wall time) for
    /// policies that re-solve; `None` for the eager policies.
    pub resolve_stats: Option<ResolveStats>,
    /// Display name of the policy that produced this outcome.
    pub policy: String,
}

impl ReplayOutcome {
    /// Total online energy cost (sum of the priced awake runs).
    pub fn online_cost(&self) -> f64 {
        self.schedule.total_cost
    }
}

/// Replays `trace` through `policy`, enforcing causality and validating
/// every decision. Deterministic: the same trace and policy configuration
/// always produce the identical outcome, bit for bit.
pub fn replay(trace: &ArrivalTrace, policy: &mut dyn Policy) -> Result<ReplayOutcome, SimError> {
    trace.validate()?;
    let p = trace.num_processors as usize;
    // Awake runs are priced through the trace's per-processor profiles;
    // without explicit profiles this is bit-identical to the affine
    // (restart, rate) model replays always used.
    let profiles: Vec<PowerProfile> = trace.fleet_profiles();
    let cost = trace.cost_model();
    let ladder = trace.freq_ladder.as_ref();

    // Job ids ordered by (release, id): the released prefix grows with t.
    let mut order: Vec<usize> = (0..trace.jobs.len()).collect();
    order.sort_by_key(|&id| (trace.jobs[id].release, id));
    let mut next_release = 0usize;

    let mut pending: Vec<usize> = Vec::new();
    let mut assignments: Vec<Option<SlotRef>> = vec![None; trace.jobs.len()];
    let mut dropped: Vec<usize> = Vec::new();
    let mut awake_prev = vec![false; p];
    let mut run_start: Vec<Option<u32>> = vec![None; p];
    // Heaviest work requirement executed in the current run of each
    // processor (0 while the run is idle) — fixes the DVFS level the run
    // is priced at when it closes.
    let mut run_max_work: Vec<u32> = vec![0; p];
    let mut runs: Vec<CandidateInterval> = Vec::new();

    for now in 0..trace.horizon {
        while next_release < order.len() && trace.jobs[order[next_release]].release == now {
            pending.push(order[next_release]);
            next_release += 1;
        }
        pending.sort_unstable();

        let decision = {
            let _span = sched_obs::span!("sim.decide.latency_ns");
            let view = SlotView {
                now,
                num_processors: trace.num_processors,
                horizon: trace.horizon,
                restart: trace.restart,
                rate: trace.rate,
                jobs: &trace.jobs,
                pending: &pending,
                awake_prev: &awake_prev,
                profiles: &profiles,
                explicit_profiles: trace.profiles.is_some(),
                freq_ladder: ladder,
            };
            policy.decide(&view)
        };
        if sched_obs::trace::enabled() {
            // Slot-by-slot narration: what the policy chose to run and keep
            // awake, next to the spans of the solve that produced the plan.
            sched_obs::trace::instant(
                "sim.slot.decision",
                vec![
                    ("now", u64::from(now).into()),
                    ("pending", pending.len().into()),
                    ("run", decision.run.len().into()),
                    ("awake", decision.awake.len().into()),
                ],
            );
        }
        let awake_now = validate_decision(trace, &pending, &decision, now)?;

        for &(id, proc) in &decision.run {
            assignments[id] = Some(SlotRef::new(proc, now));
            pending.retain(|&x| x != id);
            let w = trace.jobs[id].work_units();
            run_max_work[proc as usize] = run_max_work[proc as usize].max(w);
        }
        // Expiry: pending jobs with no opportunity left after this slot.
        pending.retain(|&id| {
            let alive = trace.jobs[id].allowed.iter().any(|s| s.time > now);
            if !alive {
                dropped.push(id);
            }
            alive
        });

        // Fold awake flags into maximal per-processor runs.
        for proc in 0..p {
            match (run_start[proc], awake_now[proc]) {
                (None, true) => run_start[proc] = Some(now),
                (Some(start), false) => {
                    runs.push(priced_run(
                        &cost,
                        ladder,
                        trace.restart,
                        proc as u32,
                        start,
                        now,
                        run_max_work[proc],
                    ));
                    run_start[proc] = None;
                    run_max_work[proc] = 0;
                }
                _ => {}
            }
        }
        awake_prev = awake_now;
    }
    for (proc, start) in run_start.iter().enumerate() {
        if let Some(start) = start {
            runs.push(priced_run(
                &cost,
                ladder,
                trace.restart,
                proc as u32,
                *start,
                trace.horizon,
                run_max_work[proc],
            ));
        }
    }
    runs.sort_by_key(|iv| (iv.proc, iv.start));
    dropped.sort_unstable();

    let scheduled_value: f64 = assignments
        .iter()
        .enumerate()
        .filter(|(_, a)| a.is_some())
        .map(|(id, _)| trace.jobs[id].value)
        .sum();
    let scheduled_count = assignments.iter().flatten().count();
    let schedule = Schedule {
        total_cost: runs.iter().map(|iv| iv.cost).sum(),
        awake: runs,
        assignments,
        scheduled_value,
        scheduled_count,
    };
    let power = simulate(&trace.to_instance(), &schedule);

    Ok(ReplayOutcome {
        schedule,
        power,
        dropped,
        events: policy.events(),
        resolve_stats: policy.resolve_stats(),
        policy: policy.name(),
    })
}

fn priced_run(
    cost: &dyn EnergyCost,
    ladder: Option<&FreqLadder>,
    wake: f64,
    proc: u32,
    start: u32,
    end: u32,
    max_work: u32,
) -> CandidateInterval {
    let cost = match ladder {
        // DVFS pricing: the whole run holds the lowest level whose
        // frequency covers the heaviest job it executed (the bottom level
        // when idle). Trace validation caps work at the top frequency, so
        // a sufficient level always exists.
        Some(ladder) => {
            let level = ladder
                .min_level_for(max_work.max(1))
                .expect("trace validation caps work at the top frequency");
            wake + ladder.level(level).power * (end - start) as f64
        }
        None => cost.cost(proc, start, end),
    };
    CandidateInterval {
        proc,
        start,
        end,
        cost,
    }
}

/// Checks a decision and returns the per-processor awake flags for the slot.
fn validate_decision(
    trace: &ArrivalTrace,
    pending: &[usize],
    decision: &SlotDecision,
    now: u32,
) -> Result<Vec<bool>, SimError> {
    let p = trace.num_processors as usize;
    let violation = |message: String| SimError::PolicyViolation { slot: now, message };

    let mut awake_now = vec![false; p];
    for &proc in &decision.awake {
        if proc as usize >= p {
            return Err(violation(format!("awake processor {proc} out of range")));
        }
        awake_now[proc as usize] = true;
    }
    let mut proc_used = vec![false; p];
    let mut job_used = std::collections::HashSet::new();
    for &(id, proc) in &decision.run {
        if proc as usize >= p {
            return Err(violation(format!(
                "job {id} assigned to bad processor {proc}"
            )));
        }
        if !awake_now[proc as usize] {
            return Err(violation(format!(
                "job {id} runs on sleeping processor {proc}"
            )));
        }
        if proc_used[proc as usize] {
            return Err(violation(format!("processor {proc} double-booked")));
        }
        proc_used[proc as usize] = true;
        if !job_used.insert(id) {
            return Err(violation(format!("job {id} scheduled twice in one slot")));
        }
        if !pending.contains(&id) {
            return Err(violation(format!(
                "job {id} is not pending (unreleased, already scheduled, or expired)"
            )));
        }
        if !trace.jobs[id].allowed.contains(&SlotRef::new(proc, now)) {
            return Err(violation(format!(
                "job {id} not allowed on processor {proc} at slot {now}"
            )));
        }
    }
    Ok(awake_now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{GreedyWake, PeriodicResolve, PolicyKind, ThresholdHiring};
    use sched_core::model::validate_schedule;
    use sched_core::trace::TimedJob;

    fn two_burst_trace() -> ArrivalTrace {
        // Burst at t=0 (two jobs, tight windows) and a late job at t=6.
        ArrivalTrace {
            name: "two-burst".into(),
            num_processors: 1,
            horizon: 10,
            restart: 4.0,
            rate: 1.0,
            jobs: vec![
                TimedJob::window(1.0, 0, 0, 0, 3),
                TimedJob::window(1.0, 0, 0, 0, 3),
                TimedJob::window(1.0, 6, 0, 6, 9),
            ],
            profiles: None,
            freq_ladder: None,
        }
    }

    #[test]
    fn greedy_completes_and_accounts_cost() {
        let trace = two_burst_trace();
        let out = replay(&trace, &mut GreedyWake).unwrap();
        assert!(out.dropped.is_empty(), "dropped {:?}", out.dropped);
        assert_eq!(out.schedule.scheduled_count, 3);
        // Greedy runs jobs at t=0,1 (one run [0,2)) and t=6 ([6,7)):
        // cost (4+2) + (4+1) = 11.
        assert_eq!(out.online_cost(), 11.0);
        assert_eq!(out.power.restarts.iter().sum::<usize>(), 2);
        // The online schedule is a valid offline schedule of the instance.
        assert!(validate_schedule(&trace.to_instance(), &out.schedule).is_empty());
    }

    #[test]
    fn all_policies_produce_valid_schedules() {
        let trace = two_burst_trace();
        for kind in ["greedy", "hiring", "resolve:3"] {
            let kind: PolicyKind = kind.parse().unwrap();
            let mut policy = kind.build(None);
            let out = replay(&trace, policy.as_mut()).unwrap();
            assert!(out.dropped.is_empty(), "{kind}: dropped {:?}", out.dropped);
            assert_eq!(out.schedule.scheduled_count, 3, "{kind}");
            assert!(
                validate_schedule(&trace.to_instance(), &out.schedule).is_empty(),
                "{kind}: invalid schedule"
            );
        }
    }

    #[test]
    fn resolve_plans_ahead_and_counts_resolves() {
        let trace = two_burst_trace();
        let mut policy = PeriodicResolve::new(3);
        let out = replay(&trace, &mut policy).unwrap();
        assert!(policy.resolves() >= 2, "resolves {}", policy.resolves());
        assert_eq!(policy.fallbacks(), 0);
        assert_eq!(out.events, policy.resolves());
        assert_eq!(out.schedule.scheduled_count, 3);
    }

    #[test]
    fn hiring_holds_processors_awake_after_commitment() {
        // Steady demand after the observation phase: hiring should pay
        // fewer restarts than greedy at the price of idle slots.
        let trace = ArrivalTrace {
            name: "steady".into(),
            num_processors: 1,
            horizon: 12,
            restart: 6.0,
            rate: 1.0,
            jobs: (0..5)
                .map(|i| TimedJob::window(1.0 + i as f64, 2 * i, 0, 2 * i, 2 * i + 2))
                .collect(),
            profiles: None,
            freq_ladder: None,
        };
        let greedy = replay(&trace, &mut GreedyWake).unwrap();
        let mut hiring_policy = ThresholdHiring::new(0.25);
        let hiring = replay(&trace, &mut hiring_policy).unwrap();
        assert!(hiring.dropped.is_empty() && greedy.dropped.is_empty());
        let g_restarts: usize = greedy.power.restarts.iter().sum();
        let h_restarts: usize = hiring.power.restarts.iter().sum();
        assert!(
            h_restarts < g_restarts,
            "hiring restarts {h_restarts} not below greedy {g_restarts}"
        );
        assert_eq!(hiring.events, 1, "exactly one hiring commitment");
    }

    #[test]
    fn deterministic_bit_for_bit() {
        let trace = two_burst_trace();
        for kind in ["greedy", "hiring", "resolve:2"] {
            let kind: PolicyKind = kind.parse().unwrap();
            let a = replay(&trace, kind.build(None).as_mut()).unwrap();
            let b = replay(&trace, kind.build(None).as_mut()).unwrap();
            assert_eq!(a.schedule.awake, b.schedule.awake, "{kind}");
            assert_eq!(a.schedule.assignments, b.schedule.assignments, "{kind}");
            assert_eq!(
                a.online_cost().to_bits(),
                b.online_cost().to_bits(),
                "{kind}"
            );
        }
    }

    #[test]
    fn invalid_trace_rejected() {
        let mut trace = two_burst_trace();
        trace.jobs[0].allowed.push(SlotRef::new(0, 99));
        assert!(matches!(
            replay(&trace, &mut GreedyWake),
            Err(SimError::Trace(_))
        ));
    }

    #[test]
    fn cheating_policy_is_caught() {
        struct RunsSleeping;
        impl Policy for RunsSleeping {
            fn name(&self) -> String {
                "cheat".into()
            }
            fn decide(&mut self, view: &SlotView<'_>) -> SlotDecision {
                match view.pending().first() {
                    Some(&id) => SlotDecision {
                        awake: vec![],
                        run: vec![(id, 0)],
                    },
                    None => SlotDecision::default(),
                }
            }
        }
        let err = replay(&two_burst_trace(), &mut RunsSleeping).unwrap_err();
        assert!(
            matches!(err, SimError::PolicyViolation { slot: 0, .. }),
            "{err}"
        );

        struct DoubleBooks;
        impl Policy for DoubleBooks {
            fn name(&self) -> String {
                "cheat2".into()
            }
            fn decide(&mut self, view: &SlotView<'_>) -> SlotDecision {
                if view.pending().len() >= 2 {
                    SlotDecision {
                        awake: vec![0],
                        run: vec![(view.pending()[0], 0), (view.pending()[1], 0)],
                    }
                } else {
                    SlotDecision::default()
                }
            }
        }
        let err = replay(&two_burst_trace(), &mut DoubleBooks).unwrap_err();
        assert!(
            matches!(err, SimError::PolicyViolation { .. }) && err.to_string().contains("double"),
            "{err}"
        );
    }

    #[test]
    fn contended_final_slot_reports_drop() {
        // Two jobs, both only runnable at (0, 1): one must drop.
        let trace = ArrivalTrace {
            name: "contended".into(),
            num_processors: 1,
            horizon: 3,
            restart: 1.0,
            rate: 1.0,
            jobs: vec![
                TimedJob::window(1.0, 1, 0, 1, 2),
                TimedJob::window(1.0, 1, 0, 1, 2),
            ],
            profiles: None,
            freq_ladder: None,
        };
        let out = replay(&trace, &mut GreedyWake).unwrap();
        assert_eq!(out.schedule.scheduled_count, 1);
        assert_eq!(out.dropped.len(), 1);
    }
}
