//! Matroid oracles for the matroid-constrained submodular secretary problem
//! (Section 3.3 of Zadimoghaddam 2010).
//!
//! A matroid `(U, I)` is given by a ground set `0..ground_size()` and an
//! independence oracle. Algorithm 3 of the paper only ever needs two
//! operations — "can I add element `e` to my current independent set?" and
//! the rank `r` (to size its guessing pool `{2⁰, …, 2^⌈log r⌉}`) — so that is
//! the trait surface, with batch checks layered on top.
//!
//! Provided families (all used by experiment E8):
//! * [`UniformMatroid`] — independent iff `|S| ≤ k`;
//! * [`PartitionMatroid`] — per-group capacities;
//! * [`GraphicMatroid`] — edge sets forming forests (union–find);
//! * [`TransversalMatroid`] — job sets matchable in a bipartite graph
//!   (the matroid implicitly underlying the scheduling reduction);
//! * [`LaminarMatroid`] — capacities on a laminar family.
//!
//! [`check_matroid_axioms`] exhaustively validates the hereditary and
//! exchange axioms on small ground sets and backs this crate's test suite.

pub mod axioms;
pub mod combinators;
pub mod graphic;
pub mod laminar;
pub mod partition;
pub mod transversal;
pub mod uniform;

pub use axioms::check_matroid_axioms;
pub use combinators::{DirectSum, Restriction, Truncation};
pub use graphic::GraphicMatroid;
pub use laminar::LaminarMatroid;
pub use partition::PartitionMatroid;
pub use transversal::TransversalMatroid;
pub use uniform::UniformMatroid;

/// Independence oracle for a matroid over ground set `0..ground_size()`.
///
/// `set` arguments must contain *distinct* elements; implementations may
/// debug-assert this but are allowed to return garbage on duplicates.
pub trait Matroid: Sync {
    /// `|U|`.
    fn ground_size(&self) -> usize;

    /// Is `set` independent?
    fn is_independent(&self, set: &[u32]) -> bool;

    /// The matroid's rank (size of the largest independent set).
    fn rank(&self) -> usize;

    /// Can `e ∉ current` be added to the independent set `current` while
    /// keeping independence? Default builds the extended set; structured
    /// implementations may override with something incremental.
    fn can_add(&self, current: &[u32], e: u32) -> bool {
        debug_assert!(!current.contains(&e));
        let mut ext = Vec::with_capacity(current.len() + 1);
        ext.extend_from_slice(current);
        ext.push(e);
        self.is_independent(&ext)
    }
}

/// Feasibility with respect to *all* of `l` matroids at once (the paper's
/// `l`-matroid-intersection constraint of Theorem 3.1.2).
pub fn independent_in_all(matroids: &[&dyn Matroid], set: &[u32]) -> bool {
    matroids.iter().all(|m| m.is_independent(set))
}

/// `can_add` against all matroids simultaneously.
pub fn can_add_in_all(matroids: &[&dyn Matroid], current: &[u32], e: u32) -> bool {
    matroids.iter().all(|m| m.can_add(current, e))
}

/// Maximum of the ranks of the given matroids (the `r` of Theorem 3.1.2).
pub fn max_rank(matroids: &[&dyn Matroid]) -> usize {
    matroids.iter().map(|m| m.rank()).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersection_helpers() {
        let u = UniformMatroid::new(5, 2);
        let p = PartitionMatroid::new(vec![0, 0, 1, 1, 1], vec![1, 2]);
        let ms: Vec<&dyn Matroid> = vec![&u, &p];
        assert!(independent_in_all(&ms, &[0, 2]));
        // violates uniform (3 elements)
        assert!(!independent_in_all(&ms, &[0, 2, 3]));
        // violates partition (two from group 0)
        assert!(!independent_in_all(&ms, &[0, 1]));
        assert!(can_add_in_all(&ms, &[0], 2));
        assert!(!can_add_in_all(&ms, &[0], 1));
        assert_eq!(max_rank(&ms), 3);
    }
}
