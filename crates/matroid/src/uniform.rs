//! Uniform matroid: independent iff at most `k` elements.

use crate::Matroid;

/// The uniform matroid `U_{k,n}`: a set is independent iff `|S| ≤ k`.
///
/// The cardinality constraint of the basic multiple-choice secretary problem
/// is exactly this matroid.
#[derive(Clone, Debug)]
pub struct UniformMatroid {
    n: usize,
    k: usize,
}

impl UniformMatroid {
    /// Creates `U_{k,n}`.
    pub fn new(n: usize, k: usize) -> Self {
        Self { n, k }
    }
}

impl Matroid for UniformMatroid {
    fn ground_size(&self) -> usize {
        self.n
    }
    fn is_independent(&self, set: &[u32]) -> bool {
        debug_assert!(set.iter().all(|&e| (e as usize) < self.n));
        set.len() <= self.k
    }
    fn rank(&self) -> usize {
        self.k.min(self.n)
    }
    fn can_add(&self, current: &[u32], _e: u32) -> bool {
        current.len() < self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_matroid_axioms;

    #[test]
    fn basic() {
        let m = UniformMatroid::new(5, 2);
        assert!(m.is_independent(&[]));
        assert!(m.is_independent(&[0, 4]));
        assert!(!m.is_independent(&[0, 1, 2]));
        assert!(m.can_add(&[0], 1));
        assert!(!m.can_add(&[0, 1], 2));
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn rank_clamped_by_ground() {
        let m = UniformMatroid::new(3, 10);
        assert_eq!(m.rank(), 3);
    }

    #[test]
    fn axioms() {
        check_matroid_axioms(&UniformMatroid::new(5, 2)).unwrap();
        check_matroid_axioms(&UniformMatroid::new(4, 0)).unwrap();
        check_matroid_axioms(&UniformMatroid::new(4, 4)).unwrap();
    }
}
