//! Partition matroid: per-group capacities.

use crate::Matroid;

/// Ground set partitioned into groups; independent iff every group
/// contributes at most its capacity.
///
/// Truncated partition matroids are one of the special cases for which
/// Babaioff et al. gave constant-competitive secretary algorithms; they show
/// up in E8 as the "easy" matroid family.
#[derive(Clone, Debug)]
pub struct PartitionMatroid {
    /// `group[e]` = group id of element `e`.
    group: Vec<u32>,
    /// `cap[g]` = capacity of group `g`.
    cap: Vec<usize>,
}

impl PartitionMatroid {
    /// Creates a partition matroid.
    ///
    /// # Panics
    /// Panics if a group id is out of range of `cap`.
    pub fn new(group: Vec<u32>, cap: Vec<usize>) -> Self {
        for &g in &group {
            assert!(
                (g as usize) < cap.len(),
                "group id {g} has no capacity entry"
            );
        }
        Self { group, cap }
    }

    fn counts(&self, set: &[u32]) -> Vec<usize> {
        let mut c = vec![0usize; self.cap.len()];
        for &e in set {
            c[self.group[e as usize] as usize] += 1;
        }
        c
    }
}

impl Matroid for PartitionMatroid {
    fn ground_size(&self) -> usize {
        self.group.len()
    }

    fn is_independent(&self, set: &[u32]) -> bool {
        debug_assert!(set.iter().all(|&e| (e as usize) < self.group.len()));
        self.counts(set)
            .iter()
            .zip(&self.cap)
            .all(|(&c, &k)| c <= k)
    }

    fn rank(&self) -> usize {
        // per group: min(capacity, group size)
        let mut sizes = vec![0usize; self.cap.len()];
        for &g in &self.group {
            sizes[g as usize] += 1;
        }
        sizes.iter().zip(&self.cap).map(|(&s, &k)| s.min(k)).sum()
    }

    fn can_add(&self, current: &[u32], e: u32) -> bool {
        let g = self.group[e as usize];
        let used = current
            .iter()
            .filter(|&&x| self.group[x as usize] == g)
            .count();
        used < self.cap[g as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_matroid_axioms;

    #[test]
    fn basic() {
        // groups: {0,1} cap 1, {2,3,4} cap 2
        let m = PartitionMatroid::new(vec![0, 0, 1, 1, 1], vec![1, 2]);
        assert!(m.is_independent(&[0, 2, 3]));
        assert!(!m.is_independent(&[0, 1]));
        assert!(!m.is_independent(&[2, 3, 4]));
        assert_eq!(m.rank(), 3);
        assert!(m.can_add(&[0, 2], 3));
        assert!(!m.can_add(&[0, 2, 3], 4));
    }

    #[test]
    fn zero_capacity_group() {
        let m = PartitionMatroid::new(vec![0, 1], vec![0, 1]);
        assert!(!m.is_independent(&[0]));
        assert!(m.is_independent(&[1]));
        assert_eq!(m.rank(), 1);
    }

    #[test]
    fn axioms() {
        check_matroid_axioms(&PartitionMatroid::new(vec![0, 0, 1, 1, 1], vec![1, 2])).unwrap();
        check_matroid_axioms(&PartitionMatroid::new(vec![0, 1, 2], vec![1, 1, 1])).unwrap();
        check_matroid_axioms(&PartitionMatroid::new(vec![0, 0, 0, 0], vec![2])).unwrap();
    }

    #[test]
    #[should_panic(expected = "no capacity entry")]
    fn invalid_group_panics() {
        PartitionMatroid::new(vec![0, 5], vec![1]);
    }
}
