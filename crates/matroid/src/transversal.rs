//! Transversal matroid: job sets simultaneously matchable in a bipartite
//! graph.
//!
//! This is the matroid implicitly at work in the scheduling reduction of the
//! paper's Chapter 2: the sets of jobs that can be scheduled into a fixed
//! collection of awake slots are exactly the independent sets of the
//! transversal matroid of the slot–job graph. Bounded-degree transversal
//! matroids are also one of Babaioff et al.'s constant-competitive secretary
//! cases (E8).

use crate::Matroid;
use bmatch::{hopcroft_karp, BipartiteGraph};

/// Transversal matroid over the `Y` (job) side of a bipartite graph: a set of
/// jobs is independent iff they can all be matched to distinct `X` (slot)
/// vertices simultaneously.
#[derive(Clone, Debug)]
pub struct TransversalMatroid {
    g: BipartiteGraph,
    rank: usize,
}

impl TransversalMatroid {
    /// Creates the transversal matroid of `g`, with ground set `0..g.ny()`.
    pub fn new(g: BipartiteGraph) -> Self {
        let rank = hopcroft_karp(&g, |_| true).size;
        Self { g, rank }
    }

    /// The underlying bipartite graph.
    pub fn graph(&self) -> &BipartiteGraph {
        &self.g
    }

    /// Kuhn-style augmentation restricted to the jobs in `set`.
    fn matchable(&self, set: &[u32]) -> bool {
        let nx = self.g.nx() as usize;
        let mut match_x = vec![u32::MAX; nx];
        let mut seen = vec![false; nx];

        // DFS augment for one job; `members` guards recursion into set jobs only.
        fn augment(g: &BipartiteGraph, y: u32, match_x: &mut [u32], seen: &mut [bool]) -> bool {
            for &x in g.adj_y(y) {
                if seen[x as usize] {
                    continue;
                }
                seen[x as usize] = true;
                let occ = match_x[x as usize];
                if occ == u32::MAX || augment(g, occ, match_x, seen) {
                    match_x[x as usize] = y;
                    return true;
                }
            }
            false
        }

        for &y in set {
            seen.fill(false);
            if !augment(&self.g, y, &mut match_x, &mut seen) {
                return false;
            }
        }
        true
    }
}

impl Matroid for TransversalMatroid {
    fn ground_size(&self) -> usize {
        self.g.ny() as usize
    }

    fn is_independent(&self, set: &[u32]) -> bool {
        debug_assert!(set.iter().all(|&e| e < self.g.ny()));
        self.matchable(set)
    }

    fn rank(&self) -> usize {
        self.rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_matroid_axioms;

    #[test]
    fn two_jobs_one_slot() {
        // both jobs adjacent only to slot 0: singletons independent, pair not
        let g = BipartiteGraph::from_edges(1, 2, &[(0, 0), (0, 1)]);
        let m = TransversalMatroid::new(g);
        assert!(m.is_independent(&[0]));
        assert!(m.is_independent(&[1]));
        assert!(!m.is_independent(&[0, 1]));
        assert_eq!(m.rank(), 1);
    }

    #[test]
    fn isolated_job_is_loop() {
        let g = BipartiteGraph::from_edges(1, 2, &[(0, 0)]);
        let m = TransversalMatroid::new(g);
        assert!(!m.is_independent(&[1]));
        assert!(m.is_independent(&[0]));
    }

    #[test]
    fn requires_augmentation() {
        // job0: {slot0, slot1}; job1: {slot0}. Both matchable together.
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (1, 0), (0, 1)]);
        let m = TransversalMatroid::new(g);
        assert!(m.is_independent(&[0, 1]));
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn axioms_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..15 {
            let nx = rng.gen_range(1..=4u32);
            let ny = rng.gen_range(1..=5u32);
            let mut e = Vec::new();
            for x in 0..nx {
                for y in 0..ny {
                    if rng.gen_bool(0.4) {
                        e.push((x, y));
                    }
                }
            }
            let m = TransversalMatroid::new(BipartiteGraph::from_edges(nx, ny, &e));
            check_matroid_axioms(&m).unwrap();
        }
    }
}
