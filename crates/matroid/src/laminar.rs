//! Laminar matroid: capacities on a laminar family of element sets.

use crate::Matroid;

/// A laminar matroid: a family of element sets, any two of which are nested
/// or disjoint, each with a capacity; a set `S` is independent iff
/// `|S ∩ F| ≤ cap(F)` for every family member `F`.
///
/// Generalizes both uniform (one family set = everything) and partition
/// matroids (disjoint family sets).
#[derive(Clone, Debug)]
pub struct LaminarMatroid {
    n: usize,
    /// Sorted, deduplicated member lists.
    families: Vec<Vec<u32>>,
    caps: Vec<usize>,
    rank: usize,
}

impl LaminarMatroid {
    /// Creates a laminar matroid over ground `0..n`.
    ///
    /// # Panics
    /// Panics if the family is not laminar (some pair neither nested nor
    /// disjoint), if lengths mismatch, or if members are out of range.
    pub fn new(n: usize, mut families: Vec<Vec<u32>>, caps: Vec<usize>) -> Self {
        assert_eq!(families.len(), caps.len());
        for f in families.iter_mut() {
            f.sort_unstable();
            f.dedup();
            for &e in f.iter() {
                assert!((e as usize) < n, "element {e} out of range");
            }
        }
        for i in 0..families.len() {
            for j in i + 1..families.len() {
                let (a, b) = (&families[i], &families[j]);
                let inter = intersection_size(a, b);
                let nested_or_disjoint = inter == 0 || inter == a.len() || inter == b.len();
                assert!(
                    nested_or_disjoint,
                    "family sets {i} and {j} are neither nested nor disjoint"
                );
            }
        }
        let mut m = Self {
            n,
            families,
            caps,
            rank: 0,
        };
        // rank = size of a maximum independent set, found greedily (valid
        // because matroid greedy with unit weights maximizes cardinality).
        let mut cur: Vec<u32> = Vec::new();
        for e in 0..n as u32 {
            if m.can_add(&cur, e) {
                cur.push(e);
            }
        }
        m.rank = cur.len();
        m
    }
}

fn intersection_size(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut c) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

impl Matroid for LaminarMatroid {
    fn ground_size(&self) -> usize {
        self.n
    }

    fn is_independent(&self, set: &[u32]) -> bool {
        debug_assert!(set.iter().all(|&e| (e as usize) < self.n));
        self.families
            .iter()
            .zip(&self.caps)
            .all(|(f, &cap)| set.iter().filter(|&&e| f.binary_search(&e).is_ok()).count() <= cap)
    }

    fn rank(&self) -> usize {
        self.rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_matroid_axioms;

    #[test]
    fn nested_caps() {
        // inner {0,1} cap 1, outer {0,1,2,3} cap 2
        let m = LaminarMatroid::new(4, vec![vec![0, 1], vec![0, 1, 2, 3]], vec![1, 2]);
        assert!(m.is_independent(&[0, 2]));
        assert!(!m.is_independent(&[0, 1]));
        assert!(!m.is_independent(&[0, 2, 3]));
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn reduces_to_partition() {
        let m = LaminarMatroid::new(4, vec![vec![0, 1], vec![2, 3]], vec![1, 1]);
        assert!(m.is_independent(&[0, 2]));
        assert!(!m.is_independent(&[2, 3]));
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn elements_outside_families_are_free() {
        let m = LaminarMatroid::new(3, vec![vec![0]], vec![0]);
        assert!(!m.is_independent(&[0]));
        assert!(m.is_independent(&[1, 2]));
        assert_eq!(m.rank(), 2);
    }

    #[test]
    #[should_panic(expected = "neither nested nor disjoint")]
    fn non_laminar_rejected() {
        LaminarMatroid::new(3, vec![vec![0, 1], vec![1, 2]], vec![1, 1]);
    }

    #[test]
    fn axioms() {
        check_matroid_axioms(&LaminarMatroid::new(
            5,
            vec![vec![0, 1], vec![0, 1, 2, 3], vec![4]],
            vec![1, 3, 1],
        ))
        .unwrap();
        check_matroid_axioms(&LaminarMatroid::new(
            4,
            vec![vec![0, 1, 2, 3], vec![0, 1]],
            vec![2, 1],
        ))
        .unwrap();
    }
}
