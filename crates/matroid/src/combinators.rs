//! Matroid combinators: truncation, restriction, and direct sum.
//!
//! These closure operations let the experiments compose the menagerie
//! (Babaioff et al.'s constant-competitive *truncated* partition matroids
//! are literally `Truncation<PartitionMatroid>`), and they come with the
//! standard matroid-theory guarantees, validated by the exhaustive axiom
//! checker in this crate's tests.

use crate::Matroid;

/// The truncation `M|_k`: independent iff independent in `M` **and** of size
/// at most `k`. Always a matroid.
#[derive(Clone, Debug)]
pub struct Truncation<M> {
    inner: M,
    k: usize,
}

impl<M: Matroid> Truncation<M> {
    /// Truncates `inner` to rank at most `k`.
    pub fn new(inner: M, k: usize) -> Self {
        Self { inner, k }
    }

    /// The wrapped matroid.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: Matroid> Matroid for Truncation<M> {
    fn ground_size(&self) -> usize {
        self.inner.ground_size()
    }
    fn is_independent(&self, set: &[u32]) -> bool {
        set.len() <= self.k && self.inner.is_independent(set)
    }
    fn rank(&self) -> usize {
        self.inner.rank().min(self.k)
    }
    fn can_add(&self, current: &[u32], e: u32) -> bool {
        current.len() < self.k && self.inner.can_add(current, e)
    }
}

/// The restriction `M | S`: the matroid on the same ground set whose
/// independent sets are the independent subsets of `S` (elements outside
/// `S` become loops). Always a matroid.
#[derive(Clone, Debug)]
pub struct Restriction<M> {
    inner: M,
    allowed: Vec<bool>,
    rank: usize,
}

impl<M: Matroid> Restriction<M> {
    /// Restricts `inner` to the elements of `keep`.
    pub fn new(inner: M, keep: &[u32]) -> Self {
        let mut allowed = vec![false; inner.ground_size()];
        for &e in keep {
            allowed[e as usize] = true;
        }
        // rank by matroid greedy over the kept elements
        let mut cur: Vec<u32> = Vec::new();
        for e in 0..inner.ground_size() as u32 {
            if allowed[e as usize] && inner.can_add(&cur, e) {
                cur.push(e);
            }
        }
        let rank = cur.len();
        Self {
            inner,
            allowed,
            rank,
        }
    }
}

impl<M: Matroid> Matroid for Restriction<M> {
    fn ground_size(&self) -> usize {
        self.inner.ground_size()
    }
    fn is_independent(&self, set: &[u32]) -> bool {
        set.iter().all(|&e| self.allowed[e as usize]) && self.inner.is_independent(set)
    }
    fn rank(&self) -> usize {
        self.rank
    }
    fn can_add(&self, current: &[u32], e: u32) -> bool {
        self.allowed[e as usize] && self.inner.can_add(current, e)
    }
}

/// The direct sum `M₁ ⊕ M₂` over the disjoint union of the ground sets:
/// elements `0..n₁` behave as `M₁`, elements `n₁..n₁+n₂` as `M₂` (shifted).
/// Always a matroid.
#[derive(Clone, Debug)]
pub struct DirectSum<A, B> {
    left: A,
    right: B,
}

impl<A: Matroid, B: Matroid> DirectSum<A, B> {
    /// Builds the direct sum.
    pub fn new(left: A, right: B) -> Self {
        Self { left, right }
    }

    fn split(&self, set: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let n1 = self.left.ground_size() as u32;
        let mut l = Vec::new();
        let mut r = Vec::new();
        for &e in set {
            if e < n1 {
                l.push(e);
            } else {
                r.push(e - n1);
            }
        }
        (l, r)
    }
}

impl<A: Matroid, B: Matroid> Matroid for DirectSum<A, B> {
    fn ground_size(&self) -> usize {
        self.left.ground_size() + self.right.ground_size()
    }
    fn is_independent(&self, set: &[u32]) -> bool {
        let (l, r) = self.split(set);
        self.left.is_independent(&l) && self.right.is_independent(&r)
    }
    fn rank(&self) -> usize {
        self.left.rank() + self.right.rank()
    }
    fn can_add(&self, current: &[u32], e: u32) -> bool {
        let n1 = self.left.ground_size() as u32;
        let (l, r) = self.split(current);
        if e < n1 {
            self.left.can_add(&l, e)
        } else {
            self.right.can_add(&r, e - n1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_matroid_axioms, GraphicMatroid, PartitionMatroid, UniformMatroid};

    #[test]
    fn truncation_caps_rank() {
        let m = Truncation::new(UniformMatroid::new(6, 5), 2);
        assert_eq!(m.rank(), 2);
        assert!(m.is_independent(&[0, 1]));
        assert!(!m.is_independent(&[0, 1, 2]));
        assert!(m.can_add(&[0], 1));
        assert!(!m.can_add(&[0, 1], 2));
        check_matroid_axioms(&m).unwrap();
    }

    #[test]
    fn truncated_partition_matroid() {
        // the Babaioff et al. special case
        let p = PartitionMatroid::new(vec![0, 0, 1, 1, 2, 2], vec![2, 2, 2]);
        let m = Truncation::new(p, 3);
        assert_eq!(m.rank(), 3);
        assert!(m.is_independent(&[0, 2, 4]));
        assert!(!m.is_independent(&[0, 1, 2, 3]));
        check_matroid_axioms(&m).unwrap();
    }

    #[test]
    fn restriction_makes_loops() {
        let m = Restriction::new(UniformMatroid::new(5, 3), &[0, 2, 4]);
        assert!(m.is_independent(&[0, 2, 4]));
        assert!(!m.is_independent(&[1]));
        assert_eq!(m.rank(), 3);
        check_matroid_axioms(&m).unwrap();
        let tight = Restriction::new(UniformMatroid::new(5, 3), &[0]);
        assert_eq!(tight.rank(), 1);
        check_matroid_axioms(&tight).unwrap();
    }

    #[test]
    fn restriction_of_graphic() {
        // K3 restricted to two of its edges: both independent together
        let g = GraphicMatroid::new(3, vec![(0, 1), (1, 2), (0, 2)]);
        let m = Restriction::new(g, &[0, 1]);
        assert!(m.is_independent(&[0, 1]));
        assert!(!m.is_independent(&[2]));
        assert_eq!(m.rank(), 2);
        check_matroid_axioms(&m).unwrap();
    }

    #[test]
    fn direct_sum_separates_grounds() {
        let m = DirectSum::new(UniformMatroid::new(2, 1), UniformMatroid::new(3, 2));
        assert_eq!(m.ground_size(), 5);
        assert_eq!(m.rank(), 3);
        assert!(m.is_independent(&[0, 2, 3]));
        assert!(!m.is_independent(&[0, 1])); // both from left (cap 1)
        assert!(!m.is_independent(&[2, 3, 4])); // all from right (cap 2)
        assert!(m.can_add(&[0, 2], 3));
        assert!(!m.can_add(&[0, 2, 3], 4));
        check_matroid_axioms(&m).unwrap();
    }

    #[test]
    fn nested_combinators() {
        let p = PartitionMatroid::new(vec![0, 0, 1, 1], vec![1, 2]);
        let m = Truncation::new(DirectSum::new(p, UniformMatroid::new(2, 2)), 3);
        assert_eq!(m.ground_size(), 6);
        assert_eq!(m.rank(), 3);
        check_matroid_axioms(&m).unwrap();
    }
}
