//! Exhaustive matroid-axiom verification for small ground sets.
//!
//! Validates the three axioms the paper recalls in §3.1: the empty set is
//! independent; independence is hereditary; and the exchange (augmentation)
//! property holds. Exponential in the ground size — test-only.

use crate::Matroid;

/// Checks the matroid axioms of `m` exhaustively.
///
/// # Panics
/// Panics if the ground set has more than 16 elements.
pub fn check_matroid_axioms(m: &dyn Matroid) -> Result<(), String> {
    let n = m.ground_size();
    assert!(
        n <= 16,
        "exhaustive axiom check limited to ground size ≤ 16"
    );
    let to_set = |mask: u32| -> Vec<u32> { (0..n as u32).filter(|i| mask >> i & 1 == 1).collect() };
    let indep: Vec<bool> = (0u32..(1 << n))
        .map(|mask| m.is_independent(&to_set(mask)))
        .collect();

    if !indep[0] {
        return Err("empty set is not independent".into());
    }

    // hereditary: every subset of an independent set is independent
    for mask in 0u32..(1 << n) {
        if !indep[mask as usize] {
            continue;
        }
        let mut sub = mask;
        loop {
            if !indep[sub as usize] {
                return Err(format!("hereditary violated: {sub:#b} ⊆ {mask:#b}"));
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & mask;
        }
    }

    // exchange: |A| > |B|, both independent ⇒ ∃ a ∈ A∖B with B+a independent
    for a in 0u32..(1 << n) {
        if !indep[a as usize] {
            continue;
        }
        for b in 0u32..(1 << n) {
            if !indep[b as usize] || a.count_ones() <= b.count_ones() {
                continue;
            }
            let diff = a & !b;
            let ok = (0..n as u32)
                .filter(|i| diff >> i & 1 == 1)
                .any(|i| indep[(b | (1 << i)) as usize]);
            if !ok {
                return Err(format!("exchange violated: A={a:#b}, B={b:#b}"));
            }
        }
    }

    // rank consistency
    let true_rank = (0u32..(1 << n))
        .filter(|&mask| indep[mask as usize])
        .map(|mask| mask.count_ones() as usize)
        .max()
        .unwrap_or(0);
    if m.rank() != true_rank {
        return Err(format!("rank() = {} but true rank = {true_rank}", m.rank()));
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An intentionally broken "matroid" violating exchange.
    struct NotAMatroid;
    impl Matroid for NotAMatroid {
        fn ground_size(&self) -> usize {
            3
        }
        fn is_independent(&self, set: &[u32]) -> bool {
            // {0,1} independent, but {2} maximal on its own: violates exchange
            match set.len() {
                0 => true,
                1 => true,
                2 => set.contains(&0) && set.contains(&1),
                _ => false,
            }
        }
        fn rank(&self) -> usize {
            2
        }
    }

    #[test]
    fn detects_exchange_violation() {
        let err = check_matroid_axioms(&NotAMatroid).unwrap_err();
        assert!(err.contains("exchange"), "unexpected error: {err}");
    }

    /// Free matroid: everything independent.
    struct Free(usize);
    impl Matroid for Free {
        fn ground_size(&self) -> usize {
            self.0
        }
        fn is_independent(&self, _set: &[u32]) -> bool {
            true
        }
        fn rank(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn free_matroid_passes() {
        check_matroid_axioms(&Free(4)).unwrap();
    }
}
