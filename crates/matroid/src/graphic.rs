//! Graphic matroid: edge sets that form forests.

use crate::Matroid;

/// The graphic matroid of an undirected multigraph: ground elements are
/// edges; a set is independent iff it is acyclic (a forest).
///
/// Babaioff et al. gave constant-competitive secretary algorithms for graphic
/// matroids; they are the "structured" family in experiment E8.
#[derive(Clone, Debug)]
pub struct GraphicMatroid {
    n_vertices: usize,
    edges: Vec<(u32, u32)>,
    rank: usize,
}

impl GraphicMatroid {
    /// Creates the graphic matroid of the graph on `n_vertices` vertices with
    /// the given edge list. Self-loops are allowed (they are dependent as
    /// singletons, i.e. loops in matroid terms).
    pub fn new(n_vertices: usize, edges: Vec<(u32, u32)>) -> Self {
        for &(u, v) in &edges {
            assert!(
                (u as usize) < n_vertices && (v as usize) < n_vertices,
                "edge ({u},{v}) out of range"
            );
        }
        // rank = n_vertices − #components of the full graph (loops ignored)
        let mut dsu = Dsu::new(n_vertices);
        let mut rank = 0;
        for &(u, v) in &edges {
            if dsu.union(u as usize, v as usize) {
                rank += 1;
            }
        }
        Self {
            n_vertices,
            edges,
            rank,
        }
    }
}

impl Matroid for GraphicMatroid {
    fn ground_size(&self) -> usize {
        self.edges.len()
    }

    fn is_independent(&self, set: &[u32]) -> bool {
        let mut dsu = Dsu::new(self.n_vertices);
        for &e in set {
            let (u, v) = self.edges[e as usize];
            if !dsu.union(u as usize, v as usize) {
                return false;
            }
        }
        true
    }

    fn rank(&self) -> usize {
        self.rank
    }

    fn can_add(&self, current: &[u32], e: u32) -> bool {
        let mut dsu = Dsu::new(self.n_vertices);
        for &c in current {
            let (u, v) = self.edges[c as usize];
            let fresh = dsu.union(u as usize, v as usize);
            debug_assert!(fresh, "`current` must be independent");
        }
        let (u, v) = self.edges[e as usize];
        dsu.find(u as usize) != dsu.find(v as usize)
    }
}

/// Small union–find with path halving and union by size.
#[derive(Clone, Debug)]
struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            self.parent[x] = self.parent[self.parent[x] as usize];
            x = self.parent[x] as usize;
        }
        x
    }

    /// Returns false if `a` and `b` were already connected.
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_matroid_axioms;

    #[test]
    fn triangle() {
        // K3: any 2 edges independent, all 3 dependent
        let m = GraphicMatroid::new(3, vec![(0, 1), (1, 2), (0, 2)]);
        assert!(m.is_independent(&[0, 1]));
        assert!(m.is_independent(&[0, 2]));
        assert!(!m.is_independent(&[0, 1, 2]));
        assert_eq!(m.rank(), 2);
        assert!(!m.can_add(&[0, 1], 2));
        assert!(m.can_add(&[0], 1));
    }

    #[test]
    fn self_loop_is_dependent() {
        let m = GraphicMatroid::new(2, vec![(0, 0), (0, 1)]);
        assert!(!m.is_independent(&[0]));
        assert!(m.is_independent(&[1]));
        assert_eq!(m.rank(), 1);
    }

    #[test]
    fn parallel_edges() {
        let m = GraphicMatroid::new(2, vec![(0, 1), (0, 1)]);
        assert!(m.is_independent(&[0]));
        assert!(!m.is_independent(&[0, 1]));
        assert_eq!(m.rank(), 1);
    }

    #[test]
    fn forest_rank_multiple_components() {
        // two disjoint edges + isolated vertex: rank 2
        let m = GraphicMatroid::new(5, vec![(0, 1), (2, 3)]);
        assert_eq!(m.rank(), 2);
        assert!(m.is_independent(&[0, 1]));
    }

    #[test]
    fn axioms_k4() {
        // K4 has 6 edges, rank 3
        let edges = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let m = GraphicMatroid::new(4, edges);
        assert_eq!(m.rank(), 3);
        check_matroid_axioms(&m).unwrap();
    }

    #[test]
    fn axioms_with_loop_and_parallel() {
        let m = GraphicMatroid::new(3, vec![(0, 0), (0, 1), (0, 1), (1, 2)]);
        check_matroid_axioms(&m).unwrap();
    }
}
