//! Property tests: matroid combinators preserve the axioms for randomized
//! base matroids, and their ranks compose as the theory says.

use matroid::{
    check_matroid_axioms, DirectSum, GraphicMatroid, Matroid, PartitionMatroid, Restriction,
    Truncation, UniformMatroid,
};
use proptest::prelude::*;

fn partition_strategy() -> impl Strategy<Value = PartitionMatroid> {
    (1usize..6, 1usize..4).prop_flat_map(|(n, groups)| {
        (
            proptest::collection::vec(0u32..groups as u32, n),
            proptest::collection::vec(0usize..3, groups),
        )
            .prop_map(|(assign, caps)| PartitionMatroid::new(assign, caps))
    })
}

fn graphic_strategy() -> impl Strategy<Value = GraphicMatroid> {
    (2usize..5).prop_flat_map(|verts| {
        proptest::collection::vec((0u32..verts as u32, 0u32..verts as u32), 1..7)
            .prop_map(move |edges| GraphicMatroid::new(verts, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn truncation_of_partition_is_matroid(m in partition_strategy(), k in 0usize..5) {
        let t = Truncation::new(m, k);
        if t.ground_size() <= 9 {
            prop_assert!(check_matroid_axioms(&t).is_ok());
        }
    }

    #[test]
    fn truncation_of_graphic_is_matroid(m in graphic_strategy(), k in 0usize..4) {
        let t = Truncation::new(m, k);
        if t.ground_size() <= 9 {
            prop_assert!(check_matroid_axioms(&t).is_ok());
        }
    }

    #[test]
    fn restriction_preserves_axioms(m in partition_strategy(),
                                    keep_bits in proptest::collection::vec(any::<bool>(), 6)) {
        let keep: Vec<u32> = (0..m.ground_size() as u32)
            .filter(|&e| *keep_bits.get(e as usize).unwrap_or(&false))
            .collect();
        let r = Restriction::new(m, &keep);
        if r.ground_size() <= 9 {
            prop_assert!(check_matroid_axioms(&r).is_ok());
        }
    }

    #[test]
    fn direct_sum_preserves_axioms(a in partition_strategy(), b in graphic_strategy()) {
        let s = DirectSum::new(a, b);
        if s.ground_size() <= 9 {
            prop_assert!(check_matroid_axioms(&s).is_ok());
        }
    }

    #[test]
    fn direct_sum_rank_is_additive(a in partition_strategy(), k in 1usize..4) {
        let u = UniformMatroid::new(3, k);
        let expected = a.rank() + u.rank();
        let s = DirectSum::new(a, u);
        prop_assert_eq!(s.rank(), expected);
    }

    #[test]
    fn truncation_rank_is_min(m in graphic_strategy(), k in 0usize..6) {
        let inner_rank = m.rank();
        let t = Truncation::new(m, k);
        prop_assert_eq!(t.rank(), inner_rank.min(k));
    }

    #[test]
    fn can_add_agrees_with_is_independent(m in partition_strategy(),
                                          set_bits in proptest::collection::vec(any::<bool>(), 6),
                                          e in 0u32..6) {
        let n = m.ground_size() as u32;
        prop_assume!(e < n);
        let current: Vec<u32> = (0..n)
            .filter(|&x| x != e && *set_bits.get(x as usize).unwrap_or(&false))
            .collect();
        prop_assume!(m.is_independent(&current));
        let mut ext = current.clone();
        ext.push(e);
        prop_assert_eq!(m.can_add(&current, e), m.is_independent(&ext));
    }
}
