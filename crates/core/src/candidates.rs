//! Awake-interval candidate generation.
//!
//! The greedy optimizes over an explicit family of candidate awake intervals
//! (the paper's "allowable subsets"). Definition 2 permits the costs to come
//! from a query oracle; in the polynomial regime the relevant candidates are
//! the `O(p·T²)` contiguous intervals, optionally length-bounded. Intervals
//! with infinite cost (unavailability) are dropped during enumeration.

use serde::{Deserialize, Serialize};

use crate::cost::EnergyCost;
use crate::model::Instance;

/// One candidate awake interval `[start, end)` on a processor, with its
/// energy cost already evaluated.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CandidateInterval {
    /// Processor index.
    pub proc: u32,
    /// First awake slot (inclusive).
    pub start: u32,
    /// One past the last awake slot (exclusive).
    pub end: u32,
    /// Energy cost (strictly positive, finite).
    pub cost: f64,
}

impl CandidateInterval {
    /// Interval length in slots.
    #[inline]
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Never empty by construction, but included for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Does the interval cover `(proc, time)`?
    #[inline]
    pub fn covers(&self, proc: u32, time: u32) -> bool {
        self.proc == proc && self.start <= time && time < self.end
    }
}

/// Which intervals to enumerate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CandidatePolicy {
    /// Every interval `[s, e)` with `0 ≤ s < e ≤ T`, per processor
    /// (`O(p·T²)` candidates).
    All,
    /// Every interval of length at most `max_len` (`O(p·T·max_len)`).
    MaxLength(u32),
    /// Single-slot intervals only (`p·T` candidates). With affine costs this
    /// degenerates to per-slot set cover — useful as an ablation.
    SingleSlots,
}

impl std::fmt::Display for CandidatePolicy {
    /// The textual form accepted back by [`CandidatePolicy::from_str`]
    /// (`all`, `single`, `maxlen:K`) — used by the CLI and the wire
    /// protocol.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CandidatePolicy::All => write!(f, "all"),
            CandidatePolicy::SingleSlots => write!(f, "single"),
            CandidatePolicy::MaxLength(k) => write!(f, "maxlen:{k}"),
        }
    }
}

impl std::str::FromStr for CandidatePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "all" => Ok(CandidatePolicy::All),
            "single" => Ok(CandidatePolicy::SingleSlots),
            other => match other.strip_prefix("maxlen:") {
                Some(k) => {
                    let k: u32 = k
                        .parse()
                        .map_err(|e| format!("bad maxlen in policy '{other}': {e}"))?;
                    if k == 0 {
                        return Err("maxlen policy requires a positive length".into());
                    }
                    Ok(CandidatePolicy::MaxLength(k))
                }
                None => Err(format!(
                    "unknown candidate policy '{other}' (expected all, single, or maxlen:K)"
                )),
            },
        }
    }
}

/// Enumerates candidate intervals for `inst` under `policy`, pricing each via
/// `cost` and dropping infinite-cost intervals.
///
/// # Panics
/// Panics if the oracle returns a non-positive finite cost (the greedy's
/// ratio rule requires strictly positive costs).
pub fn enumerate_candidates(
    inst: &Instance,
    cost: &dyn EnergyCost,
    policy: CandidatePolicy,
) -> Vec<CandidateInterval> {
    let _span = sched_obs::span!("core.enumerate_ns");
    let t = inst.horizon;
    let mut out = Vec::new();
    for proc in 0..inst.num_processors {
        for start in 0..t {
            let max_end = match policy {
                CandidatePolicy::All => t,
                CandidatePolicy::MaxLength(l) => (start + l).min(t),
                CandidatePolicy::SingleSlots => (start + 1).min(t),
            };
            for end in (start + 1)..=max_end {
                let c = cost.cost(proc, start, end);
                if c.is_infinite() {
                    continue;
                }
                assert!(
                    c > 0.0 && c.is_finite(),
                    "cost oracle returned invalid cost {c} for ({proc}, [{start},{end}))"
                );
                out.push(CandidateInterval {
                    proc,
                    start,
                    end,
                    cost: c,
                });
            }
        }
    }
    sched_obs::counter_add("core.enumerate.candidates", out.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{AffineCost, UnavailableSlots};
    use crate::model::{Instance, Job, SlotRef};

    fn inst(p: u32, t: u32) -> Instance {
        Instance::new(p, t, vec![Job::unit(vec![SlotRef::new(0, 0)])])
    }

    #[test]
    fn all_counts() {
        let i = inst(2, 4);
        let c = enumerate_candidates(&i, &AffineCost::new(1.0, 1.0), CandidatePolicy::All);
        // per processor: T(T+1)/2 = 10
        assert_eq!(c.len(), 20);
    }

    #[test]
    fn max_length_counts() {
        let i = inst(1, 5);
        let c = enumerate_candidates(
            &i,
            &AffineCost::new(1.0, 1.0),
            CandidatePolicy::MaxLength(2),
        );
        // lengths 1 (5) + 2 (4) = 9
        assert_eq!(c.len(), 9);
        assert!(c.iter().all(|iv| iv.len() <= 2));
    }

    #[test]
    fn single_slots() {
        let i = inst(3, 4);
        let c = enumerate_candidates(&i, &AffineCost::new(1.0, 1.0), CandidatePolicy::SingleSlots);
        assert_eq!(c.len(), 12);
        assert!(c.iter().all(|iv| iv.len() == 1));
    }

    #[test]
    fn infinite_cost_dropped() {
        let i = inst(1, 3);
        let cost = UnavailableSlots::new(AffineCost::new(1.0, 1.0), 1, &[(0, 1)]);
        let c = enumerate_candidates(&i, &cost, CandidatePolicy::All);
        // only [0,1) and [2,3) survive
        assert_eq!(c.len(), 2);
        assert!(c.iter().all(|iv| !iv.covers(0, 1)));
    }

    #[test]
    fn costs_recorded() {
        let i = inst(1, 3);
        let c = enumerate_candidates(&i, &AffineCost::new(2.0, 1.0), CandidatePolicy::All);
        for iv in &c {
            assert_eq!(iv.cost, 2.0 + iv.len() as f64);
        }
    }

    #[test]
    fn policy_parse_display_round_trip() {
        for p in [
            CandidatePolicy::All,
            CandidatePolicy::SingleSlots,
            CandidatePolicy::MaxLength(7),
        ] {
            assert_eq!(p.to_string().parse::<CandidatePolicy>().unwrap(), p);
        }
        assert_eq!(
            "all".parse::<CandidatePolicy>().unwrap(),
            CandidatePolicy::All
        );
        assert!("maxlen:0".parse::<CandidatePolicy>().is_err());
        assert!("maxlen:x".parse::<CandidatePolicy>().is_err());
        assert!("bogus".parse::<CandidatePolicy>().is_err());
    }

    #[test]
    fn covers_checks_processor() {
        let iv = CandidateInterval {
            proc: 1,
            start: 2,
            end: 5,
            cost: 1.0,
        };
        assert!(iv.covers(1, 2));
        assert!(iv.covers(1, 4));
        assert!(!iv.covers(1, 5));
        assert!(!iv.covers(0, 3));
        assert_eq!(iv.len(), 3);
        assert!(!iv.is_empty());
    }
}
