//! Speed scaling (DVFS): work-requirement jobs on a discrete frequency
//! ladder, compiled onto the classical unit-job machinery.
//!
//! # Model
//!
//! A [`DvfsInstance`] gives each job a **work requirement** `w` (units of
//! computation) instead of a fixed one-slot shape, and each processor a
//! [`FreqLadder`] of discrete speeds with dynamic power
//! `P(f) = alpha · f^gamma + beta`. Running at frequency `f`, a processor
//! executes `f` units of work per awake slot and draws `P(f)` energy per
//! slot; a job's allowed set still names *physical* (processor, slot) pairs.
//! The scheduler chooses awake intervals **and** a frequency level per
//! interval: low levels *stretch* work across cheap slow slots, high levels
//! *compress* it into few expensive fast ones.
//!
//! # Compilation
//!
//! Rather than re-deriving the matching-rank greedy for divisible work, the
//! DVFS problem **compiles onto the existing solvers** via a virtual grid
//! (`L` = number of levels, `F` = top frequency):
//!
//! * virtual processor `p·L + ℓ` is physical processor `p` running at level
//!   `ℓ`;
//! * virtual time expands each physical slot into `F` *lanes*
//!   (`t·F + k`, `k < F`); a slot at level `ℓ` exposes its first `f_ℓ`
//!   lanes — its work capacity at that speed;
//! * a job of work `w` and value `v` becomes `w` **sub-jobs** of value
//!   `v / w`, each allowed on every lane of every allowed slot at every
//!   level;
//! * a candidate awake interval at level `ℓ` over physical `[s, e)` covers
//!   virtual `[s·F, e·F)` on virtual processor `p·L + ℓ` and costs
//!   `wake + P(f_ℓ) · (e − s)` — the same float expression as the classical
//!   [`AffineCost`](crate::AffineCost).
//!
//! With the degenerate single-frequency ladder
//! ([`FreqLadder::degenerate`]), `L = F = 1` and the construction collapses
//! bit-identically to the classical model — the equivalence proptests in
//! `tests/dvfs_equivalence.rs` prove it.
//!
//! # What the relaxation buys and costs
//!
//! This is a *malleable, level-parallel* relaxation of per-job frequency
//! assignment: a job's work units may split across slots, levels, and
//! processors, and a physical processor may notionally hold two levels awake
//! in one slot (two virtual rows). In exchange, the fast/naive/exact solver
//! stack, the warm-start cache, and every guarantee they carry apply
//! verbatim to the compiled instance — in particular the exact
//! branch-and-bound reference stays a lower bound within the same model, so
//! small-instance `ratio ≥ 1` cross-checks remain theorems. Classical
//! [`validate_schedule`](crate::model::validate_schedule) does **not** apply
//! to decompiled schedules (lane sharing is legal here); use
//! [`validate_dvfs_schedule`] instead.

use serde::{Deserialize, Serialize};

use crate::candidates::CandidateInterval;
use crate::cost::EnergyCost;
use crate::model::{Instance, InstanceError, Job, Schedule, ScheduleError, SlotRef, SolveOptions};
use crate::naive::naive_schedule_all;
use crate::profile::{FreqLadder, FreqLadderError};
use crate::solver::Solver;

/// A speed-scaling instance: work-requirement jobs, a frequency ladder, and
/// a wake cost per awake interval.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DvfsInstance {
    /// Number of physical processors `p`.
    pub num_processors: u32,
    /// Number of physical time slots `T`.
    pub horizon: u32,
    /// Fixed cost of waking a processor for one awake interval (any level).
    pub wake_cost: f64,
    /// The frequency ladder shared by every processor.
    pub ladder: FreqLadder,
    /// The jobs; [`Job::work`] defaults to one unit when absent.
    pub jobs: Vec<Job>,
}

/// Structural problems detected by [`DvfsInstance::validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum DvfsError {
    /// The frequency ladder is invalid.
    Ladder(FreqLadderError),
    /// The underlying physical instance is invalid.
    Instance(InstanceError),
    /// The wake cost is not finite and non-negative.
    InvalidWakeCost {
        /// The rejected wake cost.
        wake_cost: f64,
    },
}

impl std::fmt::Display for DvfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DvfsError::Ladder(e) => write!(f, "invalid frequency ladder: {e}"),
            DvfsError::Instance(e) => write!(f, "{e}"),
            DvfsError::InvalidWakeCost { wake_cost } => {
                write!(
                    f,
                    "wake cost must be finite and non-negative, got {wake_cost}"
                )
            }
        }
    }
}

impl std::error::Error for DvfsError {}

/// Why a DVFS solve failed, with certificates mapped back to *original* job
/// indices (the solver's Hall violators name sub-jobs).
#[derive(Clone, Debug, PartialEq)]
pub enum DvfsSolveError {
    /// The instance failed validation before compilation.
    Invalid(DvfsError),
    /// Not all work can be scheduled with the compiled candidates.
    Infeasible {
        /// Original job indices forming the (deduplicated) Hall violator.
        certificate: Vec<u32>,
        /// Value scheduled at the stall point (fractional — sub-job values).
        achieved_value: f64,
    },
}

impl std::fmt::Display for DvfsSolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DvfsSolveError::Invalid(e) => write!(f, "{e}"),
            DvfsSolveError::Infeasible {
                certificate,
                achieved_value,
            } => write!(
                f,
                "infeasible DVFS instance (achieved value {achieved_value}; \
                 Hall violator of {} jobs)",
                certificate.len()
            ),
        }
    }
}

impl std::error::Error for DvfsSolveError {}

impl DvfsInstance {
    /// Checks structural invariants: a valid ladder, a usable wake cost
    /// (`wake_cost + min-level power` is automatically positive because
    /// validated ladders have positive power at every level), and a valid
    /// underlying physical instance including `work >= 1`.
    pub fn validate(&self) -> Result<(), DvfsError> {
        self.ladder.validate().map_err(DvfsError::Ladder)?;
        if !(self.wake_cost.is_finite() && self.wake_cost >= 0.0) {
            return Err(DvfsError::InvalidWakeCost {
                wake_cost: self.wake_cost,
            });
        }
        self.to_physical_instance()
            .validate()
            .map_err(DvfsError::Instance)
    }

    /// The physical instance view (jobs verbatim, no lane expansion) — what
    /// validation checks slot ranges against.
    fn to_physical_instance(&self) -> Instance {
        Instance {
            num_processors: self.num_processors,
            horizon: self.horizon,
            jobs: self.jobs.clone(),
        }
    }

    /// Total work units across all jobs.
    pub fn total_work(&self) -> u64 {
        self.jobs.iter().map(|j| u64::from(j.work_units())).sum()
    }

    /// Compiles onto the virtual grid (see the [module docs](self)).
    /// Validates first.
    pub fn compile(&self) -> Result<CompiledDvfs, DvfsError> {
        let _span = sched_obs::span!("core.dvfs.compile_ns");
        self.validate()?;
        let levels = self.ladder.num_levels();
        let lane_factor = self.ladder.max_freq();
        let l = levels as u32;
        let f = lane_factor;

        let mut jobs = Vec::new();
        let mut sub_job_owner = Vec::new();
        for (jid, job) in self.jobs.iter().enumerate() {
            let w = job.work_units();
            // Sub-job value v / w; for w = 1 this is v / 1.0 == v bitwise,
            // which the degenerate-ladder equivalence proof relies on.
            let sub_value = job.value / w as f64;
            let mut allowed = Vec::new();
            for level in 0..levels {
                let freq = self.ladder.freqs[level];
                for s in &job.allowed {
                    for k in 0..freq {
                        allowed.push(SlotRef {
                            proc: s.proc * l + level as u32,
                            time: s.time * f + k,
                        });
                    }
                }
            }
            for _ in 0..w {
                jobs.push(Job {
                    value: sub_value,
                    allowed: allowed.clone(),
                    work: None,
                });
                sub_job_owner.push(jid as u32);
            }
        }
        let instance = Instance {
            num_processors: self.num_processors * l,
            horizon: self.horizon * f,
            jobs,
        };

        // Explicit candidate family in exactly the (virtual proc, start,
        // end) order enumerate_candidates would produce over DvfsCost.
        let mut candidates = Vec::new();
        for proc in 0..self.num_processors {
            for level in 0..levels {
                let power = self.ladder.power_of_freq(self.ladder.freqs[level]);
                let vproc = proc * l + level as u32;
                for start in 0..self.horizon {
                    for end in (start + 1)..=self.horizon {
                        // Same float expression as AffineCost::cost.
                        let cost = self.wake_cost + power * (end - start) as f64;
                        candidates.push(CandidateInterval {
                            proc: vproc,
                            start: start * f,
                            end: end * f,
                            cost,
                        });
                    }
                }
            }
        }

        Ok(CompiledDvfs {
            instance,
            candidates,
            levels,
            lane_factor,
            wake_cost: self.wake_cost,
            ladder: self.ladder.clone(),
            sub_job_owner,
            num_jobs: self.jobs.len(),
        })
    }
}

/// The [`EnergyCost`] oracle over the compiled virtual grid: lane-aligned
/// intervals price as `wake + P(f_level) · physical-length`, everything else
/// is infinite (dropped by candidate enumeration). Running
/// [`enumerate_candidates`](crate::candidates::enumerate_candidates) with
/// this oracle on the compiled instance reproduces the explicit family of
/// [`DvfsInstance::compile`] — which is what lets the warm-start and engine
/// candidate caches treat DVFS solves like any other.
#[derive(Clone, Debug)]
pub struct DvfsCost {
    wake: f64,
    levels: u32,
    lane_factor: u32,
    /// Power per level, indexed by `vproc % levels`.
    power: Vec<f64>,
}

impl DvfsCost {
    /// Oracle for a validated instance's compiled grid.
    pub fn new(dvfs: &DvfsInstance) -> Self {
        Self {
            wake: dvfs.wake_cost,
            levels: dvfs.ladder.num_levels() as u32,
            lane_factor: dvfs.ladder.max_freq(),
            power: dvfs
                .ladder
                .freqs
                .iter()
                .map(|&f| dvfs.ladder.power_of_freq(f))
                .collect(),
        }
    }
}

impl EnergyCost for DvfsCost {
    fn cost(&self, vproc: u32, vstart: u32, vend: u32) -> f64 {
        let f = self.lane_factor;
        if !vstart.is_multiple_of(f) || !vend.is_multiple_of(f) {
            return f64::INFINITY;
        }
        let level = (vproc % self.levels) as usize;
        self.wake + self.power[level] * ((vend - vstart) / f) as f64
    }
}

/// A compiled DVFS instance: the virtual-grid [`Instance`] and candidate
/// family the classical solvers run on, plus the bookkeeping to map
/// schedules back to physical coordinates.
#[derive(Clone, Debug)]
pub struct CompiledDvfs {
    /// The virtual instance (`p·L` processors, `T·F` slots, one sub-job per
    /// work unit).
    pub instance: Instance,
    /// Candidate awake intervals over the virtual grid, lane-aligned, one
    /// per (processor, level, physical interval).
    pub candidates: Vec<CandidateInterval>,
    /// Number of frequency levels `L`.
    pub levels: usize,
    /// Lane factor `F` (the ladder's top frequency).
    pub lane_factor: u32,
    /// Wake cost carried over for validation/decompilation.
    pub wake_cost: f64,
    /// The ladder carried over for decompilation.
    pub ladder: FreqLadder,
    /// Original job index of each sub-job.
    pub sub_job_owner: Vec<u32>,
    /// Number of original jobs.
    pub num_jobs: usize,
}

impl CompiledDvfs {
    /// Maps a virtual-grid schedule back to physical coordinates.
    ///
    /// # Panics
    /// Panics if an awake interval is not lane-aligned — impossible for
    /// schedules produced from this compilation's candidates.
    pub fn decompile(&self, s: &Schedule) -> DvfsSchedule {
        let l = self.levels as u32;
        let f = self.lane_factor;
        let awake = s
            .awake
            .iter()
            .map(|iv| {
                assert!(
                    iv.start % f == 0 && iv.end % f == 0,
                    "awake interval [{}, {}) is not lane-aligned",
                    iv.start,
                    iv.end
                );
                let level = (iv.proc % l) as usize;
                DvfsInterval {
                    proc: iv.proc / l,
                    level,
                    freq: self.ladder.freqs[level],
                    start: iv.start / f,
                    end: iv.end / f,
                    cost: iv.cost,
                }
            })
            .collect();
        let mut assignments = vec![Vec::new(); self.num_jobs];
        for (sub, asg) in s.assignments.iter().enumerate() {
            if let Some(slot) = asg {
                assignments[self.sub_job_owner[sub] as usize].push(DvfsQuantum {
                    proc: slot.proc / l,
                    level: (slot.proc % l) as usize,
                    time: slot.time / f,
                    lane: slot.time % f,
                });
            }
        }
        DvfsSchedule {
            awake,
            assignments,
            total_cost: s.total_cost,
            scheduled_value: s.scheduled_value,
        }
    }

    /// Flattens a DVFS schedule into a classical [`Schedule`] over the
    /// *physical* grid — awake intervals in physical coordinates, each job
    /// assigned its first quantum's slot — plus the frequency level of every
    /// awake interval, in order. This is the wire shape the engine returns:
    /// lossy for multi-quantum jobs but enough for a dashboard; callers
    /// needing the full placement use [`DvfsSchedule`] directly. The
    /// flattened schedule must not be fed to classical
    /// [`validate_schedule`](crate::model::validate_schedule) — lane sharing
    /// is legal under DVFS and would be reported as slot collisions.
    pub fn to_physical_schedule(&self, s: &DvfsSchedule) -> (Schedule, Vec<u32>) {
        let awake = s
            .awake
            .iter()
            .map(|iv| CandidateInterval {
                proc: iv.proc,
                start: iv.start,
                end: iv.end,
                cost: iv.cost,
            })
            .collect();
        let freq_levels = s.awake.iter().map(|iv| iv.level as u32).collect();
        let mut count = 0usize;
        let assignments = s
            .assignments
            .iter()
            .map(|quanta| {
                quanta.first().map(|q| {
                    count += 1;
                    SlotRef {
                        proc: q.proc,
                        time: q.time,
                    }
                })
            })
            .collect();
        (
            Schedule {
                awake,
                assignments,
                total_cost: s.total_cost,
                scheduled_value: s.scheduled_value,
                scheduled_count: count,
            },
            freq_levels,
        )
    }
}

/// One awake interval of a DVFS schedule: a physical processor held awake at
/// one frequency level over a physical time interval.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DvfsInterval {
    /// Physical processor.
    pub proc: u32,
    /// Frequency level index (0 = slowest).
    pub level: usize,
    /// The frequency at that level, denormalized for readability.
    pub freq: u32,
    /// First awake physical slot (inclusive).
    pub start: u32,
    /// One past the last awake physical slot (exclusive).
    pub end: u32,
    /// Energy cost: `wake + P(freq) · (end − start)`.
    pub cost: f64,
}

/// One scheduled work unit: which lane of which slot, at which level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DvfsQuantum {
    /// Physical processor.
    pub proc: u32,
    /// Frequency level index.
    pub level: usize,
    /// Physical time slot.
    pub time: u32,
    /// Lane within the slot (`0..freq(level)`).
    pub lane: u32,
}

/// A DVFS schedule in physical coordinates: per-level awake intervals and
/// per-job work-unit placements.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DvfsSchedule {
    /// Chosen awake intervals, in greedy pick order.
    pub awake: Vec<DvfsInterval>,
    /// Per original job: the placements of its work units.
    pub assignments: Vec<Vec<DvfsQuantum>>,
    /// Total energy cost of the awake intervals.
    pub total_cost: f64,
    /// Total scheduled value (fractional sub-job accounting; equals the sum
    /// of completed-job values when every job completes).
    pub scheduled_value: f64,
}

impl DvfsSchedule {
    /// Indices of jobs whose every work unit is placed.
    pub fn completed(&self, dvfs: &DvfsInstance) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(j, quanta)| quanta.len() == dvfs.jobs[*j].work_units() as usize)
            .map(|(j, _)| j)
            .collect()
    }
}

/// Violations detected by [`validate_dvfs_schedule`].
#[derive(Clone, Debug, PartialEq)]
pub enum DvfsViolation {
    /// A quantum's (processor, time) is not in its job's allowed set.
    DisallowedSlot {
        /// Offending job index.
        job: u32,
        /// The offending quantum.
        quantum: DvfsQuantum,
    },
    /// A quantum's lane is at or past its level's frequency.
    LaneOutOfRange {
        /// Offending job index.
        job: u32,
        /// The offending quantum.
        quantum: DvfsQuantum,
    },
    /// Two quanta occupy the same (processor, level, time, lane).
    LaneCollision {
        /// The contested quantum position.
        quantum: DvfsQuantum,
    },
    /// A quantum is not covered by any awake interval at its level.
    QuantumNotAwake {
        /// Offending job index.
        job: u32,
        /// The offending quantum.
        quantum: DvfsQuantum,
    },
    /// A job has more quanta placed than its work requirement.
    TooMuchWork {
        /// Offending job index.
        job: u32,
    },
    /// An awake interval's cost differs from `wake + P(freq) · len`.
    IntervalCostMismatch {
        /// Index into [`DvfsSchedule::awake`].
        interval: usize,
    },
    /// Recorded total cost does not match the sum of interval costs.
    CostMismatch {
        /// The recorded total.
        recorded: f64,
        /// The recomputed sum.
        actual: f64,
    },
}

/// Checks a DVFS schedule against its instance: allowed slots, lane bounds,
/// lane exclusivity, awake coverage at the right level, per-job work bounds,
/// and cost accounting. Returns all violations found.
pub fn validate_dvfs_schedule(dvfs: &DvfsInstance, s: &DvfsSchedule) -> Vec<DvfsViolation> {
    let mut out = Vec::new();
    let mut used = std::collections::HashSet::new();
    for (jid, quanta) in s.assignments.iter().enumerate() {
        let job = &dvfs.jobs[jid];
        if quanta.len() > job.work_units() as usize {
            out.push(DvfsViolation::TooMuchWork { job: jid as u32 });
        }
        for q in quanta {
            let slot = SlotRef {
                proc: q.proc,
                time: q.time,
            };
            if !job.allowed.contains(&slot) {
                out.push(DvfsViolation::DisallowedSlot {
                    job: jid as u32,
                    quantum: *q,
                });
            }
            if q.level >= dvfs.ladder.num_levels() || q.lane >= dvfs.ladder.freqs[q.level] {
                out.push(DvfsViolation::LaneOutOfRange {
                    job: jid as u32,
                    quantum: *q,
                });
                continue;
            }
            if !used.insert((q.proc, q.level, q.time, q.lane)) {
                out.push(DvfsViolation::LaneCollision { quantum: *q });
            }
            let covered = s.awake.iter().any(|iv| {
                iv.proc == q.proc && iv.level == q.level && iv.start <= q.time && q.time < iv.end
            });
            if !covered {
                out.push(DvfsViolation::QuantumNotAwake {
                    job: jid as u32,
                    quantum: *q,
                });
            }
        }
    }
    let mut actual = 0.0;
    for (i, iv) in s.awake.iter().enumerate() {
        actual += iv.cost;
        let expect = dvfs.wake_cost
            + dvfs.ladder.power_of_freq(iv.freq) * (iv.end.saturating_sub(iv.start)) as f64;
        if iv.level >= dvfs.ladder.num_levels()
            || dvfs.ladder.freqs[iv.level] != iv.freq
            || (expect - iv.cost).abs() > 1e-6
        {
            out.push(DvfsViolation::IntervalCostMismatch { interval: i });
        }
    }
    if (actual - s.total_cost).abs() > 1e-6 {
        out.push(DvfsViolation::CostMismatch {
            recorded: s.total_cost,
            actual,
        });
    }
    out
}

fn map_infeasible(compiled: &CompiledDvfs, e: ScheduleError) -> DvfsSolveError {
    match e {
        ScheduleError::Infeasible {
            certificate,
            achieved_value,
        } => {
            let mut jobs: Vec<u32> = certificate
                .iter()
                .map(|&sub| compiled.sub_job_owner[sub as usize])
                .collect();
            jobs.sort_unstable();
            jobs.dedup();
            DvfsSolveError::Infeasible {
                certificate: jobs,
                achieved_value,
            }
        }
        // schedule_all never returns TargetExceedsTotalValue, but map it
        // conservatively to an empty-certificate infeasibility.
        ScheduleError::TargetExceedsTotalValue { .. } => DvfsSolveError::Infeasible {
            certificate: Vec::new(),
            achieved_value: 0.0,
        },
    }
}

/// Solves a DVFS instance end-to-end on the fast path: compile, greedy
/// `schedule_all` over the compiled candidates, decompile.
pub fn solve_dvfs(dvfs: &DvfsInstance) -> Result<DvfsSchedule, DvfsSolveError> {
    let compiled = dvfs.compile().map_err(DvfsSolveError::Invalid)?;
    let schedule = Solver::with_candidates(&compiled.instance, compiled.candidates.as_slice())
        .schedule_all()
        .map_err(|e| map_infeasible(&compiled, e))?;
    Ok(compiled.decompile(&schedule))
}

/// The naive twin of [`solve_dvfs`]: identical compilation, solved through
/// the retained seed path — the reference the DVFS equivalence proptests
/// compare bits against.
pub fn solve_dvfs_naive(dvfs: &DvfsInstance) -> Result<DvfsSchedule, DvfsSolveError> {
    let compiled = dvfs.compile().map_err(DvfsSolveError::Invalid)?;
    let schedule = naive_schedule_all(
        &compiled.instance,
        &compiled.candidates,
        &SolveOptions::default(),
    )
    .map_err(|e| map_infeasible(&compiled, e))?;
    Ok(compiled.decompile(&schedule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{enumerate_candidates, CandidatePolicy};
    use crate::profile::FreqLadder;

    fn two_level() -> DvfsInstance {
        DvfsInstance {
            num_processors: 1,
            horizon: 3,
            wake_cost: 1.0,
            ladder: FreqLadder::new(1.0, 0.0, 2.0, vec![1, 2]),
            jobs: vec![
                Job::window(1.0, 0, 0, 1).with_work(2),
                Job::window(1.0, 0, 1, 2),
                Job::window(1.0, 0, 2, 3),
            ],
        }
    }

    #[test]
    fn compile_expands_grid_and_subjobs() {
        let d = two_level();
        let c = d.compile().unwrap();
        assert_eq!(c.instance.num_processors, 2); // 1 proc × 2 levels
        assert_eq!(c.instance.horizon, 6); // 3 slots × lane factor 2
        assert_eq!(c.instance.num_jobs(), 4); // work 2 + 1 + 1
        assert_eq!(c.sub_job_owner, vec![0, 0, 1, 2]);
        // Sub-jobs of job 0 may run on level 0 lane 0 of slot 0, and level 1
        // lanes 0..2 of slot 0.
        assert_eq!(
            c.instance.jobs[0].allowed,
            vec![SlotRef::new(0, 0), SlotRef::new(1, 0), SlotRef::new(1, 1),]
        );
        // Sub-job values split the original value bitwise-evenly.
        assert_eq!(c.instance.jobs[0].value, 0.5);
        assert_eq!(c.instance.jobs[2].value, 1.0);
        // Candidate count: per virtual processor T(T+1)/2 = 6.
        assert_eq!(c.candidates.len(), 12);
    }

    #[test]
    fn explicit_candidates_match_oracle_enumeration() {
        let d = two_level();
        let c = d.compile().unwrap();
        let oracle = DvfsCost::new(&d);
        let enumerated = enumerate_candidates(&c.instance, &oracle, CandidatePolicy::All);
        assert_eq!(c.candidates.len(), enumerated.len());
        for (a, b) in c.candidates.iter().zip(&enumerated) {
            assert_eq!((a.proc, a.start, a.end), (b.proc, b.start, b.end));
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        }
    }

    #[test]
    fn solve_round_trips_and_validates() {
        let d = two_level();
        let s = solve_dvfs(&d).unwrap();
        assert!(validate_dvfs_schedule(&d, &s).is_empty());
        assert_eq!(s.completed(&d), vec![0, 1, 2]);
        assert_eq!(s.scheduled_value, 3.0);
        let (phys, levels) = d.compile().unwrap().to_physical_schedule(&s);
        assert_eq!(phys.scheduled_count, 3);
        assert_eq!(levels.len(), s.awake.len());
        assert!(phys.awake.iter().all(|iv| iv.end <= d.horizon));
    }

    #[test]
    fn infeasible_certificate_names_original_jobs() {
        // Work 4 in a single slot: even waking both levels at once (the
        // relaxation's worst case) only exposes 1 + 2 = 3 lanes.
        let d = DvfsInstance {
            num_processors: 1,
            horizon: 1,
            wake_cost: 1.0,
            ladder: FreqLadder::new(1.0, 0.0, 2.0, vec![1, 2]),
            jobs: vec![Job::window(1.0, 0, 0, 1).with_work(4)],
        };
        let err = solve_dvfs(&d).unwrap_err();
        match err {
            DvfsSolveError::Infeasible { certificate, .. } => {
                assert_eq!(certificate, vec![0]);
            }
            other => panic!("expected infeasible, got {other:?}"),
        }
        assert!(solve_dvfs_naive(&d).is_err());
    }

    #[test]
    fn validate_rejects_bad_instances() {
        let mut d = two_level();
        d.wake_cost = f64::NAN;
        assert!(matches!(
            d.validate(),
            Err(DvfsError::InvalidWakeCost { .. })
        ));
        let mut d = two_level();
        d.ladder.freqs = vec![];
        assert!(matches!(d.validate(), Err(DvfsError::Ladder(_))));
        let mut d = two_level();
        d.jobs[0].work = Some(0);
        assert!(matches!(d.validate(), Err(DvfsError::Instance(_))));
        let mut d = two_level();
        d.jobs[0].allowed[0].time = 99;
        assert!(matches!(d.validate(), Err(DvfsError::Instance(_))));
        assert!(matches!(solve_dvfs(&d), Err(DvfsSolveError::Invalid(_))));
        assert_eq!(two_level().total_work(), 4);
    }

    #[test]
    fn validator_catches_planted_violations() {
        let d = two_level();
        let mut s = solve_dvfs(&d).unwrap();
        // Move a quantum outside its job's allowed set.
        let orig = s.clone();
        s.assignments[1][0].time = 0;
        assert!(validate_dvfs_schedule(&d, &s)
            .iter()
            .any(|v| matches!(v, DvfsViolation::DisallowedSlot { job: 1, .. })));

        // Lane beyond the level's frequency.
        let mut s = orig.clone();
        s.assignments[1][0].lane = 7;
        assert!(validate_dvfs_schedule(&d, &s)
            .iter()
            .any(|v| matches!(v, DvfsViolation::LaneOutOfRange { .. })));

        // Duplicate quantum position → collision + too much work.
        let mut s = orig.clone();
        let q = s.assignments[1][0];
        s.assignments[1].push(q);
        let v = validate_dvfs_schedule(&d, &s);
        assert!(v
            .iter()
            .any(|x| matches!(x, DvfsViolation::LaneCollision { .. })));
        assert!(v
            .iter()
            .any(|x| matches!(x, DvfsViolation::TooMuchWork { job: 1 })));

        // Break an interval's cost and the total.
        let mut s = orig.clone();
        s.awake[0].cost += 1.0;
        let v = validate_dvfs_schedule(&d, &s);
        assert!(v
            .iter()
            .any(|x| matches!(x, DvfsViolation::IntervalCostMismatch { .. })));
        assert!(v
            .iter()
            .any(|x| matches!(x, DvfsViolation::CostMismatch { .. })));

        // Strip the awake cover.
        let mut s = orig;
        s.awake.clear();
        s.total_cost = 0.0;
        assert!(validate_dvfs_schedule(&d, &s)
            .iter()
            .any(|x| matches!(x, DvfsViolation::QuantumNotAwake { .. })));
    }

    #[test]
    fn dvfs_schedule_serde_round_trip() {
        let d = two_level();
        let s = solve_dvfs(&d).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: DvfsSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back.total_cost, s.total_cost);
        assert_eq!(back.assignments, s.assignments);
        assert!(validate_dvfs_schedule(&d, &back).is_empty());
        let json = serde_json::to_string(&d).unwrap();
        let back: DvfsInstance = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
