//! Incremental warm-start re-solving for the online path.
//!
//! A [`WarmHandle`] keeps the expensive, slowly-changing pieces of a
//! `schedule_all` solve alive across consecutive re-solves on the same
//! processor grid:
//!
//! * the enumerated candidate family (job-independent: it depends only on the
//!   grid dimensions, the candidate policy, and the cost model), shared as an
//!   `Arc<[CandidateInterval]>`;
//! * the flat CSR [`ScheduleReduction`], whose candidate-dependent arrays
//!   (costs, nested-prefix runs) survive deltas verbatim while the
//!   job-dependent arrays are rebuilt in place via
//!   [`ScheduleReduction::apply_delta`];
//! * the initial (`S = ∅`) gain vector of the previous solve, replayed as a
//!   memo seed for every candidate whose window provably did not change.
//!
//! # Soundness
//!
//! The warm path is restricted to the `schedule_all` goal, whose objective is
//! the *cardinality* matching rank (every job value contributes exactly `1.0`
//! to a gain). A candidate's empty-set gain is the maximum-matching rank of
//! the bipartite subgraph induced by its window; that rank depends only on
//! the *content* of the window — which interesting slots it spans and which
//! job edge sets touch them — never on job indices or values. The delta layer
//! therefore marks a slot **dirty** whenever its adjacency could have
//! changed:
//!
//! * every allowed slot of a job present only in the old instance (expiry) or
//!   only in the new one (arrival);
//! * for a job paired across the two instances (by caller key, FIFO per key),
//!   the symmetric difference of its old and new allowed sets.
//!
//! A candidate is *clean* iff no dirty slot lies in its `[start, end)` range
//! on its processor. Within a clean window the induced subgraphs of the old
//! and new instances are content-identical (any job touching a clean slot is
//! paired, and its membership on every clean slot is unchanged), so the old
//! gain — an exactly-representable small-integer `f64` — is bit-identical to
//! what a fresh evaluation would produce. Pairing quality is purely a
//! performance knob: even a "wrong" pairing only shrinks the clean set it
//! could have kept, never admits a stale gain.
//!
//! Seeded solves replay clean gains and recompute dirty ones in one explicit
//! initial scan, then run the same lazy greedy on the same scratch; all
//! subsequent gain refreshes are driven by the component-versioned memo
//! exactly as in a cold solve. The result is bit-identical to
//! [`crate::schedule_all`] (and hence to `crate::naive`) by construction.
//!
//! # Checksum fallback
//!
//! Reusing the candidate family assumes the grid and the cost model did not
//! change underneath the handle. Each solve recomputes a structural checksum
//! — grid dimensions, family size, and the freshly re-priced costs of ~16
//! sampled candidates — and compares it to the checksum recorded at
//! enumeration time. Any divergence (resized grid, swapped power profiles,
//! perturbed restart cost) triggers a full cold rebuild: re-enumerate,
//! re-price, rebuild the reduction, drop all seeds. Cold solves are counted
//! in [`WarmStats::cold`]; callers never observe a stale family.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crate::candidates::{enumerate_candidates, CandidateInterval, CandidatePolicy};
use crate::cost::EnergyCost;
use crate::model::{Instance, Schedule, ScheduleError, SlotRef, SolveOptions};
use crate::objective::ScheduleReduction;
use crate::schedule_all::{schedule_all_seeded, WarmSeed};

/// Warm/cold re-solve counters kept by a [`WarmHandle`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Solves served from the delta path (or the instance-identity fast
    /// path): candidate family, reduction arrays, and clean gains reused.
    pub warm: u64,
    /// Solves that rebuilt state from scratch: the first solve, any solve
    /// after a checksum divergence, and solves with no usable seed.
    pub cold: u64,
}

/// Everything remembered from the previous successful solve on this grid.
struct PrevSolve {
    /// The instance that was solved (owned; compared and diffed against the
    /// next one).
    instance: Instance,
    /// Caller-provided stable job identities, parallel to `instance.jobs`.
    keys: Vec<u64>,
    /// The solve result, returned verbatim when the next instance is
    /// identical (the solver is deterministic).
    result: Result<Schedule, ScheduleError>,
    /// Initial (`S = ∅`) gains of every candidate, the memo seed.
    init: Vec<f64>,
}

/// Per-grid cached state: candidate family, checksum, reduction, seeds.
struct GridState {
    num_processors: u32,
    horizon: u32,
    /// Structural checksum recorded at enumeration; see [`family_checksum`].
    checksum: u64,
    candidates: Arc<[CandidateInterval]>,
    reduction: ScheduleReduction,
    prev: Option<PrevSolve>,
}

/// A reusable warm-start handle for consecutive `schedule_all` solves.
///
/// Create one per logical solve stream (a [`crate::simulate`] policy, an
/// engine worker cache entry) and call [`WarmHandle::solve`] for each
/// re-solve. The handle owns all cached state; dropping it frees everything.
pub struct WarmHandle {
    policy: CandidatePolicy,
    options: SolveOptions,
    grid: Option<GridState>,
    stats: WarmStats,
}

impl WarmHandle {
    /// New handle with default [`SolveOptions`].
    pub fn new(policy: CandidatePolicy) -> Self {
        Self::with_options(policy, SolveOptions::default())
    }

    /// New handle with explicit solve options.
    ///
    /// Note the seeded path always scans sequentially (the replay-vs-refresh
    /// decision is per-run state), so `options.parallel` only affects solves
    /// that fall back to the cold constructor inside the handle.
    pub fn with_options(policy: CandidatePolicy, options: SolveOptions) -> Self {
        Self {
            policy,
            options,
            grid: None,
            stats: WarmStats::default(),
        }
    }

    /// The candidate policy this handle enumerates with.
    pub fn policy(&self) -> CandidatePolicy {
        self.policy
    }

    /// Warm/cold counters accumulated so far.
    pub fn stats(&self) -> WarmStats {
        self.stats
    }

    /// Structural checksum of the cached family, if any (for diagnostics).
    pub fn checksum(&self) -> Option<u64> {
        self.grid.as_ref().map(|g| g.checksum)
    }

    /// Drops every cached artifact; the next solve is cold.
    pub fn reset(&mut self) {
        self.grid = None;
    }

    /// Replaces the solve options for subsequent solves. Safe at any point:
    /// options steer evaluation order only (lazy/eager, scan parallelism),
    /// never the result, so cached seeds stay valid.
    pub fn set_options(&mut self, options: SolveOptions) {
        self.options = options;
    }

    /// The candidate family for `inst`'s grid under `cost`, enumerating (or
    /// re-enumerating after divergence) if needed. Lets callers that also
    /// serve non-`schedule_all` goals on the same grid share the family.
    pub fn family(&mut self, inst: &Instance, cost: &dyn EnergyCost) -> Arc<[CandidateInterval]> {
        self.ensure_grid(inst, cost);
        Arc::clone(
            &self
                .grid
                .as_ref()
                .expect("ensure_grid populated")
                .candidates,
        )
    }

    /// Solves `schedule_all` for `inst`, reusing as much prior state as the
    /// delta rules allow. Bit-identical to [`crate::schedule_all_with`] with
    /// the same options.
    ///
    /// `keys` are stable per-job identities parallel to `inst.jobs` (e.g.
    /// trace job ids, or [`content_keys`] when no external identity exists).
    /// They only steer the old↔new job pairing, which is a performance
    /// heuristic — collisions or churn cannot affect the result, only how
    /// much is recomputed.
    pub fn solve(
        &mut self,
        inst: &Instance,
        keys: &[u64],
        cost: &dyn EnergyCost,
    ) -> Result<Schedule, ScheduleError> {
        debug_assert_eq!(keys.len(), inst.num_jobs(), "one key per job");
        let _span = sched_obs::span!("core.warm.solve_ns");
        let rebuilt = self.ensure_grid(inst, cost);
        let grid = self.grid.as_mut().expect("ensure_grid populated");

        // One decision event per solve: which of the four warm/cold paths
        // this call took and why, so a trace can narrate the handle's
        // behavior next to the greedy's pick log.
        let decision = |path: &'static str, reason: &'static str| {
            if sched_obs::trace::enabled() {
                sched_obs::trace::instant(
                    "core.warm.decision",
                    vec![("path", path.into()), ("reason", reason.into())],
                );
            }
        };

        let mut init = Vec::new();
        let result = if rebuilt {
            self.stats.cold += 1;
            sched_obs::counter_add("core.warm.solves.cold", 1);
            decision("cold", "family-rebuilt");
            schedule_all_seeded(
                inst,
                &grid.reduction,
                &grid.candidates,
                &self.options,
                None,
                &mut init,
            )
        } else {
            match grid.prev.take() {
                Some(prev) if prev.instance == *inst => {
                    // Identical instance: the solver is deterministic, so the
                    // previous result (and its seeds) stand as-is.
                    self.stats.warm += 1;
                    sched_obs::counter_add("core.warm.solves.warm", 1);
                    decision("cached", "identical-instance");
                    let result = prev.result.clone();
                    grid.prev = Some(prev);
                    return result;
                }
                Some(prev) => {
                    self.stats.warm += 1;
                    sched_obs::counter_add("core.warm.solves.warm", 1);
                    decision("warm", "delta-seeded");
                    let dirty = dirty_times_per_proc(
                        &prev.instance,
                        &prev.keys,
                        inst,
                        keys,
                        inst.num_processors,
                    );
                    let clean = clean_mask(&grid.candidates, &dirty);
                    grid.reduction.apply_delta(inst, &grid.candidates);
                    schedule_all_seeded(
                        inst,
                        &grid.reduction,
                        &grid.candidates,
                        &self.options,
                        Some(WarmSeed {
                            vals: &prev.init,
                            clean: &clean,
                        }),
                        &mut init,
                    )
                }
                None => {
                    // Family reusable but no seed (first solve on this grid
                    // ended before producing gains): full gain recompute.
                    self.stats.cold += 1;
                    sched_obs::counter_add("core.warm.solves.cold", 1);
                    decision("cold", "no-seed");
                    grid.reduction.apply_delta(inst, &grid.candidates);
                    schedule_all_seeded(
                        inst,
                        &grid.reduction,
                        &grid.candidates,
                        &self.options,
                        None,
                        &mut init,
                    )
                }
            }
        };

        // An early return (empty instance, or a job with an empty allowed
        // set) never reaches the gain scan; without gains there is nothing to
        // seed from, so drop the prev state rather than store a short vector.
        if init.len() == grid.candidates.len() {
            grid.prev = Some(PrevSolve {
                instance: inst.clone(),
                keys: keys.to_vec(),
                result: result.clone(),
                init,
            });
        } else {
            grid.prev = None;
        }
        result
    }

    /// Ensures the cached family matches `inst`'s grid and `cost`'s pricing.
    /// Returns `true` if a full rebuild happened (seeds were dropped).
    fn ensure_grid(&mut self, inst: &Instance, cost: &dyn EnergyCost) -> bool {
        let ok = match &self.grid {
            Some(g) => {
                g.num_processors == inst.num_processors
                    && g.horizon == inst.horizon
                    && g.checksum
                        == family_checksum(inst.num_processors, inst.horizon, &g.candidates, |c| {
                            cost.cost(c.proc, c.start, c.end).to_bits()
                        })
            }
            None => false,
        };
        if ok {
            return false;
        }
        if self.grid.is_some() {
            // A cached family existed but no longer matches: resized grid or
            // checksum drift in the cost model. Either way the warm state is
            // discarded — worth surfacing, since a noisy cost oracle can
            // silently turn every "warm" solve cold.
            sched_obs::counter_add("core.warm.checksum_divergence", 1);
        }
        let candidates: Arc<[CandidateInterval]> =
            enumerate_candidates(inst, cost, self.policy).into();
        let checksum = family_checksum(inst.num_processors, inst.horizon, &candidates, |c| {
            c.cost.to_bits()
        });
        let reduction = ScheduleReduction::build(inst, &candidates);
        self.grid = Some(GridState {
            num_processors: inst.num_processors,
            horizon: inst.horizon,
            checksum,
            candidates,
            reduction,
            prev: None,
        });
        true
    }
}

/// Deterministic content-derived job keys for callers without stable external
/// identities (hashes value bits and the allowed-slot list). Collisions are
/// harmless — keys only steer pairing, never correctness.
pub fn content_keys(inst: &Instance) -> Vec<u64> {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    inst.jobs
        .iter()
        .map(|j| {
            let mut h = DefaultHasher::new();
            j.value.to_bits().hash(&mut h);
            for s in &j.allowed {
                s.proc.hash(&mut h);
                s.time.hash(&mut h);
            }
            h.finish()
        })
        .collect()
}

/// FNV-1a over grid dimensions, family size, and up to ~16 sampled candidate
/// costs priced through `price`. At enumeration time `price` reads the stored
/// cost; at check time it re-prices through the live cost oracle, so any
/// drift in the cost model (or a resized family) changes the sum.
fn family_checksum(
    num_processors: u32,
    horizon: u32,
    candidates: &[CandidateInterval],
    price: impl Fn(&CandidateInterval) -> u64,
) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(FNV_PRIME);
    };
    mix(num_processors as u64);
    mix(horizon as u64);
    mix(candidates.len() as u64);
    let m = candidates.len();
    if m > 0 {
        let stride = (m / 16).max(1);
        let mut i = 0;
        while i < m {
            mix(i as u64);
            mix(price(&candidates[i]));
            i += stride;
        }
        mix((m - 1) as u64);
        mix(price(&candidates[m - 1]));
    }
    h
}

/// Sorted, deduplicated dirty slot times per processor for the transition
/// `(prev_inst, prev_keys) → (inst, keys)`, per the rules in the module docs.
fn dirty_times_per_proc(
    prev_inst: &Instance,
    prev_keys: &[u64],
    inst: &Instance,
    keys: &[u64],
    num_processors: u32,
) -> Vec<Vec<u32>> {
    let mut dirty: Vec<Vec<u32>> = vec![Vec::new(); num_processors as usize];
    let mark = |dirty: &mut Vec<Vec<u32>>, s: &SlotRef| {
        dirty[s.proc as usize].push(s.time);
    };

    // FIFO pairing per key keeps the pairing deterministic under duplicates.
    let mut by_key: HashMap<u64, VecDeque<u32>> = HashMap::new();
    for (i, &k) in prev_keys.iter().enumerate() {
        by_key.entry(k).or_default().push_back(i as u32);
    }
    let mut paired = vec![false; prev_inst.num_jobs()];
    for (j, job) in inst.jobs.iter().enumerate() {
        match by_key.get_mut(&keys[j]).and_then(|q| q.pop_front()) {
            Some(i) => {
                paired[i as usize] = true;
                let prev_job = &prev_inst.jobs[i as usize];
                if prev_job.allowed != job.allowed {
                    mark_sym_diff(&prev_job.allowed, &job.allowed, &mut dirty);
                }
            }
            None => {
                for s in &job.allowed {
                    mark(&mut dirty, s);
                }
            }
        }
    }
    for (i, prev_job) in prev_inst.jobs.iter().enumerate() {
        if !paired[i] {
            for s in &prev_job.allowed {
                mark(&mut dirty, s);
            }
        }
    }
    for d in &mut dirty {
        d.sort_unstable();
        d.dedup();
    }
    dirty
}

/// `clean[i]` ⇔ no dirty time on `candidates[i]`'s processor falls inside its
/// `[start, end)` range (binary search per candidate).
/// Marks the symmetric difference of two allowed-slot lists into `dirty`,
/// by a two-pointer sweep over sorted views (trace windows are stored in
/// increasing time order; anything else falls back to sorted copies).
/// Duplicate slots within one list may over-mark relative to a set
/// difference — harmless, since extra dirty times only cost performance.
fn mark_sym_diff(a: &[SlotRef], b: &[SlotRef], dirty: &mut [Vec<u32>]) {
    let is_sorted = |v: &[SlotRef]| v.windows(2).all(|w| w[0] <= w[1]);
    let (sa, sb);
    let (a, b): (&[SlotRef], &[SlotRef]) = if is_sorted(a) && is_sorted(b) {
        (a, b)
    } else {
        sa = {
            let mut v = a.to_vec();
            v.sort_unstable();
            v
        };
        sb = {
            let mut v = b.to_vec();
            v.sort_unstable();
            v
        };
        (&sa, &sb)
    };
    let (mut i, mut j) = (0, 0);
    loop {
        match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
            }
            (Some(&x), Some(&y)) if x < y => {
                dirty[x.proc as usize].push(x.time);
                i += 1;
            }
            (Some(&x), None) => {
                dirty[x.proc as usize].push(x.time);
                i += 1;
            }
            (_, Some(&y)) => {
                dirty[y.proc as usize].push(y.time);
                j += 1;
            }
            (None, None) => break,
        }
    }
}

fn clean_mask(candidates: &[CandidateInterval], dirty: &[Vec<u32>]) -> Vec<bool> {
    // Enumerated families group candidates into runs sharing (proc, start)
    // with strictly increasing ends, so one binary search per group finds
    // the first dirty time at or past `start`; within the group, clean is
    // just `end <= that time`. Candidates outside that layout still get the
    // right answer — the group degenerates to a single member.
    let mut clean = vec![false; candidates.len()];
    let mut i = 0;
    while i < candidates.len() {
        let c = &candidates[i];
        let d = &dirty[c.proc as usize];
        let k = d.partition_point(|&t| t < c.start);
        let limit = d.get(k).copied().unwrap_or(u32::MAX);
        let mut j = i;
        while j < candidates.len() && candidates[j].proc == c.proc && candidates[j].start == c.start
        {
            // half-open window [start, end): dirty time `limit` is outside
            // exactly when end <= limit
            clean[j] = candidates[j].end <= limit;
            j += 1;
        }
        i = j;
    }
    clean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AffineCost;
    use crate::model::Job;
    use crate::naive::naive_schedule_all;
    use crate::solver::Solver;

    fn cost() -> AffineCost {
        AffineCost::new(3.0, 1.0)
    }

    fn inst(jobs: Vec<Job>) -> Instance {
        Instance::new(2, 12, jobs)
    }

    fn assert_same(a: &Result<Schedule, ScheduleError>, b: &Result<Schedule, ScheduleError>) {
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.awake, y.awake);
                assert_eq!(x.assignments, y.assignments);
                assert_eq!(x.total_cost.to_bits(), y.total_cost.to_bits());
                assert_eq!(x.scheduled_value.to_bits(), y.scheduled_value.to_bits());
                assert_eq!(x.scheduled_count, y.scheduled_count);
            }
            (Err(x), Err(y)) => assert_eq!(x, y),
            _ => panic!("warm/cold disagree on feasibility: {a:?} vs {b:?}"),
        }
    }

    fn cold(inst: &Instance) -> Result<Schedule, ScheduleError> {
        let c = cost();
        Solver::new(inst, &c).schedule_all()
    }

    #[test]
    fn warm_matches_cold_over_job_churn() {
        let c = cost();
        let mut h = WarmHandle::new(CandidatePolicy::All);
        // A rolling window of jobs: arrivals, expiries, and window shrinks.
        let steps: Vec<(Vec<u64>, Vec<Job>)> = vec![
            (
                vec![1, 2],
                vec![Job::window(1.0, 0, 0, 4), Job::window(1.0, 1, 2, 6)],
            ),
            (
                vec![1, 2, 3],
                vec![
                    Job::window(1.0, 0, 1, 4), // job 1 window shrank
                    Job::window(1.0, 1, 2, 6),
                    Job::window(1.0, 0, 6, 10), // arrival
                ],
            ),
            (
                vec![2, 3, 4],
                vec![
                    Job::window(1.0, 1, 3, 6), // shrank again
                    Job::window(1.0, 0, 6, 10),
                    Job::window(1.0, 1, 8, 12), // arrival
                ],
            ),
            (vec![4], vec![Job::window(1.0, 1, 9, 12)]),
        ];
        for (keys, jobs) in steps {
            let i = inst(jobs);
            let warm = h.solve(&i, &keys, &c);
            assert_same(&warm, &cold(&i));
            if let Ok(s) = &warm {
                let cands = enumerate_candidates(&i, &c, CandidatePolicy::All);
                let reference =
                    naive_schedule_all(&i, &cands, &SolveOptions::default()).expect("feasible");
                assert_eq!(s.awake, reference.awake);
            }
        }
        let stats = h.stats();
        assert_eq!(stats.cold, 1, "only the first solve is cold");
        assert_eq!(stats.warm, 3);
    }

    #[test]
    fn identical_instance_is_served_from_cache() {
        let c = cost();
        let mut h = WarmHandle::new(CandidatePolicy::All);
        let i = inst(vec![Job::window(1.0, 0, 0, 5), Job::window(1.0, 1, 1, 7)]);
        let first = h.solve(&i, &[7, 9], &c);
        let second = h.solve(&i, &[7, 9], &c);
        assert_same(&first, &second);
        assert_eq!(h.stats(), WarmStats { warm: 1, cold: 1 });
    }

    #[test]
    fn cost_model_change_forces_cold_rebuild() {
        let c = cost();
        let mut h = WarmHandle::new(CandidatePolicy::All);
        let i = inst(vec![Job::window(1.0, 0, 0, 5)]);
        let sum0 = {
            h.solve(&i, &[1], &c).expect("feasible");
            h.checksum().expect("family cached")
        };
        // Same grid, different pricing: checksum must diverge and the handle
        // must fall back to a cold rebuild — with the correct new costs.
        let c2 = AffineCost::new(5.0, 2.0);
        let i2 = inst(vec![Job::window(1.0, 0, 0, 5), Job::window(1.0, 1, 3, 8)]);
        let warm = h.solve(&i2, &[1, 2], &c2);
        assert_ne!(h.checksum().expect("family cached"), sum0);
        let expected = Solver::new(&i2, &c2).schedule_all();
        assert_same(&warm, &expected);
        assert_eq!(h.stats(), WarmStats { warm: 0, cold: 2 });
    }

    #[test]
    fn grid_resize_forces_cold_rebuild() {
        let c = cost();
        let mut h = WarmHandle::new(CandidatePolicy::All);
        let i = inst(vec![Job::window(1.0, 0, 0, 5)]);
        h.solve(&i, &[1], &c).expect("feasible");
        let i2 = Instance::new(3, 16, vec![Job::window(1.0, 2, 4, 9)]);
        let warm = h.solve(&i2, &[1], &c);
        let expected = Solver::new(&i2, &c).schedule_all();
        assert_same(&warm, &expected);
        assert_eq!(h.stats(), WarmStats { warm: 0, cold: 2 });
    }

    #[test]
    fn infeasible_steps_do_not_poison_seeds() {
        let c = cost();
        let mut h = WarmHandle::new(CandidatePolicy::All);
        let feasible = inst(vec![Job::window(1.0, 0, 0, 4)]);
        h.solve(&feasible, &[1], &c).expect("feasible");
        // A job with an empty allowed set returns early (no gain scan).
        let broken = inst(vec![
            Job::window(1.0, 0, 0, 4),
            Job {
                value: 1.0,
                allowed: vec![],
                work: None,
            },
        ]);
        let r = h.solve(&broken, &[1, 2], &c);
        assert!(matches!(r, Err(ScheduleError::Infeasible { .. })));
        // Over-subscribed slot: greedy-infeasible, but gains were produced.
        let tight = inst(vec![Job::unit(vec![SlotRef::new(0, 0)]); 3]);
        let r = h.solve(&tight, &[1, 2, 3], &c);
        assert_same(&r, &cold(&tight));
        // And a feasible follow-up still matches cold exactly.
        let next = inst(vec![Job::window(1.0, 0, 2, 6), Job::window(1.0, 1, 0, 9)]);
        assert_same(&h.solve(&next, &[1, 2], &c), &cold(&next));
    }

    #[test]
    fn empty_instance_round_trips() {
        let c = cost();
        let mut h = WarmHandle::new(CandidatePolicy::All);
        let empty = inst(vec![]);
        let r = h.solve(&empty, &[], &c).expect("trivially feasible");
        assert_eq!(r.scheduled_count, 0);
        assert!(r.awake.is_empty());
        let next = inst(vec![Job::window(1.0, 0, 0, 4)]);
        assert_same(&h.solve(&next, &[1], &c), &cold(&next));
    }

    #[test]
    fn content_keys_are_deterministic_and_content_sensitive() {
        let a = inst(vec![Job::window(1.0, 0, 0, 4), Job::window(1.0, 1, 2, 6)]);
        let b = inst(vec![Job::window(1.0, 0, 0, 4), Job::window(1.0, 1, 2, 6)]);
        assert_eq!(content_keys(&a), content_keys(&b));
        let c = inst(vec![Job::window(1.0, 0, 0, 5), Job::window(1.0, 1, 2, 6)]);
        assert_ne!(content_keys(&a)[0], content_keys(&c)[0]);
        assert_eq!(content_keys(&a)[1], content_keys(&c)[1]);
    }

    #[test]
    fn mispaired_keys_stay_bit_identical() {
        // Deliberately reuse one key for totally different jobs each step:
        // pairing is wrong every time, results must still match cold.
        let c = cost();
        let mut h = WarmHandle::new(CandidatePolicy::All);
        let steps = [
            inst(vec![Job::window(1.0, 0, 0, 4)]),
            inst(vec![Job::window(1.0, 1, 5, 11)]),
            inst(vec![Job::window(1.0, 0, 7, 12), Job::window(1.0, 1, 0, 3)]),
        ];
        for (k, i) in steps.iter().enumerate() {
            let keys = vec![42u64; i.num_jobs()];
            assert_same(&h.solve(i, &keys, &c), &cold(i));
            if k > 0 {
                assert!(h.stats().warm as usize >= k, "delta path should engage");
            }
        }
    }

    #[test]
    fn dirty_marking_covers_churn() {
        let prev = inst(vec![Job::window(1.0, 0, 0, 3), Job::window(1.0, 1, 4, 6)]);
        let next = inst(vec![Job::window(1.0, 0, 1, 3), Job::window(1.0, 1, 8, 10)]);
        // Key 1 pairs (window shrank by slot 0), key 2 expires, key 3 arrives.
        let dirty = dirty_times_per_proc(&prev, &[1, 2], &next, &[1, 3], 2);
        assert_eq!(dirty[0], vec![0]);
        assert_eq!(dirty[1], vec![4, 5, 8, 9]);
    }

    #[test]
    fn clean_mask_respects_half_open_ranges() {
        let cands = vec![
            CandidateInterval {
                proc: 0,
                start: 0,
                end: 3,
                cost: 1.0,
            },
            CandidateInterval {
                proc: 0,
                start: 3,
                end: 6,
                cost: 1.0,
            },
            CandidateInterval {
                proc: 1,
                start: 0,
                end: 6,
                cost: 1.0,
            },
        ];
        let dirty = vec![vec![3], vec![]];
        // Dirty time 3 on proc 0: [0,3) stays clean, [3,6) does not; proc 1
        // is untouched.
        assert_eq!(clean_mask(&cands, &dirty), vec![true, false, true]);
    }
}
