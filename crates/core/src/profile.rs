//! Per-processor **power profiles**: heterogeneous wake costs, busy rates,
//! and multi-level sleep-state ladders.
//!
//! The paper's classical model charges one global `(restart, rate)` pair.
//! Real fleets mix machine generations with distinct power ratings (cf.
//! *Scheduling Under Power and Energy Constraints*, Dupty et al.) and expose
//! several sleep depths per machine — a deeper state draws less while idle
//! but costs more to wake (cf. *NP-Hardness of Speed Scaling with a Sleep
//! State*, Kumar & Shannigrahi). This module models both:
//!
//! * [`PowerProfile`] — one processor's `wake_cost` (full wake from the
//!   deepest "off" state), `busy_rate` (energy per awake slot), and an
//!   optional [`SleepState`] ladder ordered shallow → deep (idle draw
//!   strictly decreasing, wake cost strictly increasing);
//! * [`ProfileCost`] — the [`EnergyCost`] oracle over a fleet of profiles,
//!   flattened into per-processor parameter tables so an interval query is
//!   two array reads and a fused multiply-add (bit-identical to
//!   [`AffineCost`](crate::AffineCost) when every profile is affine);
//! * the **break-even sleep-depth rule** ([`PowerProfile::gap_cost`] /
//!   [`PowerProfile::best_sleep`]): for a gap of `g` slots between two awake
//!   runs, the machine drops to the state minimizing
//!   `idle_rate · g + wake_cost` (the deepest "off" state has zero idle
//!   draw and the full wake cost). This is the same ski-rental comparison
//!   the solver already performs between "stay awake through the gap" and
//!   "sleep and pay a restart", extended down the ladder.
//!
//! The solver prices every awake interval with the *full* wake cost
//! ([`PowerProfile::interval_cost`]), so chosen-interval sums remain
//! independent of each other (the submodular structure of Definition 2 is
//! preserved); the per-gap depth choice is a closed-form refinement applied
//! when accounting deployed energy
//! ([`profile_energy`](crate::simulate::profile_energy)) — it can only
//! lower the bill, never raise it.

use serde::{Deserialize, Serialize};

use crate::cost::EnergyCost;

/// One intermediate sleep state: cheaper to hold than awake-idle, cheaper to
/// leave than a full off→on restart.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SleepState {
    /// Energy drawn per slot while parked in this state.
    pub idle_rate: f64,
    /// One-time cost of waking from this state back to awake.
    pub wake_cost: f64,
}

/// One processor's power profile.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    /// Full wake cost from the deepest ("off") state — what the solver
    /// charges per awake interval.
    pub wake_cost: f64,
    /// Energy per awake slot (busy or idle-awake).
    pub busy_rate: f64,
    /// Optional ladder of intermediate sleep states, ordered shallow → deep:
    /// `idle_rate` strictly decreasing, `wake_cost` strictly increasing.
    /// Empty = the classical two-state (awake/off) model.
    pub sleep_states: Vec<SleepState>,
}

/// Which state a processor parks in during a gap between awake runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SleepChoice {
    /// Fully off: zero idle draw, full `wake_cost` on the next run.
    Off,
    /// The ladder state at this index (shallow → deep ordering).
    State(usize),
}

// The vendored serde derive only handles fieldless enums, so the
// externally-tagged encoding (`"Off"` / `{"State":k}`, matching upstream
// serde's default) is spelled out by hand.
impl Serialize for SleepChoice {
    fn to_value(&self) -> serde::Value {
        match self {
            SleepChoice::Off => serde::Value::Str("Off".into()),
            SleepChoice::State(k) => {
                serde::Value::Object(vec![("State".into(), serde::Value::Num(*k as f64))])
            }
        }
    }
}

impl Deserialize for SleepChoice {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            serde::Value::Str(s) if s == "Off" => Ok(SleepChoice::Off),
            serde::Value::Object(_) => {
                Ok(SleepChoice::State(usize::from_value(v.field("State")?)?))
            }
            other => Err(serde::Error(format!(
                "expected \"Off\" or {{\"State\":k}}, found {}",
                other.kind()
            ))),
        }
    }
}

impl PowerProfile {
    /// The classical affine profile: no intermediate sleep states.
    pub fn affine(wake_cost: f64, busy_rate: f64) -> Self {
        let p = Self {
            wake_cost,
            busy_rate,
            sleep_states: Vec::new(),
        };
        p.validate(0).expect("affine profile parameters invalid");
        p
    }

    /// A profile with a sleep ladder (shallow → deep), validated.
    ///
    /// # Panics
    /// Panics if the parameters violate [`PowerProfile::validate`].
    pub fn with_ladder(wake_cost: f64, busy_rate: f64, sleep_states: Vec<SleepState>) -> Self {
        let p = Self {
            wake_cost,
            busy_rate,
            sleep_states,
        };
        p.validate(0).expect("ladder profile parameters invalid");
        p
    }

    /// A profile whose `levels`-state ladder interpolates the awake/off
    /// envelope: state `k` of `L` parks at `busy_rate · (L−k)/(L+1)` idle
    /// draw for `wake_cost · (k+1)/(L+1)` wake cost — strictly monotone and
    /// strictly inside the envelope for any positive parameters, so it
    /// always validates. The canonical synthetic ladder used by the
    /// workload generators and the property tests.
    ///
    /// # Panics
    /// Panics if `wake_cost`/`busy_rate` themselves are invalid (see
    /// [`PowerProfile::validate`]).
    pub fn envelope_ladder(wake_cost: f64, busy_rate: f64, levels: u32) -> Self {
        let l = levels as usize;
        let sleep_states = (0..l)
            .map(|k| SleepState {
                idle_rate: busy_rate * (l - k) as f64 / (l + 1) as f64,
                wake_cost: wake_cost * (k + 1) as f64 / (l + 1) as f64,
            })
            .collect();
        Self::with_ladder(wake_cost, busy_rate, sleep_states)
    }

    /// Structural checks for one profile (reported as processor `proc`):
    /// finite non-negative parameters, a strictly positive awake cost
    /// (`wake_cost + busy_rate > 0`), and a monotone ladder — each state's
    /// idle draw strictly below the previous (and at most `busy_rate`), its
    /// wake cost strictly above the previous (and at most `wake_cost`).
    pub fn validate(&self, proc: u32) -> Result<(), ProfileError> {
        let finite_nonneg = |x: f64| x.is_finite() && x >= 0.0;
        if !finite_nonneg(self.wake_cost) || !finite_nonneg(self.busy_rate) {
            return Err(ProfileError::NonFinite { proc });
        }
        if self.wake_cost + self.busy_rate <= 0.0 {
            return Err(ProfileError::Free { proc });
        }
        let mut prev_idle = f64::INFINITY;
        let mut prev_wake = -1.0;
        for (state, s) in self.sleep_states.iter().enumerate() {
            let bad = |reason| ProfileError::BadLadder {
                proc,
                state,
                reason,
            };
            if !finite_nonneg(s.idle_rate) || !finite_nonneg(s.wake_cost) {
                return Err(bad("parameters must be finite and non-negative"));
            }
            if s.idle_rate > self.busy_rate {
                return Err(bad("idle draw above the awake rate"));
            }
            if s.wake_cost > self.wake_cost {
                return Err(bad("wake cost above the full (off-state) wake cost"));
            }
            if s.idle_rate >= prev_idle {
                return Err(bad("idle draw must strictly decrease down the ladder"));
            }
            if s.wake_cost <= prev_wake {
                return Err(bad("wake cost must strictly increase down the ladder"));
            }
            prev_idle = s.idle_rate;
            prev_wake = s.wake_cost;
        }
        Ok(())
    }

    /// Solver-facing price of an awake interval of `len` slots: the full
    /// wake cost plus the awake draw — evaluated exactly like
    /// [`AffineCost`](crate::AffineCost) so homogeneous fleets stay
    /// bit-identical to the classical model.
    #[inline]
    pub fn interval_cost(&self, len: u32) -> f64 {
        self.wake_cost + self.busy_rate * len as f64
    }

    /// Cost of bridging a `gap`-slot idle period at the best sleep depth:
    /// `min(wake_cost, min_k(idle_k · gap + wake_k))`. With an empty ladder
    /// this is exactly the classical per-interval restart.
    pub fn gap_cost(&self, gap: u32) -> f64 {
        self.sleep_states
            .iter()
            .map(|s| s.idle_rate * gap as f64 + s.wake_cost)
            .fold(self.wake_cost, f64::min)
    }

    /// The break-even sleep-depth rule: which state [`PowerProfile::gap_cost`]
    /// chose for a `gap`-slot idle period. Ties keep the earlier option —
    /// `Off` over any state, a shallower state over a deeper one — matching
    /// the strict-less update of the `min` fold.
    pub fn best_sleep(&self, gap: u32) -> SleepChoice {
        let mut best = (self.wake_cost, SleepChoice::Off);
        for (k, s) in self.sleep_states.iter().enumerate() {
            let c = s.idle_rate * gap as f64 + s.wake_cost;
            if c < best.0 {
                best = (c, SleepChoice::State(k));
            }
        }
        best.1
    }

    /// Largest idle streak worth bridging by *staying awake* rather than
    /// dropping into any sleep state — the hold-awake ski-rental bound the
    /// online policies use. Staying awake for `g` slots costs
    /// `busy_rate · g`; sleeping at depth `k` costs `idle_k · g + wake_k`,
    /// so awake wins up to `wake_k / (busy_rate − idle_k)` against each
    /// state and `wake_cost / busy_rate` against off. Capped at `cap`
    /// (free-to-hold profiles would hold forever).
    pub fn hold_break_even(&self, cap: u32) -> u32 {
        if self.busy_rate <= 0.0 {
            return cap;
        }
        let mut bound = self.wake_cost / self.busy_rate;
        for s in &self.sleep_states {
            if s.idle_rate < self.busy_rate {
                bound = bound.min(s.wake_cost / (self.busy_rate - s.idle_rate));
            }
        }
        let be = bound.ceil();
        if be >= cap as f64 {
            cap
        } else {
            be as u32
        }
    }
}

/// Structural problems in a profile fleet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProfileError {
    /// A parameter is NaN, infinite, or negative.
    NonFinite {
        /// Offending processor.
        proc: u32,
    },
    /// `wake_cost + busy_rate == 0`: awake intervals would be free and the
    /// greedy's ratio rule would divide by zero.
    Free {
        /// Offending processor.
        proc: u32,
    },
    /// A sleep-state ladder violates the monotonicity/bounds contract.
    BadLadder {
        /// Offending processor.
        proc: u32,
        /// Offending ladder index (shallow → deep).
        state: usize,
        /// What went wrong.
        reason: &'static str,
    },
    /// The fleet has a different number of profiles than processors.
    CountMismatch {
        /// Processors in the instance.
        expected: u32,
        /// Profiles supplied.
        got: usize,
    },
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::NonFinite { proc } => {
                write!(f, "profile for processor {proc} has a non-finite or negative parameter")
            }
            ProfileError::Free { proc } => write!(
                f,
                "profile for processor {proc} makes awake intervals free (wake_cost + busy_rate must be > 0)"
            ),
            ProfileError::BadLadder { proc, state, reason } => write!(
                f,
                "profile for processor {proc}, sleep state {state}: {reason}"
            ),
            ProfileError::CountMismatch { expected, got } => write!(
                f,
                "profile count mismatch: {expected} processors but {got} profiles"
            ),
        }
    }
}

impl std::error::Error for ProfileError {}

/// Validates a fleet of profiles against a processor count: exactly one
/// valid profile per processor.
pub fn validate_profiles(
    profiles: &[PowerProfile],
    num_processors: u32,
) -> Result<(), ProfileError> {
    if profiles.len() != num_processors as usize {
        return Err(ProfileError::CountMismatch {
            expected: num_processors,
            got: profiles.len(),
        });
    }
    for (proc, p) in profiles.iter().enumerate() {
        p.validate(proc as u32)?;
    }
    Ok(())
}

/// The fleet a consumer should price with: explicit `profiles` verbatim
/// when present (no padding — a wrong-length fleet must be rejected by
/// [`validate_profiles`] upstream, not silently extended), otherwise the
/// affine `(restart, rate)` profile cloned across all `num_processors`.
pub fn fleet_or_default(
    profiles: Option<&[PowerProfile]>,
    num_processors: u32,
    restart: f64,
    rate: f64,
) -> Vec<PowerProfile> {
    match profiles {
        Some(p) => p.to_vec(),
        None => vec![PowerProfile::affine(restart, rate); num_processors as usize],
    }
}

/// [`EnergyCost`] oracle over a heterogeneous fleet: per-processor
/// `wake_cost + busy_rate · len`, with the parameters flattened into two
/// dense arrays so the hot-path query is two indexed loads (the same
/// arena-table discipline as [`TimeVaryingCost`](crate::TimeVaryingCost)).
///
/// Sleep ladders do **not** enter interval pricing — an awake interval pays
/// the full wake cost regardless of the preceding gap, keeping candidate
/// costs independent (see the [module docs](self)); they refine the
/// deployed-energy accounting in
/// [`profile_energy`](crate::simulate::profile_energy) instead.
#[derive(Clone, Debug)]
pub struct ProfileCost {
    wake: Vec<f64>,
    busy: Vec<f64>,
}

impl ProfileCost {
    /// Oracle over a validated fleet (one profile per processor).
    ///
    /// # Panics
    /// Panics if any profile fails [`PowerProfile::validate`]; untrusted
    /// fleets must pass [`validate_profiles`] first.
    pub fn new(profiles: &[PowerProfile]) -> Self {
        for (proc, p) in profiles.iter().enumerate() {
            if let Err(e) = p.validate(proc as u32) {
                panic!("{e}");
            }
        }
        Self {
            wake: profiles.iter().map(|p| p.wake_cost).collect(),
            busy: profiles.iter().map(|p| p.busy_rate).collect(),
        }
    }

    /// Homogeneous fleet: every processor gets `(wake_cost, busy_rate)` —
    /// bit-identical to [`AffineCost`](crate::AffineCost) with the same
    /// parameters.
    pub fn uniform(num_processors: u32, wake_cost: f64, busy_rate: f64) -> Self {
        Self::new(&vec![
            PowerProfile::affine(wake_cost, busy_rate);
            num_processors as usize
        ])
    }
}

impl EnergyCost for ProfileCost {
    fn cost(&self, proc: u32, start: u32, end: u32) -> f64 {
        debug_assert!(start < end);
        self.wake[proc as usize] + self.busy[proc as usize] * (end - start) as f64
    }
}

/// Hard cap on the number of frequency levels in a [`FreqLadder`]. The DVFS
/// compilation multiplies the processor count by the level count, so this
/// bounds the virtual-grid blowup.
pub const MAX_FREQ_LEVELS: usize = 8;

/// Hard cap on any single frequency in a [`FreqLadder`]. The compilation
/// multiplies the horizon by the top frequency (one lane per work unit per
/// slot), so this bounds the virtual-horizon blowup.
pub const MAX_FREQ: u32 = 64;

/// One frequency level of a [`FreqLadder`], as a computed view: the speed
/// (work units per slot) and the dynamic power drawn per slot while awake at
/// that speed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FreqLevel {
    /// Work units executed per slot at this level.
    pub freq: u32,
    /// Power per awake slot at this level: `alpha * freq^gamma + beta`.
    pub power: f64,
}

/// A discrete DVFS frequency ladder with dynamic power
/// `P(f) = alpha * f^gamma + beta` (the `DiscretePowerModel` shape).
///
/// Frequencies are integer speeds — work units per slot — listed strictly
/// increasing. A job with work requirement `w` occupies `ceil(w / f)` slots
/// when run at frequency `f`: low levels *stretch* a job across cheap slow
/// slots, high levels *compress* it into few expensive fast ones.
///
/// Validation additionally requires **monotone non-decreasing energy per
/// unit of work** up the ladder (`P(f)/f` non-decreasing in `f`): the
/// above-critical-speed regime where slowing down never wastes energy. This
/// keeps the stretch/compress trade-off well-posed — higher frequencies buy
/// schedule room, never free energy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FreqLadder {
    /// Dynamic-power coefficient `alpha` (finite, non-negative).
    pub alpha: f64,
    /// Static power `beta` drawn per awake slot regardless of speed
    /// (finite, non-negative).
    pub beta: f64,
    /// Dynamic-power exponent `gamma` (finite, non-negative; cubes are the
    /// classical CMOS model).
    pub gamma: f64,
    /// Available frequencies, strictly increasing, each in
    /// `1..=`[`MAX_FREQ`], at most [`MAX_FREQ_LEVELS`] of them.
    pub freqs: Vec<u32>,
}

impl FreqLadder {
    /// A validated ladder.
    ///
    /// # Panics
    /// Panics if the parameters violate [`FreqLadder::validate`].
    pub fn new(alpha: f64, beta: f64, gamma: f64, freqs: Vec<u32>) -> Self {
        let l = Self {
            alpha,
            beta,
            gamma,
            freqs,
        };
        if let Err(e) = l.validate() {
            panic!("{e}");
        }
        l
    }

    /// The degenerate single-frequency ladder that reduces DVFS to the
    /// classical fixed-shape model: one speed-1 level with `gamma = 1`,
    /// `beta = 0`, so `P(1) = rate` bitwise (`1^1 == 1`, `rate·1+0 == rate`).
    pub fn degenerate(rate: f64) -> Self {
        Self::new(rate, 0.0, 1.0, vec![1])
    }

    /// Structural checks: finite non-negative curve parameters, a non-empty
    /// strictly increasing frequency list within the caps, strictly positive
    /// power at every level, and monotone non-decreasing energy-per-work.
    pub fn validate(&self) -> Result<(), FreqLadderError> {
        let finite_nonneg = |x: f64| x.is_finite() && x >= 0.0;
        if !finite_nonneg(self.alpha) || !finite_nonneg(self.beta) || !finite_nonneg(self.gamma) {
            return Err(FreqLadderError::NonFinite);
        }
        if self.freqs.is_empty() {
            return Err(FreqLadderError::Empty);
        }
        if self.freqs.len() > MAX_FREQ_LEVELS {
            return Err(FreqLadderError::TooManyLevels {
                got: self.freqs.len(),
            });
        }
        let mut prev = 0u32;
        for (level, &f) in self.freqs.iter().enumerate() {
            if f == 0 || f > MAX_FREQ {
                return Err(FreqLadderError::FreqOutOfRange { level, freq: f });
            }
            if f <= prev {
                return Err(FreqLadderError::NotIncreasing { level });
            }
            prev = f;
        }
        let mut prev_epw = -f64::INFINITY;
        for (level, &f) in self.freqs.iter().enumerate() {
            let p = self.power_of_freq(f);
            if !(p > 0.0 && p.is_finite()) {
                return Err(FreqLadderError::NonPositivePower { level, power: p });
            }
            let epw = p / f as f64;
            // Tolerance absorbs powf round-off on equal-energy ladders.
            if epw < prev_epw - 1e-9 {
                return Err(FreqLadderError::EnergyPerWorkDecreasing { level });
            }
            prev_epw = epw;
        }
        Ok(())
    }

    /// Number of levels `L`.
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.freqs.len()
    }

    /// The top (fastest) frequency.
    #[inline]
    pub fn max_freq(&self) -> u32 {
        *self.freqs.last().expect("validated ladder is non-empty")
    }

    /// The bottom (slowest) frequency.
    #[inline]
    pub fn min_freq(&self) -> u32 {
        self.freqs[0]
    }

    /// Dynamic power per awake slot at frequency `f`:
    /// `alpha * f^gamma + beta`.
    #[inline]
    pub fn power_of_freq(&self, f: u32) -> f64 {
        self.alpha * (f as f64).powf(self.gamma) + self.beta
    }

    /// The computed view of level `level` (0 = slowest).
    #[inline]
    pub fn level(&self, level: usize) -> FreqLevel {
        let freq = self.freqs[level];
        FreqLevel {
            freq,
            power: self.power_of_freq(freq),
        }
    }

    /// All levels, slow → fast.
    pub fn levels(&self) -> Vec<FreqLevel> {
        (0..self.num_levels()).map(|l| self.level(l)).collect()
    }

    /// The lowest level whose frequency can execute `work` units in a single
    /// slot, or `None` if even the top frequency cannot.
    pub fn min_level_for(&self, work: u32) -> Option<usize> {
        self.freqs.iter().position(|&f| f >= work)
    }
}

/// Structural problems in a [`FreqLadder`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FreqLadderError {
    /// `alpha`, `beta`, or `gamma` is NaN, infinite, or negative.
    NonFinite,
    /// The frequency list is empty.
    Empty,
    /// More than [`MAX_FREQ_LEVELS`] levels.
    TooManyLevels {
        /// Levels supplied.
        got: usize,
    },
    /// A frequency is zero or above [`MAX_FREQ`].
    FreqOutOfRange {
        /// Offending level index.
        level: usize,
        /// The rejected frequency.
        freq: u32,
    },
    /// Frequencies are not strictly increasing.
    NotIncreasing {
        /// Offending level index.
        level: usize,
    },
    /// `P(f) <= 0` at some level: awake slots would be free and the greedy's
    /// ratio rule would divide by zero.
    NonPositivePower {
        /// Offending level index.
        level: usize,
        /// The computed power.
        power: f64,
    },
    /// Energy per unit of work `P(f)/f` decreases up the ladder — the
    /// below-critical-speed regime this model excludes.
    EnergyPerWorkDecreasing {
        /// Offending level index.
        level: usize,
    },
}

impl std::fmt::Display for FreqLadderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FreqLadderError::NonFinite => {
                write!(f, "ladder parameters must be finite and non-negative")
            }
            FreqLadderError::Empty => write!(f, "ladder must list at least one frequency"),
            FreqLadderError::TooManyLevels { got } => {
                write!(f, "ladder has {got} levels (max {MAX_FREQ_LEVELS})")
            }
            FreqLadderError::FreqOutOfRange { level, freq } => {
                write!(f, "level {level} frequency {freq} outside 1..={MAX_FREQ}")
            }
            FreqLadderError::NotIncreasing { level } => {
                write!(f, "frequencies must strictly increase (level {level})")
            }
            FreqLadderError::NonPositivePower { level, power } => {
                write!(f, "level {level} has non-positive power {power}")
            }
            FreqLadderError::EnergyPerWorkDecreasing { level } => write!(
                f,
                "energy per work unit decreases at level {level}; \
                 P(f)/f must be non-decreasing up the ladder"
            ),
        }
    }
}

impl std::error::Error for FreqLadderError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AffineCost;

    fn laddered() -> PowerProfile {
        // off: idle 0 / wake 10; states: (idle 0.5, wake 2), (idle 0.2, wake 5)
        PowerProfile::with_ladder(
            10.0,
            1.0,
            vec![
                SleepState {
                    idle_rate: 0.5,
                    wake_cost: 2.0,
                },
                SleepState {
                    idle_rate: 0.2,
                    wake_cost: 5.0,
                },
            ],
        )
    }

    #[test]
    fn interval_cost_matches_affine_bits() {
        let p = PowerProfile::affine(3.0, 1.5);
        let a = AffineCost::new(3.0, 1.5);
        let c = ProfileCost::uniform(2, 3.0, 1.5);
        for (s, e) in [(0u32, 1u32), (2, 7), (0, 63)] {
            assert_eq!(p.interval_cost(e - s).to_bits(), a.cost(0, s, e).to_bits());
            assert_eq!(c.cost(1, s, e).to_bits(), a.cost(1, s, e).to_bits());
        }
    }

    #[test]
    fn gap_cost_picks_break_even_depth() {
        let p = laddered();
        // short gap: shallow state (0.5·2 + 2 = 3 beats 0.2·2+5 = 5.4 and 10)
        assert_eq!(p.gap_cost(2), 3.0);
        assert_eq!(p.best_sleep(2), SleepChoice::State(0));
        // medium gap: deep state (0.5·12+2 = 8, 0.2·12+5 = 7.4, off 10)
        assert_eq!(p.gap_cost(12), 7.4);
        assert_eq!(p.best_sleep(12), SleepChoice::State(1));
        // long gap: off wins (0.2·30+5 = 11 > 10)
        assert_eq!(p.gap_cost(30), 10.0);
        assert_eq!(p.best_sleep(30), SleepChoice::Off);
        // no ladder: always the full restart
        let flat = PowerProfile::affine(4.0, 1.0);
        for g in [1, 5, 100] {
            assert_eq!(flat.gap_cost(g), 4.0);
            assert_eq!(flat.best_sleep(g), SleepChoice::Off);
        }
    }

    #[test]
    fn gap_cost_never_exceeds_full_wake() {
        let p = laddered();
        for g in 0..200 {
            assert!(p.gap_cost(g) <= p.wake_cost + 1e-12, "gap {g}");
        }
    }

    #[test]
    fn hold_break_even_matches_classical_ski_rental() {
        // no ladder: ceil(wake / busy), the rule ThresholdHiring used
        assert_eq!(PowerProfile::affine(6.0, 1.0).hold_break_even(100), 6);
        assert_eq!(PowerProfile::affine(6.5, 1.0).hold_break_even(100), 7);
        // zero busy rate: holding is free — cap
        assert_eq!(PowerProfile::affine(6.0, 0.0).hold_break_even(24), 24);
        // a cheap shallow state shortens the hold: wake 2 / (1 − 0.5) = 4
        assert_eq!(laddered().hold_break_even(100), 4);
        // cap clamps
        assert_eq!(PowerProfile::affine(50.0, 1.0).hold_break_even(8), 8);
    }

    #[test]
    fn validation_rejects_bad_ladders() {
        let ok = laddered();
        assert_eq!(ok.validate(0), Ok(()));
        assert_eq!(validate_profiles(std::slice::from_ref(&ok), 1), Ok(()));
        assert_eq!(
            validate_profiles(std::slice::from_ref(&ok), 2),
            Err(ProfileError::CountMismatch {
                expected: 2,
                got: 1
            })
        );

        let mut non_monotone = laddered();
        non_monotone.sleep_states[1].idle_rate = 0.9; // not below state 0's 0.5
        assert!(matches!(
            non_monotone.validate(3),
            Err(ProfileError::BadLadder {
                proc: 3,
                state: 1,
                ..
            })
        ));

        let mut above_busy = laddered();
        above_busy.sleep_states[0].idle_rate = 1.5; // above busy_rate 1.0
        assert!(matches!(
            above_busy.validate(0),
            Err(ProfileError::BadLadder { state: 0, .. })
        ));

        let mut above_wake = laddered();
        above_wake.sleep_states[1].wake_cost = 11.0; // above full wake 10
        assert!(matches!(
            above_wake.validate(0),
            Err(ProfileError::BadLadder { state: 1, .. })
        ));

        let free = PowerProfile {
            wake_cost: 0.0,
            busy_rate: 0.0,
            sleep_states: vec![],
        };
        assert_eq!(free.validate(1), Err(ProfileError::Free { proc: 1 }));

        let nan = PowerProfile {
            wake_cost: f64::NAN,
            busy_rate: 1.0,
            sleep_states: vec![],
        };
        assert_eq!(nan.validate(0), Err(ProfileError::NonFinite { proc: 0 }));
        assert!(nan
            .validate(0)
            .unwrap_err()
            .to_string()
            .contains("processor 0"));
    }

    #[test]
    fn profile_cost_is_heterogeneous() {
        let c = ProfileCost::new(&[
            PowerProfile::affine(1.0, 1.0),
            PowerProfile::affine(5.0, 0.5),
        ]);
        assert_eq!(c.cost(0, 0, 2), 3.0);
        assert_eq!(c.cost(1, 0, 2), 6.0);
    }

    #[test]
    fn fleet_or_default_fills_affine() {
        let fleet = fleet_or_default(None, 3, 4.0, 1.0);
        assert_eq!(fleet.len(), 3);
        assert!(fleet
            .iter()
            .all(|p| p.wake_cost == 4.0 && p.sleep_states.is_empty()));
        let explicit = [laddered()];
        let fleet = fleet_or_default(Some(&explicit), 1, 0.0, 1.0);
        assert_eq!(fleet[0].sleep_states.len(), 2);
    }

    #[test]
    fn freq_ladder_validates_and_prices() {
        let l = FreqLadder::new(1.0, 0.5, 2.0, vec![1, 2, 4]);
        assert_eq!(l.num_levels(), 3);
        assert_eq!(l.min_freq(), 1);
        assert_eq!(l.max_freq(), 4);
        // P(f) = f² + 0.5
        assert_eq!(
            l.level(0),
            FreqLevel {
                freq: 1,
                power: 1.5
            }
        );
        assert_eq!(
            l.level(1),
            FreqLevel {
                freq: 2,
                power: 4.5
            }
        );
        assert_eq!(
            l.level(2),
            FreqLevel {
                freq: 4,
                power: 16.5
            }
        );
        assert_eq!(l.levels().len(), 3);
        assert_eq!(l.min_level_for(1), Some(0));
        assert_eq!(l.min_level_for(2), Some(1));
        assert_eq!(l.min_level_for(3), Some(2));
        assert_eq!(l.min_level_for(5), None);
    }

    #[test]
    fn degenerate_ladder_prices_bitwise_like_rate() {
        for rate in [0.25, 1.0, 3.5] {
            let l = FreqLadder::degenerate(rate);
            assert_eq!(l.power_of_freq(1).to_bits(), rate.to_bits());
        }
    }

    #[test]
    fn freq_ladder_rejects_bad_shapes() {
        let base = |freqs: Vec<u32>| FreqLadder {
            alpha: 1.0,
            beta: 0.0,
            gamma: 2.0,
            freqs,
        };
        assert_eq!(base(vec![]).validate(), Err(FreqLadderError::Empty));
        assert_eq!(
            base(vec![1, 1]).validate(),
            Err(FreqLadderError::NotIncreasing { level: 1 })
        );
        assert_eq!(
            base(vec![0]).validate(),
            Err(FreqLadderError::FreqOutOfRange { level: 0, freq: 0 })
        );
        assert_eq!(
            base(vec![1, 1000]).validate(),
            Err(FreqLadderError::FreqOutOfRange {
                level: 1,
                freq: 1000
            })
        );
        assert_eq!(
            base((1..=9).collect()).validate(),
            Err(FreqLadderError::TooManyLevels { got: 9 })
        );
        let nan = FreqLadder {
            alpha: f64::NAN,
            beta: 0.0,
            gamma: 1.0,
            freqs: vec![1],
        };
        assert_eq!(nan.validate(), Err(FreqLadderError::NonFinite));
        // alpha = beta = 0 makes every level free
        let free = FreqLadder {
            alpha: 0.0,
            beta: 0.0,
            gamma: 1.0,
            freqs: vec![1],
        };
        assert!(matches!(
            free.validate(),
            Err(FreqLadderError::NonPositivePower { level: 0, .. })
        ));
        // gamma < 1 with beta = 0: P(f)/f decreases — below critical speed
        let sub = FreqLadder {
            alpha: 1.0,
            beta: 0.0,
            gamma: 0.5,
            freqs: vec![1, 4],
        };
        assert_eq!(
            sub.validate(),
            Err(FreqLadderError::EnergyPerWorkDecreasing { level: 1 })
        );
        // gamma = 1, beta = 0: constant energy per work — allowed (ties ok)
        assert!(base(vec![1, 2, 4]).validate().is_ok());
        assert!(FreqLadder {
            alpha: 2.0,
            beta: 0.0,
            gamma: 1.0,
            freqs: vec![1, 2, 4]
        }
        .validate()
        .is_ok());
        for e in [
            FreqLadderError::Empty,
            FreqLadderError::EnergyPerWorkDecreasing { level: 1 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn freq_ladder_serde_round_trip() {
        let l = FreqLadder::new(1.0, 0.5, 3.0, vec![1, 2, 3]);
        let json = serde_json::to_string(&l).unwrap();
        let back: FreqLadder = serde_json::from_str(&json).unwrap();
        assert_eq!(back, l);
        assert_eq!(back.validate(), Ok(()));
    }

    #[test]
    fn serde_round_trip() {
        let p = laddered();
        let json = serde_json::to_string(&p).unwrap();
        let back: PowerProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        let choice = SleepChoice::State(1);
        let json = serde_json::to_string(&choice).unwrap();
        let back: SleepChoice = serde_json::from_str(&json).unwrap();
        assert_eq!(back, choice);
    }
}
