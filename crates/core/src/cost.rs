//! Energy-cost oracles (the arbitrary per-(processor, interval) costs of
//! Definition 2).
//!
//! The paper stresses three generalizations over the classical
//! `α + length` model, each realized here:
//!
//! 1. **Non-identical processors** — [`PerProcessorAffine`];
//! 2. **Time-varying energy prices / unavailability** — [`TimeVaryingCost`],
//!    [`UnavailableSlots`] (infinite cost ⇒ the candidate is dropped);
//! 3. **Non-affine growth** (e.g. fan cooling) — [`ConvexCost`];
//!
//! plus [`TableCost`] for fully explicit per-interval costs and
//! [`AffineCost`] for the classical restart-cost model used by all prior
//! work (Baptiste 2006, Demaine et al. 2007).

use std::collections::HashMap;

/// Oracle: cost of keeping processor `proc` awake during `[start, end)`.
///
/// `f64::INFINITY` means "this interval may not be used"; candidate
/// generation drops such intervals. Costs of usable intervals must be
/// strictly positive (the greedy ratio rule divides by them).
pub trait EnergyCost: Sync {
    /// Cost of `[start, end)` on `proc`. `start < end` is required.
    fn cost(&self, proc: u32, start: u32, end: u32) -> f64;
}

/// Classical model: `restart + rate · (end − start)`, identical processors.
#[derive(Clone, Copy, Debug)]
pub struct AffineCost {
    /// Fixed wake-up cost `α`.
    pub restart: f64,
    /// Energy per awake slot.
    pub rate: f64,
}

impl AffineCost {
    /// Creates the classical model (`rate = 1` recovers the literature's
    /// scaled setting).
    pub fn new(restart: f64, rate: f64) -> Self {
        assert!(restart >= 0.0 && rate >= 0.0);
        assert!(
            restart + rate > 0.0,
            "cost model must charge something for awake intervals"
        );
        Self { restart, rate }
    }
}

impl EnergyCost for AffineCost {
    fn cost(&self, _proc: u32, start: u32, end: u32) -> f64 {
        debug_assert!(start < end);
        self.restart + self.rate * (end - start) as f64
    }
}

/// Heterogeneous processors: per-processor `(restart, rate)`.
#[derive(Clone, Debug)]
pub struct PerProcessorAffine {
    params: Vec<(f64, f64)>,
}

impl PerProcessorAffine {
    /// One `(restart, rate)` pair per processor.
    pub fn new(params: Vec<(f64, f64)>) -> Self {
        for &(a, r) in &params {
            assert!(a >= 0.0 && r >= 0.0 && a + r > 0.0);
        }
        Self { params }
    }
}

impl EnergyCost for PerProcessorAffine {
    fn cost(&self, proc: u32, start: u32, end: u32) -> f64 {
        debug_assert!(start < end);
        let (a, r) = self.params[proc as usize];
        a + r * (end - start) as f64
    }
}

/// Time-varying per-slot prices with a restart cost: models energy markets
/// (day/night tariffs) and per-slot unavailability (infinite price).
///
/// Internally both tables live in single arena-backed row-major buffers
/// (CSR offsets per processor) so an interval query is two subtractions and
/// one compare — O(1), no per-row pointer chase, no per-slot scan:
///
/// * `prefix[off_p + t] = Σ_{u<t} price[p][u]` (finite prices only);
/// * `next_blocked[off_p + t]` = the earliest slot `≥ t` with an infinite
///   price (`u32::MAX` when none), so "does `[start, end)` overlap a blocked
///   slot" is just `next_blocked[off_p + start] < end`.
#[derive(Clone, Debug)]
pub struct TimeVaryingCost {
    restart: f64,
    /// Row-major prefix-sum arena; processor `p` occupies
    /// `row_off[p]..row_off[p + 1]` (row length `T_p + 1`).
    prefix: Vec<f64>,
    /// Row-major next-blocked-slot arena, aligned with `prefix`.
    next_blocked: Vec<u32>,
    /// CSR row offsets into the two arenas, one entry per processor plus a
    /// final sentinel.
    row_off: Vec<u32>,
}

impl TimeVaryingCost {
    /// `prices[p][t]` is the cost of keeping processor `p` awake during slot
    /// `t`; `f64::INFINITY` marks the slot unavailable.
    pub fn new(restart: f64, prices: Vec<Vec<f64>>) -> Self {
        assert!(restart >= 0.0);
        let total: usize = prices.iter().map(|r| r.len() + 1).sum();
        let mut prefix = Vec::with_capacity(total);
        let mut next_blocked = Vec::with_capacity(total);
        let mut row_off = Vec::with_capacity(prices.len() + 1);
        row_off.push(0);
        for row in &prices {
            let base = prefix.len();
            let mut acc = 0.0;
            prefix.push(0.0);
            for &p in row {
                assert!(p >= 0.0, "negative price");
                if !p.is_infinite() {
                    acc += p;
                }
                prefix.push(acc);
            }
            // fill next_blocked back-to-front: sentinel past the row end
            next_blocked.resize(base + row.len() + 1, u32::MAX);
            for (t, &p) in row.iter().enumerate().rev() {
                if p.is_infinite() {
                    next_blocked[base + t] = t as u32;
                } else {
                    next_blocked[base + t] = next_blocked[base + t + 1];
                }
            }
            row_off.push(prefix.len() as u32);
        }
        Self {
            restart,
            prefix,
            next_blocked,
            row_off,
        }
    }
}

impl EnergyCost for TimeVaryingCost {
    fn cost(&self, proc: u32, start: u32, end: u32) -> f64 {
        debug_assert!(start < end);
        let base = self.row_off[proc as usize] as usize;
        let row_len = self.row_off[proc as usize + 1] as usize - base;
        assert!(
            (end as usize) < row_len,
            "interval [{start},{end}) outside the {}-slot price row of processor {proc}",
            row_len - 1
        );
        if self.next_blocked[base + start as usize] < end {
            return f64::INFINITY;
        }
        self.restart + self.prefix[base + end as usize] - self.prefix[base + start as usize]
    }
}

/// Convex growth: `restart + rate·len + quad·len²` — the "fan spins faster
/// the longer the processor stays awake" example from the paper's
/// introduction. Encourages the greedy to prefer several short awake bursts.
#[derive(Clone, Copy, Debug)]
pub struct ConvexCost {
    /// Fixed wake-up cost.
    pub restart: f64,
    /// Linear energy per slot.
    pub rate: f64,
    /// Quadratic coefficient.
    pub quad: f64,
}

impl ConvexCost {
    /// Creates the convex model.
    pub fn new(restart: f64, rate: f64, quad: f64) -> Self {
        assert!(restart >= 0.0 && rate >= 0.0 && quad >= 0.0);
        assert!(restart + rate + quad > 0.0);
        Self {
            restart,
            rate,
            quad,
        }
    }
}

impl EnergyCost for ConvexCost {
    fn cost(&self, _proc: u32, start: u32, end: u32) -> f64 {
        debug_assert!(start < end);
        let len = (end - start) as f64;
        self.restart + self.rate * len + self.quad * len * len
    }
}

/// Fully explicit per-interval costs (the "costs explicitly given in the
/// input" reading of Definition 2). Missing entries cost `default`.
#[derive(Clone, Debug)]
pub struct TableCost {
    table: HashMap<(u32, u32, u32), f64>,
    default: f64,
}

impl TableCost {
    /// Creates a table with the given fallback for unlisted intervals
    /// (`f64::INFINITY` forbids them).
    pub fn new(entries: impl IntoIterator<Item = ((u32, u32, u32), f64)>, default: f64) -> Self {
        Self {
            table: entries.into_iter().collect(),
            default,
        }
    }
}

impl EnergyCost for TableCost {
    fn cost(&self, proc: u32, start: u32, end: u32) -> f64 {
        *self.table.get(&(proc, start, end)).unwrap_or(&self.default)
    }
}

/// Wrapper marking some (processor, slot) pairs unavailable: any interval
/// overlapping one costs `∞` regardless of the inner model.
///
/// Like [`TimeVaryingCost`], the blocked structure is a flat row-major
/// `next_blocked` arena: the overlap test is one O(1) lookup instead of a
/// per-query binary search over a sorted slot list. Each processor's row
/// only extends to its last blocked slot; queries past the row end trivially
/// see no blocked slot.
#[derive(Clone, Debug)]
pub struct UnavailableSlots<C> {
    inner: C,
    /// Row-major "earliest blocked slot ≥ t" arena; processor `p` occupies
    /// `row_off[p]..row_off[p + 1]`.
    next_blocked: Vec<u32>,
    /// CSR row offsets, one per processor plus a final sentinel.
    row_off: Vec<u32>,
}

impl<C: EnergyCost> UnavailableSlots<C> {
    /// Wraps `inner`, blocking the given (proc, slot) pairs.
    pub fn new(inner: C, num_processors: u32, blocked_pairs: &[(u32, u32)]) -> Self {
        let mut blocked = vec![Vec::new(); num_processors as usize];
        for &(p, t) in blocked_pairs {
            blocked[p as usize].push(t);
        }
        let mut next_blocked = Vec::new();
        let mut row_off = Vec::with_capacity(num_processors as usize + 1);
        row_off.push(0);
        for b in blocked.iter_mut() {
            b.sort_unstable();
            b.dedup();
            // row spans 0..=max blocked slot; next_blocked walks backwards
            if let Some(&max) = b.last() {
                let base = next_blocked.len();
                next_blocked.resize(base + max as usize + 1, u32::MAX);
                let mut next = u32::MAX;
                let mut it = b.iter().rev().peekable();
                for t in (0..=max).rev() {
                    if it.peek() == Some(&&t) {
                        next = t;
                        it.next();
                    }
                    next_blocked[base + t as usize] = next;
                }
            }
            row_off.push(next_blocked.len() as u32);
        }
        Self {
            inner,
            next_blocked,
            row_off,
        }
    }
}

impl<C: EnergyCost> EnergyCost for UnavailableSlots<C> {
    fn cost(&self, proc: u32, start: u32, end: u32) -> f64 {
        let base = self.row_off[proc as usize] as usize;
        let row_len = self.row_off[proc as usize + 1] as usize - base;
        // any blocked slot in [start, end)? O(1): the row's next-blocked
        // pointer at `start` (slots past the row end are never blocked).
        if (start as usize) < row_len && self.next_blocked[base + start as usize] < end {
            return f64::INFINITY;
        }
        self.inner.cost(proc, start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine() {
        let c = AffineCost::new(3.0, 1.0);
        assert_eq!(c.cost(0, 2, 5), 6.0);
        assert_eq!(c.cost(7, 0, 1), 4.0);
    }

    #[test]
    fn per_processor() {
        let c = PerProcessorAffine::new(vec![(1.0, 1.0), (5.0, 0.5)]);
        assert_eq!(c.cost(0, 0, 2), 3.0);
        assert_eq!(c.cost(1, 0, 2), 6.0);
    }

    #[test]
    fn time_varying_prefix_sums() {
        let c = TimeVaryingCost::new(2.0, vec![vec![1.0, 10.0, 1.0, 1.0]]);
        assert_eq!(c.cost(0, 0, 1), 3.0);
        assert_eq!(c.cost(0, 0, 4), 15.0);
        assert_eq!(c.cost(0, 2, 4), 4.0);
    }

    #[test]
    fn time_varying_infinite_slot_blocks() {
        let c = TimeVaryingCost::new(0.5, vec![vec![1.0, f64::INFINITY, 1.0]]);
        assert_eq!(c.cost(0, 0, 1), 1.5);
        assert!(c.cost(0, 0, 2).is_infinite());
        assert!(c.cost(0, 1, 2).is_infinite());
        assert_eq!(c.cost(0, 2, 3), 1.5);
    }

    #[test]
    fn time_varying_ragged_rows_stay_independent() {
        // rows of different lengths share one arena; offsets must not bleed
        let c = TimeVaryingCost::new(
            1.0,
            vec![vec![1.0, 2.0], vec![5.0, f64::INFINITY, 7.0, 9.0]],
        );
        assert_eq!(c.cost(0, 0, 2), 4.0);
        assert_eq!(c.cost(1, 0, 1), 6.0);
        assert!(c.cost(1, 0, 2).is_infinite());
        assert!(c.cost(1, 1, 3).is_infinite());
        assert_eq!(c.cost(1, 2, 4), 17.0);
    }

    #[test]
    fn convex_superlinear() {
        let c = ConvexCost::new(1.0, 1.0, 0.5);
        assert_eq!(c.cost(0, 0, 1), 2.5);
        assert_eq!(c.cost(0, 0, 2), 5.0);
        // two length-1 intervals (5.0) beat one length-2 + gap? depends; just
        // verify super-linearity:
        assert!(c.cost(0, 0, 4) > 2.0 * c.cost(0, 0, 2));
    }

    #[test]
    fn table_and_default() {
        let c = TableCost::new([((0, 0, 3), 7.0)], f64::INFINITY);
        assert_eq!(c.cost(0, 0, 3), 7.0);
        assert!(c.cost(0, 0, 2).is_infinite());
    }

    #[test]
    fn unavailable_slots_block_overlapping() {
        let c = UnavailableSlots::new(AffineCost::new(1.0, 1.0), 2, &[(0, 2), (1, 0)]);
        assert!(c.cost(0, 0, 3).is_infinite());
        assert!(c.cost(0, 2, 3).is_infinite());
        assert_eq!(c.cost(0, 0, 2), 3.0);
        assert_eq!(c.cost(0, 3, 5), 3.0);
        assert!(c.cost(1, 0, 1).is_infinite());
        assert_eq!(c.cost(1, 1, 2), 2.0);
    }
}
