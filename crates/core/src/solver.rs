//! The [`Solver`] builder — the single entry point unifying the three
//! algorithms of Chapter 2.
//!
//! Before this module, every caller had to thread four values through every
//! call site (instance, cost oracle, candidate enumeration, options) and pick
//! one of three free functions. The builder owns that state once:
//!
//! ```
//! use sched_core::{AffineCost, Instance, Job, SlotRef, Solver};
//!
//! let inst = Instance::new(1, 4, vec![
//!     Job::unit(vec![SlotRef::new(0, 0)]),
//!     Job::unit(vec![SlotRef::new(0, 3)]),
//! ]);
//! let cost = AffineCost::new(10.0, 1.0);
//! let schedule = Solver::new(&inst, &cost).schedule_all().unwrap();
//! assert_eq!(schedule.total_cost, 14.0);
//! ```
//!
//! Candidate enumeration is performed lazily, at most once per solver: all
//! three goal methods ([`Solver::schedule_all`], [`Solver::prize_collecting`],
//! [`Solver::prize_collecting_exact`]) share the cached family, so sweeping a
//! parameter (a target value `Z`, an `ε` schedule) re-prices nothing. Callers
//! that build candidate intervals themselves — generators, experiments,
//! ablations — inject them with [`Solver::with_candidates`].
//!
//! Solvers are `Send` and cheap to [`Clone`]: enumerated families live in an
//! [`Arc`], so a worker pool can enumerate once and hand every worker its
//! own solver (or share one family via
//! [`Solver::with_shared_candidates`] / [`Solver::shared_candidates`])
//! without copying interval data.

use std::borrow::Cow;
use std::cell::OnceCell;
use std::sync::Arc;

use crate::candidates::{enumerate_candidates, CandidateInterval, CandidatePolicy};
use crate::cost::EnergyCost;
use crate::model::{Instance, Schedule, ScheduleError, SolveOptions};
use crate::objective::ScheduleReduction;
use crate::prize_collecting::{prize_collecting_exact_with, prize_collecting_with};
use crate::schedule_all::schedule_all_with;

/// Where the solver's candidate awake intervals come from.
#[derive(Clone, Copy)]
enum CandidateSource<'a> {
    /// Enumerate under a policy, pricing via the cost oracle (the default).
    Enumerate(&'a dyn EnergyCost, CandidatePolicy),
    /// A caller-supplied family, stored directly in the cache at
    /// construction time (no second copy lives here).
    Explicit,
}

/// A candidate family as held by the cache: borrowed from the caller, or
/// owned behind an [`Arc`] so clones of the solver (and external caches)
/// share one allocation.
#[derive(Clone)]
enum Family<'a> {
    Borrowed(&'a [CandidateInterval]),
    Shared(Arc<[CandidateInterval]>),
}

impl Family<'_> {
    fn as_slice(&self) -> &[CandidateInterval] {
        match self {
            Family::Borrowed(s) => s,
            Family::Shared(a) => a,
        }
    }
}

/// Builder-style front end over the Theorem 2.2.1 / 2.3.1 / 2.3.3 solvers.
///
/// Construct with [`Solver::new`] (cost oracle + default
/// [`CandidatePolicy::All`]) or [`Solver::with_candidates`] (explicit
/// family), refine with the chained configuration methods, then call one of
/// the goal methods. See the [module docs](self) for an end-to-end example.
pub struct Solver<'a> {
    instance: &'a Instance,
    source: CandidateSource<'a>,
    options: SolveOptions,
    cache: OnceCell<Family<'a>>,
    /// Bipartite reduction over the cached family, built lazily on the first
    /// goal call and shared by every subsequent one (and by clones).
    reduction: OnceCell<Arc<ScheduleReduction>>,
}

impl Clone for Solver<'_> {
    /// Cheap: copies references and options, and shares (never copies) an
    /// already-enumerated candidate family via its `Arc` — likewise the
    /// already-built reduction.
    fn clone(&self) -> Self {
        Self {
            instance: self.instance,
            source: self.source,
            options: self.options,
            cache: self.cache.clone(),
            reduction: self.reduction.clone(),
        }
    }
}

impl<'a> Solver<'a> {
    /// Solver over `instance` with costs from `cost`, enumerating candidates
    /// under [`CandidatePolicy::All`] (override with [`Solver::policy`]).
    pub fn new(instance: &'a Instance, cost: &'a dyn EnergyCost) -> Self {
        Self {
            instance,
            source: CandidateSource::Enumerate(cost, CandidatePolicy::All),
            options: SolveOptions::default(),
            cache: OnceCell::new(),
            reduction: OnceCell::new(),
        }
    }

    /// Solver over `instance` using a pre-built candidate family (already
    /// priced); no cost oracle is consulted. Accepts a borrowed slice or an
    /// owned `Vec` — generators that keep their family alive can lend it
    /// without copying.
    pub fn with_candidates(
        instance: &'a Instance,
        candidates: impl Into<Cow<'a, [CandidateInterval]>>,
    ) -> Self {
        let family = match candidates.into() {
            Cow::Borrowed(s) => Family::Borrowed(s),
            Cow::Owned(v) => Family::Shared(Arc::from(v)),
        };
        Self::from_family(instance, family)
    }

    /// Solver over `instance` using a pre-built candidate family behind an
    /// [`Arc`] — the zero-copy path for worker pools that cache enumerated
    /// families across requests (see [`Solver::shared_candidates`]).
    pub fn with_shared_candidates(
        instance: &'a Instance,
        candidates: Arc<[CandidateInterval]>,
    ) -> Self {
        Self::from_family(instance, Family::Shared(candidates))
    }

    fn from_family(instance: &'a Instance, family: Family<'a>) -> Self {
        let cache = OnceCell::new();
        if cache.set(family).is_err() {
            unreachable!("fresh cell");
        }
        Self {
            instance,
            source: CandidateSource::Explicit,
            options: SolveOptions::default(),
            cache,
            reduction: OnceCell::new(),
        }
    }

    /// Sets the candidate enumeration policy.
    ///
    /// Resets the cached enumeration (and the reduction built over it); no
    /// effect on the interval family of a [`Solver::with_candidates`] solver.
    pub fn policy(mut self, policy: CandidatePolicy) -> Self {
        if let CandidateSource::Enumerate(cost, _) = self.source {
            self.source = CandidateSource::Enumerate(cost, policy);
            self.cache = OnceCell::new();
            self.reduction = OnceCell::new();
        }
        self
    }

    /// Replaces the whole option block.
    pub fn options(mut self, options: SolveOptions) -> Self {
        self.options = options;
        self
    }

    /// Toggles lazy-greedy candidate selection (on by default).
    pub fn lazy(mut self, lazy: bool) -> Self {
        self.options.lazy = lazy;
        self
    }

    /// Toggles parallel full-scan evaluation (off by default).
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.options.parallel = parallel;
        self
    }

    /// The candidate interval family this solver optimizes over (enumerated
    /// on first use, then cached for every subsequent solve).
    pub fn candidates(&self) -> &[CandidateInterval] {
        self.family().as_slice()
    }

    /// The candidate family behind an [`Arc`], enumerating first if needed —
    /// the handle a worker pool stores to reuse one enumeration across many
    /// requests ([`Solver::with_shared_candidates`] accepts it back without
    /// copying). A family borrowed via [`Solver::with_candidates`] is copied
    /// into a fresh `Arc` once here.
    pub fn shared_candidates(&self) -> Arc<[CandidateInterval]> {
        match self.family() {
            Family::Borrowed(s) => Arc::from(*s),
            Family::Shared(a) => Arc::clone(a),
        }
    }

    fn family(&self) -> &Family<'a> {
        self.cache.get_or_init(|| match &self.source {
            CandidateSource::Enumerate(cost, policy) => Family::Shared(Arc::from(
                enumerate_candidates(self.instance, *cost, *policy),
            )),
            // the cell is seeded at construction, so get_or_init never
            // reaches this arm for explicit families
            CandidateSource::Explicit => unreachable!("explicit cache seeded at construction"),
        })
    }

    /// The instance being solved.
    pub fn instance(&self) -> &Instance {
        self.instance
    }

    /// The active option block.
    pub fn solve_options(&self) -> SolveOptions {
        self.options
    }

    /// A [`WarmHandle`](crate::warm::WarmHandle) configured with this
    /// solver's candidate policy and options, for callers that re-solve the
    /// same grid repeatedly and want the incremental path. Explicit-family
    /// solvers fall back to [`CandidatePolicy::All`] (the handle enumerates
    /// its own family so it can rebuild after checksum divergence).
    pub fn warm_handle(&self) -> crate::warm::WarmHandle {
        let policy = match &self.source {
            CandidateSource::Enumerate(_, policy) => *policy,
            CandidateSource::Explicit => CandidatePolicy::All,
        };
        crate::warm::WarmHandle::with_options(policy, self.options)
    }

    /// The bipartite reduction over the cached candidate family, built on
    /// first use and shared by every goal method (and by clones): sweeping a
    /// target or an `ε` schedule re-reduces nothing.
    pub fn reduction(&self) -> &ScheduleReduction {
        self.reduction
            .get_or_init(|| Arc::new(ScheduleReduction::build(self.instance, self.candidates())))
    }

    /// Theorem 2.2.1: schedules **every** job at cost within `O(log n)` of
    /// the cheapest all-jobs schedule.
    pub fn schedule_all(&self) -> Result<Schedule, ScheduleError> {
        // Opened before `reduction()` so a first solve's lazy reduction
        // build nests inside the solve span on the trace timeline.
        let _span = sched_obs::span!("core.solve.schedule_all_ns");
        schedule_all_with(
            self.instance,
            self.reduction(),
            self.candidates(),
            &self.options,
        )
    }

    /// Theorem 2.3.1: schedules value `≥ (1−epsilon)·target` at cost within
    /// `O(log 1/epsilon)` of any schedule achieving `target`.
    pub fn prize_collecting(&self, target: f64, epsilon: f64) -> Result<Schedule, ScheduleError> {
        prize_collecting_with(
            self.instance,
            self.reduction(),
            self.candidates(),
            target,
            epsilon,
            &self.options,
        )
    }

    /// Theorem 2.3.3: schedules value `≥ target` exactly, at cost
    /// `O((log n + log Δ)·B)` where `Δ` is the job-value spread.
    pub fn prize_collecting_exact(&self, target: f64) -> Result<Schedule, ScheduleError> {
        prize_collecting_exact_with(
            self.instance,
            self.reduction(),
            self.candidates(),
            target,
            &self.options,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AffineCost;
    use crate::model::{validate_schedule, Job, SlotRef};
    use crate::schedule_all::schedule_all;

    fn inst() -> Instance {
        Instance::new(
            1,
            4,
            vec![
                Job::unit(vec![SlotRef::new(0, 0)]),
                Job::unit(vec![SlotRef::new(0, 3)]),
            ],
        )
    }

    #[test]
    fn matches_free_functions() {
        let inst = inst();
        let cost = AffineCost::new(10.0, 1.0);
        let solver = Solver::new(&inst, &cost);
        let via_builder = solver.schedule_all().unwrap();

        let cands = enumerate_candidates(&inst, &cost, CandidatePolicy::All);
        let via_free = schedule_all(&inst, &cands, &SolveOptions::default()).unwrap();
        assert_eq!(via_builder.total_cost, via_free.total_cost);
        assert_eq!(via_builder.awake.len(), via_free.awake.len());
    }

    #[test]
    fn candidates_cached_and_shared_across_goals() {
        let inst = Instance::new(
            1,
            4,
            vec![Job::window(2.0, 0, 0, 2), Job::window(3.0, 0, 2, 4)],
        );
        let cost = AffineCost::new(1.0, 1.0);
        let solver = Solver::new(&inst, &cost);
        let first = solver.candidates().as_ptr();
        let all = solver.schedule_all().unwrap();
        let pc = solver.prize_collecting(3.0, 0.25).unwrap();
        let pce = solver.prize_collecting_exact(5.0).unwrap();
        // same cached allocation used throughout
        assert_eq!(first, solver.candidates().as_ptr());
        assert!(validate_schedule(&inst, &all).is_empty());
        assert!(validate_schedule(&inst, &pc).is_empty());
        assert!(validate_schedule(&inst, &pce).is_empty());
        assert!(pc.scheduled_value >= 0.75 * 3.0 - 1e-9);
        assert!(pce.scheduled_value >= 5.0 - 1e-9);
    }

    #[test]
    fn policy_restricts_candidates() {
        let inst = inst();
        let cost = AffineCost::new(0.5, 1.0);
        let solver = Solver::new(&inst, &cost).policy(CandidatePolicy::SingleSlots);
        assert!(solver.candidates().iter().all(|iv| iv.len() == 1));
        let s = solver.schedule_all().unwrap();
        assert_eq!(s.awake.len(), 2);
        assert_eq!(s.total_cost, 3.0);
    }

    #[test]
    fn explicit_candidates_used_verbatim() {
        let inst = Instance::new(1, 3, vec![Job::window(5.0, 0, 0, 1)]);
        // family that cannot host the job
        let solver = Solver::with_candidates(
            &inst,
            vec![CandidateInterval {
                proc: 0,
                start: 1,
                end: 3,
                cost: 2.0,
            }],
        );
        assert!(matches!(
            solver.schedule_all(),
            Err(ScheduleError::Infeasible { .. })
        ));
        // policy() must not clobber an explicit family
        let solver = solver.policy(CandidatePolicy::All);
        assert_eq!(solver.candidates().len(), 1);
    }

    #[test]
    fn clone_shares_enumerated_family_and_is_send() {
        fn assert_send<T: Send>(_: &T) {}
        let inst = inst();
        let cost = AffineCost::new(10.0, 1.0);
        let solver = Solver::new(&inst, &cost);
        assert_send(&solver);
        let family = solver.shared_candidates();
        let clone = solver.clone();
        // the clone reuses the same allocation, not a re-enumeration
        assert_eq!(family.as_ptr(), clone.candidates().as_ptr());
        assert_eq!(
            solver.schedule_all().unwrap().total_cost,
            clone.schedule_all().unwrap().total_cost
        );
    }

    #[test]
    fn shared_candidates_round_trip_without_copy() {
        let inst = inst();
        let cost = AffineCost::new(10.0, 1.0);
        let family = Solver::new(&inst, &cost).shared_candidates();
        let solver = Solver::with_shared_candidates(&inst, Arc::clone(&family));
        assert_eq!(family.as_ptr(), solver.candidates().as_ptr());
        let direct = Solver::new(&inst, &cost).schedule_all().unwrap();
        let shared = solver.schedule_all().unwrap();
        assert_eq!(direct.total_cost, shared.total_cost);
    }

    #[test]
    fn option_toggles_agree() {
        let inst = Instance::new(
            2,
            5,
            vec![
                Job::window(1.0, 0, 0, 3),
                Job::window(1.0, 0, 2, 5),
                Job::window(1.0, 1, 1, 4),
            ],
        );
        let cost = AffineCost::new(2.0, 1.0);
        let lazy = Solver::new(&inst, &cost).schedule_all().unwrap();
        let eager = Solver::new(&inst, &cost)
            .lazy(false)
            .schedule_all()
            .unwrap();
        let par = Solver::new(&inst, &cost)
            .lazy(false)
            .parallel(true)
            .schedule_all()
            .unwrap();
        assert_eq!(lazy.total_cost, eager.total_cost);
        assert_eq!(eager.total_cost, par.total_cost);
        let opts = Solver::new(&inst, &cost)
            .options(SolveOptions {
                lazy: false,
                parallel: false,
            })
            .solve_options();
        assert!(!opts.lazy && !opts.parallel);
    }
}
