//! Theorem 2.2.1: schedule **all** jobs at cost `O(B log n)`.
//!
//! Reduction (§2.2): utility `F(S)` = maximum number of jobs matchable into
//! the slot set `S` (monotone submodular, Lemma 2.2.2). Run the Lemma 2.1.2
//! greedy with target `x = n` and `ε = 1/(n+1)`: since `F` is integral,
//! utility `> n − 1` forces utility `= n`, and the cost bound
//! `2B⌈log₂(n+1)⌉ = O(B log n)` follows. The final maximum bipartite matching
//! is read straight out of the incremental oracle.

use bmatch::hall_violator;
use submodular::{budgeted_greedy_with, BudgetedObjective, GreedyConfig};

use crate::candidates::CandidateInterval;
use crate::model::{Instance, Schedule, ScheduleError, SolveOptions};
use crate::objective::{ObjectiveScratch, ScheduleObjective, ScheduleReduction};

/// Schedules every job of `inst` using awake intervals drawn from
/// `candidates`, with total cost within `O(log n)` of the cheapest such
/// schedule (Theorem 2.2.1).
///
/// Errors with [`ScheduleError::Infeasible`] — including a Hall-violator
/// certificate — when no sub-family of `candidates` can host all jobs.
/// (Feasibility is always relative to the candidate family; pass
/// [`crate::candidates::CandidatePolicy::All`] for the unrestricted problem.)
///
/// Builds the bipartite reduction internally; callers that solve the same
/// instance + family repeatedly (or mix goal methods) should go through
/// [`crate::Solver`], which builds the reduction once and passes it to
/// [`schedule_all_with`].
pub fn schedule_all(
    inst: &Instance,
    candidates: &[CandidateInterval],
    opts: &SolveOptions,
) -> Result<Schedule, ScheduleError> {
    if inst.num_jobs() == 0 {
        return Ok(empty_schedule());
    }
    // The span covers the reduction build too, so a trace shows
    // solve ⊃ reduction ⊃ scan_gains on a cold solve.
    let _span = sched_obs::span!("core.solve.schedule_all_ns");
    let red = ScheduleReduction::build(inst, candidates);
    schedule_all_with(inst, &red, candidates, opts)
}

/// [`schedule_all`] over a prebuilt [`ScheduleReduction`] (which must have
/// been built for exactly this `inst` + `candidates` pair).
pub fn schedule_all_with(
    inst: &Instance,
    red: &ScheduleReduction,
    candidates: &[CandidateInterval],
    opts: &SolveOptions,
) -> Result<Schedule, ScheduleError> {
    let n = inst.num_jobs();
    if n == 0 {
        return Ok(empty_schedule());
    }

    // Jobs with no allowed slots are trivially infeasible.
    if let Some((jid, _)) = inst
        .jobs
        .iter()
        .enumerate()
        .find(|(_, j)| j.allowed.is_empty())
    {
        return Err(ScheduleError::Infeasible {
            certificate: vec![jid as u32],
            achieved_value: 0.0,
        });
    }

    // No span here: the public entry points ([`schedule_all`],
    // [`crate::Solver::schedule_all`], [`schedule_all_seeded`]) each open
    // the `core.solve.schedule_all_ns` span so it also covers their
    // reduction builds; opening another one would double-count the solve.
    let mut obj = ScheduleObjective::new_cardinality(red);
    let mut scratch = ObjectiveScratch::default();

    let x = n as f64;
    let eps = 1.0 / (x + 1.0);
    let cfg = GreedyConfig {
        target: x,
        epsilon: eps,
        lazy: opts.lazy,
        parallel: opts.parallel,
    };
    let out = budgeted_greedy_with(&mut obj, cfg, &mut scratch);
    flush_solve_telemetry(&obj, &scratch);

    // Integral utility: reaching (1 − 1/(n+1))·n > n−1 means all n jobs.
    if !out.reached_target {
        let certificate = hall_violator(obj.oracle()).unwrap_or_default();
        return Err(ScheduleError::Infeasible {
            certificate,
            achieved_value: out.utility,
        });
    }
    debug_assert_eq!(out.utility, x, "integral utility must hit n exactly");

    Ok(obj.extract_schedule(inst, candidates, &out.chosen))
}

/// Warm-start seed for [`schedule_all_seeded`]: per-candidate initial gains
/// carried over from the previous solve, plus the mask of candidates whose
/// slot neighbourhood the instance delta provably left untouched.
pub(crate) struct WarmSeed<'s> {
    /// Initial (`S = ∅`) gain of each candidate, from the previous solve.
    pub vals: &'s [f64],
    /// `clean[i]`: no dirty slot intersects candidate `i`'s window, so
    /// `vals[i]` is still exact.
    pub clean: &'s [bool],
}

/// [`schedule_all_with`] with warm-start plumbing: optionally pre-seeds the
/// gain memo from `seed`, and always captures every candidate's initial
/// (`S = ∅`) gain into `init_out` — the seed for the *next* warm solve.
///
/// With `seed = None` this makes exactly the same greedy decisions as
/// [`schedule_all_with`]: the explicit initial scan fills the memo with the
/// very values the greedy's own first scan would compute, and the greedy then
/// replays them. With a seed, clean candidates replay carried-over values
/// (provably equal to a fresh evaluation) and only dirty runs are recomputed.
pub(crate) fn schedule_all_seeded(
    inst: &Instance,
    red: &ScheduleReduction,
    candidates: &[CandidateInterval],
    opts: &SolveOptions,
    seed: Option<WarmSeed<'_>>,
    init_out: &mut Vec<f64>,
) -> Result<Schedule, ScheduleError> {
    let n = inst.num_jobs();
    init_out.clear();
    if n == 0 {
        return Ok(empty_schedule());
    }
    if let Some((jid, _)) = inst
        .jobs
        .iter()
        .enumerate()
        .find(|(_, j)| j.allowed.is_empty())
    {
        return Err(ScheduleError::Infeasible {
            certificate: vec![jid as u32],
            achieved_value: 0.0,
        });
    }

    let _span = sched_obs::span!("core.solve.schedule_all_ns");
    let mut obj = ScheduleObjective::new_cardinality(red);
    let mut scratch = ObjectiveScratch::default();
    if let Some(seed) = seed {
        obj.seed_memo(&mut scratch, seed.vals, seed.clean);
    }
    // One explicit sequential scan: recomputes dirty runs, replays seeded
    // ones, and leaves the memo fully fresh — the greedy's own initial scan
    // then replays it wholesale.
    obj.scan_gains(false, &mut scratch, init_out);

    let x = n as f64;
    let eps = 1.0 / (x + 1.0);
    let cfg = GreedyConfig {
        target: x,
        epsilon: eps,
        lazy: opts.lazy,
        parallel: opts.parallel,
    };
    let out = budgeted_greedy_with(&mut obj, cfg, &mut scratch);
    flush_solve_telemetry(&obj, &scratch);

    if !out.reached_target {
        let certificate = hall_violator(obj.oracle()).unwrap_or_default();
        return Err(ScheduleError::Infeasible {
            certificate,
            achieved_value: out.utility,
        });
    }
    debug_assert_eq!(out.utility, x, "integral utility must hit n exactly");

    Ok(obj.extract_schedule(inst, candidates, &out.chosen))
}

/// Flushes the per-solve batched counters (gain-memo hits/misses, oracle
/// augment/retract operations) to the ambient registry. The hot loops only
/// bump plain integers; this is the single point where they become metrics.
fn flush_solve_telemetry(obj: &ScheduleObjective<'_>, scratch: &ObjectiveScratch) {
    let (hits, misses) = scratch.memo_counts();
    sched_obs::counter_add("core.gain_memo.hits", hits);
    sched_obs::counter_add("core.gain_memo.misses", misses);
    let (augments, retracts) = obj.oracle().op_counts();
    sched_obs::counter_add("matching.oracle.augments", augments);
    sched_obs::counter_add("matching.oracle.retracts", retracts);
}

fn empty_schedule() -> Schedule {
    Schedule {
        awake: Vec::new(),
        assignments: Vec::new(),
        total_cost: 0.0,
        scheduled_value: 0.0,
        scheduled_count: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{enumerate_candidates, CandidatePolicy};
    use crate::cost::{AffineCost, EnergyCost, PerProcessorAffine, TimeVaryingCost};
    use crate::model::{validate_schedule, Instance, Job, SlotRef};

    fn solve(
        inst: &Instance,
        cost: &dyn crate::cost::EnergyCost,
    ) -> Result<Schedule, ScheduleError> {
        let cands = enumerate_candidates(inst, cost, CandidatePolicy::All);
        schedule_all(inst, &cands, &SolveOptions::default())
    }

    #[test]
    fn empty_instance_trivially_scheduled() {
        let inst = Instance::new(1, 4, vec![]);
        let s = solve(&inst, &AffineCost::new(1.0, 1.0)).unwrap();
        assert_eq!(s.total_cost, 0.0);
        assert_eq!(s.scheduled_count, 0);
    }

    #[test]
    fn single_job_single_slot() {
        let inst = Instance::new(1, 3, vec![Job::unit(vec![SlotRef::new(0, 1)])]);
        let s = solve(&inst, &AffineCost::new(2.0, 1.0)).unwrap();
        assert_eq!(s.scheduled_count, 1);
        assert_eq!(s.assignments[0], Some(SlotRef::new(0, 1)));
        // cheapest awake interval containing slot 1 costs restart 2 + len 1 = 3
        assert_eq!(s.total_cost, 3.0);
        assert!(validate_schedule(&inst, &s).is_empty());
    }

    #[test]
    fn merges_intervals_when_restart_is_expensive() {
        // two jobs at t=0 and t=3; restart cost 10 makes one interval [0,4)
        // (cost 14) cheaper than two singletons (cost 22)
        let inst = Instance::new(
            1,
            4,
            vec![
                Job::unit(vec![SlotRef::new(0, 0)]),
                Job::unit(vec![SlotRef::new(0, 3)]),
            ],
        );
        let s = solve(&inst, &AffineCost::new(10.0, 1.0)).unwrap();
        assert_eq!(s.scheduled_count, 2);
        assert_eq!(s.awake.len(), 1);
        assert_eq!(s.total_cost, 14.0);
        assert!(validate_schedule(&inst, &s).is_empty());
    }

    #[test]
    fn splits_intervals_when_restart_is_cheap() {
        // same jobs, restart 0.5: two singletons (cost 3) beat [0,4) (4.5)
        let inst = Instance::new(
            1,
            4,
            vec![
                Job::unit(vec![SlotRef::new(0, 0)]),
                Job::unit(vec![SlotRef::new(0, 3)]),
            ],
        );
        let s = solve(&inst, &AffineCost::new(0.5, 1.0)).unwrap();
        assert_eq!(s.scheduled_count, 2);
        assert_eq!(s.awake.len(), 2);
        assert_eq!(s.total_cost, 3.0);
    }

    #[test]
    fn conflict_forces_two_processors() {
        // two jobs only at t=0; needs both processors awake at t=0
        let inst = Instance::new(
            2,
            2,
            vec![
                Job::unit(vec![SlotRef::new(0, 0), SlotRef::new(1, 0)]),
                Job::unit(vec![SlotRef::new(0, 0), SlotRef::new(1, 0)]),
            ],
        );
        let s = solve(&inst, &AffineCost::new(1.0, 1.0)).unwrap();
        assert_eq!(s.scheduled_count, 2);
        let procs: std::collections::HashSet<u32> =
            s.assignments.iter().map(|a| a.unwrap().proc).collect();
        assert_eq!(procs.len(), 2);
        assert!(validate_schedule(&inst, &s).is_empty());
    }

    #[test]
    fn infeasible_too_many_jobs_for_slots() {
        // three jobs, all only at slot (0,0): Hall violator expected
        let jobs = vec![
            Job::unit(vec![SlotRef::new(0, 0)]),
            Job::unit(vec![SlotRef::new(0, 0)]),
            Job::unit(vec![SlotRef::new(0, 0)]),
        ];
        let inst = Instance::new(1, 2, jobs);
        let err = solve(&inst, &AffineCost::new(1.0, 1.0)).unwrap_err();
        match err {
            ScheduleError::Infeasible {
                certificate,
                achieved_value,
            } => {
                assert_eq!(achieved_value, 1.0);
                // the violator found from one unsaturated job contains that
                // job plus the one matched into slot (0,0): 2 jobs vs 1 slot
                assert!(
                    certificate.len() >= 2,
                    "violator too small: {certificate:?}"
                );
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn job_with_no_slots_is_infeasible() {
        let inst = Instance::new(1, 2, vec![Job::unit(vec![])]);
        let err = solve(&inst, &AffineCost::new(1.0, 1.0)).unwrap_err();
        assert!(matches!(err, ScheduleError::Infeasible { .. }));
    }

    #[test]
    fn heterogeneous_processors_prefer_cheap_one() {
        // job can run on either processor at t=0; proc 1 is much cheaper
        let inst = Instance::new(
            2,
            1,
            vec![Job::unit(vec![SlotRef::new(0, 0), SlotRef::new(1, 0)])],
        );
        let cost = PerProcessorAffine::new(vec![(10.0, 1.0), (0.5, 0.5)]);
        let s = solve(&inst, &cost).unwrap();
        assert_eq!(s.assignments[0].unwrap().proc, 1);
        assert_eq!(s.total_cost, 1.0);
    }

    #[test]
    fn time_varying_prices_steer_awake_intervals() {
        // job may run at t=0 or t=2; t=0 is pricey, t=2 cheap
        let inst = Instance::new(
            1,
            3,
            vec![Job::unit(vec![SlotRef::new(0, 0), SlotRef::new(0, 2)])],
        );
        let cost = TimeVaryingCost::new(1.0, vec![vec![50.0, 1.0, 1.0]]);
        let s = solve(&inst, &cost).unwrap();
        assert_eq!(s.assignments[0], Some(SlotRef::new(0, 2)));
        assert_eq!(s.total_cost, 2.0);
    }

    #[test]
    fn multi_interval_jobs_use_any_window() {
        // job 0: [0,1) ∪ [4,5); job 1: [4,5) only. Cheapest: both in [4,6)?
        // job windows force both at t=4.. only one slot each — job1 takes
        // (0,4), job0 its other window (0,0) or... verify feasibility+validity
        let inst = Instance::new(
            1,
            6,
            vec![
                Job::unit(vec![SlotRef::new(0, 0), SlotRef::new(0, 4)]),
                Job::unit(vec![SlotRef::new(0, 4)]),
            ],
        );
        let s = solve(&inst, &AffineCost::new(1.0, 1.0)).unwrap();
        assert_eq!(s.scheduled_count, 2);
        assert_eq!(s.assignments[1], Some(SlotRef::new(0, 4)));
        assert_eq!(s.assignments[0], Some(SlotRef::new(0, 0)));
        assert!(validate_schedule(&inst, &s).is_empty());
    }

    #[test]
    fn log_n_bound_holds_on_planted_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
        for trial in 0..10 {
            // plant: one awake interval per processor covering all jobs
            let p = rng.gen_range(1..=3u32);
            let t = rng.gen_range(6..=12u32);
            let alpha = rng.gen_range(1..=5) as f64;
            let cost = AffineCost::new(alpha, 1.0);
            let mut jobs = Vec::new();
            let mut planted_cost = 0.0;
            for proc in 0..p {
                let s = rng.gen_range(0..t / 2);
                let e = rng.gen_range(s + 1..=t);
                planted_cost += cost.cost(proc, s, e);
                // fill the interval with jobs (distinct slots)
                for time in s..e {
                    if rng.gen_bool(0.7) {
                        jobs.push(Job::unit(vec![SlotRef::new(proc, time)]));
                    }
                }
            }
            if jobs.is_empty() {
                continue;
            }
            let n = jobs.len() as f64;
            let inst = Instance::new(p, t, jobs);
            let s = solve(&inst, &cost).unwrap();
            assert_eq!(s.scheduled_count, inst.num_jobs());
            let bound = 2.0 * (n + 1.0).log2().ceil() * planted_cost;
            assert!(
                s.total_cost <= bound + 1e-9,
                "trial {trial}: cost {} exceeds O(B log n) bound {bound} (B={planted_cost})",
                s.total_cost
            );
            assert!(validate_schedule(&inst, &s).is_empty());
        }
    }

    #[test]
    fn eager_and_lazy_agree() {
        let inst = Instance::new(
            2,
            5,
            vec![
                Job::window(1.0, 0, 0, 3),
                Job::window(1.0, 0, 2, 5),
                Job::window(1.0, 1, 1, 4),
            ],
        );
        let cands = enumerate_candidates(&inst, &AffineCost::new(2.0, 1.0), CandidatePolicy::All);
        let lazy = schedule_all(
            &inst,
            &cands,
            &SolveOptions {
                lazy: true,
                parallel: false,
            },
        )
        .unwrap();
        let eager = schedule_all(
            &inst,
            &cands,
            &SolveOptions {
                lazy: false,
                parallel: false,
            },
        )
        .unwrap();
        assert_eq!(lazy.total_cost, eager.total_cost);
        let par = schedule_all(
            &inst,
            &cands,
            &SolveOptions {
                lazy: false,
                parallel: true,
            },
        )
        .unwrap();
        assert_eq!(lazy.total_cost, par.total_cost);
    }
}
