//! Theorems 2.3.1 and 2.3.3: the prize-collecting scheduling problem.
//!
//! Jobs carry values; the adversary schedules value ≥ `Z` at cost `B`.
//!
//! * [`prize_collecting`] (Thm 2.3.1): value ≥ `(1−ε)Z`, cost
//!   `O(B log 1/ε)` — the weighted matching rank (Lemma 2.3.2) is monotone
//!   submodular, so the Lemma 2.1.2 greedy applies directly.
//! * [`prize_collecting_exact`] (Thm 2.3.3): value ≥ `Z` exactly, cost
//!   `O((log n + log Δ)·B)` with `Δ = v_max/v_min`. Run the bicriteria
//!   algorithm with `ε = v_min/(n·v_max)`; since any positive marginal gain
//!   of the weighted rank equals some job's value ≥ `v_min` ≥ the residual
//!   `Z − F(S)`, one final cheapest positive-gain interval closes the gap.

use bmatch::hall_violator;
use submodular::{budgeted_greedy, BudgetedObjective, GreedyConfig};

use crate::candidates::CandidateInterval;
use crate::model::{Instance, Schedule, ScheduleError, SolveOptions};
use crate::objective::{ScheduleObjective, ScheduleReduction};

/// Schedules jobs of total value at least `(1−ε)·target` at cost within
/// `O(log 1/ε)` of any schedule achieving value `target` (Theorem 2.3.1).
///
/// Errors when even the relaxed goal is unreachable with the supplied
/// candidates (certificate included), or when `target` exceeds the total
/// value present in the instance.
///
/// Builds the bipartite reduction internally; repeated solves should go
/// through [`crate::Solver`], which caches it and calls
/// [`prize_collecting_with`].
pub fn prize_collecting(
    inst: &Instance,
    candidates: &[CandidateInterval],
    target: f64,
    epsilon: f64,
    opts: &SolveOptions,
) -> Result<Schedule, ScheduleError> {
    let total = inst.total_value();
    if target > total {
        return Err(ScheduleError::TargetExceedsTotalValue { target, total });
    }
    if target <= 0.0 {
        return Ok(empty_schedule(inst));
    }
    let red = ScheduleReduction::build(inst, candidates);
    prize_collecting_with(inst, &red, candidates, target, epsilon, opts)
}

/// [`prize_collecting`] over a prebuilt [`ScheduleReduction`] (which must
/// have been built for exactly this `inst` + `candidates` pair).
pub fn prize_collecting_with(
    inst: &Instance,
    red: &ScheduleReduction,
    candidates: &[CandidateInterval],
    target: f64,
    epsilon: f64,
    opts: &SolveOptions,
) -> Result<Schedule, ScheduleError> {
    let total = inst.total_value();
    if target > total {
        return Err(ScheduleError::TargetExceedsTotalValue { target, total });
    }
    if target <= 0.0 {
        return Ok(empty_schedule(inst));
    }

    let values: Vec<f64> = inst.jobs.iter().map(|j| j.value).collect();
    let mut obj = ScheduleObjective::new_weighted(red, values);

    let cfg = GreedyConfig {
        target,
        epsilon,
        lazy: opts.lazy,
        parallel: opts.parallel,
    };
    let out = budgeted_greedy(&mut obj, cfg);
    if !out.reached_target {
        let certificate = hall_violator(obj.oracle()).unwrap_or_default();
        return Err(ScheduleError::Infeasible {
            certificate,
            achieved_value: out.utility,
        });
    }
    Ok(obj.extract_schedule(inst, candidates, &out.chosen))
}

/// Schedules jobs of total value at least `target` — no `(1−ε)` slack — at
/// cost `O((log n + log Δ)·B)` (Theorem 2.3.3).
pub fn prize_collecting_exact(
    inst: &Instance,
    candidates: &[CandidateInterval],
    target: f64,
    opts: &SolveOptions,
) -> Result<Schedule, ScheduleError> {
    let total = inst.total_value();
    if target > total {
        return Err(ScheduleError::TargetExceedsTotalValue { target, total });
    }
    if target <= 0.0 {
        return Ok(empty_schedule(inst));
    }
    let red = ScheduleReduction::build(inst, candidates);
    prize_collecting_exact_with(inst, &red, candidates, target, opts)
}

/// [`prize_collecting_exact`] over a prebuilt [`ScheduleReduction`] (which
/// must have been built for exactly this `inst` + `candidates` pair).
pub fn prize_collecting_exact_with(
    inst: &Instance,
    red: &ScheduleReduction,
    candidates: &[CandidateInterval],
    target: f64,
    opts: &SolveOptions,
) -> Result<Schedule, ScheduleError> {
    let total = inst.total_value();
    if target > total {
        return Err(ScheduleError::TargetExceedsTotalValue { target, total });
    }
    if target <= 0.0 {
        return Ok(empty_schedule(inst));
    }

    let (v_min, v_max) = inst
        .value_range()
        .expect("non-empty instance since target > 0 and target <= total");
    let n = inst.num_jobs() as f64;
    // Theorem 2.3.3's slack: ε = v_min / (n · v_max) ≤ 1/n, so the residual
    // after the bicriteria phase is ε·Z ≤ ε·n·v_max = v_min. Clamp away from
    // 1 for the degenerate n = 1 case.
    let eps = (v_min / (n * v_max)).min(0.5);

    let values: Vec<f64> = inst.jobs.iter().map(|j| j.value).collect();
    let mut obj = ScheduleObjective::new_weighted(red, values);

    let cfg = GreedyConfig {
        target,
        epsilon: eps,
        lazy: opts.lazy,
        parallel: opts.parallel,
    };
    let out = budgeted_greedy(&mut obj, cfg);
    if !out.reached_target {
        let certificate = hall_violator(obj.oracle()).unwrap_or_default();
        return Err(ScheduleError::Infeasible {
            certificate,
            achieved_value: out.utility,
        });
    }

    let mut chosen = out.chosen.clone();
    // Top-up phase: while short of Z, commit the cheapest candidate with any
    // positive gain. Any positive gain of the weighted rank is ≥ v_min ≥ the
    // residual, so mathematically one round suffices; the loop is defensive.
    let mut scratch = <ScheduleObjective<'_> as BudgetedObjective>::Scratch::default();
    let mut in_chosen = vec![false; obj.num_subsets()];
    for &i in &chosen {
        in_chosen[i] = true;
    }
    let mut gains: Vec<f64> = Vec::new();
    while obj.current() < target {
        obj.scan_gains(opts.parallel, &mut scratch, &mut gains);
        let mut best: Option<(f64, usize)> = None;
        for (i, &g) in gains.iter().enumerate() {
            if in_chosen[i] {
                continue;
            }
            if g > 0.0 {
                let c = obj.cost(i);
                if best.is_none_or(|(bc, _)| c < bc) {
                    best = Some((c, i));
                }
            }
        }
        let Some((_, idx)) = best else {
            let certificate = hall_violator(obj.oracle()).unwrap_or_default();
            return Err(ScheduleError::Infeasible {
                certificate,
                achieved_value: obj.current(),
            });
        };
        obj.commit(idx);
        chosen.push(idx);
        in_chosen[idx] = true;
    }

    Ok(obj.extract_schedule(inst, candidates, &chosen))
}

fn empty_schedule(inst: &Instance) -> Schedule {
    Schedule {
        awake: Vec::new(),
        assignments: vec![None; inst.num_jobs()],
        total_cost: 0.0,
        scheduled_value: 0.0,
        scheduled_count: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{enumerate_candidates, CandidatePolicy};
    use crate::cost::{AffineCost, EnergyCost};
    use crate::model::{validate_schedule, Instance, Job, SlotRef};

    fn value_skewed_instance() -> Instance {
        // expensive-to-reach low-value jobs at late slots; one high-value job
        // early. horizon 6, single processor.
        Instance::new(
            1,
            6,
            vec![
                Job::window(10.0, 0, 0, 1),
                Job::window(1.0, 0, 4, 6),
                Job::window(1.0, 0, 4, 6),
            ],
        )
    }

    fn cands(inst: &Instance, cost: &dyn crate::cost::EnergyCost) -> Vec<CandidateInterval> {
        enumerate_candidates(inst, cost, CandidatePolicy::All)
    }

    #[test]
    fn zero_target_trivial() {
        let inst = value_skewed_instance();
        let c = cands(&inst, &AffineCost::new(1.0, 1.0));
        let s = prize_collecting(&inst, &c, 0.0, 0.1, &SolveOptions::default()).unwrap();
        assert_eq!(s.total_cost, 0.0);
        assert_eq!(s.scheduled_count, 0);
    }

    #[test]
    fn target_above_total_rejected() {
        let inst = value_skewed_instance();
        let c = cands(&inst, &AffineCost::new(1.0, 1.0));
        let err = prize_collecting(&inst, &c, 13.0, 0.1, &SolveOptions::default()).unwrap_err();
        assert!(matches!(err, ScheduleError::TargetExceedsTotalValue { .. }));
    }

    #[test]
    fn picks_high_value_job_first() {
        let inst = value_skewed_instance();
        let c = cands(&inst, &AffineCost::new(1.0, 1.0));
        // target 10 with tight eps: the single high-value job suffices
        let s = prize_collecting(&inst, &c, 10.0, 0.01, &SolveOptions::default()).unwrap();
        assert!(s.scheduled_value >= 0.99 * 10.0);
        assert_eq!(s.assignments[0], Some(SlotRef::new(0, 0)));
        // only needs the [0,1) interval: cost 2
        assert_eq!(s.total_cost, 2.0);
        assert!(validate_schedule(&inst, &s).is_empty());
    }

    #[test]
    fn bicriteria_value_guarantee() {
        let inst = value_skewed_instance();
        let c = cands(&inst, &AffineCost::new(1.0, 1.0));
        for &(target, eps) in &[(11.0, 0.25), (12.0, 0.1), (6.0, 0.5)] {
            let s = prize_collecting(&inst, &c, target, eps, &SolveOptions::default()).unwrap();
            assert!(
                s.scheduled_value >= (1.0 - eps) * target - 1e-9,
                "value {} below (1-{eps})·{target}",
                s.scheduled_value
            );
            assert!(validate_schedule(&inst, &s).is_empty());
        }
    }

    #[test]
    fn exact_reaches_target_exactly_or_more() {
        let inst = value_skewed_instance();
        let c = cands(&inst, &AffineCost::new(1.0, 1.0));
        for &target in &[1.0, 6.0, 10.5, 11.0, 12.0] {
            let s = prize_collecting_exact(&inst, &c, target, &SolveOptions::default()).unwrap();
            assert!(
                s.scheduled_value >= target - 1e-9,
                "value {} below target {target}",
                s.scheduled_value
            );
            assert!(validate_schedule(&inst, &s).is_empty());
        }
    }

    #[test]
    fn exact_cost_bound_on_planted_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        for _ in 0..8 {
            let t = rng.gen_range(6..=10u32);
            let alpha = rng.gen_range(1..=4) as f64;
            let cost = AffineCost::new(alpha, 1.0);
            // plant one interval holding all jobs
            let s0 = 1u32;
            let e0 = t;
            let mut jobs = Vec::new();
            for time in s0..e0 {
                jobs.push(Job::window(rng.gen_range(1..=8) as f64, 0, time, time + 1));
            }
            let inst = Instance::new(1, t, jobs);
            let planted_cost = cost.cost(0, s0, e0);
            let total = inst.total_value();
            let target = total * 0.9;
            let c = cands(&inst, &cost);
            let s = prize_collecting_exact(&inst, &c, target, &SolveOptions::default()).unwrap();
            assert!(s.scheduled_value >= target - 1e-9);
            let (vmin, vmax) = inst.value_range().unwrap();
            let n = inst.num_jobs() as f64;
            let delta = vmax / vmin;
            // cost ≤ 2B·ceil(log2(1/eps)) + B (top-up), eps = vmin/(n·vmax)
            let bound = planted_cost * (2.0 * (n * delta).log2().ceil() + 1.0);
            assert!(
                s.total_cost <= bound + 1e-9,
                "cost {} above bound {bound}",
                s.total_cost
            );
        }
    }

    #[test]
    fn infeasible_target_with_blocked_candidates() {
        // job value 5 at slot 0 only, but no candidate covers slot 0
        let inst = Instance::new(1, 3, vec![Job::window(5.0, 0, 0, 1)]);
        let c = vec![CandidateInterval {
            proc: 0,
            start: 1,
            end: 3,
            cost: 2.0,
        }];
        let err = prize_collecting(&inst, &c, 5.0, 0.1, &SolveOptions::default()).unwrap_err();
        assert!(matches!(err, ScheduleError::Infeasible { .. }));
        let err2 = prize_collecting_exact(&inst, &c, 5.0, &SolveOptions::default()).unwrap_err();
        assert!(matches!(err2, ScheduleError::Infeasible { .. }));
    }

    #[test]
    fn equal_values_match_cardinality_behaviour() {
        // With identical values (Δ = 1) prize-collecting at Z = n·v behaves
        // like schedule-all.
        let inst = Instance::new(
            1,
            4,
            vec![Job::window(2.0, 0, 0, 2), Job::window(2.0, 0, 2, 4)],
        );
        let c = cands(&inst, &AffineCost::new(1.0, 1.0));
        let s = prize_collecting_exact(&inst, &c, 4.0, &SolveOptions::default()).unwrap();
        assert_eq!(s.scheduled_count, 2);
        assert_eq!(s.scheduled_value, 4.0);
    }
}
