//! Timed arrival traces — the online face of the scheduling model.
//!
//! An [`ArrivalTrace`] is an [`Instance`] whose jobs additionally carry a
//! *release time*: the slot at which the job becomes known to an online
//! scheduler. Nothing about a job (its value, its allowed slots) may be
//! observed before its release; stripping the release times yields the
//! offline instance an omniscient solver would see
//! ([`ArrivalTrace::to_instance`]), which is how the replay harness computes
//! offline reference costs.
//!
//! Traces are self-contained JSON documents: they carry the affine cost
//! parameters (`restart`, `rate`) alongside the jobs, so a trace file fully
//! determines both the workload and the energy accounting.

use serde::{Deserialize, Serialize};

use crate::model::{Instance, InstanceError, Job, SlotRef};
use crate::profile::{
    fleet_or_default, validate_profiles, FreqLadder, FreqLadderError, PowerProfile, ProfileCost,
    ProfileError,
};

/// A unit-time job with a release time.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimedJob {
    /// Slot at which the job is revealed. The job may only run at slots with
    /// `time >= release`.
    pub release: u32,
    /// Job value (strictly positive, finite).
    pub value: f64,
    /// Valid (processor, time) pairs, all at or after `release`.
    pub allowed: Vec<SlotRef>,
    /// Work requirement for DVFS traces (see [`Job::work`]); `None` = one
    /// unit, the legacy encoding. Online replays run a job within a single
    /// slot, so with a frequency ladder present the work must fit the top
    /// frequency; without one, work beyond a unit is rejected.
    pub work: Option<u32>,
}

impl TimedJob {
    /// Job released at `release`, allowed anywhere in `[start, end)` on
    /// processor `proc`.
    pub fn window(value: f64, release: u32, proc: u32, start: u32, end: u32) -> Self {
        Self {
            release,
            value,
            allowed: (start.max(release)..end)
                .map(|t| SlotRef::new(proc, t))
                .collect(),
            work: None,
        }
    }

    /// Sets the work requirement (builder style).
    pub fn with_work(mut self, work: u32) -> Self {
        self.work = Some(work);
        self
    }

    /// The work requirement, defaulting the legacy encoding to one unit.
    #[inline]
    pub fn work_units(&self) -> u32 {
        self.work.unwrap_or(1)
    }

    /// Latest allowed time, or `None` for an empty allowed set.
    pub fn deadline(&self) -> Option<u32> {
        self.allowed.iter().map(|s| s.time).max()
    }
}

/// A timed arrival trace: an online scheduling workload plus its affine cost
/// model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ArrivalTrace {
    /// Human-readable label carried into replay reports.
    pub name: String,
    /// Number of processors `p`.
    pub num_processors: u32,
    /// Number of time slots `T`.
    pub horizon: u32,
    /// Fixed wake-up cost `α` of the affine energy model — the default
    /// profile when [`ArrivalTrace::profiles`] is absent.
    pub restart: f64,
    /// Energy per awake slot (same default role).
    pub rate: f64,
    /// The jobs, in any order (the simulator indexes by release time).
    pub jobs: Vec<TimedJob>,
    /// Optional per-processor power profiles (heterogeneous wake costs and
    /// sleep-state ladders). Absent = every processor runs the affine
    /// `(restart, rate)` profile, which keeps pre-profile trace files
    /// loading unchanged.
    pub profiles: Option<Vec<PowerProfile>>,
    /// Optional DVFS frequency ladder shared by every processor. Present, it
    /// lets jobs carry multi-unit work requirements (compressed into single
    /// slots online, stretched or compressed offline) and re-prices awake
    /// runs by the minimum level covering the heaviest job they execute.
    /// Absent = the classical fixed-shape model, which keeps pre-DVFS trace
    /// files loading unchanged.
    pub freq_ladder: Option<FreqLadder>,
}

/// Structural problems detected by [`ArrivalTrace::validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum TraceError {
    /// The underlying instance is invalid (bad value or out-of-range slot).
    Instance(InstanceError),
    /// A job's release time is at or past the horizon.
    ReleaseAfterHorizon {
        /// Offending job index.
        job: u32,
        /// The rejected release time.
        release: u32,
    },
    /// A job lists an allowed slot before its own release.
    SlotBeforeRelease {
        /// Offending job index.
        job: u32,
        /// The offending slot.
        slot: SlotRef,
    },
    /// A job has no allowed slot at all (it could never be scheduled).
    EmptyWindow {
        /// Offending job index.
        job: u32,
    },
    /// The cost parameters are not finite and non-negative with a positive
    /// sum.
    InvalidCost {
        /// Restart cost as given.
        restart: f64,
        /// Rate as given.
        rate: f64,
    },
    /// The explicit per-processor profiles are invalid (wrong count, bad
    /// parameters, or a non-monotone sleep ladder).
    InvalidProfiles(ProfileError),
    /// The frequency ladder is invalid.
    InvalidLadder(FreqLadderError),
    /// A trace carries both a frequency ladder and explicit per-processor
    /// profiles — the DVFS re-pricing assumes the homogeneous affine model.
    LadderWithProfiles,
    /// A job's work requirement exceeds the ladder's top frequency: online
    /// replays run a job within one slot, so it could never be placed.
    WorkExceedsTopFreq {
        /// Offending job index.
        job: u32,
        /// The declared work.
        work: u32,
        /// The ladder's fastest frequency.
        max_freq: u32,
    },
    /// A job declares multi-unit work but the trace has no frequency ladder
    /// to execute it with.
    WorkWithoutLadder {
        /// Offending job index.
        job: u32,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Instance(e) => write!(f, "{e}"),
            TraceError::ReleaseAfterHorizon { job, release } => {
                write!(f, "job {job} released at {release}, at or past the horizon")
            }
            TraceError::SlotBeforeRelease { job, slot } => write!(
                f,
                "job {job} allows slot ({}, {}) before its release",
                slot.proc, slot.time
            ),
            TraceError::EmptyWindow { job } => write!(f, "job {job} has no allowed slot"),
            TraceError::InvalidCost { restart, rate } => write!(
                f,
                "cost parameters must be finite, non-negative, and not both zero \
                 (got restart {restart}, rate {rate})"
            ),
            TraceError::InvalidProfiles(e) => write!(f, "invalid power profiles: {e}"),
            TraceError::InvalidLadder(e) => write!(f, "invalid frequency ladder: {e}"),
            TraceError::LadderWithProfiles => write!(
                f,
                "a trace may carry a frequency ladder or explicit profiles, not both"
            ),
            TraceError::WorkExceedsTopFreq {
                job,
                work,
                max_freq,
            } => write!(
                f,
                "job {job} requires {work} work units but the ladder tops out at \
                 frequency {max_freq} (online jobs must fit one slot)"
            ),
            TraceError::WorkWithoutLadder { job } => write!(
                f,
                "job {job} declares a multi-unit work requirement but the trace \
                 has no frequency ladder"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

impl ArrivalTrace {
    /// Checks structural invariants: a valid underlying instance, every
    /// release before the horizon, every allowed slot at or after its job's
    /// release, no empty windows, and usable affine cost parameters.
    ///
    /// Serde builds traces field-by-field, so anything arriving from a file
    /// must pass through this check before it reaches the simulator.
    pub fn validate(&self) -> Result<(), TraceError> {
        if !(self.restart.is_finite()
            && self.rate.is_finite()
            && self.restart >= 0.0
            && self.rate >= 0.0
            && self.restart + self.rate > 0.0)
        {
            return Err(TraceError::InvalidCost {
                restart: self.restart,
                rate: self.rate,
            });
        }
        if let Some(profiles) = &self.profiles {
            validate_profiles(profiles, self.num_processors)
                .map_err(TraceError::InvalidProfiles)?;
        }
        if let Some(ladder) = &self.freq_ladder {
            ladder.validate().map_err(TraceError::InvalidLadder)?;
            if self.profiles.is_some() {
                return Err(TraceError::LadderWithProfiles);
            }
        }
        self.to_instance()
            .validate()
            .map_err(TraceError::Instance)?;
        for (i, j) in self.jobs.iter().enumerate() {
            match &self.freq_ladder {
                Some(ladder) if j.work_units() > ladder.max_freq() => {
                    return Err(TraceError::WorkExceedsTopFreq {
                        job: i as u32,
                        work: j.work_units(),
                        max_freq: ladder.max_freq(),
                    });
                }
                None if j.work_units() > 1 => {
                    return Err(TraceError::WorkWithoutLadder { job: i as u32 });
                }
                _ => {}
            }
            if j.release >= self.horizon {
                return Err(TraceError::ReleaseAfterHorizon {
                    job: i as u32,
                    release: j.release,
                });
            }
            if j.allowed.is_empty() {
                return Err(TraceError::EmptyWindow { job: i as u32 });
            }
            if let Some(slot) = j.allowed.iter().find(|s| s.time < j.release) {
                return Err(TraceError::SlotBeforeRelease {
                    job: i as u32,
                    slot: *slot,
                });
            }
        }
        Ok(())
    }

    /// The offline instance an omniscient solver sees: release times
    /// dropped, job order preserved (job `i` here is job `i` in the trace).
    pub fn to_instance(&self) -> Instance {
        Instance {
            num_processors: self.num_processors,
            horizon: self.horizon,
            jobs: self
                .jobs
                .iter()
                .map(|j| Job {
                    value: j.value,
                    allowed: j.allowed.clone(),
                    work: j.work,
                })
                .collect(),
        }
    }

    /// The offline DVFS instance an omniscient speed-scaling solver sees,
    /// when the trace carries a frequency ladder: release times dropped,
    /// work requirements kept, the trace's `restart` as the wake cost.
    /// `None` for classical traces.
    pub fn to_dvfs_instance(&self) -> Option<crate::dvfs::DvfsInstance> {
        let ladder = self.freq_ladder.clone()?;
        Some(crate::dvfs::DvfsInstance {
            num_processors: self.num_processors,
            horizon: self.horizon,
            wake_cost: self.restart,
            ladder,
            jobs: self.to_instance().jobs,
        })
    }

    /// Sum of all job values.
    pub fn total_value(&self) -> f64 {
        self.jobs.iter().map(|j| j.value).sum()
    }

    /// The per-processor profile fleet this trace prices energy with: the
    /// explicit [`ArrivalTrace::profiles`] when present, otherwise the
    /// affine `(restart, rate)` profile cloned across every processor.
    pub fn fleet_profiles(&self) -> Vec<PowerProfile> {
        fleet_or_default(
            self.profiles.as_deref(),
            self.num_processors,
            self.restart,
            self.rate,
        )
    }

    /// The trace's energy-cost oracle ([`ProfileCost`]). For traces without
    /// explicit profiles this prices intervals bit-identically to
    /// `AffineCost::new(restart, rate)`, so pre-profile replays and offline
    /// references are unchanged.
    pub fn cost_model(&self) -> ProfileCost {
        ProfileCost::new(&self.fleet_profiles())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> ArrivalTrace {
        ArrivalTrace {
            name: "t".into(),
            num_processors: 2,
            horizon: 8,
            restart: 3.0,
            rate: 1.0,
            jobs: vec![
                TimedJob::window(1.0, 0, 0, 0, 3),
                TimedJob::window(2.0, 2, 1, 2, 6),
            ],
            profiles: None,
            freq_ladder: None,
        }
    }

    #[test]
    fn valid_trace_round_trips_to_instance() {
        let t = trace();
        assert_eq!(t.validate(), Ok(()));
        let inst = t.to_instance();
        assert_eq!(inst.num_jobs(), 2);
        assert_eq!(inst.jobs[1].allowed, t.jobs[1].allowed);
        assert_eq!(t.total_value(), 3.0);
        assert_eq!(t.jobs[0].deadline(), Some(2));
    }

    #[test]
    fn window_clamps_start_to_release() {
        let j = TimedJob::window(1.0, 3, 0, 1, 6);
        assert!(j.allowed.iter().all(|s| s.time >= 3));
        assert_eq!(j.allowed.len(), 3);
    }

    #[test]
    fn validate_rejects_structural_errors() {
        let mut t = trace();
        t.jobs[0].release = 8;
        assert!(matches!(
            t.validate(),
            Err(TraceError::ReleaseAfterHorizon { job: 0, release: 8 })
        ));

        let mut t = trace();
        t.jobs[1].allowed.push(SlotRef::new(0, 0)); // before release 2
        assert!(matches!(
            t.validate(),
            Err(TraceError::SlotBeforeRelease { job: 1, .. })
        ));

        let mut t = trace();
        t.jobs[0].allowed.clear();
        assert!(matches!(
            t.validate(),
            Err(TraceError::EmptyWindow { job: 0 })
        ));

        let mut t = trace();
        t.jobs[0].value = -1.0;
        assert!(matches!(t.validate(), Err(TraceError::Instance(_))));

        let mut t = trace();
        t.restart = 0.0;
        t.rate = 0.0;
        assert!(matches!(t.validate(), Err(TraceError::InvalidCost { .. })));

        let mut t = trace();
        t.jobs[0].allowed[0].time = 99;
        assert!(matches!(t.validate(), Err(TraceError::Instance(_))));
    }

    #[test]
    fn dvfs_trace_validation_rules() {
        let ladder = FreqLadder::new(1.0, 0.0, 2.0, vec![1, 2, 4]);
        let mut t = trace();
        t.freq_ladder = Some(ladder.clone());
        t.jobs[0].work = Some(3);
        assert_eq!(t.validate(), Ok(()));
        let d = t.to_dvfs_instance().unwrap();
        assert_eq!(d.wake_cost, t.restart);
        assert_eq!(d.jobs[0].work_units(), 3);
        assert_eq!(d.ladder, ladder);
        assert!(trace().to_dvfs_instance().is_none());

        // Work beyond the top frequency cannot run in one online slot.
        t.jobs[0].work = Some(5);
        assert_eq!(
            t.validate(),
            Err(TraceError::WorkExceedsTopFreq {
                job: 0,
                work: 5,
                max_freq: 4
            })
        );

        // Multi-unit work without a ladder is meaningless.
        let mut t = trace();
        t.jobs[1].work = Some(2);
        assert_eq!(t.validate(), Err(TraceError::WorkWithoutLadder { job: 1 }));

        // Ladder and explicit profiles are mutually exclusive.
        let mut t = trace();
        t.freq_ladder = Some(ladder.clone());
        t.profiles = Some(vec![PowerProfile::affine(3.0, 1.0); 2]);
        assert_eq!(t.validate(), Err(TraceError::LadderWithProfiles));

        // A broken ladder is reported as such.
        let mut t = trace();
        t.freq_ladder = Some(FreqLadder {
            alpha: 1.0,
            beta: 0.0,
            gamma: 2.0,
            freqs: vec![],
        });
        assert!(matches!(t.validate(), Err(TraceError::InvalidLadder(_))));
        for e in [
            TraceError::LadderWithProfiles,
            TraceError::WorkExceedsTopFreq {
                job: 0,
                work: 5,
                max_freq: 4,
            },
            TraceError::WorkWithoutLadder { job: 1 },
            TraceError::InvalidLadder(FreqLadderError::Empty),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn dvfs_trace_serde_round_trip() {
        let mut t = trace();
        t.freq_ladder = Some(FreqLadder::new(0.5, 0.25, 3.0, vec![1, 2]));
        t.jobs[0].work = Some(2);
        let json = serde_json::to_string(&t).unwrap();
        let back: ArrivalTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.validate(), Ok(()));
        assert_eq!(back.freq_ladder, t.freq_ladder);
        assert_eq!(back.jobs[0].work, Some(2));
        assert_eq!(back.jobs[1].work, None);
        assert_eq!(back.jobs[0].work_units(), 2);
        assert_eq!(back.jobs[1].work_units(), 1);
    }

    #[test]
    fn serde_round_trip() {
        let t = trace();
        let json = serde_json::to_string(&t).unwrap();
        let back: ArrivalTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.validate(), Ok(()));
        assert_eq!(back.jobs.len(), 2);
        assert_eq!(back.restart, 3.0);
        assert_eq!(back.name, "t");
    }
}
