//! Timed arrival traces — the online face of the scheduling model.
//!
//! An [`ArrivalTrace`] is an [`Instance`] whose jobs additionally carry a
//! *release time*: the slot at which the job becomes known to an online
//! scheduler. Nothing about a job (its value, its allowed slots) may be
//! observed before its release; stripping the release times yields the
//! offline instance an omniscient solver would see
//! ([`ArrivalTrace::to_instance`]), which is how the replay harness computes
//! offline reference costs.
//!
//! Traces are self-contained JSON documents: they carry the affine cost
//! parameters (`restart`, `rate`) alongside the jobs, so a trace file fully
//! determines both the workload and the energy accounting.

use serde::{Deserialize, Serialize};

use crate::model::{Instance, InstanceError, Job, SlotRef};
use crate::profile::{
    fleet_or_default, validate_profiles, PowerProfile, ProfileCost, ProfileError,
};

/// A unit-time job with a release time.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimedJob {
    /// Slot at which the job is revealed. The job may only run at slots with
    /// `time >= release`.
    pub release: u32,
    /// Job value (strictly positive, finite).
    pub value: f64,
    /// Valid (processor, time) pairs, all at or after `release`.
    pub allowed: Vec<SlotRef>,
}

impl TimedJob {
    /// Job released at `release`, allowed anywhere in `[start, end)` on
    /// processor `proc`.
    pub fn window(value: f64, release: u32, proc: u32, start: u32, end: u32) -> Self {
        Self {
            release,
            value,
            allowed: (start.max(release)..end)
                .map(|t| SlotRef::new(proc, t))
                .collect(),
        }
    }

    /// Latest allowed time, or `None` for an empty allowed set.
    pub fn deadline(&self) -> Option<u32> {
        self.allowed.iter().map(|s| s.time).max()
    }
}

/// A timed arrival trace: an online scheduling workload plus its affine cost
/// model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ArrivalTrace {
    /// Human-readable label carried into replay reports.
    pub name: String,
    /// Number of processors `p`.
    pub num_processors: u32,
    /// Number of time slots `T`.
    pub horizon: u32,
    /// Fixed wake-up cost `α` of the affine energy model — the default
    /// profile when [`ArrivalTrace::profiles`] is absent.
    pub restart: f64,
    /// Energy per awake slot (same default role).
    pub rate: f64,
    /// The jobs, in any order (the simulator indexes by release time).
    pub jobs: Vec<TimedJob>,
    /// Optional per-processor power profiles (heterogeneous wake costs and
    /// sleep-state ladders). Absent = every processor runs the affine
    /// `(restart, rate)` profile, which keeps pre-profile trace files
    /// loading unchanged.
    pub profiles: Option<Vec<PowerProfile>>,
}

/// Structural problems detected by [`ArrivalTrace::validate`].
#[derive(Clone, Debug, PartialEq)]
pub enum TraceError {
    /// The underlying instance is invalid (bad value or out-of-range slot).
    Instance(InstanceError),
    /// A job's release time is at or past the horizon.
    ReleaseAfterHorizon {
        /// Offending job index.
        job: u32,
        /// The rejected release time.
        release: u32,
    },
    /// A job lists an allowed slot before its own release.
    SlotBeforeRelease {
        /// Offending job index.
        job: u32,
        /// The offending slot.
        slot: SlotRef,
    },
    /// A job has no allowed slot at all (it could never be scheduled).
    EmptyWindow {
        /// Offending job index.
        job: u32,
    },
    /// The cost parameters are not finite and non-negative with a positive
    /// sum.
    InvalidCost {
        /// Restart cost as given.
        restart: f64,
        /// Rate as given.
        rate: f64,
    },
    /// The explicit per-processor profiles are invalid (wrong count, bad
    /// parameters, or a non-monotone sleep ladder).
    InvalidProfiles(ProfileError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Instance(e) => write!(f, "{e}"),
            TraceError::ReleaseAfterHorizon { job, release } => {
                write!(f, "job {job} released at {release}, at or past the horizon")
            }
            TraceError::SlotBeforeRelease { job, slot } => write!(
                f,
                "job {job} allows slot ({}, {}) before its release",
                slot.proc, slot.time
            ),
            TraceError::EmptyWindow { job } => write!(f, "job {job} has no allowed slot"),
            TraceError::InvalidCost { restart, rate } => write!(
                f,
                "cost parameters must be finite, non-negative, and not both zero \
                 (got restart {restart}, rate {rate})"
            ),
            TraceError::InvalidProfiles(e) => write!(f, "invalid power profiles: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl ArrivalTrace {
    /// Checks structural invariants: a valid underlying instance, every
    /// release before the horizon, every allowed slot at or after its job's
    /// release, no empty windows, and usable affine cost parameters.
    ///
    /// Serde builds traces field-by-field, so anything arriving from a file
    /// must pass through this check before it reaches the simulator.
    pub fn validate(&self) -> Result<(), TraceError> {
        if !(self.restart.is_finite()
            && self.rate.is_finite()
            && self.restart >= 0.0
            && self.rate >= 0.0
            && self.restart + self.rate > 0.0)
        {
            return Err(TraceError::InvalidCost {
                restart: self.restart,
                rate: self.rate,
            });
        }
        if let Some(profiles) = &self.profiles {
            validate_profiles(profiles, self.num_processors)
                .map_err(TraceError::InvalidProfiles)?;
        }
        self.to_instance()
            .validate()
            .map_err(TraceError::Instance)?;
        for (i, j) in self.jobs.iter().enumerate() {
            if j.release >= self.horizon {
                return Err(TraceError::ReleaseAfterHorizon {
                    job: i as u32,
                    release: j.release,
                });
            }
            if j.allowed.is_empty() {
                return Err(TraceError::EmptyWindow { job: i as u32 });
            }
            if let Some(slot) = j.allowed.iter().find(|s| s.time < j.release) {
                return Err(TraceError::SlotBeforeRelease {
                    job: i as u32,
                    slot: *slot,
                });
            }
        }
        Ok(())
    }

    /// The offline instance an omniscient solver sees: release times
    /// dropped, job order preserved (job `i` here is job `i` in the trace).
    pub fn to_instance(&self) -> Instance {
        Instance {
            num_processors: self.num_processors,
            horizon: self.horizon,
            jobs: self
                .jobs
                .iter()
                .map(|j| Job {
                    value: j.value,
                    allowed: j.allowed.clone(),
                })
                .collect(),
        }
    }

    /// Sum of all job values.
    pub fn total_value(&self) -> f64 {
        self.jobs.iter().map(|j| j.value).sum()
    }

    /// The per-processor profile fleet this trace prices energy with: the
    /// explicit [`ArrivalTrace::profiles`] when present, otherwise the
    /// affine `(restart, rate)` profile cloned across every processor.
    pub fn fleet_profiles(&self) -> Vec<PowerProfile> {
        fleet_or_default(
            self.profiles.as_deref(),
            self.num_processors,
            self.restart,
            self.rate,
        )
    }

    /// The trace's energy-cost oracle ([`ProfileCost`]). For traces without
    /// explicit profiles this prices intervals bit-identically to
    /// `AffineCost::new(restart, rate)`, so pre-profile replays and offline
    /// references are unchanged.
    pub fn cost_model(&self) -> ProfileCost {
        ProfileCost::new(&self.fleet_profiles())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> ArrivalTrace {
        ArrivalTrace {
            name: "t".into(),
            num_processors: 2,
            horizon: 8,
            restart: 3.0,
            rate: 1.0,
            jobs: vec![
                TimedJob::window(1.0, 0, 0, 0, 3),
                TimedJob::window(2.0, 2, 1, 2, 6),
            ],
            profiles: None,
        }
    }

    #[test]
    fn valid_trace_round_trips_to_instance() {
        let t = trace();
        assert_eq!(t.validate(), Ok(()));
        let inst = t.to_instance();
        assert_eq!(inst.num_jobs(), 2);
        assert_eq!(inst.jobs[1].allowed, t.jobs[1].allowed);
        assert_eq!(t.total_value(), 3.0);
        assert_eq!(t.jobs[0].deadline(), Some(2));
    }

    #[test]
    fn window_clamps_start_to_release() {
        let j = TimedJob::window(1.0, 3, 0, 1, 6);
        assert!(j.allowed.iter().all(|s| s.time >= 3));
        assert_eq!(j.allowed.len(), 3);
    }

    #[test]
    fn validate_rejects_structural_errors() {
        let mut t = trace();
        t.jobs[0].release = 8;
        assert!(matches!(
            t.validate(),
            Err(TraceError::ReleaseAfterHorizon { job: 0, release: 8 })
        ));

        let mut t = trace();
        t.jobs[1].allowed.push(SlotRef::new(0, 0)); // before release 2
        assert!(matches!(
            t.validate(),
            Err(TraceError::SlotBeforeRelease { job: 1, .. })
        ));

        let mut t = trace();
        t.jobs[0].allowed.clear();
        assert!(matches!(
            t.validate(),
            Err(TraceError::EmptyWindow { job: 0 })
        ));

        let mut t = trace();
        t.jobs[0].value = -1.0;
        assert!(matches!(t.validate(), Err(TraceError::Instance(_))));

        let mut t = trace();
        t.restart = 0.0;
        t.rate = 0.0;
        assert!(matches!(t.validate(), Err(TraceError::InvalidCost { .. })));

        let mut t = trace();
        t.jobs[0].allowed[0].time = 99;
        assert!(matches!(t.validate(), Err(TraceError::Instance(_))));
    }

    #[test]
    fn serde_round_trip() {
        let t = trace();
        let json = serde_json::to_string(&t).unwrap();
        let back: ArrivalTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.validate(), Ok(()));
        assert_eq!(back.jobs.len(), 2);
        assert_eq!(back.restart, 3.0);
        assert_eq!(back.name, "t");
    }
}
