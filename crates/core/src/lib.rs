//! Power-minimizing multiprocessor multi-interval scheduling via submodular
//! maximization — the primary contribution of Zadimoghaddam (2010), Chapter 2.
//!
//! # Problem (Definition 2 of the paper)
//!
//! There are `p` processors and `n` unit-time jobs over discrete time slots
//! `0..T`. Every processor can be kept awake during any interval `[s, e)` at
//! an *arbitrary* energy cost given by an [`cost::EnergyCost`] oracle — costs
//! may differ per processor, vary over time (energy markets), grow
//! super-linearly with interval length (cooling), or be infinite
//! (unavailability). Each job specifies the set of (processor, time-slot)
//! pairs where it may execute (*multi-interval*, per-processor). A schedule
//! picks awake intervals and assigns each job to an awake, allowed slot, no
//! two jobs sharing a slot. Goal: minimize total awake-interval cost.
//!
//! # Algorithms
//!
//! * [`schedule_all::schedule_all`] — Theorem 2.2.1: if a schedule of cost
//!   `B` schedules all jobs, returns one of cost `O(B log n)`. The reduction
//!   builds the slot–job bipartite graph, uses the cardinality matching rank
//!   (monotone submodular by Lemma 2.2.2) as the utility, and runs the
//!   Lemma 2.1.2 budgeted greedy with `x = n`, `ε = 1/(n+1)`.
//! * [`prize_collecting::prize_collecting`] — Theorem 2.3.1: schedules value
//!   `≥ (1−ε)Z` at cost `O(B log 1/ε)` against any adversary scheduling value
//!   `≥ Z` at cost `B`, via the weighted matching rank (Lemma 2.3.2).
//! * [`prize_collecting::prize_collecting_exact`] — Theorem 2.3.3: value
//!   `≥ Z` exactly, cost `O((log n + log Δ)·B)` where `Δ = v_max / v_min`.
//!
//! Both algorithms report infeasibility (relative to the supplied candidate
//! intervals) with a Hall-violator certificate naming jobs that provably
//! cannot all be scheduled.
//!
//! # Entry point
//!
//! Applications should use the [`Solver`] builder, which owns the instance,
//! the cost oracle, the candidate policy, and the [`model::SolveOptions`] in
//! one place and exposes all three algorithms as goal methods:
//!
//! ```
//! use sched_core::{AffineCost, Instance, Job, SlotRef, Solver};
//!
//! let inst = Instance::new(1, 4, vec![Job::unit(vec![SlotRef::new(0, 1)])]);
//! let cost = AffineCost::new(2.0, 1.0);
//! let schedule = Solver::new(&inst, &cost).schedule_all().unwrap();
//! assert_eq!(schedule.scheduled_count, 1);
//! ```
//!
//! The free functions [`schedule_all()`](schedule_all::schedule_all) and
//! [`prize_collecting()`](prize_collecting::prize_collecting) /
//! [`prize_collecting_exact()`](prize_collecting::prize_collecting_exact)
//! remain available for callers that manage candidate families manually.
//!
//! # Crate layout
//!
//! * [`model`] — instances, jobs, schedules, and schedule validation;
//! * [`cost`] — the energy-cost oracle and a library of cost models (flat
//!   arena-backed prefix tables with O(1) interval queries);
//! * [`profile`] — per-processor power profiles: heterogeneous wake costs,
//!   busy rates, and multi-level sleep-state ladders with the break-even
//!   sleep-depth rule ([`ProfileCost`] is the heterogeneous oracle);
//! * [`dvfs`] — speed scaling: work-requirement jobs on a discrete
//!   frequency ladder, compiled onto the classical machinery via a
//!   lane-expanded virtual grid;
//! * [`candidates`] — awake-interval candidate generation policies;
//! * [`bitset`] — `u64`-word slot bitsets used throughout the hot path;
//! * [`objective`] — the matching-rank [`submodular::BudgetedObjective`]
//!   adapter driving the greedy (flat CSR slot lists, nested-prefix run
//!   scans, component-memoized gains);
//! * [`naive`] — the retained pre-overhaul solve path, kept as the
//!   bit-identical reference for the equivalence proptests and the perf
//!   harness;
//! * [`solver`] — the [`Solver`] builder tying everything together (caches
//!   both the candidate family and the reduction across goal calls);
//! * [`trace`] — timed arrival traces (release times) for the online replay
//!   harness in the `sched-sim` crate;
//! * [`mod@schedule_all`], [`mod@prize_collecting`] — the two headline
//!   algorithms.

pub mod bitset;
pub mod candidates;
pub mod cost;
pub mod dvfs;
pub mod model;
pub mod naive;
pub mod objective;
pub mod prize_collecting;
pub mod profile;
pub mod schedule_all;
pub mod simulate;
pub mod solver;
pub mod trace;
pub mod warm;

pub use bitset::SlotSet;
pub use candidates::{enumerate_candidates, CandidateInterval, CandidatePolicy};
pub use cost::{
    AffineCost, ConvexCost, EnergyCost, PerProcessorAffine, TableCost, TimeVaryingCost,
    UnavailableSlots,
};
pub use dvfs::{
    solve_dvfs, solve_dvfs_naive, validate_dvfs_schedule, CompiledDvfs, DvfsCost, DvfsError,
    DvfsInstance, DvfsInterval, DvfsQuantum, DvfsSchedule, DvfsSolveError, DvfsViolation,
};
pub use model::{Instance, InstanceError, Job, Schedule, ScheduleError, SlotRef, SolveOptions};
pub use objective::{ScheduleObjective, ScheduleReduction};
pub use prize_collecting::{
    prize_collecting, prize_collecting_exact, prize_collecting_exact_with, prize_collecting_with,
};
pub use profile::{
    fleet_or_default, validate_profiles, FreqLadder, FreqLadderError, FreqLevel, PowerProfile,
    ProfileCost, ProfileError, SleepChoice, SleepState, MAX_FREQ, MAX_FREQ_LEVELS,
};
pub use schedule_all::{schedule_all, schedule_all_with};
pub use simulate::{profile_energy, simulate, PowerTrace, ProfileEnergy, SlotState};
pub use solver::Solver;
pub use trace::{ArrivalTrace, TimedJob, TraceError};
pub use warm::{content_keys, WarmHandle, WarmStats};
