//! `u64`-word bitsets over dense slot ids — the hot-path occupancy
//! representation.
//!
//! The solve hot path repeatedly asks set questions about slots: "is this
//! slot interesting (adjacent to any job)?", "which slots of this processor
//! are awake?", "does this interval overlap a blocked slot?". A [`SlotSet`]
//! packs those answers 64 per machine word so membership tests are one
//! shift + mask, whole-interval marking is a handful of masked word stores,
//! and population counts compile to `popcnt`.
//!
//! `submodular::BitSet` is the same word layout for the greedy's explicit
//! set systems; this type adds the interval operations ([`SlotSet::set_range`],
//! [`SlotSet::any_in_range`]) the slot grid needs. A masking fix in one
//! should be mirrored in the other.

/// A fixed-capacity bitset over ids `0..len`, packed into `u64` words.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SlotSet {
    words: Vec<u64>,
    len: usize,
}

impl SlotSet {
    /// Empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Universe size this set was created with.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Is `i` in the set?
    #[inline]
    pub fn contains(&self, i: u32) -> bool {
        debug_assert!(
            (i as usize) < self.len,
            "id {i} outside universe {}",
            self.len
        );
        self.words[(i / 64) as usize] & (1u64 << (i % 64)) != 0
    }

    /// Inserts `i`; returns `true` when it was not already present.
    #[inline]
    pub fn insert(&mut self, i: u32) -> bool {
        debug_assert!(
            (i as usize) < self.len,
            "id {i} outside universe {}",
            self.len
        );
        let w = &mut self.words[(i / 64) as usize];
        let mask = 1u64 << (i % 64);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes `i`; returns `true` when it was present.
    #[inline]
    pub fn remove(&mut self, i: u32) -> bool {
        debug_assert!(
            (i as usize) < self.len,
            "id {i} outside universe {}",
            self.len
        );
        let w = &mut self.words[(i / 64) as usize];
        let mask = 1u64 << (i % 64);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Clears every bit (capacity unchanged).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Sets every bit in `[start, end)` with masked whole-word stores.
    /// Empty ranges (`start >= end`) are no-ops even on a zero-size
    /// universe — the empty-range check must precede the bounds assert, or
    /// `set_range(x, x)` panics in debug builds whenever `x > len`.
    pub fn set_range(&mut self, start: u32, end: u32) {
        if start >= end {
            return;
        }
        debug_assert!(end as usize <= self.len, "range end {end} outside universe");
        let (ws, we) = ((start / 64) as usize, ((end - 1) / 64) as usize);
        let lo_mask = !0u64 << (start % 64);
        let hi_mask = !0u64 >> (63 - (end - 1) % 64);
        if ws == we {
            self.words[ws] |= lo_mask & hi_mask;
        } else {
            self.words[ws] |= lo_mask;
            for w in &mut self.words[ws + 1..we] {
                *w = !0;
            }
            self.words[we] |= hi_mask;
        }
    }

    /// Clears every bit in `[start, end)` with masked whole-word stores —
    /// the complement of [`SlotSet::set_range`], sharing its masking (and
    /// its empty-range / word-boundary contract).
    pub fn clear_range(&mut self, start: u32, end: u32) {
        if start >= end {
            return;
        }
        debug_assert!(end as usize <= self.len, "range end {end} outside universe");
        let (ws, we) = ((start / 64) as usize, ((end - 1) / 64) as usize);
        let lo_mask = !0u64 << (start % 64);
        let hi_mask = !0u64 >> (63 - (end - 1) % 64);
        if ws == we {
            self.words[ws] &= !(lo_mask & hi_mask);
        } else {
            self.words[ws] &= !lo_mask;
            for w in &mut self.words[ws + 1..we] {
                *w = 0;
            }
            self.words[we] &= !hi_mask;
        }
    }

    /// Is any bit of `[start, end)` set? Masked whole-word tests. Empty
    /// ranges answer `false` even outside the universe (see
    /// [`SlotSet::set_range`]).
    pub fn any_in_range(&self, start: u32, end: u32) -> bool {
        if start >= end {
            return false;
        }
        debug_assert!(end as usize <= self.len, "range end {end} outside universe");
        let (ws, we) = ((start / 64) as usize, ((end - 1) / 64) as usize);
        let lo_mask = !0u64 << (start % 64);
        let hi_mask = !0u64 >> (63 - (end - 1) % 64);
        if ws == we {
            return self.words[ws] & lo_mask & hi_mask != 0;
        }
        self.words[ws] & lo_mask != 0
            || self.words[ws + 1..we].iter().any(|&w| w != 0)
            || self.words[we] & hi_mask != 0
    }

    /// Union with `other` (must share the universe size).
    pub fn union_with(&mut self, other: &SlotSet) {
        assert_eq!(self.len, other.len, "bitset universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Iterates the set ids in increasing order (`trailing_zeros` walk).
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            std::iter::successors((word != 0).then_some(word), |w| {
                let next = w & (w - 1); // drop lowest set bit
                (next != 0).then_some(next)
            })
            .map(move |w| wi as u32 * 64 + w.trailing_zeros())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = SlotSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(!s.insert(0));
        assert!(s.insert(129));
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert_eq!(s.count(), 2);
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.count(), 1);
        s.clear();
        assert!(s.is_empty());
    }

    /// Horizons straddling the u64 word size: 63, 64, 65 — the boundary
    /// cases where a lane mask must not leak into (or miss) the next word.
    #[test]
    fn word_boundary_horizons() {
        for horizon in [63u32, 64, 65] {
            let mut s = SlotSet::new(horizon as usize);
            s.set_range(0, horizon);
            assert_eq!(s.count(), horizon as usize, "horizon {horizon}");
            for t in 0..horizon {
                assert!(s.contains(t), "horizon {horizon}, slot {t}");
            }
            assert_eq!(s.iter().count(), horizon as usize);

            // last slot alone: the highest valid bit, possibly first of word 2
            let mut last = SlotSet::new(horizon as usize);
            last.set_range(horizon - 1, horizon);
            assert_eq!(last.count(), 1, "horizon {horizon}");
            assert!(last.contains(horizon - 1));
            assert!(last.any_in_range(0, horizon));
            assert!(!last.any_in_range(0, horizon - 1));
            assert_eq!(last.iter().collect::<Vec<_>>(), vec![horizon - 1]);
        }
    }

    #[test]
    fn set_range_spanning_words() {
        let mut s = SlotSet::new(200);
        s.set_range(60, 140);
        assert_eq!(s.count(), 80);
        assert!(!s.contains(59) && s.contains(60) && s.contains(139) && !s.contains(140));
        assert!(s.any_in_range(0, 61));
        assert!(!s.any_in_range(0, 60));
        assert!(s.any_in_range(139, 200));
        assert!(!s.any_in_range(140, 200));
        assert!(!s.any_in_range(70, 70), "empty range");
    }

    #[test]
    fn set_range_within_one_word() {
        let mut s = SlotSet::new(64);
        s.set_range(3, 7);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 4, 5, 6]);
        assert!(s.any_in_range(6, 64));
        assert!(!s.any_in_range(7, 64));
    }

    /// The degenerate cases the 63/64/65 tests skip: empty ranges anywhere
    /// (including past the universe), a zero-size universe, and clears whose
    /// boundaries land exactly on word edges.
    #[test]
    fn degenerate_ranges_and_zero_universe() {
        // empty range at / past the universe edge must be a silent no-op,
        // not a debug-assert panic
        let mut s = SlotSet::new(64);
        s.set_range(64, 64);
        s.set_range(100, 100);
        s.set_range(7, 3);
        s.clear_range(64, 64);
        s.clear_range(100, 100);
        assert!(s.is_empty());
        assert!(!s.any_in_range(64, 64));
        assert!(!s.any_in_range(100, 100));
        assert!(!s.any_in_range(9, 2));

        // zero-size universe: every op on the (only) empty range works
        let mut z = SlotSet::new(0);
        assert_eq!(z.len(), 0);
        assert!(z.is_empty());
        z.set_range(0, 0);
        z.clear_range(0, 0);
        assert!(!z.any_in_range(0, 0));
        assert_eq!(z.count(), 0);
        assert_eq!(z.iter().count(), 0);
        z.clear();
        let other = SlotSet::new(0);
        z.union_with(&other);
        assert!(z.is_empty());
    }

    #[test]
    fn clear_range_word_aligned_boundaries() {
        // clears whose start/end sit exactly on 64-bit word edges: the
        // masks must cover whole words without leaking into neighbours
        let mut s = SlotSet::new(200);
        s.set_range(0, 200);
        s.clear_range(64, 128); // exactly word 1
        assert_eq!(s.count(), 200 - 64);
        assert!(s.contains(63) && !s.contains(64) && !s.contains(127) && s.contains(128));
        s.set_range(0, 200);
        s.clear_range(0, 64); // full first word
        assert!(!s.contains(0) && !s.contains(63) && s.contains(64));
        s.set_range(0, 200);
        s.clear_range(128, 200); // word 2 boundary through a ragged tail
        assert_eq!(s.count(), 128);
        assert!(s.contains(127) && !s.contains(128) && !s.contains(199));

        // horizons straddling the word size, cleared edge-to-edge
        for horizon in [63u32, 64, 65] {
            let mut s = SlotSet::new(horizon as usize);
            s.set_range(0, horizon);
            s.clear_range(0, horizon);
            assert!(s.is_empty(), "horizon {horizon}");
            s.set_range(0, horizon);
            s.clear_range(horizon - 1, horizon); // highest bit alone
            assert_eq!(s.count(), horizon as usize - 1, "horizon {horizon}");
            assert!(!s.contains(horizon - 1));
        }
    }

    #[test]
    fn clear_range_matches_naive_reference() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..30 {
            let n = rng.gen_range(1..=150usize);
            let mut fast = SlotSet::new(n);
            let mut naive = vec![false; n];
            for _ in 0..60 {
                let s = rng.gen_range(0..=n as u32);
                let e = rng.gen_range(0..=n as u32);
                if rng.gen_bool(0.5) {
                    fast.set_range(s, e);
                    if s < e {
                        naive[s as usize..e as usize].fill(true);
                    }
                } else {
                    fast.clear_range(s, e);
                    if s < e {
                        naive[s as usize..e as usize].fill(false);
                    }
                }
            }
            let ids: Vec<u32> = fast.iter().collect();
            let want: Vec<u32> = (0..n as u32).filter(|&i| naive[i as usize]).collect();
            assert_eq!(ids, want);
        }
    }

    #[test]
    fn union_and_iter_order() {
        let mut a = SlotSet::new(100);
        a.insert(2);
        a.insert(65);
        let mut b = SlotSet::new(100);
        b.insert(64);
        b.insert(99);
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![2, 64, 65, 99]);
    }

    #[test]
    fn matches_naive_reference_on_random_ops() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..30 {
            let n = rng.gen_range(1..=150usize);
            let mut fast = SlotSet::new(n);
            let mut naive = vec![false; n];
            for _ in 0..60 {
                match rng.gen_range(0..4) {
                    0 => {
                        let i = rng.gen_range(0..n as u32);
                        assert_eq!(fast.insert(i), !naive[i as usize]);
                        naive[i as usize] = true;
                    }
                    1 => {
                        let i = rng.gen_range(0..n as u32);
                        assert_eq!(fast.remove(i), naive[i as usize]);
                        naive[i as usize] = false;
                    }
                    2 => {
                        let s = rng.gen_range(0..=n as u32);
                        let e = rng.gen_range(s..=n as u32);
                        fast.set_range(s, e);
                        naive[s as usize..e as usize].fill(true);
                    }
                    _ => {
                        let s = rng.gen_range(0..=n as u32);
                        let e = rng.gen_range(s..=n as u32);
                        let want = naive[s as usize..e as usize].iter().any(|&b| b);
                        assert_eq!(fast.any_in_range(s, e), want);
                    }
                }
            }
            assert_eq!(fast.count(), naive.iter().filter(|&&b| b).count());
            let ids: Vec<u32> = fast.iter().collect();
            let want: Vec<u32> = (0..n as u32).filter(|&i| naive[i as usize]).collect();
            assert_eq!(ids, want);
        }
    }
}
